#!/usr/bin/env python
"""Design-space exploration: the knobs behind SeDA's design choices.

Three sweeps on one workload:

1. **SRAM capacity** — how tiling, halo overlap and optBlk choices react
   as on-chip memory shrinks (edge regime) or grows (server regime).
2. **Protection granularity** — fixed 64 B..4 KB units vs SeDA's
   per-layer optBlk: metadata traffic and redundant verification work.
3. **Crypto-engine organization** — T-AES engine count vs B-AES lane
   count needed to match each layer's bandwidth demand, with 28 nm cost.
"""

import sys

from repro import Pipeline, npu_config, get_workload
from repro.hwmodel.aes_cost import BAES_28NM, TAES_28NM
from repro.runner import EvalService, ResultStore
from repro.tiling.optblk import search_optblk
from repro.tiling.overlap import analyze_overlap
from repro.tiling.patterns import pattern_of, patterns_compatible
from repro.utils.bitops import ceil_div
from repro.utils.report import format_table


def sweep_sram(workload: str) -> None:
    print("### SRAM capacity sweep (edge NPU array, yolo-class workload)")
    rows = []
    for sram_kb in (128, 256, 480, 1024, 4096, 24 * 1024):
        from repro.core.config import NpuConfig
        npu = NpuConfig(name=f"{sram_kb}KB", pe_rows=32, pe_cols=32,
                        bandwidth_gbps=10.0, dram_channels=4, freq_ghz=2.75,
                        sram_bytes=sram_kb << 10)
        run = Pipeline(npu).simulate_model(get_workload(workload))
        tiles = sum(r.plan.num_tiles * r.plan.num_k_tiles for r in run.layers)
        halo = sum(r.plan.halo_traffic for r in run.layers)
        rows.append([
            f"{sram_kb} KB", tiles,
            run.dram_bytes / 1e6,
            halo / 1e6,
            run.compute_cycles / 1e6,
        ])
    print(format_table(
        ["SRAM", "tiles", "DRAM MB", "halo-reread MB", "compute Mcyc"],
        rows))


def sweep_granularity(workload: str, npu_name: str) -> None:
    print(f"\n### Integrity granularity sweep ({workload}, {npu_name})")
    service = EvalService(store=ResultStore())
    comparison = service.compare(npu_name, workload,
                                 ["mgx-64b", "mgx-512b", "seda"])

    rows = []
    for name in ("mgx-64b", "mgx-512b"):
        run = comparison.runs[name]
        rows.append([name, run.metadata_bytes / 1e6,
                     comparison.traffic(name)])
    seda = comparison.runs["seda"]
    rows.append(["seda (optBlk)", seda.metadata_bytes / 1e6,
                 comparison.traffic("seda")])
    print(format_table(["scheme", "metadata MB", "norm traffic"], rows))

    # The per-layer tiling detail below needs the raw accelerator run,
    # which records deliberately drop — regenerate stage 1 locally.
    model_run = Pipeline(npu_config(npu_name)).simulate_model(
        get_workload(workload))

    print("\nper-layer optBlk choices (first 8 layers):")
    opt_rows = []
    for result in model_run.layers[:8]:
        choice = search_optblk(result.layer, result.plan)
        overlap = analyze_overlap(result.layer, result.plan)
        opt_rows.append([
            result.layer.name, choice.block_bytes, choice.blocks_per_layer,
            choice.straddle_blocks, f"{overlap.overlap_fraction * 100:.1f}%",
        ])
    print(format_table(
        ["layer", "optBlk B", "blocks", "straddles", "ifmap overlap"],
        opt_rows))

    mismatches = 0
    plans = [r.plan for r in model_run.layers]
    layers = [r.layer for r in model_run.layers]
    for i in range(len(layers) - 1):
        producer = pattern_of(plans[i], "ofmap")
        consumer = pattern_of(plans[i + 1], "ifmap")
        if not patterns_compatible(producer, consumer):
            mismatches += 1
    print(f"\ninter-layer tiling-pattern mismatches: {mismatches} of "
          f"{len(layers) - 1} layer boundaries "
          f"(each would break a naive producer-order layer MAC)")


def sweep_crypto(workload: str, npu_name: str) -> None:
    print(f"\n### Crypto-engine sizing ({workload}, {npu_name})")
    npu = npu_config(npu_name)
    run = Pipeline(npu).simulate_model(get_workload(workload))
    peak = run.peak_demand_bytes_per_cycle
    lanes = max(1, ceil_div(int(round(peak)), 16))
    taes = TAES_28NM.cost(lanes)
    baes = BAES_28NM.cost(lanes)
    print(format_table(
        ["metric", "value"],
        [
            ["peak DRAM demand (B/cycle)", f"{peak:.1f}"],
            ["engines/lanes to match", lanes],
            ["T-AES area (um^2)", f"{taes.area_um2:.0f}"],
            ["B-AES area (um^2)", f"{baes.area_um2:.0f}"],
            ["area saved by B-AES", f"{taes.area_um2 - baes.area_um2:.0f}"],
            ["T-AES power (uW)", f"{taes.power_uw:.0f}"],
            ["B-AES power (uW)", f"{baes.power_uw:.0f}"],
        ]))


if __name__ == "__main__":
    workload = sys.argv[1] if len(sys.argv) > 1 else "yolo_tiny"
    sweep_sram(workload)
    sweep_granularity(workload, "edge")
    sweep_crypto(workload, "server")
