#!/usr/bin/env python
"""Quickstart: compare memory-protection schemes on one workload.

Runs ResNet-18 on the server NPU (Table II) under the unprotected
baseline and all five protection schemes, then prints the normalized
memory traffic (Fig. 5 metric) and performance (Fig. 6 metric).

Usage::

    python examples/quickstart.py [workload] [server|edge]
"""

import sys

from repro import Pipeline, compare_schemes, get_workload, npu_config
from repro.protection import SCHEME_NAMES
from repro.utils.report import bar_chart, format_table, percent


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "resnet18"
    npu_name = sys.argv[2] if len(sys.argv) > 2 else "server"

    npu = npu_config(npu_name)
    topology = get_workload(workload)
    print(f"workload: {topology.name}  ({len(topology)} layers, "
          f"{topology.total_macs / 1e9:.2f} GMACs, "
          f"{topology.total_weight_bytes / 1e6:.1f} MB weights)")
    print(f"NPU: {npu.name}  ({npu.pe_rows}x{npu.pe_cols} PEs, "
          f"{npu.bandwidth_gbps:g} GB/s, {npu.freq_ghz:g} GHz)")

    pipeline = Pipeline(npu)
    result = compare_schemes(pipeline, topology, SCHEME_NAMES)

    rows = []
    for scheme in SCHEME_NAMES:
        run = result.runs[scheme]
        rows.append([
            scheme,
            result.traffic(scheme),
            percent(result.traffic(scheme)),
            result.performance(scheme),
            f"{result.slowdown_pct(scheme):.2f}%",
            f"{run.metadata_bytes / 1e6:.2f}",
        ])
    print()
    print(format_table(
        ["scheme", "norm traffic", "traffic ovh", "norm perf",
         "slowdown", "metadata MB"],
        rows))

    print("\nnormalized memory traffic (| marks the unprotected baseline):")
    print(bar_chart({s: result.traffic(s) for s in SCHEME_NAMES},
                    baseline=1.0))

    print("\nnormalized performance (1.0 = no slowdown):")
    print(bar_chart({s: result.performance(s) for s in SCHEME_NAMES},
                    baseline=1.0))

    seda = result.runs["seda"]
    print(f"\nSeDA bottom line: {seda.total_time_ms:.3f} ms vs baseline "
          f"{result.baseline.total_time_ms:.3f} ms "
          f"({result.slowdown_pct('seda'):.2f}% slowdown, "
          f"{result.traffic_overhead_pct('seda'):.2f}% extra traffic)")


if __name__ == "__main__":
    main()
