#!/usr/bin/env python
"""Defining and evaluating a custom workload.

Builds a user-defined network with the parametric builders, batches it,
round-trips it through the SCALE-Sim-style topology CSV format, and runs
the full protection comparison on the edge NPU — the workflow a user
with their own model would follow.
"""

from repro import EDGE_NPU, Pipeline
from repro.core.metrics import compare_schemes
from repro.models.builder import mlp, transformer_encoder
from repro.models.topology import Topology
from repro.models.transforms import describe, with_batch
from repro.protection import SCHEME_NAMES
from repro.utils.report import format_table


def main() -> None:
    # A small transformer a user might deploy on an edge device.
    custom = transformer_encoder("edge_former", num_layers=2, seq=128,
                                 d_model=256, d_ff=1024)
    print(describe(custom))

    # Batch the recommender-style tower that accompanies it.
    ranker = with_batch(mlp("ranker", batch=1, dims=[256, 128, 64, 1]),
                        batch=512)
    print()
    print(describe(ranker))

    # Round-trip through the SCALE-Sim-style CSV format.
    csv_text = custom.to_csv()
    reloaded = Topology.from_csv("edge_former", csv_text)
    assert reloaded.total_macs == custom.total_macs
    print(f"\nCSV round-trip ok ({len(csv_text.splitlines()) - 1} layer rows)")

    pipeline = Pipeline(EDGE_NPU)
    for topology in (custom, ranker):
        result = compare_schemes(pipeline, topology, SCHEME_NAMES)
        rows = [
            [scheme, result.traffic(scheme),
             f"{result.slowdown_pct(scheme):.2f}%"]
            for scheme in SCHEME_NAMES
        ]
        print(f"\n{topology.name} on {EDGE_NPU.name} NPU:")
        print(format_table(["scheme", "norm traffic", "slowdown"], rows))


if __name__ == "__main__":
    main()
