#!/usr/bin/env python
"""Functional secure inference: a real (tiny) CNN whose every tensor
lives encrypted-and-MACed in untrusted memory.

This exercises the *functional* security stack end to end, independent of
the timing models: weights and activations are written to
:class:`repro.integrity.verifier.SecureMemory` block by block, fetched
back (decrypt + verify) for each layer's compute, and the final logits
are bit-identical to an unprotected numpy run. A tampered weight block is
then shown to abort inference.

The network is a 2-layer CNN on an 8x8 input — small enough that the
pure-Python AES underneath stays fast.
"""

import numpy as np

from repro.integrity.verifier import IntegrityError, SecureMemory

BLOCK = 64
ENC_KEY = b"\x21" * 16
MAC_KEY = b"\x43" * 16
RNG = np.random.default_rng(7)


def to_blocks(array: np.ndarray):
    """Serialize an int8 tensor into 64-byte blocks (zero padded)."""
    raw = array.astype(np.int8).tobytes()
    pad = (-len(raw)) % BLOCK
    raw += bytes(pad)
    return [raw[i:i + BLOCK] for i in range(0, len(raw), BLOCK)], len(raw) - pad


def store(memory: SecureMemory, base: int, array: np.ndarray,
          layer_id: int) -> int:
    blocks, _ = to_blocks(array)
    for i, block in enumerate(blocks):
        memory.write(base + BLOCK * i, block, layer_id=layer_id, blk_idx=i)
    return len(blocks)


def load(memory: SecureMemory, base: int, shape, layer_id: int) -> np.ndarray:
    count = int(np.prod(shape))
    nblocks = -(-count // BLOCK)
    raw = b"".join(
        memory.read(base + BLOCK * i, layer_id=layer_id, blk_idx=i)
        for i in range(nblocks))
    return np.frombuffer(raw[:count], dtype=np.int8).reshape(shape).astype(np.int32)


def conv2d(image: np.ndarray, kernels: np.ndarray) -> np.ndarray:
    """Valid convolution, int32 accumulation, clipped back to int8 range."""
    out_c, _, kh, kw = kernels.shape
    in_c, ih, iw = image.shape
    oh, ow = ih - kh + 1, iw - kw + 1
    out = np.zeros((out_c, oh, ow), dtype=np.int32)
    for oc in range(out_c):
        for y in range(oh):
            for x in range(ow):
                patch = image[:, y:y + kh, x:x + kw]
                out[oc, y, x] = int((patch * kernels[oc]).sum())
    return np.clip(out >> 4, -128, 127)


def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0)


def run_inference(memory: SecureMemory, image: np.ndarray,
                  shapes: dict) -> np.ndarray:
    """Fetch weights/activations through the protection unit per layer."""
    store(memory, 0x10_0000, image, layer_id=0)

    x = load(memory, 0x10_0000, shapes["input"], layer_id=0)
    w1 = load(memory, 0x00_0000, shapes["conv1"], layer_id=1)
    a1 = relu(conv2d(x, w1))
    store(memory, 0x20_0000, a1, layer_id=1)

    a1_back = load(memory, 0x20_0000, a1.shape, layer_id=1)
    w2 = load(memory, 0x01_0000, shapes["fc"], layer_id=2)
    logits = a1_back.reshape(-1) @ w2
    return logits


def main() -> None:
    image = RNG.integers(-8, 8, (1, 8, 8)).astype(np.int8)
    conv1 = RNG.integers(-4, 4, (4, 1, 3, 3)).astype(np.int8)
    fc = RNG.integers(-4, 4, (4 * 6 * 6, 10)).astype(np.int8)
    shapes = {"input": image.shape, "conv1": conv1.shape, "fc": fc.shape}

    # Reference: plain numpy, no protection.
    reference = relu(conv2d(image.astype(np.int32),
                            conv1.astype(np.int32))).reshape(-1) @ fc

    # Secure run: everything round-trips through encrypted DRAM.
    memory = SecureMemory(ENC_KEY, MAC_KEY, block_bytes=BLOCK)
    store(memory, 0x00_0000, conv1, layer_id=1)
    store(memory, 0x01_0000, fc, layer_id=2)
    logits = run_inference(memory, image, shapes)

    print("reference logits:", reference.tolist())
    print("secure    logits:", logits.tolist())
    match = np.array_equal(reference, logits)
    print("bit-identical   :", match)
    assert match

    # Ciphertext in "DRAM" must look nothing like the weights.
    first_block = memory.dram[0x00_0000].ciphertext
    plain_block = conv1.tobytes()[:BLOCK]
    overlap = sum(a == b for a, b in zip(first_block, plain_block))
    print(f"ciphertext/plaintext byte agreement: {overlap}/{BLOCK} "
          f"(chance level)")

    # Tamper with one weight block and watch inference abort.
    stored = memory.dram[0x01_0000]
    stored.ciphertext = bytes([stored.ciphertext[0] ^ 1]) + stored.ciphertext[1:]
    try:
        run_inference(memory, image, shapes)
        print("tampered weights: inference ran (BUG)")
    except IntegrityError as exc:
        print(f"tampered weights: inference aborted ({exc})")


if __name__ == "__main__":
    main()
