#!/usr/bin/env python
"""Attack demonstrations: SECA and RePA against real ciphertext.

Reproduces both algorithms from the paper end to end:

1. **SECA** (Algorithm 1) against a shared-OTP block — full plaintext
   recovery — then against SeDA's B-AES — recovery fails.
2. **RePA** (Algorithm 2) against a ciphertext-only XOR-MAC layer — the
   shuffled layer passes verification — then against SeDA's
   location-bound MACs — verification fails.
3. The functional :class:`repro.integrity.verifier.SecureMemory` catching
   tampering and replay on its untrusted backing store.
"""

import copy

from repro.attacks.repa import run_repa
from repro.attacks.seca import run_seca
from repro.crypto.baes import BandwidthAwareAes
from repro.crypto.ctr import AesCtr
from repro.integrity.verifier import IntegrityError, SecureMemory

KEY = b"\xa5" * 16


def sparse_activation_block(nbytes: int = 512) -> bytes:
    """A realistic post-ReLU activation block: mostly zeros."""
    data = bytearray(nbytes)
    for i in range(3, nbytes, 53):
        data[i] = (i * 11) % 200 + 1
    return bytes(data)


def demo_seca() -> None:
    print("=" * 64)
    print("SECA — Single-Element Collision Attack (Algorithm 1)")
    print("=" * 64)
    plaintext = sparse_activation_block()

    shared = AesCtr(KEY).encrypt_shared_otp(plaintext, pa=0x4000, vn=1)
    result = run_seca(shared, plaintext)
    print(f"shared-OTP strawman : recovered "
          f"{result.recovered_fraction * 100:5.1f}% of the block "
          f"-> {'ATTACK SUCCEEDS' if result.succeeded else 'attack fails'}")
    assert result.succeeded

    baes = BandwidthAwareAes(KEY).encrypt(plaintext, pa=0x4000, vn=1)
    result = run_seca(baes, plaintext)
    print(f"SeDA B-AES defense  : recovered "
          f"{result.recovered_fraction * 100:5.1f}% of the block "
          f"-> {'attack succeeds' if result.succeeded else 'ATTACK DEFEATED'}")
    assert not result.succeeded


def demo_repa() -> None:
    print()
    print("=" * 64)
    print("RePA — Re-Permutation Attack (Algorithm 2)")
    print("=" * 64)
    blocks = [bytes([i + 1]) * 64 for i in range(32)]

    vulnerable = run_repa(KEY, blocks, location_bound=False)
    print(f"ciphertext-only MACs: shuffled {vulnerable.blocks_displaced} "
          f"blocks, verification "
          f"{'PASSED -> ATTACK SUCCEEDS' if vulnerable.verification_passed else 'failed'}")
    assert vulnerable.succeeded

    defended = run_repa(KEY, blocks, location_bound=True)
    print(f"location-bound MACs : shuffled {defended.blocks_displaced} "
          f"blocks, verification "
          f"{'passed' if defended.verification_passed else 'FAILED -> ATTACK DEFEATED'}")
    assert not defended.succeeded


def demo_secure_memory() -> None:
    print()
    print("=" * 64)
    print("SecureMemory — tamper and replay detection, end to end")
    print("=" * 64)
    memory = SecureMemory(enc_key=KEY, mac_key=b"\x5a" * 16)
    memory.write(0x1000, sparse_activation_block(64), layer_id=2, blk_idx=0)
    print("write + read back   :",
          "ok" if memory.read(0x1000, layer_id=2) is not None else "fail")

    # Bit-flip in untrusted DRAM.
    stored = memory.dram[0x1000]
    snapshot = copy.deepcopy(stored)
    stored.ciphertext = bytes([stored.ciphertext[0] ^ 0x80]) + \
        stored.ciphertext[1:]
    try:
        memory.read(0x1000, layer_id=2)
        print("bit-flip tampering  : UNDETECTED (bug!)")
    except IntegrityError as exc:
        print(f"bit-flip tampering  : detected ({exc})")

    # Replay of the stale-but-valid snapshot after an update.
    memory.dram[0x1000] = snapshot
    memory.write(0x1000, bytes(64), layer_id=2, blk_idx=0)
    memory.dram[0x1000] = snapshot
    try:
        memory.read(0x1000, layer_id=2)
        print("replay attack       : UNDETECTED (bug!)")
    except IntegrityError as exc:
        print(f"replay attack       : detected ({exc})")


if __name__ == "__main__":
    demo_seca()
    demo_repa()
    demo_secure_memory()
    print("\nall attack demonstrations behaved as the paper describes.")
