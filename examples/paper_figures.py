#!/usr/bin/env python
"""Regenerate every figure and table of the paper's evaluation as text.

This is the example-sized version of the ``benchmarks/`` harness: it runs
the full (NPU x workload x scheme) sweep through the
:mod:`repro.runner` evaluation service and prints Fig. 1(d), Fig. 4,
Fig. 5(a/b), Fig. 6(a/b) and Tables I-III in the paper's layout.

The first run takes a couple of minutes for the full sweep (pass
``--quick`` for a four-workload subset, ``--jobs N`` to shard across
processes); reruns are served from the on-disk result store.
"""

import sys

from repro import EDGE_NPU, SERVER_NPU
from repro.hwmodel.aes_cost import BAES_28NM, TAES_28NM, sweep_bandwidth
from repro.models.zoo import WORKLOAD_ABBREVIATIONS
from repro.protection import SCHEME_NAMES, make_scheme
from repro.runner import EvalService, ResultStore
from repro.utils.report import format_table

QUICK_SET = ["let", "mob", "rest", "yolo"]


def sweep(service, npu, abbrevs):
    results = service.sweep(
        npu, workloads=[WORKLOAD_ABBREVIATIONS[a] for a in abbrevs],
        scheme_names=SCHEME_NAMES)
    print(f"  swept {len(results)} workloads on {npu.name}", file=sys.stderr)
    return dict(zip(abbrevs, results.values()))


def figure_rows(results, metric):
    rows = []
    for scheme in SCHEME_NAMES:
        values = [metric(results[a], scheme) for a in results]
        rows.append([scheme] + values + [sum(values) / len(values)])
    return rows


def print_figure(title, results, metric):
    headers = ["scheme"] + list(results) + ["avg"]
    print(f"\n### {title}")
    print(format_table(headers, figure_rows(results, metric)))


def print_fig4():
    print("\n### Fig. 4 — 28 nm area/power vs bandwidth requirement")
    taes = sweep_bandwidth(TAES_28NM, 8)
    baes = sweep_bandwidth(BAES_28NM, 8)
    print(format_table(
        ["x", "T-AES um^2", "B-AES um^2", "T-AES uW", "B-AES uW"],
        [[t.bandwidth_multiple, t.area_um2, b.area_um2, t.power_uw, b.power_uw]
         for t, b in zip(taes, baes)],
        float_fmt="{:.0f}"))


def print_tables():
    print("\n### Table II — simulation configurations")
    server_row = SERVER_NPU.table_row()
    edge_row = EDGE_NPU.table_row()
    print(format_table(
        ["Metrics", "Server (TPU v1)", "Edge (Exynos 990)"],
        [[k, server_row[k], edge_row[k]] for k in server_row]))

    print("\n### Table III — protection scheme features")
    rows = []
    for name in SCHEME_NAMES:
        s = make_scheme(name).summary()
        rows.append([s.name, s.encryption_granularity,
                     s.integrity_granularity, s.offchip_metadata,
                     "yes" if s.tiling_aware else "no",
                     "yes" if s.encryption_scalable else "no"])
    print(format_table(
        ["Scheme", "Encryption", "Integrity", "Off-chip access",
         "Tiling", "Scalable"], rows))


def main() -> None:
    quick = "--quick" in sys.argv
    abbrevs = QUICK_SET if quick else list(WORKLOAD_ABBREVIATIONS)
    jobs = 1
    if "--jobs" in sys.argv:
        try:
            jobs = int(sys.argv[sys.argv.index("--jobs") + 1])
        except (IndexError, ValueError):
            sys.exit("usage: paper_figures.py [--quick] [--jobs N]")
    service = EvalService(
        store=ResultStore(), jobs=jobs,
        progress=lambda done, total, request: print(
            f"  [{done}/{total}] simulated {request.workload}",
            file=sys.stderr))

    print_tables()
    print_fig4()

    server = sweep(service, SERVER_NPU, abbrevs)
    print_figure("Fig. 1(d) — SGX-64B overhead % (server)",
                 server, lambda c, s: c.traffic_overhead_pct(s))
    print_figure("Fig. 5(a) — normalized memory traffic (server)",
                 server, lambda c, s: c.traffic(s))
    print_figure("Fig. 6(a) — normalized performance (server)",
                 server, lambda c, s: c.performance(s))

    edge = sweep(service, EDGE_NPU, abbrevs)
    print_figure("Fig. 5(b) — normalized memory traffic (edge)",
                 edge, lambda c, s: c.traffic(s))
    print_figure("Fig. 6(b) — normalized performance (edge)",
                 edge, lambda c, s: c.performance(s))


if __name__ == "__main__":
    main()
