"""Setup shim for environments without PEP 517 wheel support."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "SeDA: secure and efficient DNN accelerator simulation "
        "(DAC 2025 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
    entry_points={"console_scripts": ["repro=repro.cli:main"]},
)
