"""Table III: feature comparison of the memory-protection schemes."""

from benchmarks.conftest import dump_results
from repro.protection import SCHEME_NAMES, make_scheme


def test_table3_scheme_features(benchmark):
    summaries = benchmark(
        lambda: [make_scheme(name).summary() for name in SCHEME_NAMES])

    print("\n=== Table III — comparison of memory protection schemes ===")
    print(f"{'Scheme':10s} {'Enc. gran.':16s} {'Integ. gran.':14s} "
          f"{'Off-chip access':20s} {'Tiling':7s} {'Scalable':8s}")
    for s in summaries:
        print(f"{s.name:10s} {s.encryption_granularity:16s} "
              f"{s.integrity_granularity:14s} {s.offchip_metadata:20s} "
              f"{str(s.tiling_aware):7s} {str(s.encryption_scalable):8s}")

    dump_results("table3", {
        s.name: {
            "encryption_granularity": s.encryption_granularity,
            "integrity_granularity": s.integrity_granularity,
            "offchip_metadata": s.offchip_metadata,
            "tiling_aware": s.tiling_aware,
            "encryption_scalable": s.encryption_scalable,
        } for s in summaries
    })

    by_name = {s.name: s for s in summaries}
    # The paper's Table III rows.
    assert by_name["SGX-64B"].offchip_metadata == "MAC,VN,IT"
    assert by_name["SGX-512B"].offchip_metadata == "MAC,VN,IT"
    assert by_name["MGX-64B"].offchip_metadata == "MAC"
    assert by_name["MGX-512B"].offchip_metadata == "MAC"
    assert by_name["SeDA"].offchip_metadata == "minimal to no cost"
    assert by_name["SeDA"].encryption_granularity == "bandwidth-aware"
    assert by_name["SeDA"].integrity_granularity == "multi-level"
    only_seda = [s.name for s in summaries if s.tiling_aware]
    assert only_seda == ["SeDA"]
    only_scalable = [s.name for s in summaries if s.encryption_scalable]
    assert only_scalable == ["SeDA"]
