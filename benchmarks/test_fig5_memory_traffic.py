"""Fig. 5: normalized memory traffic, all schemes x all workloads.

Fig. 5(a) is the server NPU, Fig. 5(b) the edge NPU. Values are total
DRAM bytes normalized to the unprotected baseline (1.0).
"""

from benchmarks.conftest import (
    ABBREV_ORDER,
    dump_results,
    print_figure,
)
from repro import Pipeline, SERVER_NPU, get_workload
from repro.core.metrics import compare_schemes
from repro.protection import SCHEME_NAMES


def _check_paper_shape(rows):
    avg = {scheme: rows[scheme][-1] for scheme in SCHEME_NAMES}
    # Ordering of the evaluation: SGX-64B > MGX-64B > SGX-512B >
    # MGX-512B > SeDA ~= 1.0.
    assert avg["sgx-64b"] > avg["mgx-64b"] > avg["sgx-512b"] \
        > avg["mgx-512b"] > avg["seda"]
    # Magnitudes: SGX-64B ~ +30%, MGX-64B ~ +12.5%, SeDA near zero.
    assert 1.20 < avg["sgx-64b"] < 1.45
    assert 1.08 < avg["mgx-64b"] < 1.20
    assert avg["seda"] < 1.01
    return avg


def test_fig5a_server_traffic(benchmark, server_sweep):
    benchmark.pedantic(
        lambda: compare_schemes(Pipeline(SERVER_NPU), get_workload("yolo_tiny"),
                                SCHEME_NAMES),
        rounds=1, iterations=1)
    rows = print_figure("Fig. 5(a) — normalized memory traffic (server NPU)",
                        server_sweep, lambda c, s: c.traffic(s))
    avg = _check_paper_shape(rows)
    dump_results("fig5a", {"workloads": ABBREV_ORDER + ["avg"], **rows})
    print(f"averages: {avg}")


def test_fig5b_edge_traffic(benchmark, edge_sweep):
    benchmark.pedantic(
        lambda: len(edge_sweep), rounds=1, iterations=1)
    rows = print_figure("Fig. 5(b) — normalized memory traffic (edge NPU)",
                        edge_sweep, lambda c, s: c.traffic(s))
    avg = _check_paper_shape(rows)
    dump_results("fig5b", {"workloads": ABBREV_ORDER + ["avg"], **rows})
    print(f"averages: {avg}")
