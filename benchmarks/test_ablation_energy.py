"""Ablation (extension): energy overhead of each protection scheme.

Not a paper figure — the natural companion metric for the edge NPU. The
energy ordering mirrors Fig. 5/6 because DRAM traffic dominates, with
SeDA additionally saving AES energy (1 op per 64 B vs 4).
"""

from benchmarks.conftest import dump_results
from repro import EDGE_NPU, Pipeline, get_workload
from repro.hwmodel.energy import EnergyModel
from repro.protection import SCHEME_NAMES, make_scheme


def test_ablation_energy_overhead(benchmark):
    pipeline = Pipeline(EDGE_NPU)
    topo = get_workload("mobilenet")
    model = EnergyModel()

    def run_all():
        model_run = pipeline.simulate_model(topo)
        energies = {}
        for name in ["baseline"] + SCHEME_NAMES + ["securator"]:
            scheme = make_scheme(name)
            energies[name] = model.model_energy(scheme.protect_model(model_run))
        return energies

    energies = benchmark.pedantic(run_all, rounds=1, iterations=1)
    baseline = energies["baseline"]

    print("\n=== Energy overhead (mobilenet, edge NPU) ===")
    print(f"{'scheme':10s} {'total uJ':>10s} {'dram uJ':>10s} "
          f"{'aes uJ':>8s} {'hash uJ':>8s} {'overhead':>9s}")
    results = {}
    for name, e in energies.items():
        overhead = model.overhead_vs(e, baseline) * 100
        results[name] = {"total_uj": e.total_uj, "overhead_pct": overhead}
        print(f"{name:10s} {e.total_uj:10.1f} {e.dram_pj / 1e6:10.1f} "
              f"{e.aes_pj / 1e6:8.2f} {e.hash_pj / 1e6:8.2f} {overhead:8.2f}%")

    dump_results("ablation_energy", results)

    assert results["sgx-64b"]["overhead_pct"] > \
        results["mgx-64b"]["overhead_pct"] > \
        results["seda"]["overhead_pct"]
    assert results["seda"]["overhead_pct"] < 5.0
