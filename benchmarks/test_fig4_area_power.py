"""Fig. 4: area and power vs AES-engine bandwidth requirement (28 nm).

T-AES scales linearly with the bandwidth multiple; B-AES stays near-flat.
"""

from benchmarks.conftest import dump_results
from repro.hwmodel.aes_cost import BAES_28NM, TAES_28NM, sweep_bandwidth


def test_fig4_area_power_scaling(benchmark):
    def sweep():
        return (sweep_bandwidth(TAES_28NM, 8), sweep_bandwidth(BAES_28NM, 8))

    taes, baes = benchmark(sweep)

    print("\n=== Fig. 4 — area (um^2) and power (uW) vs bandwidth multiple ===")
    print(f"{'x':>2s} {'T-AES area':>12s} {'B-AES area':>12s} "
          f"{'T-AES power':>12s} {'B-AES power':>12s}")
    for t, b in zip(taes, baes):
        print(f"{t.bandwidth_multiple:2d} {t.area_um2:12.0f} {b.area_um2:12.0f} "
              f"{t.power_uw:12.0f} {b.power_uw:12.0f}")

    dump_results("fig4", {
        "bandwidth_multiple": [p.bandwidth_multiple for p in taes],
        "taes_area_um2": [p.area_um2 for p in taes],
        "baes_area_um2": [p.area_um2 for p in baes],
        "taes_power_uw": [p.power_uw for p in taes],
        "baes_power_uw": [p.power_uw for p in baes],
    })

    # Paper shape: linear vs near-flat, ~8x ratio at the right edge.
    assert taes[-1].area_um2 / taes[0].area_um2 == 8.0
    assert baes[-1].area_um2 / baes[0].area_um2 < 1.3
    assert taes[-1].area_um2 / baes[-1].area_um2 > 5.0
    assert taes[-1].power_uw / baes[-1].power_uw > 5.0
