"""Ablation: fixed weight-stationary dataflow vs per-layer selection.

SCALE-Sim (and this reproduction's default) runs one dataflow for the
whole model; this quantifies what per-layer WS/OS/IS selection would buy
on each workload — context for how sensitive the Fig. 6 baselines are to
the mapping assumption.
"""

from benchmarks.conftest import dump_results
from repro.accel.dataflow_select import fixed_vs_best_cycles
from repro.accel.systolic import Dataflow
from repro.core.config import EDGE_NPU
from repro.models.zoo import get_workload

WORKLOADS = ["alexnet", "mobilenet", "resnet18", "transformer_fwd", "dlrm"]


def test_ablation_dataflow_selection(benchmark):
    def sweep():
        out = {}
        for workload in WORKLOADS:
            topo = get_workload(workload)
            totals = fixed_vs_best_cycles(
                EDGE_NPU.pe_rows, EDGE_NPU.pe_cols, topo, fixed=Dataflow.WS)
            out[workload] = {
                "fixed_ws": totals["fixed"],
                "best": totals["best"],
                "speedup": totals["fixed"] / totals["best"],
            }
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\n=== Ablation — fixed WS vs per-layer dataflow (edge array) ===")
    print(f"{'workload':16s} {'WS cycles':>12s} {'best cycles':>12s} "
          f"{'speedup':>8s}")
    for workload, row in results.items():
        print(f"{workload:16s} {row['fixed_ws']:12d} {row['best']:12d} "
              f"{row['speedup']:8.3f}")

    dump_results("ablation_dataflow", results)

    for workload, row in results.items():
        assert row["best"] <= row["fixed_ws"], workload
        # Sanity: per-layer selection never wins by more than ~3x.
        assert row["speedup"] < 3.0, workload
