"""Table II: DNN simulation configurations."""

from benchmarks.conftest import dump_results
from repro.core.config import EDGE_NPU, SERVER_NPU


def test_table2_configurations(benchmark):
    rows = benchmark(lambda: (SERVER_NPU.table_row(), EDGE_NPU.table_row()))
    server, edge = rows

    print("\n=== Table II — DNN simulation configurations ===")
    print(f"{'Metrics':12s} {'Server (Google TPU v1)':30s} "
          f"{'Edge (Samsung Exynos 990)':30s}")
    for key in server:
        print(f"{key:12s} {server[key]:30s} {edge[key]:30s}")

    dump_results("table2", {"server": server, "edge": edge})

    assert server["PE"] == "256 x 256 in systolic array"
    assert edge["PE"] == "32 x 32 in systolic array"
    assert server["Bandwidth"] == "20 GB/s with 4 channels"
    assert edge["Bandwidth"] == "10 GB/s with 4 channels"
    assert server["Frequency"] == "1 GHz"
    assert edge["Frequency"] == "2.75 GHz"
    assert server["SRAM"] == "24 MB"
    assert edge["SRAM"] == "480 KB"
    assert server["Precision"] == edge["Precision"] == "1-B for per element"
