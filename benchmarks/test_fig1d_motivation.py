"""Fig. 1(d): memory-access overhead of a typical secure accelerator.

The motivation figure shows, per workload, the extra memory traffic and
execution time a conventional protection scheme (SGX-style, 64 B units)
costs on the server NPU — the 20-30% band that motivates SeDA.
"""

from benchmarks.conftest import ABBREV_ORDER, dump_results, print_figure
from repro import Pipeline, SERVER_NPU, get_workload
from repro.core.metrics import compare_schemes


def test_fig1d_memory_access_overhead(benchmark, server_sweep):
    def run_one():
        return compare_schemes(Pipeline(SERVER_NPU), get_workload("resnet18"),
                               ["sgx-64b"])

    benchmark.pedantic(run_one, rounds=1, iterations=1)

    traffic = print_figure(
        "Fig. 1(d) — traffic overhead % (SGX-64B, server NPU)",
        server_sweep,
        lambda c, s: c.traffic_overhead_pct(s),
        fmt="{:6.2f}",
    )["sgx-64b"]
    exec_time = print_figure(
        "Fig. 1(d) — exec-time overhead % (SGX-64B, server NPU)",
        server_sweep,
        lambda c, s: c.slowdown_pct(s),
        fmt="{:6.2f}",
    )["sgx-64b"]

    dump_results("fig1d", {
        "workloads": ABBREV_ORDER + ["avg"],
        "traffic_overhead_pct": traffic,
        "exec_time_overhead_pct": exec_time,
    })

    # Paper: both series sit in the ~20-30% band on average.
    assert 15.0 < traffic[-1] < 45.0
    assert 15.0 < exec_time[-1] < 45.0
