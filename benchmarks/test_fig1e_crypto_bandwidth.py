"""Fig. 1(e) / Fig. 2(c): serial vs parallel encryption bandwidth.

A single serial AES engine cannot feed the accelerator; stacking engines
(T-AES) or fanning out OTPs (B-AES) does. This bench regenerates the
sustained-bandwidth series and times the functional engines on real data.
"""

from benchmarks.conftest import dump_results
from repro.core.config import EDGE_NPU, SERVER_NPU
from repro.crypto.baes import BandwidthAwareAes
from repro.crypto.ctr import AesCtr
from repro.crypto.engine import (
    bandwidth_aware_engine,
    parallel_engines,
    serial_engine,
)


def test_fig1e_engine_bandwidth(benchmark):
    data = bytes(range(256)) * 2  # one 512 B protection block

    def encrypt_block():
        return BandwidthAwareAes(b"k" * 16).encrypt(data, pa=0x1000, vn=1)

    benchmark(encrypt_block)

    series = {}
    for npu in (SERVER_NPU, EDGE_NPU):
        demand = npu.dram_bytes_per_cycle * npu.freq_ghz  # GB/s
        serial = serial_engine().bandwidth_gbps(npu.freq_ghz)
        row = {
            "demand_gbps": demand,
            "serial_gbps": serial,
            "parallel_gbps": [
                parallel_engines(n).bandwidth_gbps(npu.freq_ghz)
                for n in range(1, 9)
            ],
            "baes_gbps": [
                bandwidth_aware_engine(n).bandwidth_gbps(npu.freq_ghz)
                for n in range(1, 9)
            ],
        }
        series[npu.name] = row
        print(f"\n=== Fig. 1(e) — {npu.name}: demand {demand:.1f} GB/s, "
              f"serial engine {serial:.1f} GB/s ===")
        print("engines/lanes:", list(range(1, 9)))
        print("T-AES GB/s   :", [round(v, 1) for v in row["parallel_gbps"]])
        print("B-AES GB/s   :", [round(v, 1) for v in row["baes_gbps"]])

    dump_results("fig1e", series)

    # Serial encryption misses the server demand; both scaled forms meet it.
    server = series["server"]
    assert server["serial_gbps"] < server["demand_gbps"]
    assert server["parallel_gbps"][3] >= server["demand_gbps"]
    assert server["baes_gbps"][3] >= server["demand_gbps"]
    # B-AES matches T-AES bandwidth at every point.
    assert server["baes_gbps"] == server["parallel_gbps"]


def test_functional_equivalence_throughput(benchmark):
    """Functional sanity alongside the model: B-AES ciphertext decrypts,
    and one B-AES block costs far fewer AES invocations than CTR."""
    engine = BandwidthAwareAes(b"k" * 16)
    ctr = AesCtr(b"k" * 16)
    data = bytes(512)

    def both():
        ct = engine.encrypt(data, pa=0, vn=1)
        assert engine.decrypt(ct, pa=0, vn=1) == data
        return ct

    benchmark(both)
    assert engine.aes_invocations_per_block(512) < 512 // 16
    assert ctr.encrypt(data, 0, 1) != engine.encrypt(data, 0, 1)
