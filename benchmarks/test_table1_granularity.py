"""Table I: multi-level integrity-verification granularity comparison.

Quantifies, on a real workload, the qualitative cells of Table I:
flexibility (redundant verifications avoided), off-chip access cost,
and storage location/size for optBlk / layer / model MACs.
"""

from benchmarks.conftest import dump_results
from repro import Pipeline, SERVER_NPU, get_workload
from repro.crypto.mac import MAC_BYTES
from repro.protection.seda import SedaScheme


def test_table1_granularity_comparison(benchmark):
    pipeline = Pipeline(SERVER_NPU)
    topo = get_workload("resnet18")

    def run():
        model_run = pipeline.simulate_model(topo)
        scheme = SedaScheme()
        scheme.begin_model(model_run)
        return model_run, scheme

    model_run, scheme = benchmark(run)

    # optBlk level: per-layer block counts and straddle-free flexibility.
    optblk_macs = 0
    straddle_free = 0
    for result in model_run.layers:
        choice = scheme.optblk_choice(result.layer_id)
        optblk_macs += choice.blocks_per_layer
        straddle_free += choice.is_straddle_free

    layers = len(model_run.layers)
    layer_mac_bytes = layers * MAC_BYTES
    model_mac_bytes = MAC_BYTES
    optblk_store_bytes = optblk_macs * MAC_BYTES

    offchip = SedaScheme(layer_macs_offchip=True)
    offchip_traffic = sum(
        p.metadata_bytes for p in offchip.protect_model(model_run))
    onchip = SedaScheme(layer_macs_offchip=False)
    onchip_traffic = sum(
        p.metadata_bytes for p in onchip.protect_model(model_run))

    print("\n=== Table I — granularity comparison (resnet18, server NPU) ===")
    print(f"{'granularity':10s} {'count':>8s} {'storage B':>10s} "
          f"{'location':>9s} {'offchip traffic B':>18s}")
    print(f"{'optBlk':10s} {optblk_macs:8d} {optblk_store_bytes:10d} "
          f"{'off-chip':>9s} {'(folded, 0 stored)':>18s}")
    print(f"{'layer':10s} {layers:8d} {layer_mac_bytes:10d} "
          f"{'either':>9s} {offchip_traffic:18d}")
    print(f"{'model':10s} {1:8d} {model_mac_bytes:10d} "
          f"{'on-chip':>9s} {0:18d}")

    dump_results("table1", {
        "optblk_macs": optblk_macs,
        "optblk_straddle_free_layers": straddle_free,
        "layer_macs": layers,
        "layer_mac_bytes": layer_mac_bytes,
        "model_mac_bytes": model_mac_bytes,
        "offchip_layer_mac_traffic": offchip_traffic,
        "onchip_layer_mac_traffic": onchip_traffic,
    })

    # Table I's qualitative claims, quantified:
    # - layer MACs are tiny next to the per-64B MAC table an SGX/MGX
    #   store needs for the same data footprint;
    per_block_table = model_run.dram_bytes // 64 * MAC_BYTES
    assert layer_mac_bytes < per_block_table / 1000
    # - and no larger than the optBlk MAC set they fold.
    assert layer_mac_bytes <= optblk_store_bytes
    # - on-chip layer MACs eliminate off-chip access entirely;
    assert onchip_traffic == 0
    # - even off-chip layer MACs cost only 2 blocks per layer;
    assert offchip_traffic == 2 * 64 * layers
    # - the model MAC is a single value.
    assert model_mac_bytes == MAC_BYTES
    # - optBlk flexibility: the search eliminates straddles everywhere.
    assert straddle_free == layers
