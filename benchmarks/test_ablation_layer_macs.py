"""Ablation: layer MACs on-chip vs off-chip.

The paper stores SeDA's layer MACs off-chip "to ensure fairness" in the
evaluation, noting that pinning them in SRAM removes the residual
traffic entirely. This bench quantifies both settings plus the SRAM cost
of the on-chip variant.
"""

from benchmarks.conftest import dump_results
from repro import Pipeline, SERVER_NPU, get_workload
from repro.protection.seda import SedaScheme


def test_ablation_layer_mac_storage(benchmark):
    pipeline = Pipeline(SERVER_NPU)
    topo = get_workload("googlenet")

    def run_both():
        model_run = pipeline.simulate_model(topo)
        offchip = pipeline.run(topo, SedaScheme(layer_macs_offchip=True),
                               model_run=model_run)
        onchip = pipeline.run(topo, SedaScheme(layer_macs_offchip=False),
                              model_run=model_run)
        baseline_bytes = sum(
            r.trace.total_bytes for r in model_run.layers)
        return offchip, onchip, baseline_bytes

    offchip, onchip, baseline_bytes = benchmark.pedantic(
        run_both, rounds=1, iterations=1)

    sram_cost = SedaScheme().onchip_mac_bytes(num_layers=len(topo))
    print("\n=== Ablation — layer MAC storage (googlenet, server NPU) ===")
    print(f"off-chip: metadata {offchip.metadata_bytes} B "
          f"({offchip.metadata_bytes / baseline_bytes * 100:.4f}% of data)")
    print(f"on-chip : metadata {onchip.metadata_bytes} B, "
          f"SRAM cost {sram_cost} B")

    dump_results("ablation_layer_macs", {
        "offchip_metadata_bytes": offchip.metadata_bytes,
        "onchip_metadata_bytes": onchip.metadata_bytes,
        "onchip_sram_bytes": sram_cost,
        "baseline_bytes": baseline_bytes,
    })

    # Off-chip: exactly 2 blocks per layer; on-chip: zero traffic.
    assert offchip.metadata_bytes == 2 * 64 * len(topo)
    assert onchip.metadata_bytes == 0
    # Either way the overhead is far below every competing scheme.
    assert offchip.metadata_bytes / baseline_bytes < 0.01
    # The SRAM cost of going on-chip is a few hundred bytes.
    assert sram_cost < 1024
