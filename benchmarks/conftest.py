"""Shared benchmark fixtures.

The expensive part of every figure is the (NPU x workload x scheme)
sweep; it runs through the :mod:`repro.runner` evaluation service, so
it is computed once per pytest session (in-memory memo), shared across
benchmark files, persisted to the on-disk result store (reruns are
served from cache), and sharded across worker processes (CPU count
capped at 8; override with ``REPRO_JOBS``). Individual benchmarks then time one
representative pipeline run (so pytest-benchmark reports a meaningful
number) and print the full paper-style table from the cached sweep.
"""

import json
import os
from typing import Dict

import pytest

from repro import obs
from repro.core.metrics import ComparisonResult
from repro.models.zoo import WORKLOADS, WORKLOAD_ABBREVIATIONS
from repro.protection import SCHEME_NAMES
from repro.runner import EvalService, ResultStore, default_jobs

#: Paper x-axis order (abbreviations), matching Figs. 1(d), 5 and 6 —
#: the 13 Section IV-A benchmarks only (the transformer scenarios have
#: their own grid in test_transformer_overheads.py).
ABBREV_ORDER = [a for a, name in WORKLOAD_ABBREVIATIONS.items()
                if name in WORKLOADS]

#: Store lives next to the dumped figure JSON unless REPRO_CACHE_DIR says
#: otherwise, so benchmark artifacts stay inside the repo tree.
_STORE_DIR = os.environ.get(
    "REPRO_CACHE_DIR",
    os.path.join(os.path.dirname(__file__), "results", "cache"))

_SERVICE = EvalService(store=ResultStore(_STORE_DIR),
                       jobs=int(os.environ.get("REPRO_JOBS", "0"))
                       or default_jobs())

# $REPRO_TRACE=<path> profiles the whole benchmark session (trace +
# metrics summary written at interpreter exit) — no code changes needed.
obs.init_from_env()


def _sweep(npu_name: str) -> Dict[str, ComparisonResult]:
    return _SERVICE.sweep(npu_name, scheme_names=SCHEME_NAMES)


@pytest.fixture(scope="session")
def server_sweep():
    return _sweep("server")


@pytest.fixture(scope="session")
def edge_sweep():
    return _sweep("edge")


def workload_row(sweep, metric):
    """Per-workload series in paper order plus the arithmetic mean.

    ``metric`` is a callable (comparison, scheme) -> float.
    """
    def series(scheme):
        values = [metric(sweep[WORKLOAD_ABBREVIATIONS[a]], scheme)
                  for a in ABBREV_ORDER]
        return values + [sum(values) / len(values)]
    return {scheme: series(scheme) for scheme in SCHEME_NAMES}


def print_figure(title, sweep, metric, fmt="{:6.3f}"):
    """Render one figure's data as the paper's rows (workloads + avg)."""
    header = " ".join(f"{a:>7s}" for a in ABBREV_ORDER + ["avg"])
    print(f"\n=== {title} ===")
    print(f"{'scheme':10s} {header}")
    rows = workload_row(sweep, metric)
    for scheme, values in rows.items():
        cells = " ".join(fmt.format(v).rjust(7) for v in values)
        print(f"{scheme:10s} {cells}")
    return rows


def dump_results(name, payload):
    """Persist a figure's series for EXPERIMENTS.md bookkeeping."""
    out_dir = os.path.join(os.path.dirname(__file__), "results")
    os.makedirs(out_dir, exist_ok=True)
    with open(os.path.join(out_dir, f"{name}.json"), "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
