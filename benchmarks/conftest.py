"""Shared benchmark fixtures.

The expensive part of every figure is the (NPU x workload x scheme)
sweep; it is computed once per pytest session and shared across benchmark
files. Individual benchmarks then time one representative pipeline run
(so pytest-benchmark reports a meaningful number) and print the full
paper-style table from the cached sweep.
"""

import json
import os
from typing import Dict, Tuple

import pytest

from repro import EDGE_NPU, Pipeline, SERVER_NPU, get_workload
from repro.core.metrics import ComparisonResult, compare_schemes
from repro.models.zoo import WORKLOAD_ABBREVIATIONS, WORKLOADS
from repro.protection import SCHEME_NAMES

#: Paper x-axis order (abbreviations), matching Figs. 1(d), 5 and 6.
ABBREV_ORDER = list(WORKLOAD_ABBREVIATIONS)

_SWEEP_CACHE: Dict[Tuple[str, str], ComparisonResult] = {}


def _sweep(npu_name: str) -> Dict[str, ComparisonResult]:
    npu = SERVER_NPU if npu_name == "server" else EDGE_NPU
    pipeline = Pipeline(npu)
    out = {}
    for workload in WORKLOADS:
        key = (npu_name, workload)
        if key not in _SWEEP_CACHE:
            _SWEEP_CACHE[key] = compare_schemes(
                pipeline, get_workload(workload), SCHEME_NAMES)
        out[workload] = _SWEEP_CACHE[key]
    return out


@pytest.fixture(scope="session")
def server_sweep():
    return _sweep("server")


@pytest.fixture(scope="session")
def edge_sweep():
    return _sweep("edge")


def workload_row(sweep, metric):
    """Per-workload series in paper order plus the arithmetic mean.

    ``metric`` is a callable (comparison, scheme) -> float.
    """
    def series(scheme):
        values = [metric(sweep[WORKLOAD_ABBREVIATIONS[a]], scheme)
                  for a in ABBREV_ORDER]
        return values + [sum(values) / len(values)]
    return {scheme: series(scheme) for scheme in SCHEME_NAMES}


def print_figure(title, sweep, metric, fmt="{:6.3f}"):
    """Render one figure's data as the paper's rows (workloads + avg)."""
    header = " ".join(f"{a:>7s}" for a in ABBREV_ORDER + ["avg"])
    print(f"\n=== {title} ===")
    print(f"{'scheme':10s} {header}")
    rows = workload_row(sweep, metric)
    for scheme, values in rows.items():
        cells = " ".join(fmt.format(v).rjust(7) for v in values)
        print(f"{scheme:10s} {cells}")
    return rows


def dump_results(name, payload):
    """Persist a figure's series for EXPERIMENTS.md bookkeeping."""
    out_dir = os.path.join(os.path.dirname(__file__), "results")
    os.makedirs(out_dir, exist_ok=True)
    with open(os.path.join(out_dir, f"{name}.json"), "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
