"""Ablation: crypto-engine organization under SeDA's traffic.

Shows why the bandwidth-aware mechanism matters: with a single *serial*
engine the OTP stream becomes the layer bottleneck and inference slows
dramatically; one pipelined engine with B-AES fan-out restores baseline
performance at a fraction of T-AES hardware cost.
"""

from benchmarks.conftest import dump_results
from repro import Pipeline, SERVER_NPU, get_workload
from repro.crypto.engine import serial_engine
from repro.hwmodel.aes_cost import BAES_28NM, TAES_28NM
from repro.protection import make_scheme
from repro.protection.seda import SedaScheme


class SerialEngineSeda(SedaScheme):
    """SeDA's integrity scheme forced onto one non-pipelined AES engine."""

    def __init__(self):
        super().__init__()
        self.name = "seda-serial"

    def crypto_engine(self):
        return serial_engine()


def test_ablation_engine_organizations(benchmark):
    pipeline = Pipeline(SERVER_NPU)
    topo = get_workload("alexnet")

    def run_all():
        model_run = pipeline.simulate_model(topo)
        baseline = pipeline.run(topo, make_scheme("baseline"),
                                model_run=model_run)
        serial = pipeline.run(topo, SerialEngineSeda(), model_run=model_run)
        baes_scheme = SedaScheme()
        baes = pipeline.run(topo, baes_scheme, model_run=model_run)
        baes_scheme.begin_model(model_run)
        lanes = baes_scheme.crypto_engine().xor_lanes
        return baseline, serial, baes, lanes

    baseline, serial, baes, lanes = benchmark.pedantic(
        run_all, rounds=1, iterations=1)

    serial_slowdown = serial.total_cycles / baseline.total_cycles
    baes_slowdown = baes.total_cycles / baseline.total_cycles
    taes_cost = TAES_28NM.cost(lanes)
    baes_cost = BAES_28NM.cost(lanes)

    print("\n=== Ablation — crypto engine organization (alexnet, server) ===")
    print(f"serial engine : {serial_slowdown:.2f}x baseline time "
          f"(crypto-bound)")
    print(f"B-AES x{lanes:2d}     : {baes_slowdown:.4f}x baseline time")
    print(f"hardware at {lanes} lanes: T-AES {taes_cost.area_um2:.0f} um^2 "
          f"vs B-AES {baes_cost.area_um2:.0f} um^2 "
          f"({taes_cost.area_um2 / baes_cost.area_um2:.1f}x saving)")

    dump_results("ablation_crypto_engine", {
        "serial_slowdown": serial_slowdown,
        "baes_slowdown": baes_slowdown,
        "lanes": lanes,
        "taes_area_um2": taes_cost.area_um2,
        "baes_area_um2": baes_cost.area_um2,
    })

    # Fig. 1(e)'s point, end to end: serial encryption cripples the
    # accelerator; B-AES restores it with one engine.
    assert serial_slowdown > 2.0
    assert baes_slowdown < 1.01
    assert taes_cost.area_um2 > 3 * baes_cost.area_um2


def test_ablation_securator_redundant_work(benchmark):
    """Hash-engine work: Securator's fixed 32 B blocks + overlap
    re-hashing vs SeDA's tiling-aligned optBlk."""
    from repro.protection.securator import SecuratorScheme
    from repro import EDGE_NPU

    pipeline = Pipeline(EDGE_NPU)
    topo = get_workload("yolo_tiny")

    def run_both():
        model_run = pipeline.simulate_model(topo)
        securator = sum(p.mac_computations for p in
                        SecuratorScheme().protect_model(model_run))
        seda = sum(p.mac_computations for p in
                   SedaScheme().protect_model(model_run))
        return securator, seda

    securator, seda = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print(f"\n=== Ablation — MAC computations (yolo_tiny, edge) ===")
    print(f"Securator (32 B + overlap re-hash): {securator}")
    print(f"SeDA (optBlk)                     : {seda}")
    print(f"reduction: {securator / seda:.1f}x")

    dump_results("ablation_securator", {
        "securator_macs": securator, "seda_macs": seda,
    })
    assert securator > 5 * seda
