"""Fig. 6: normalized performance, all schemes x all workloads.

Values are baseline execution time over scheme execution time (1.0 = no
slowdown), per workload plus the average, on both NPUs.
"""

from benchmarks.conftest import ABBREV_ORDER, dump_results, print_figure
from repro import EDGE_NPU, Pipeline, get_workload
from repro.core.metrics import compare_schemes
from repro.protection import SCHEME_NAMES


def _check_paper_shape(rows):
    avg = {scheme: rows[scheme][-1] for scheme in SCHEME_NAMES}
    # Performance ordering (paper Fig. 6): SGX-64B slowest, then MGX-64B,
    # SGX-512B, MGX-512B; SeDA within 1% of baseline.
    assert avg["sgx-64b"] < avg["mgx-64b"] < avg["sgx-512b"] \
        < avg["mgx-512b"] < avg["seda"]
    assert avg["seda"] > 0.99
    assert avg["sgx-64b"] < 0.90
    return avg


def test_fig6a_server_performance(benchmark, server_sweep):
    benchmark.pedantic(
        lambda: compare_schemes(Pipeline(EDGE_NPU), get_workload("dlrm"),
                                SCHEME_NAMES),
        rounds=1, iterations=1)
    rows = print_figure("Fig. 6(a) — normalized performance (server NPU)",
                        server_sweep, lambda c, s: c.performance(s))
    avg = _check_paper_shape(rows)
    dump_results("fig6a", {"workloads": ABBREV_ORDER + ["avg"], **rows})
    print(f"averages: {avg}")
    # Headline claim: SeDA cuts performance overhead by >12 points vs the
    # conventional 64 B schemes.
    seda_overhead = (1 / avg["seda"] - 1) * 100
    mgx_overhead = (1 / avg["mgx-64b"] - 1) * 100
    assert mgx_overhead - seda_overhead > 12.0


def test_fig6b_edge_performance(benchmark, edge_sweep):
    benchmark.pedantic(lambda: len(edge_sweep), rounds=1, iterations=1)
    rows = print_figure("Fig. 6(b) — normalized performance (edge NPU)",
                        edge_sweep, lambda c, s: c.performance(s))
    avg = _check_paper_shape(rows)
    dump_results("fig6b", {"workloads": ABBREV_ORDER + ["avg"], **rows})
    print(f"averages: {avg}")
    seda_overhead = (1 / avg["seda"] - 1) * 100
    mgx_overhead = (1 / avg["mgx-64b"] - 1) * 100
    assert mgx_overhead - seda_overhead > 8.0
