"""Ablation: SGX VN-cache capacity sensitivity.

The evaluated SGX configuration uses a 16 KB VN cache. This sweep shows
how its metadata traffic responds to cache capacity — and that even a
large cache cannot approach SeDA, because streaming DNN traffic has
little VN reuse to exploit.
"""

from benchmarks.conftest import dump_results
from repro import Pipeline, SERVER_NPU, get_workload
from repro.protection.seda import SedaScheme
from repro.protection.sgx import SgxScheme

CAPACITIES_KB = [4, 16, 64, 256]


def test_ablation_vn_cache_capacity(benchmark):
    pipeline = Pipeline(SERVER_NPU)
    topo = get_workload("resnet18")

    def sweep():
        model_run = pipeline.simulate_model(topo)
        baseline_bytes = sum(r.trace.total_bytes for r in model_run.layers)
        rows = {}
        for kb in CAPACITIES_KB:
            scheme = SgxScheme(unit_bytes=64, vn_cache_bytes=kb << 10)
            run = pipeline.run(topo, scheme, model_run=model_run)
            rows[kb] = run.metadata_bytes / baseline_bytes
        seda = pipeline.run(topo, SedaScheme(), model_run=model_run)
        return rows, seda.metadata_bytes / baseline_bytes

    rows, seda_ratio = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\n=== Ablation — SGX-64B VN cache capacity (resnet18, server) ===")
    for kb, ratio in rows.items():
        print(f"VN cache {kb:4d} KB: metadata/data = {ratio * 100:6.2f}%")
    print(f"SeDA (no VN traffic): {seda_ratio * 100:6.4f}%")

    dump_results("ablation_vn_cache", {
        "capacity_kb": list(rows), "metadata_ratio": list(rows.values()),
        "seda_ratio": seda_ratio,
    })

    ratios = list(rows.values())
    # Bigger caches monotonically (weakly) reduce metadata traffic...
    assert all(a >= b - 1e-9 for a, b in zip(ratios, ratios[1:]))
    # ...but even 256 KB stays an order of magnitude above SeDA.
    assert ratios[-1] > 10 * seda_ratio
