"""Perf-suite plumbing: collect measured medians and persist them.

Each perf case registers its median wall time under a stable key; at
session end the collected numbers are merged into
``benchmarks/results/BENCH_streams.json`` as the ``after`` section
(``before`` holds the pre-columnar baseline and is never overwritten).
Under ``--benchmark-disable`` the cases still run (CI correctness
coverage) but no stats exist, so the file is left untouched.
"""

import json
import os

import pytest

_RESULTS_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                             "results", "BENCH_streams.json")

_collected = {}


def record(name, benchmark):
    """Stash a benchmark's median seconds if stats were collected."""
    stats = getattr(benchmark, "stats", None)
    if stats is None:
        return
    _collected[name] = stats.stats.median


@pytest.fixture
def perf_record():
    return record


def pytest_sessionfinish(session, exitstatus):
    del session, exitstatus
    if not _collected:
        return
    path = os.path.abspath(_RESULTS_PATH)
    payload = {}
    if os.path.exists(path):
        with open(path) as handle:
            payload = json.load(handle)
    payload.setdefault("after", {}).update(
        {k: round(v, 6) for k, v in _collected.items()})
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
