"""Microbenchmarks for the columnar stream core's hot paths.

Covers the three pipeline stages the columnar refactor vectorized:
block expansion (``Trace.to_blocks``), protection-scheme traffic
generation (``protect_model``), and DRAM service
(``DramSim.simulate``/``simulate_fast``), plus the end-to-end sweep
cell. Medians land in ``benchmarks/results/BENCH_streams.json`` so the
perf trajectory is tracked PR over PR (see ``before`` vs ``after``).
"""

import pytest

from repro.accel.trace import BlockStream
from repro.core.config import npu_config
from repro.core.pipeline import Pipeline
from repro.dram.simulator import DramSim
from repro.dram.timing import SERVER_DRAM
from repro.models.zoo import WORKLOADS, get_workload
from repro.protection import SCHEME_NAMES, make_scheme
from repro.runner.service import EvalService
from repro.tiling import plan_tiling, search_optblk_model
from repro.tiling.optblk import DEFAULT_CANDIDATES


@pytest.fixture(scope="module")
def model_run():
    pipeline = Pipeline(npu_config("server"))
    return pipeline.simulate_model(get_workload("resnet18"))


@pytest.fixture(scope="module")
def block_stream(model_run):
    return model_run.trace.to_blocks().sorted_by_cycle()


def test_to_blocks(benchmark, model_run, perf_record):
    trace = model_run.trace

    def expand():
        # Bypass the memo: benchmark the expansion, not the cache.
        trace._memo.pop("blocks", None)
        return trace.to_blocks()

    stream = benchmark(expand)
    assert len(stream) > 100_000
    perf_record("to_blocks", benchmark)


def test_protect_model_sgx64(benchmark, model_run, perf_record):
    def protect():
        model_run.scheme_memo.clear()
        return make_scheme("sgx-64b").protect_model(model_run)

    protections = benchmark(protect)
    assert sum(p.metadata_bytes for p in protections) > 0
    perf_record("protect_model_sgx64", benchmark)


def test_protect_model_sgx64_gpt2_s512(benchmark, perf_record):
    """Sequence-scaling case: the metadata drives over a transformer
    decode step grow with ``seq x batch`` — exactly the axis production
    sweeps grow on."""
    pipeline = Pipeline(npu_config("server"))
    gpt2_run = pipeline.simulate_model(get_workload("gpt2@s512"))

    def protect():
        gpt2_run.scheme_memo.clear()
        return make_scheme("sgx-64b").protect_model(gpt2_run)

    protections = benchmark(protect)
    assert sum(p.metadata_bytes for p in protections) > 0
    perf_record("protect_model_sgx64_gpt2_s512", benchmark)


def test_trace_build_resnet18_b16(benchmark, perf_record):
    """Batched trace construction: the tile walks plus the columnar
    batch replication (arange-built columns, no per-tile Python loop)."""
    sim = Pipeline(npu_config("server")).accelerator
    topology = get_workload("resnet18@b16")

    run = benchmark(sim.run, topology)
    assert run.trace.total_bytes > 0
    perf_record("trace_build_resnet18_b16", benchmark)


def test_protect_model_seda(benchmark, model_run, perf_record):
    protections = benchmark(
        lambda: make_scheme("seda").protect_model(model_run))
    assert all(p.overfetch_blocks == 0 for p in protections)
    perf_record("protect_model_seda", benchmark)


def test_dram_simulate_reference(benchmark, block_stream, perf_record):
    sim = DramSim(SERVER_DRAM, freq_ghz=1.0)
    sub = BlockStream(block_stream.cycles[:200_000],
                      block_stream.addrs[:200_000],
                      block_stream.writes[:200_000],
                      block_stream.layer_ids[:200_000])
    result = benchmark(sim.simulate, sub)
    assert result.requests == len(sub)
    perf_record("dram_simulate_ref_200k", benchmark)


def test_dram_simulate_fast(benchmark, block_stream, perf_record):
    sim = DramSim(SERVER_DRAM, freq_ghz=1.0)
    result = benchmark(sim.simulate_fast, block_stream)
    assert result.requests == len(block_stream)
    perf_record("dram_simulate_fast", benchmark)


def test_e2e_scheme_sweep_cell(benchmark, perf_record):
    """The fig6 path: every scheme on one (NPU, workload) cell."""
    npu = npu_config("server")
    topology = get_workload("resnet18")

    def cell():
        pipeline = Pipeline(npu)
        run = pipeline.simulate_model(topology)
        return [pipeline.run(topology, make_scheme(name), model_run=run)
                for name in ["baseline"] + SCHEME_NAMES]

    runs = benchmark(cell)
    assert len(runs) == 1 + len(SCHEME_NAMES)
    perf_record("e2e_cell_server_resnet18", benchmark)


def test_protect_model_sgx64_gpt2_s4096(benchmark, perf_record):
    """Long-sequence stress: the s4096 decode step's metadata drives
    are the heaviest single protect_model call in the zoo."""
    pipeline = Pipeline(npu_config("server"))
    gpt2_run = pipeline.simulate_model(get_workload("gpt2@s4096"))

    def protect():
        gpt2_run.scheme_memo.clear()
        return make_scheme("sgx-64b").protect_model(gpt2_run)

    protections = benchmark(protect)
    assert sum(p.metadata_bytes for p in protections) > 0
    perf_record("protect_model_sgx64_gpt2_s4096", benchmark)


def test_e2e_cell_gpt2_s4096(benchmark, perf_record):
    """Full sweep cell on the long-sequence transformer — the case the
    chunked trace core keeps inside the pinned residency budget."""
    npu = npu_config("server")
    topology = get_workload("gpt2@s4096")

    def cell():
        pipeline = Pipeline(npu)
        run = pipeline.simulate_model(topology)
        return [pipeline.run(topology, make_scheme(name), model_run=run)
                for name in ["baseline"] + SCHEME_NAMES]

    runs = benchmark.pedantic(cell, rounds=3, iterations=1)
    assert len(runs) == 1 + len(SCHEME_NAMES)
    perf_record("e2e_cell_gpt2_s4096", benchmark)


def test_optblk_search_zoo(benchmark, perf_record):
    """Vectorized optBlk search across every zoo workload's layers in
    one numpy pass (the scalar per-layer loop is the 'before')."""
    budget = npu_config("server").sram_budget()
    pairs = [(layer, plan_tiling(layer, budget))
             for name in WORKLOADS
             for layer in get_workload(name).layers]

    choices = benchmark(search_optblk_model, pairs)
    assert len(choices) == len(pairs)
    assert all(c.block_bytes in DEFAULT_CANDIDATES for c in choices)
    perf_record("optblk_search_zoo", benchmark)


def test_sweep_zoo_b16_wall(benchmark, perf_record):
    """Wall clock of a full-zoo batch-16 sweep: one full simulation per
    workload (the b1 probes), every @b16 record served by the analytic
    derivation — the zoo-sweep-in-seconds hot path."""
    specs = [f"{name}@b16" for name in WORKLOADS]

    def sweep():
        service = EvalService()
        results = service.sweep("server", workloads=specs)
        assert service.derived_hits == len(specs)
        assert service.derived_fallbacks == 0
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert len(results) == len(specs)
    perf_record("sweep_zoo_b16_wall", benchmark)
