"""Microbenchmarks for the columnar stream core's hot paths.

Covers the three pipeline stages the columnar refactor vectorized:
block expansion (``Trace.to_blocks``), protection-scheme traffic
generation (``protect_model``), and DRAM service
(``DramSim.simulate``/``simulate_fast``), plus the end-to-end sweep
cell. Medians land in ``benchmarks/results/BENCH_streams.json`` so the
perf trajectory is tracked PR over PR (see ``before`` vs ``after``).
"""

import pytest

from repro.accel.trace import BlockStream
from repro.core.config import npu_config
from repro.core.pipeline import Pipeline
from repro.dram.simulator import DramSim
from repro.dram.timing import SERVER_DRAM
from repro.models.zoo import get_workload
from repro.protection import SCHEME_NAMES, make_scheme


@pytest.fixture(scope="module")
def model_run():
    pipeline = Pipeline(npu_config("server"))
    return pipeline.simulate_model(get_workload("resnet18"))


@pytest.fixture(scope="module")
def block_stream(model_run):
    return model_run.trace.to_blocks().sorted_by_cycle()


def test_to_blocks(benchmark, model_run, perf_record):
    trace = model_run.trace

    def expand():
        # Bypass the memo: benchmark the expansion, not the cache.
        trace._memo.pop("blocks", None)
        return trace.to_blocks()

    stream = benchmark(expand)
    assert len(stream) > 100_000
    perf_record("to_blocks", benchmark)


def test_protect_model_sgx64(benchmark, model_run, perf_record):
    def protect():
        model_run.scheme_memo.clear()
        return make_scheme("sgx-64b").protect_model(model_run)

    protections = benchmark(protect)
    assert sum(p.metadata_bytes for p in protections) > 0
    perf_record("protect_model_sgx64", benchmark)


def test_protect_model_sgx64_gpt2_s512(benchmark, perf_record):
    """Sequence-scaling case: the metadata drives over a transformer
    decode step grow with ``seq x batch`` — exactly the axis production
    sweeps grow on."""
    pipeline = Pipeline(npu_config("server"))
    gpt2_run = pipeline.simulate_model(get_workload("gpt2@s512"))

    def protect():
        gpt2_run.scheme_memo.clear()
        return make_scheme("sgx-64b").protect_model(gpt2_run)

    protections = benchmark(protect)
    assert sum(p.metadata_bytes for p in protections) > 0
    perf_record("protect_model_sgx64_gpt2_s512", benchmark)


def test_trace_build_resnet18_b16(benchmark, perf_record):
    """Batched trace construction: the tile walks plus the columnar
    batch replication (arange-built columns, no per-tile Python loop)."""
    sim = Pipeline(npu_config("server")).accelerator
    topology = get_workload("resnet18@b16")

    run = benchmark(sim.run, topology)
    assert run.trace.total_bytes > 0
    perf_record("trace_build_resnet18_b16", benchmark)


def test_protect_model_seda(benchmark, model_run, perf_record):
    protections = benchmark(
        lambda: make_scheme("seda").protect_model(model_run))
    assert all(p.overfetch_blocks == 0 for p in protections)
    perf_record("protect_model_seda", benchmark)


def test_dram_simulate_reference(benchmark, block_stream, perf_record):
    sim = DramSim(SERVER_DRAM, freq_ghz=1.0)
    sub = BlockStream(block_stream.cycles[:200_000],
                      block_stream.addrs[:200_000],
                      block_stream.writes[:200_000],
                      block_stream.layer_ids[:200_000])
    result = benchmark(sim.simulate, sub)
    assert result.requests == len(sub)
    perf_record("dram_simulate_ref_200k", benchmark)


def test_dram_simulate_fast(benchmark, block_stream, perf_record):
    sim = DramSim(SERVER_DRAM, freq_ghz=1.0)
    result = benchmark(sim.simulate_fast, block_stream)
    assert result.requests == len(block_stream)
    perf_record("dram_simulate_fast", benchmark)


def test_e2e_scheme_sweep_cell(benchmark, perf_record):
    """The fig6 path: every scheme on one (NPU, workload) cell."""
    npu = npu_config("server")
    topology = get_workload("resnet18")

    def cell():
        pipeline = Pipeline(npu)
        run = pipeline.simulate_model(topology)
        return [pipeline.run(topology, make_scheme(name), model_run=run)
                for name in ["baseline"] + SCHEME_NAMES]

    runs = benchmark(cell)
    assert len(runs) == 1 + len(SCHEME_NAMES)
    perf_record("e2e_cell_server_resnet18", benchmark)
