"""Transformer & KV-cache overhead grid — the paper's argument replayed
on a 2020s workload family.

The (transformer workload x scheme) grid on both NPUs, with the decode
scenario at several context lengths. The CNN-era figures (5/6) show
protection overhead on compute-heavy convolutions; this grid shows the
regime the paper's schemes were never evaluated in: low-arithmetic-
intensity GEMM streams where every layer is memory- or crypto-bound and
metadata overhead lands on KV-cache traffic.
"""

from typing import Dict

import pytest

from benchmarks.conftest import dump_results
from repro.core.config import npu_config
from repro.core.metrics import ComparisonResult, compare_schemes
from repro.core.pipeline import Pipeline
from repro.models.zoo import TRANSFORMER_WORKLOADS, get_workload
from repro.protection import SCHEME_NAMES

#: Decode contexts for the KV-scaling series (kept short enough for CI).
_GPT2_CONTEXTS = (64, 128, 256)

_GRID_SPECS = ["vit_b16", "bert_base"] + [
    f"gpt2@s{ctx}" for ctx in _GPT2_CONTEXTS
]


@pytest.fixture(scope="module")
def transformer_grid() -> Dict[str, Dict[str, ComparisonResult]]:
    grid: Dict[str, Dict[str, ComparisonResult]] = {}
    for npu_name in ("server", "edge"):
        pipeline = Pipeline(npu_config(npu_name))
        grid[npu_name] = {
            spec: compare_schemes(pipeline, get_workload(spec), SCHEME_NAMES)
            for spec in _GRID_SPECS
        }
    return grid


def _print_grid(title, cells, metric):
    print(f"\n=== {title} ===")
    header = " ".join(f"{spec:>12s}" for spec in _GRID_SPECS)
    print(f"{'scheme':10s} {header}")
    rows = {}
    for scheme in SCHEME_NAMES:
        values = [metric(cells[spec], scheme) for spec in _GRID_SPECS]
        rows[scheme] = values
        print(f"{scheme:10s} " + " ".join(f"{v:12.3f}" for v in values))
    return rows


def test_transformer_traffic_grid(benchmark, transformer_grid):
    benchmark.pedantic(
        lambda: compare_schemes(Pipeline(npu_config("edge")),
                                get_workload("gpt2@s64"), ["seda"]),
        rounds=1, iterations=1)
    payload = {}
    for npu_name, cells in transformer_grid.items():
        rows = _print_grid(f"transformer traffic ({npu_name})", cells,
                           lambda c, s: c.traffic(s))
        payload[npu_name] = {"workloads": _GRID_SPECS, **rows}
        # The ordering that holds on CNNs holds here too, and SeDA's
        # near-zero metadata story survives the KV regime.
        for spec in _GRID_SPECS:
            cell = cells[spec]
            assert cell.traffic("sgx-64b") >= cell.traffic("mgx-64b"), spec
            assert cell.traffic("seda") < cell.traffic("sgx-64b"), spec
            assert cell.traffic("seda") < 1.02, spec
    dump_results("transformer_traffic", payload)


def test_decode_is_never_compute_bound(transformer_grid):
    """The whole point of the scenario: autoregressive decode flips the
    bottleneck histogram to memory/crypto on both NPUs."""
    for npu_name, cells in transformer_grid.items():
        for ctx in _GPT2_CONTEXTS:
            cell = cells[f"gpt2@s{ctx}"]
            for name, run in cell.runs.items():
                histogram = run.bottleneck_histogram()
                assert histogram.get("compute", 0) == 0, \
                    (npu_name, ctx, name, histogram)


def test_transformers_flip_where_the_cnn_does_not(transformer_grid):
    """Contrast case: on the edge NPU ResNet-18 keeps compute-bound
    layers, while every layer of every transformer workload is memory-
    bound — the histogram flip is a property of the workload family, not
    of the accelerator configuration."""
    resnet = compare_schemes(Pipeline(npu_config("edge")),
                             get_workload("resnet18"), ["seda"])
    assert resnet.baseline.bottleneck_histogram().get("compute", 0) > 0
    for spec in _GRID_SPECS:
        histogram = transformer_grid["edge"][spec] \
            .baseline.bottleneck_histogram()
        assert histogram.get("compute", 0) == 0, (spec, histogram)


def test_sgx_metadata_grows_with_context(transformer_grid):
    """SGX metadata on the decode scenario scales with the KV cache:
    more context, more protected blocks, more MAC/VN traffic."""
    for npu_name, cells in transformer_grid.items():
        series = [cells[f"gpt2@s{ctx}"].runs["sgx-64b"].metadata_bytes
                  for ctx in _GPT2_CONTEXTS]
        assert series == sorted(series), (npu_name, series)
        assert series[-1] > series[0]


def test_decode_slowdown_worse_than_cnn_average(transformer_grid):
    """Memory-bound decode amplifies protection slowdown relative to a
    compute-heavy CNN on the same NPU (the motivation for opening the
    scenario): SGX-64B hurts a GPT-2 step at long context at least as
    much as it hurts ResNet-18."""
    pipeline = Pipeline(npu_config("edge"))
    resnet = compare_schemes(pipeline, get_workload("resnet18"), ["sgx-64b"])
    gpt2 = transformer_grid["edge"]["gpt2@s256"]
    assert gpt2.slowdown_pct("sgx-64b") >= resnet.slowdown_pct("sgx-64b") * 0.9


def test_kv_traffic_is_first_class_in_the_trace(transformer_grid):
    """The baseline cell's model run carries KVCACHE bytes equal to the
    topology's KV footprint — protection overhead on that stream is
    measured from the trace, not estimated."""
    from repro.accel.trace import AccessKind

    cell = transformer_grid["edge"]["gpt2@s128"]
    run = cell.baseline.model_run
    topo = get_workload("gpt2@s128")
    assert run.trace.bytes_by_kind()[AccessKind.KVCACHE] == \
        topo.total_kv_bytes


def test_grid_covers_all_transformer_workloads():
    assert {spec.split("@")[0] for spec in _GRID_SPECS} == \
        set(TRANSFORMER_WORKLOADS)
