"""Ablation: searched optBlk vs fixed authentication granularities.

Quantifies the value of the SecureLoop-style search (Section III-C
Solution): per-layer block sizes aligned to the tiling do strictly less
MAC work than any fixed granularity, because fixed blocks straddle tile
boundaries and get re-verified.
"""

from benchmarks.conftest import dump_results
from repro import EDGE_NPU, Pipeline, get_workload
from repro.tiling.optblk import search_optblk


WORKLOADS = ["yolo_tiny", "resnet18", "mobilenet"]


def test_ablation_optblk_vs_fixed(benchmark):
    pipeline = Pipeline(EDGE_NPU)

    def run_all():
        out = {}
        for workload in WORKLOADS:
            model_run = pipeline.simulate_model(get_workload(workload))
            searched = 0
            fixed = {64: 0, 512: 0, 4096: 0}
            for result in model_run.layers:
                searched += search_optblk(
                    result.layer, result.plan).mac_computations
                for size in fixed:
                    fixed[size] += search_optblk(
                        result.layer, result.plan,
                        candidates=(size,)).mac_computations
            out[workload] = {"searched": searched,
                             **{f"fixed-{k}": v for k, v in fixed.items()}}
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print("\n=== Ablation — optBlk MAC computations (edge NPU) ===")
    print(f"{'workload':12s} {'searched':>10s} {'fixed-64':>10s} "
          f"{'fixed-512':>10s} {'fixed-4096':>10s}")
    for workload, row in results.items():
        print(f"{workload:12s} {row['searched']:10d} {row['fixed-64']:10d} "
              f"{row['fixed-512']:10d} {row['fixed-4096']:10d}")

    dump_results("ablation_optblk", results)

    for workload, row in results.items():
        # The search never loses to any fixed candidate...
        assert row["searched"] <= min(
            row["fixed-64"], row["fixed-512"], row["fixed-4096"]), workload
        # ...and beats the finest granularity by a wide margin.
        assert row["searched"] < row["fixed-64"] / 4, workload
