"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestList:
    def test_lists_everything(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "resnet18" in out
        assert "seda" in out
        assert "server" in out


class TestRun:
    def test_run_summary(self, capsys):
        assert main(["run", "lenet", "--npu", "edge", "--scheme", "seda"]) == 0
        out = capsys.readouterr().out
        assert "lenet on edge under seda" in out
        assert "metadata bytes" in out

    def test_abbreviation_accepted(self, capsys):
        assert main(["run", "let", "--npu", "edge"]) == 0
        assert "lenet" in capsys.readouterr().out

    def test_unknown_workload_is_error(self, capsys):
        assert main(["run", "vgg19"]) == 2
        assert "error" in capsys.readouterr().err


class TestCompare:
    def test_compare_table(self, capsys):
        assert main(["compare", "dlrm", "--npu", "edge",
                     "--schemes", "mgx-64b", "seda"]) == 0
        out = capsys.readouterr().out
        assert "mgx-64b" in out
        assert "seda" in out
        assert "slowdown" in out


class TestAttack:
    def test_attack_demo_passes(self, capsys):
        assert main(["attack"]) == 0
        out = capsys.readouterr().out
        assert "SECA vs shared OTP : succeeds" in out
        assert "SECA vs B-AES      : fails" in out
        assert "RePA vs XOR-MAC    : succeeds" in out
        assert "RePA vs SeDA MACs  : fails" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_invalid_npu_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "lenet", "--npu", "tpu4"])
