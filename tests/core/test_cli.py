"""Command-line interface."""

import csv
import json

import pytest

from repro.cli import build_parser, main


class TestList:
    def test_lists_everything(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "resnet18" in out
        assert "seda" in out
        assert "server" in out


class TestRun:
    def test_run_summary(self, capsys):
        assert main(["run", "lenet", "--npu", "edge", "--scheme", "seda"]) == 0
        out = capsys.readouterr().out
        assert "lenet on edge under seda" in out
        assert "metadata bytes" in out

    def test_abbreviation_accepted(self, capsys):
        assert main(["run", "let", "--npu", "edge"]) == 0
        assert "lenet" in capsys.readouterr().out

    def test_unknown_workload_is_error(self, capsys):
        assert main(["run", "vgg19"]) == 2
        assert "error" in capsys.readouterr().err


class TestCompare:
    def test_compare_table(self, capsys):
        assert main(["compare", "dlrm", "--npu", "edge",
                     "--schemes", "mgx-64b", "seda"]) == 0
        out = capsys.readouterr().out
        assert "mgx-64b" in out
        assert "seda" in out
        assert "slowdown" in out


class TestSweep:
    def test_sweep_no_cache(self, capsys):
        assert main(["sweep", "--npu", "edge", "--workloads", "let",
                     "--schemes", "seda", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "traffic" in out
        assert "performance" in out
        assert "cache disabled" in out

    def test_sweep_cached_rerun_and_stats(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        argv = ["sweep", "--npu", "edge", "--workloads", "let", "dlrm",
                "--schemes", "mgx-64b", "seda", "--cache-dir", cache]
        assert main(argv) == 0
        assert "2 computed" in capsys.readouterr().out

        assert main(argv) == 0
        assert "2 served from cache, 0 computed" in capsys.readouterr().out

        assert main(["cache", "stats", "--cache-dir", cache]) == 0
        out = capsys.readouterr().out
        entries_line = next(l for l in out.splitlines() if "entries" in l)
        assert entries_line.split()[-1] == "2"
        assert "100.0%" in out

    def test_sweep_exports(self, tmp_path, capsys):
        csv_path = tmp_path / "out.csv"
        json_path = tmp_path / "out.json"
        assert main(["sweep", "--npu", "edge", "--workloads", "let",
                     "--schemes", "seda", "--no-cache",
                     "--csv", str(csv_path), "--json", str(json_path)]) == 0
        capsys.readouterr()

        with open(csv_path, newline="") as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["metric", "scheme", "lenet", "avg"]
        assert {row[0] for row in rows[1:]} == {"traffic", "performance"}

        with open(json_path) as handle:
            payload = json.load(handle)
        assert payload["npu"] == "edge"
        csv_traffic = next(float(r[2]) for r in rows[1:] if r[0] == "traffic")
        assert payload["metrics"]["traffic"]["seda"][0] == csv_traffic

    def test_sweep_profile_writes_trace_and_metrics(self, tmp_path,
                                                    capsys):
        from repro import obs
        from repro.obs.export import load_chrome_trace, span_events

        trace_path = tmp_path / "sweep.trace.json"
        events_path = tmp_path / "sweep.events.jsonl"
        assert main(["sweep", "--npu", "edge", "--workloads", "let",
                     "--schemes", "seda", "--no-cache",
                     "--profile", str(trace_path),
                     "--profile-events", str(events_path)]) == 0
        out = capsys.readouterr().out
        assert "Perfetto" in out
        assert not obs.enabled()  # profiling is scoped to the command

        trace = load_chrome_trace(str(trace_path))
        assert len(span_events(trace, name="cell")) == 1
        assert len(span_events(trace, name="sweep")) == 1
        metrics = json.loads(
            (tmp_path / "sweep.metrics.json").read_text())
        assert metrics["spans"]["cell"]["count"] == 1
        kinds = {json.loads(line)["kind"]
                 for line in events_path.read_text().splitlines()}
        assert "span" in kinds

    def test_cache_clear(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        main(["sweep", "--npu", "edge", "--workloads", "let",
              "--schemes", "seda", "--cache-dir", cache])
        capsys.readouterr()
        assert main(["cache", "clear", "--cache-dir", cache]) == 0
        assert "removed 1 cached results" in capsys.readouterr().out


class TestReport:
    def _trace(self, tmp_path, capsys):
        trace_path = tmp_path / "sweep.trace.json"
        assert main(["sweep", "--npu", "edge", "--workloads", "let",
                     "dlrm", "--schemes", "seda", "--no-cache",
                     "--profile", str(trace_path)]) == 0
        capsys.readouterr()
        return trace_path

    def test_report_renders_tables(self, tmp_path, capsys):
        trace_path = self._trace(tmp_path, capsys)
        assert main(["report", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "stages (by total wall time)" in out
        assert "grid cells" in out
        assert "lenet" in out and "dlrm" in out
        assert "counters" in out

    def test_report_span_filter_and_top(self, tmp_path, capsys):
        trace_path = self._trace(tmp_path, capsys)
        assert main(["report", str(trace_path), "--span", "protect",
                     "--top", "1"]) == 0
        out = capsys.readouterr().out
        assert "protect" in out

    def test_report_rejects_non_trace_file(self, tmp_path, capsys):
        bogus = tmp_path / "not_a_trace.json"
        bogus.write_text(json.dumps({"hello": 1}))
        assert main(["report", str(bogus)]) == 2
        assert "error" in capsys.readouterr().err

    def test_report_missing_file_is_error(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "absent.json")]) == 2
        assert "error" in capsys.readouterr().err


class TestAttack:
    def test_attack_demo_passes(self, capsys):
        assert main(["attack"]) == 0
        out = capsys.readouterr().out
        assert "SECA vs shared OTP : succeeds" in out
        assert "SECA vs B-AES      : fails" in out
        assert "RePA vs XOR-MAC    : succeeds" in out
        assert "RePA vs SeDA MACs  : fails" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_invalid_npu_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "lenet", "--npu", "tpu4"])
