"""SedaRuntime: functional protected execution of a topology."""

import numpy as np
import pytest

from repro.core.seda import SedaRuntime, pseudo_layer_fn
from repro.integrity.verifier import IntegrityError
from repro.models.layer import conv, gemm
from repro.models.topology import Topology

ENC = b"\xaa" * 16
MAC = b"\xbb" * 16


@pytest.fixture
def tiny_net():
    return Topology("tiny", [
        conv("c1", 8, 8, 3, 3, 1, 2),
        gemm("fc", 1, 2 * 6 * 6, 4),
    ])


@pytest.fixture
def runtime(tiny_net):
    rt = SedaRuntime(tiny_net, ENC, MAC)
    rt.load_weights(seed=7)
    return rt


def _input_for(net):
    rng = np.random.default_rng(1)
    return rng.integers(0, 256, net[0].ifmap_bytes, dtype=np.uint8).tobytes()


class TestPseudoCompute:
    def test_deterministic(self):
        out_a = pseudo_layer_fn(b"abc", b"wxyz", 16)
        out_b = pseudo_layer_fn(b"abc", b"wxyz", 16)
        assert out_a == out_b

    def test_depends_on_inputs(self):
        base = pseudo_layer_fn(b"abc", b"wxyz", 16)
        assert pseudo_layer_fn(b"abd", b"wxyz", 16) != base
        assert pseudo_layer_fn(b"abc", b"wxyy", 16) != base

    def test_output_length(self):
        assert len(pseudo_layer_fn(b"a", b"b", 37)) == 37

    def test_validation(self):
        with pytest.raises(ValueError):
            pseudo_layer_fn(b"a", b"b", 0)


class TestHonestExecution:
    def test_inference_runs(self, runtime, tiny_net):
        output = runtime.run_inference(_input_for(tiny_net))
        assert len(output) == tiny_net[-1].ofmap_bytes

    def test_protected_equals_unprotected(self, runtime, tiny_net):
        """Protection must be transparent: same function, same bytes."""
        data = _input_for(tiny_net)
        protected = runtime.run_inference(data)

        # Re-derive the unprotected result with the same weights.
        rng = np.random.default_rng(7)
        x = data
        for layer in tiny_net:
            weights = rng.integers(0, 256, layer.weight_bytes,
                                   dtype=np.uint8).tobytes()
            x = pseudo_layer_fn(x, weights, layer.ofmap_bytes)
        assert protected == x

    def test_repeated_inference_same_output(self, runtime, tiny_net):
        data = _input_for(tiny_net)
        assert runtime.run_inference(data) == runtime.run_inference(data)

    def test_fresh_vns_fresh_ciphertext(self, runtime, tiny_net):
        """Re-running re-encrypts activations under new VNs."""
        data = _input_for(tiny_net)
        runtime.run_inference(data)
        first = {a: b.ciphertext for a, b in runtime.dram.items()
                 if a >= 0x4000_0000}
        runtime.run_inference(data)
        second = {a: b.ciphertext for a, b in runtime.dram.items()
                  if a >= 0x4000_0000}
        changed = sum(1 for a in first if second.get(a) != first[a])
        assert changed > 0

    def test_macs_exposed(self, runtime, tiny_net):
        runtime.run_inference(_input_for(tiny_net))
        assert runtime.model_mac != bytes(8)
        assert runtime.layer_mac(0) != bytes(8)


class TestTamperDetection:
    def test_weight_tamper_aborts(self, runtime, tiny_net):
        addr = next(a for a in runtime.dram if a < 0x4000_0000)
        stored = runtime.dram[addr]
        stored.ciphertext = bytes([stored.ciphertext[0] ^ 1]) + \
            stored.ciphertext[1:]
        with pytest.raises(IntegrityError):
            runtime.run_inference(_input_for(tiny_net))

    def test_activation_tamper_aborts(self, runtime, tiny_net):
        data = _input_for(tiny_net)
        runtime.run_inference(data)
        addr = next(a for a in runtime.dram if a >= 0x4000_0000)
        stored = runtime.dram[addr]
        stored.ciphertext = bytes([stored.ciphertext[-1] ^ 0xFF]) + \
            stored.ciphertext[1:]
        # The next inference rewrites activations before reading them,
        # but the tampered weight path is shared; corrupt a weight MAC
        # instead to guarantee a read of the tampered state.
        weight_addr = next(a for a in runtime.dram if a < 0x4000_0000)
        runtime.dram[weight_addr].mac = bytes(8)
        with pytest.raises(IntegrityError):
            runtime.run_inference(data)

    def test_requires_weights(self, tiny_net):
        runtime = SedaRuntime(tiny_net, ENC, MAC)
        with pytest.raises(RuntimeError):
            runtime.run_inference(bytes(tiny_net[0].ifmap_bytes))

    def test_input_size_checked(self, runtime):
        with pytest.raises(ValueError):
            runtime.run_inference(b"short")

    def test_empty_topology_rejected(self):
        with pytest.raises(ValueError):
            SedaRuntime(Topology("empty"), ENC, MAC)
