"""Table II configurations."""

import pytest

from repro.core.config import EDGE_NPU, SERVER_NPU, npu_config


class TestTableII:
    def test_server_parameters(self):
        assert SERVER_NPU.pe_rows == 256
        assert SERVER_NPU.pe_cols == 256
        assert SERVER_NPU.bandwidth_gbps == 20.0
        assert SERVER_NPU.dram_channels == 4
        assert SERVER_NPU.freq_ghz == 1.0
        assert SERVER_NPU.sram_bytes == 24 << 20
        assert SERVER_NPU.precision_bytes == 1

    def test_edge_parameters(self):
        assert EDGE_NPU.pe_rows == 32
        assert EDGE_NPU.pe_cols == 32
        assert EDGE_NPU.bandwidth_gbps == 10.0
        assert EDGE_NPU.freq_ghz == 2.75
        assert EDGE_NPU.sram_bytes == 480 << 10

    def test_table_rows_render(self):
        row = SERVER_NPU.table_row()
        assert row["PE"] == "256 x 256 in systolic array"
        assert row["Bandwidth"] == "20 GB/s with 4 channels"
        assert row["Frequency"] == "1 GHz"
        assert row["SRAM"] == "24 MB"
        edge_row = EDGE_NPU.table_row()
        assert edge_row["SRAM"] == "480 KB"
        assert edge_row["Frequency"] == "2.75 GHz"


class TestDerived:
    def test_systolic_array(self):
        array = SERVER_NPU.systolic_array()
        assert array.num_pes == 256 * 256

    def test_sram_budget_total(self):
        budget = EDGE_NPU.sram_budget()
        assert budget.total_bytes == 480 << 10

    def test_dram_config(self):
        cfg = SERVER_NPU.dram_config()
        assert cfg.total_bandwidth_gbps == 20.0
        assert cfg.channels == 4

    def test_bytes_per_cycle(self):
        assert SERVER_NPU.dram_bytes_per_cycle == pytest.approx(20.0)
        assert EDGE_NPU.dram_bytes_per_cycle == pytest.approx(10.0 / 2.75)


class TestLookup:
    def test_by_name(self):
        assert npu_config("server") is SERVER_NPU
        assert npu_config("EDGE") is EDGE_NPU

    def test_unknown(self):
        with pytest.raises(KeyError):
            npu_config("tpu-v4")
