"""Normalized metrics and scheme comparison."""

import pytest

from repro.core.metrics import (
    arithmetic_mean,
    compare_schemes,
    geometric_mean,
    normalized_performance,
    normalized_traffic,
)
from repro.core.pipeline import Pipeline
from repro.models.layer import conv
from repro.models.topology import Topology
from repro.protection import SCHEME_NAMES


@pytest.fixture(scope="module")
def comparison():
    from repro.core.config import NpuConfig
    npu = NpuConfig(name="test", pe_rows=16, pe_cols=16,
                    bandwidth_gbps=4.0, dram_channels=2, freq_ghz=1.0,
                    sram_bytes=64 << 10)
    topology = Topology("m", [
        conv("c1", 34, 34, 3, 3, 8, 16),
        conv("c2", 32, 32, 3, 3, 16, 32),
    ])
    return compare_schemes(Pipeline(npu), topology, SCHEME_NAMES)


class TestComparison:
    def test_all_schemes_present(self, comparison):
        assert set(comparison.scheme_names) == set(SCHEME_NAMES)

    def test_traffic_at_least_one(self, comparison):
        for name in SCHEME_NAMES:
            assert comparison.traffic(name) >= 1.0

    def test_performance_at_most_one(self, comparison):
        for name in SCHEME_NAMES:
            assert comparison.performance(name) <= 1.0 + 1e-9

    def test_seda_near_baseline(self, comparison):
        assert comparison.traffic("seda") < 1.01
        assert comparison.performance("seda") > 0.99

    def test_overhead_helpers(self, comparison):
        traffic_pct = comparison.traffic_overhead_pct("sgx-64b")
        slowdown_pct = comparison.slowdown_pct("sgx-64b")
        assert traffic_pct > 0
        assert slowdown_pct >= 0
        assert traffic_pct == pytest.approx(
            (comparison.traffic("sgx-64b") - 1) * 100)

    def test_normalizers_validate(self, comparison):
        baseline = comparison.baseline
        assert normalized_traffic(baseline, baseline) == 1.0
        assert normalized_performance(baseline, baseline) == 1.0


class TestMeans:
    def test_geometric(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_arithmetic(self):
        assert arithmetic_mean([1.0, 3.0]) == 2.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            arithmetic_mean([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
