"""SweepRunner: memoization and aggregation."""

import pytest

from repro.core.sweep import SweepRunner


@pytest.fixture(scope="module")
def runner():
    return SweepRunner(scheme_names=["mgx-64b", "seda"])


class TestMemoization:
    def test_compare_cached(self, runner):
        first = runner.compare("edge", "lenet")
        second = runner.compare("edge", "lenet")
        assert first is second

    def test_sweep_subset(self, runner):
        results = runner.sweep("edge", workloads=["lenet", "dlrm"])
        assert set(results) == {"lenet", "dlrm"}

    def test_progress_callback(self, runner):
        seen = []
        runner.sweep("edge", workloads=["lenet"],
                     progress=lambda npu, w: seen.append((npu, w)))
        assert seen == [("edge", "lenet")]


class TestAggregation:
    def test_series_has_average(self, runner):
        results = runner.sweep("edge", workloads=["lenet", "dlrm"])
        series = runner.series(results, "seda", "traffic")
        assert len(series) == 3
        assert series[-1] == pytest.approx(sum(series[:2]) / 2)

    def test_all_metrics_work(self, runner):
        results = runner.sweep("edge", workloads=["lenet"])
        for metric in ("traffic", "performance", "traffic_overhead_pct",
                       "slowdown_pct"):
            values = runner.series(results, "seda", metric)
            assert len(values) == 2

    def test_unknown_metric(self, runner):
        results = runner.sweep("edge", workloads=["lenet"])
        with pytest.raises(ValueError):
            runner.series(results, "seda", "latency")

    def test_figure_table_shape(self, runner):
        results = runner.sweep("edge", workloads=["lenet", "dlrm"])
        table = runner.figure_table(results, "performance")
        assert set(table) == {"mgx-64b", "seda"}
        assert all(len(v) == 3 for v in table.values())
