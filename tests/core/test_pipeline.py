"""End-to-end pipeline on a scaled-down NPU."""

import pytest

from repro.core.pipeline import Pipeline
from repro.models.layer import conv, gemm
from repro.models.topology import Topology
from repro.protection import make_scheme


@pytest.fixture
def topology():
    return Topology("pipe", [
        conv("c1", 34, 34, 3, 3, 8, 16),
        conv("c2", 32, 32, 3, 3, 16, 16),
        gemm("fc", 1, 16 * 30 * 30, 10),
    ])


@pytest.fixture
def pipeline(test_npu):
    return Pipeline(test_npu)


class TestBaselineRun:
    def test_runs_all_layers(self, pipeline, topology):
        run = pipeline.run(topology, make_scheme("baseline"))
        assert len(run.layers) == len(topology)
        assert run.total_cycles > 0

    def test_layer_time_is_max_of_resources(self, pipeline, topology):
        run = pipeline.run(topology, make_scheme("baseline"))
        for timing in run.layers:
            assert timing.total_cycles == max(
                timing.compute_cycles, timing.dram_cycles,
                timing.crypto_cycles)
            assert timing.bottleneck in ("compute", "memory", "crypto")

    def test_no_metadata(self, pipeline, topology):
        run = pipeline.run(topology, make_scheme("baseline"))
        assert run.metadata_bytes == 0

    def test_time_conversion(self, pipeline, topology):
        run = pipeline.run(topology, make_scheme("baseline"))
        assert run.total_time_ms == pytest.approx(
            run.total_cycles / (pipeline.npu.freq_ghz * 1e6))


class TestProtectedRuns:
    def test_scheme_adds_time(self, pipeline, topology):
        baseline = pipeline.run(topology, make_scheme("baseline"))
        sgx = pipeline.run(topology, make_scheme("sgx-64b"))
        assert sgx.total_cycles >= baseline.total_cycles
        assert sgx.metadata_bytes > 0

    def test_model_run_reuse(self, pipeline, topology):
        model_run = pipeline.simulate_model(topology)
        a = pipeline.run(topology, make_scheme("seda"), model_run=model_run)
        b = pipeline.run(topology, make_scheme("seda"), model_run=model_run)
        assert a.total_cycles == b.total_cycles

    def test_fast_and_reference_dram_agree_on_busy(self, test_npu, topology):
        fast = Pipeline(test_npu, use_fast_dram=True)
        slow = Pipeline(test_npu, use_fast_dram=False)
        run_fast = fast.run(topology, make_scheme("baseline"))
        run_slow = slow.run(topology, make_scheme("baseline"))
        assert run_fast.total_cycles == pytest.approx(
            run_slow.total_cycles, rel=0.05)

    def test_bottleneck_histogram(self, pipeline, topology):
        run = pipeline.run(topology, make_scheme("baseline"))
        histogram = run.bottleneck_histogram()
        assert sum(histogram.values()) == len(run.layers)


class TestBottleneckTieBreak:
    def _timing(self, compute, dram, crypto):
        from repro.core.pipeline import LayerTiming
        return LayerTiming(layer_id=0, layer_name="t",
                           compute_cycles=compute, dram_cycles=dram,
                           crypto_cycles=crypto, data_bytes=0,
                           metadata_bytes=0, row_hit_rate=0.0)

    def test_compute_wins_exact_tie_with_dram(self):
        assert self._timing(100.0, 100.0, 0.0).bottleneck == "compute"

    def test_memory_wins_tie_with_crypto(self):
        assert self._timing(10.0, 100.0, 100.0).bottleneck == "memory"

    def test_three_way_tie_is_compute(self):
        assert self._timing(100.0, 100.0, 100.0).bottleneck == "compute"


class _EmptyStreamScheme:
    """A degenerate scheme: real layers that emit no DRAM traffic at
    all.  Before ``LayerProtection.is_flush`` the pipeline classified
    these by their empty data streams and mislabelled them as
    ``(flush:N)`` rows with zero compute."""

    name = "empty-stream"

    def protect_model(self, run):
        from repro.protection.base import LayerProtection, empty_stream
        return [LayerProtection(layer_id=layer.layer_id,
                                data_stream=empty_stream(),
                                metadata_stream=empty_stream())
                for layer in run.layers]

    def crypto_engine(self):
        return None


class TestFlushAccounting:
    def test_sgx_flush_layer_present(self, pipeline, topology):
        """Dirty metadata evictions at end-of-model become a tail entry."""
        run = pipeline.run(topology, make_scheme("sgx-64b"))
        assert len(run.layers) >= len(topology)

    def test_flush_tail_is_explicit(self, pipeline, topology):
        run = pipeline.run(topology, make_scheme("sgx-64b"))
        for timing in run.layers[len(topology):]:
            assert timing.layer_name.startswith("(flush:")
            assert timing.compute_cycles == 0.0

    def test_real_layer_with_empty_streams_keeps_identity(self, pipeline,
                                                          topology):
        """A real layer whose streams happen to be empty is not a flush:
        it keeps its name and its compute cycles."""
        run = pipeline.run(topology, _EmptyStreamScheme())
        assert [t.layer_name for t in run.layers] == \
            [layer.name for layer in topology]
        for timing in run.layers:
            assert timing.compute_cycles > 0.0
            assert not timing.layer_name.startswith("(flush:")
