"""The analytic plane's correctness contract.

The derived ``@bN`` record must be *bit-identical* to the record a full
simulation of the target batch produces — not approximately equal: the
store holds both kinds of record interchangeably, so any drift would
make results depend on which path computed them. The randomized gate
below samples (workload, batch) cells across CNNs and transformers and
checks exact record equality; the fallback tests pin the cases the
derivation must refuse (halo straddle under raw packing, exotic DRAM
geometry) and the service counters that make refusal observable.
"""

import dataclasses

import numpy as np
import pytest

from repro.analytic import MIN_DERIVE_BATCH, derivable, derive_cell
from repro.core.config import npu_config
from repro.core.metrics import compare_schemes
from repro.core.pipeline import Pipeline
from repro.models.zoo import format_workload_spec, get_workload
from repro.protection import SCHEME_NAMES
from repro.runner.records import comparison_to_dict
from repro.runner.service import EvalService
from repro.runner.store import ResultStore, fingerprint


def _simulated_record(pipeline, spec):
    return comparison_to_dict(
        compare_schemes(pipeline, get_workload(spec), SCHEME_NAMES))


class TestEquivalenceGate:
    """Derived records == simulated records, bit for bit."""

    #: CNNs and transformers, covering halo convs (resnet18), pure
    #: gemm stacks (dlrm), KV-cache attention (gpt2) and patchified
    #: attention (vit). Short gpt2 sequence keeps the cell fast; the
    #: default-sequence cell is covered by the perf benchmarks.
    SAMPLED_BASES = ("lenet", "resnet18", "dlrm", "gpt2@s128", "vit_b16")

    @pytest.mark.slow
    def test_derived_matches_simulated(self):
        rng = np.random.default_rng(0xDAC2025)
        pipeline = Pipeline(npu_config("server"))
        for base in self.SAMPLED_BASES:
            batch = int(rng.integers(MIN_DERIVE_BATCH, 8))
            spec = f"{base}@b{batch}"
            derived = derive_cell(pipeline, spec, SCHEME_NAMES)
            assert derived is not None, f"{spec} unexpectedly fell back"
            record, b1_record = derived
            assert record == _simulated_record(pipeline, spec), spec
            # The probes' batch-1 sibling is a real b1 record too.
            base_name, _, seq = base.partition("@s")
            b1_spec = format_workload_spec(
                base_name, 1, int(seq) if seq else None)
            assert b1_record == _simulated_record(pipeline, b1_spec), spec

    def test_below_min_batch_refuses(self):
        pipeline = Pipeline(npu_config("server"))
        spec = f"lenet@b{MIN_DERIVE_BATCH - 1}"
        assert derive_cell(pipeline, spec, SCHEME_NAMES) is None


class TestHaloStraddleFallback:
    """Raw packing (image_align=1) of an unaligned halo conv breaks the
    phase-preservation precondition: ``derivable()`` must say so and
    ``derive_cell`` must refuse."""

    def test_derivable_false_for_raw_packed_alexnet(self):
        pipeline = Pipeline(npu_config("server"), image_align=1)
        run = pipeline.simulate_model(get_workload("alexnet"))
        assert derivable(run, pipeline.dram.config) is False

    def test_derive_cell_falls_back(self):
        pipeline = Pipeline(npu_config("server"), image_align=1)
        assert derive_cell(pipeline, "alexnet@b4", SCHEME_NAMES) is None

    def test_aligned_alexnet_is_derivable(self):
        """The same workload under default slab alignment derives —
        the gate is about packing, not about alexnet."""
        pipeline = Pipeline(npu_config("server"))
        run = pipeline.simulate_model(get_workload("alexnet"))
        assert derivable(run, pipeline.dram.config) is True


def _wide_dram_npu():
    """8 DRAM channels double the row-set past the 128 KiB slab
    alignment, so image strides no longer preserve phase."""
    return dataclasses.replace(npu_config("server"), name="server-8ch",
                               dram_channels=8)


class TestServiceCounters:
    def test_derived_hit_counts_and_persists_b1_sibling(self, tmp_path):
        store = ResultStore(tmp_path)
        service = EvalService(store=store)
        result = service.compare("server", "lenet@b8")
        assert service.derived_hits == 1
        assert service.derived_fallbacks == 0
        assert len(result.runs) == len(SCHEME_NAMES)
        npu = npu_config("server")
        key_b8 = fingerprint(npu, "lenet@b8", tuple(SCHEME_NAMES))
        key_b1 = fingerprint(npu, "lenet", tuple(SCHEME_NAMES))
        assert store.contains(key_b8)
        assert store.contains(key_b1)
        assert store.get(key_b8)["derived_from"] == key_b1
        assert "derived_from" not in store.get(key_b1)
        # Transient bookkeeping keys never reach the store.
        assert "_siblings" not in store.get(key_b8)

    def test_b1_sibling_makes_b1_cell_a_disk_hit(self, tmp_path):
        store = ResultStore(tmp_path)
        EvalService(store=store).compare("server", "lenet@b8")
        fresh = EvalService(store=store)
        fresh.compare("server", "lenet")
        assert fresh.derived_hits == 0  # served from disk, not computed

    def test_fallback_counts(self, tmp_path):
        service = EvalService(store=ResultStore(tmp_path))
        service.compare(_wide_dram_npu(), "lenet@b8")
        assert service.derived_hits == 0
        assert service.derived_fallbacks == 1

    def test_sweep_subset_derives_every_cell(self):
        service = EvalService()
        results = service.sweep("server", workloads=["lenet@b8", "dlrm@b8"])
        assert len(results) == 2
        assert service.derived_hits == 2
        assert service.derived_fallbacks == 0

    def test_no_derive_flag_simulates(self):
        service = EvalService()
        service.compare("server", "lenet@b8", derive=False)
        assert service.derived_hits == 0
        assert service.derived_fallbacks == 0

    def test_derived_equals_simulated_through_service(self):
        """End to end through the service: the derived cell and a
        forced-simulation cell of the same spec serialize identically."""
        derived = EvalService().compare("server", "dlrm@b6")
        simulated = EvalService().compare("server", "dlrm@b6", derive=False)
        assert comparison_to_dict(derived) == comparison_to_dict(simulated)
