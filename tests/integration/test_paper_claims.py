"""Light-weight checks of the paper's headline claims.

The full-figure versions run in ``benchmarks/``; these use two small
workloads so the claims stay pinned by the fast test suite as well.
"""

import pytest

from repro import EDGE_NPU, Pipeline, SERVER_NPU, get_workload
from repro.core.metrics import compare_schemes
from repro.hwmodel.aes_cost import BAES_28NM, TAES_28NM
from repro.protection import SCHEME_NAMES


@pytest.fixture(scope="module")
def mobilenet_server():
    return compare_schemes(Pipeline(SERVER_NPU), get_workload("mobilenet"),
                           SCHEME_NAMES)


@pytest.fixture(scope="module")
def dlrm_edge():
    return compare_schemes(Pipeline(EDGE_NPU), get_workload("dlrm"),
                           SCHEME_NAMES)


class TestTrafficClaims:
    def test_sgx64_around_30_percent(self, mobilenet_server):
        assert 20 < mobilenet_server.traffic_overhead_pct("sgx-64b") < 45

    def test_mgx64_around_12_5_percent(self, mobilenet_server):
        assert 10 < mobilenet_server.traffic_overhead_pct("mgx-64b") < 20

    def test_seda_near_zero(self, mobilenet_server, dlrm_edge):
        assert mobilenet_server.traffic_overhead_pct("seda") < 0.5
        assert dlrm_edge.traffic_overhead_pct("seda") < 0.5


class TestPerformanceClaims:
    def test_full_ordering(self, mobilenet_server, dlrm_edge):
        for comparison in (mobilenet_server, dlrm_edge):
            perf = [comparison.performance(s) for s in
                    ("sgx-64b", "mgx-64b", "sgx-512b", "mgx-512b", "seda")]
            assert perf == sorted(perf)

    def test_seda_under_one_percent_slowdown(self, mobilenet_server):
        assert mobilenet_server.slowdown_pct("seda") < 1.0

    def test_overhead_reduction_over_12_points(self, mobilenet_server):
        """'SeDA decreases performance overhead by over 12%'."""
        reduction = (mobilenet_server.slowdown_pct("mgx-64b")
                     - mobilenet_server.slowdown_pct("seda"))
        assert reduction > 12.0


class TestHardwareClaims:
    def test_scalability_with_minimal_overhead(self):
        """'robust scalability with minimal hardware overhead'."""
        for multiple in (2, 4, 8):
            taes = TAES_28NM.cost(multiple)
            baes = BAES_28NM.cost(multiple)
            assert baes.area_um2 < taes.area_um2 / (multiple / 1.4)

    def test_single_engine_suffices(self):
        from repro.protection.seda import SedaScheme
        pipeline = Pipeline(SERVER_NPU)
        run = pipeline.simulate_model(get_workload("dlrm"))
        scheme = SedaScheme()
        scheme.begin_model(run)
        engine = scheme.crypto_engine()
        assert engine.engines == 1
        assert engine.bytes_per_cycle >= run.peak_demand_bytes_per_cycle
