"""Cross-module integration: real workloads through the whole stack."""

import pytest

from repro import (
    EDGE_NPU,
    Pipeline,
    SERVER_NPU,
    compare_schemes,
    get_workload,
)
from repro.protection import SCHEME_NAMES, make_scheme


@pytest.fixture(scope="module")
def lenet_server():
    return compare_schemes(Pipeline(SERVER_NPU), get_workload("lenet"),
                           SCHEME_NAMES)


@pytest.fixture(scope="module")
def lenet_edge():
    return compare_schemes(Pipeline(EDGE_NPU), get_workload("lenet"),
                           SCHEME_NAMES)


class TestPublicApi:
    def test_quickstart_flow(self):
        """The README quickstart must work verbatim."""
        pipeline = Pipeline(SERVER_NPU)
        result = compare_schemes(pipeline, get_workload("resnet18"),
                                 ["seda"])
        assert result.traffic("seda") < 1.01
        assert result.performance("seda") > 0.99

    def test_version_exposed(self):
        import repro
        assert repro.__version__


class TestBothNpus:
    def test_orderings_hold_on_both(self, lenet_server, lenet_edge):
        for comparison in (lenet_server, lenet_edge):
            assert comparison.traffic("sgx-64b") > comparison.traffic("mgx-64b")
            assert comparison.traffic("mgx-64b") > comparison.traffic("seda")
            assert comparison.performance("sgx-64b") < \
                comparison.performance("seda")

    def test_seda_negligible_everywhere(self, lenet_server, lenet_edge):
        assert lenet_server.traffic_overhead_pct("seda") < 1.5
        assert lenet_edge.traffic_overhead_pct("seda") < 1.5


class TestDeterminism:
    def test_repeated_runs_identical(self):
        pipeline = Pipeline(SERVER_NPU)
        topo = get_workload("dlrm")
        a = pipeline.run(topo, make_scheme("sgx-64b"))
        b = pipeline.run(topo, make_scheme("sgx-64b"))
        assert a.total_cycles == b.total_cycles
        assert a.total_bytes == b.total_bytes


class TestMediumWorkload:
    def test_mobilenet_edge_full_stack(self):
        comparison = compare_schemes(Pipeline(EDGE_NPU),
                                     get_workload("mobilenet"),
                                     ["sgx-64b", "seda"])
        assert comparison.traffic("sgx-64b") > 1.2
        assert comparison.traffic("seda") < 1.01
        assert comparison.slowdown_pct("seda") < 1.0
