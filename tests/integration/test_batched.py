"""Batched inference end to end: batch-first geometry through the whole
trace -> protection -> DRAM path, the eval service, and the CLI."""

import json

import pytest

from repro.accel.simulator import AcceleratorSim
from repro.accel.systolic import SystolicArray
from repro.accel.trace import AccessKind
from repro.cli import main as cli_main
from repro.core.config import npu_config
from repro.core.pipeline import Pipeline
from repro.models.zoo import get_workload
from repro.protection import make_scheme
from repro.runner.service import EvalService
from repro.runner.store import ResultStore
from repro.tiling.tile import SramBudget

BATCH = 3


@pytest.fixture(scope="module")
def lenet_runs():
    """(batch=1 run, batch=N run) of LeNet on one small accelerator."""
    sim = AcceleratorSim(SystolicArray(16, 16), SramBudget.split(96 << 10))
    base = sim.run(get_workload("lenet"))
    batched = sim.run(get_workload(f"lenet@b{BATCH}"))
    return base, batched


class TestPerImageScaling:
    def test_activation_traffic_exactly_n_times(self, lenet_runs):
        base, batched = lenet_runs
        for one, many in zip(base.layers, batched.layers):
            base_kinds = one.trace.bytes_by_kind()
            got_kinds = many.trace.bytes_by_kind()
            assert got_kinds[AccessKind.IFMAP] == \
                BATCH * base_kinds[AccessKind.IFMAP], one.layer.name
            assert got_kinds[AccessKind.OFMAP] == \
                BATCH * base_kinds[AccessKind.OFMAP], one.layer.name

    def test_compute_scales_exactly_n_times(self, lenet_runs):
        base, batched = lenet_runs
        assert batched.compute_cycles == BATCH * base.compute_cycles

    def test_weights_never_scale_past_n_and_stay_unique_when_resident(
            self, lenet_runs):
        base, batched = lenet_runs
        for one, many in zip(base.layers, batched.layers):
            base_w = one.trace.bytes_by_kind()[AccessKind.WEIGHT]
            got_w = many.trace.bytes_by_kind()[AccessKind.WEIGHT]
            assert base_w <= got_w <= BATCH * base_w
            if one.plan.num_n_tiles == 1:
                # Fully resident weights are fetched once for the batch.
                assert got_w == one.layer.weight_bytes

    def test_trace_matches_plan_totals(self, lenet_runs):
        _, batched = lenet_runs
        for result in batched.layers:
            assert result.trace.total_bytes <= result.plan.total_traffic
            assert result.trace.total_bytes > 0.9 * result.plan.total_traffic


class TestFastVsReferenceDram:
    def test_agreement_on_batched_workload(self):
        """The fast DRAM model and the reference event model agree on a
        batched cell the same way they do at batch 1."""
        npu = npu_config("edge")
        topology = get_workload(f"lenet@b{BATCH}")
        scheme = "mgx-64b"
        fast = Pipeline(npu, use_fast_dram=True).run(
            topology, make_scheme(scheme))
        ref = Pipeline(npu, use_fast_dram=False).run(
            topology, make_scheme(scheme))
        assert fast.total_bytes == ref.total_bytes
        for f, r in zip(fast.layers, ref.layers):
            assert f.dram_cycles == pytest.approx(r.dram_cycles, rel=0.05)


class TestBatchedSweepCell:
    def test_service_sweep_cell(self, tmp_path):
        """A batch>1 cell runs through the eval service with per-image-
        consistent traffic and caches under its own fingerprint."""
        store = ResultStore(tmp_path)
        service = EvalService(store=store)
        spec = f"lenet@b{BATCH}"
        result = service.compare("edge", spec, ["seda"])
        assert result.workload == f"lenet_b{BATCH}"
        run = result.runs["seda"]
        assert run.batch == BATCH

        base = service.compare("edge", "lenet", ["seda"]).runs["seda"]
        assert base.batch == 1
        # Activation-dominated LeNet: batched totals sit between per-image
        # x N (weights resident) and strictly above the batch-1 cell.
        assert base.total_bytes < run.total_bytes <= BATCH * base.total_bytes
        assert run.time_per_image_ms <= run.total_time_ms

        # Distinct fingerprints: rerunning both serves from cache.
        store2 = ResultStore(tmp_path)
        service2 = EvalService(store=store2)
        service2.evaluate([
            service2.request("edge", spec, ["seda"]),
            service2.request("edge", "lenet", ["seda"]),
        ])
        assert store2.summary().last_run["hits"] == 2

    def test_cli_sweep_with_batch_flag(self, tmp_path, capsys):
        out_json = tmp_path / "sweep.json"
        rc = cli_main([
            "sweep", "--npu", "edge", "--workloads", "lenet",
            "--batch", str(BATCH), "--schemes", "seda",
            "--no-cache", "--json", str(out_json),
        ])
        assert rc == 0
        payload = json.loads(out_json.read_text())
        # Tables are keyed by the requested spec string.
        assert payload["workloads"] == [f"lenet@b{BATCH}"]
        assert "seda" in payload["metrics"]["traffic"]

    def test_cli_rejects_conflicting_batch_specs(self, capsys):
        rc = cli_main([
            "sweep", "--npu", "edge", "--workloads", "lenet@b2",
            "--batch", "8", "--no-cache",
        ])
        assert rc == 2
        assert "conflicts" in capsys.readouterr().err

    def test_cli_batch_flag_agrees_with_matching_spec(self, tmp_path):
        out_json = tmp_path / "s.json"
        rc = cli_main([
            "sweep", "--npu", "edge", "--workloads", f"lenet@b{BATCH}",
            "--batch", str(BATCH), "--schemes", "seda", "--no-cache",
            "--json", str(out_json),
        ])
        assert rc == 0


class TestStaleGeometryRecordsDemoted:
    def test_old_schema_record_recomputed_not_served(self, tmp_path):
        """A stale-schema body surfacing at a live fingerprint is demoted
        (miss + eviction), recomputed and overwritten — never
        deserialized. (Records written by genuinely old builds normally
        never surface at all: the fingerprint folds in the schema and
        code version, so they become unreachable keys.)"""
        from repro.runner.store import fingerprint

        store = ResultStore(tmp_path)
        service = EvalService(store=store)
        request = service.request("edge", "lenet", ["seda"])
        key = fingerprint(request.npu, request.workload, request.scheme_names)
        store.put(key, {"schema_version": 1, "stale": "old geometry"})
        store.flush_stats()

        result = service.compare("edge", "lenet", ["seda"])
        assert result.runs["seda"].total_bytes > 0
        stats = store.summary().last_run
        assert stats["hits"] == 0
        assert stats["misses"] == 1
        assert stats["evictions"] == 1
        # The overwritten record now carries the current schema.
        from repro.runner.records import SCHEMA_VERSION

        fresh = ResultStore(tmp_path).get(key)
        assert fresh["schema_version"] == SCHEMA_VERSION
