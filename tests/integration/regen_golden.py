#!/usr/bin/env python
"""Deliberately regenerate ``golden_server_resnet18.json``.

Run this ONLY when a commit intentionally changes the model's numbers
(geometry fixes, new protection math); commit the refreshed JSON
together with a note in ``test_golden_equivalence.py``'s regeneration
history. An accidental diff in that file is a regression, not a reason
to rerun this script.
"""

import json
import os

from repro.core.config import npu_config
from repro.core.pipeline import Pipeline
from repro.models.zoo import get_workload
from repro.protection import SCHEME_NAMES, make_scheme

GOLDEN_PATH = os.path.join(os.path.dirname(__file__),
                           "golden_server_resnet18.json")


def main() -> None:
    npu = npu_config("server")
    topology = get_workload("resnet18")
    pipeline = Pipeline(npu)
    model_run = pipeline.simulate_model(topology)
    golden = {}
    for name in ["baseline"] + SCHEME_NAMES:
        run = pipeline.run(topology, make_scheme(name), model_run=model_run)
        golden[name] = {
            "total_cycles": run.total_cycles,
            "compute_cycles": run.compute_cycles,
            "data_bytes": run.data_bytes,
            "metadata_bytes": run.metadata_bytes,
            "layers": len(run.layers),
            "dram_cycles": [t.dram_cycles for t in run.layers],
            "row_hit_rates": [t.row_hit_rate for t in run.layers],
        }
    with open(GOLDEN_PATH, "w") as handle:
        json.dump(golden, handle, indent=2, sort_keys=True)
    print(f"regenerated {GOLDEN_PATH}")
    for name, cell in golden.items():
        print(f"  {name:10s} total_cycles={cell['total_cycles']:.2f}")


if __name__ == "__main__":
    main()
