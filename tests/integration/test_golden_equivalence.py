"""Golden equivalence for the pipeline's numeric outputs.

``golden_server_resnet18.json`` holds the :class:`SchemeRun` totals for
one full sweep cell — every scheme on (server NPU, ResNet-18). Any
refactor that is not meant to change the model must reproduce them
*float-identically*; a deliberate model change must regenerate the file
in the same commit and say why.

Regeneration history:

- columnar stream core (PR 2): baseline for the vectorized path, model
  unchanged from the object-per-range implementation.
- padding-aware batch-first geometry (PR 3): ResNet-18's 3x3 blocks and
  7x7 stem became genuinely same-padded over 224x224 stored inputs
  instead of valid convs over inflated (spatial+2) inputs, shrinking
  every ifmap footprint and with it DRAM traffic — a deliberate
  correctness fix, regenerated with the repo script below::

      PYTHONPATH=src python tests/integration/regen_golden.py
"""

import json
import os

import pytest

from repro.core.config import npu_config
from repro.core.pipeline import Pipeline
from repro.models.zoo import get_workload
from repro.protection import SCHEME_NAMES, make_scheme

_GOLDEN_PATH = os.path.join(os.path.dirname(__file__),
                            "golden_server_resnet18.json")


@pytest.fixture(scope="module")
def golden():
    with open(_GOLDEN_PATH) as handle:
        return json.load(handle)


@pytest.fixture(scope="module")
def cell_runs():
    npu = npu_config("server")
    topology = get_workload("resnet18")
    pipeline = Pipeline(npu)
    model_run = pipeline.simulate_model(topology)
    return {
        name: pipeline.run(topology, make_scheme(name), model_run=model_run)
        for name in ["baseline"] + SCHEME_NAMES
    }


@pytest.mark.parametrize("scheme", ["baseline"] + SCHEME_NAMES)
class TestGoldenCell:
    def test_totals_float_identical(self, golden, cell_runs, scheme):
        run = cell_runs[scheme]
        want = golden[scheme]
        assert run.total_cycles == want["total_cycles"]
        assert run.compute_cycles == want["compute_cycles"]
        assert run.data_bytes == want["data_bytes"]
        assert run.metadata_bytes == want["metadata_bytes"]
        assert len(run.layers) == want["layers"]

    def test_per_layer_dram_float_identical(self, golden, cell_runs, scheme):
        run = cell_runs[scheme]
        want = golden[scheme]
        assert [t.dram_cycles for t in run.layers] == want["dram_cycles"]
        assert [t.row_hit_rate for t in run.layers] == want["row_hit_rates"]
