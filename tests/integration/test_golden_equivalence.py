"""Golden equivalence for the columnar stream core.

``golden_server_resnet18.json`` holds the :class:`SchemeRun` totals the
pre-columnar (object-per-range, per-block-loop) implementation produced
for one full sweep cell — every scheme on (server NPU, ResNet-18). The
refactored pipeline must reproduce them *float-identically*: the
columnar path re-derives the same quantities with better data movement,
it does not change the model.
"""

import json
import os

import pytest

from repro.core.config import npu_config
from repro.core.pipeline import Pipeline
from repro.models.zoo import get_workload
from repro.protection import SCHEME_NAMES, make_scheme

_GOLDEN_PATH = os.path.join(os.path.dirname(__file__),
                            "golden_server_resnet18.json")


@pytest.fixture(scope="module")
def golden():
    with open(_GOLDEN_PATH) as handle:
        return json.load(handle)


@pytest.fixture(scope="module")
def cell_runs():
    npu = npu_config("server")
    topology = get_workload("resnet18")
    pipeline = Pipeline(npu)
    model_run = pipeline.simulate_model(topology)
    return {
        name: pipeline.run(topology, make_scheme(name), model_run=model_run)
        for name in ["baseline"] + SCHEME_NAMES
    }


@pytest.mark.parametrize("scheme", ["baseline"] + SCHEME_NAMES)
class TestGoldenCell:
    def test_totals_float_identical(self, golden, cell_runs, scheme):
        run = cell_runs[scheme]
        want = golden[scheme]
        assert run.total_cycles == want["total_cycles"]
        assert run.compute_cycles == want["compute_cycles"]
        assert run.data_bytes == want["data_bytes"]
        assert run.metadata_bytes == want["metadata_bytes"]
        assert len(run.layers) == want["layers"]

    def test_per_layer_dram_float_identical(self, golden, cell_runs, scheme):
        run = cell_runs[scheme]
        want = golden[scheme]
        assert [t.dram_cycles for t in run.layers] == want["dram_cycles"]
        assert [t.row_hit_rate for t in run.layers] == want["row_hit_rates"]
