"""Transformer scenarios end to end: decode bottlenecks, fast-vs-ref
DRAM agreement, @sN through the eval service/fingerprints/CLI, and the
v2 -> v3 schema demotion."""

import json

import pytest

from repro.cli import main as cli_main
from repro.core.config import npu_config
from repro.core.metrics import compare_schemes
from repro.core.pipeline import Pipeline
from repro.models.zoo import get_workload
from repro.protection import make_scheme
from repro.runner.service import EvalService
from repro.runner.store import ResultStore


@pytest.fixture(scope="module")
def gpt2_compare():
    """All schemes on a GPT-2 decode step (edge NPU, short context)."""
    npu = npu_config("edge")
    topology = get_workload("gpt2@s64")
    return compare_schemes(Pipeline(npu), topology,
                           ["sgx-64b", "mgx-64b", "seda"])


class TestDecodeBottleneck:
    def test_histogram_flips_to_memory_or_crypto_bound(self, gpt2_compare):
        """The acceptance criterion: autoregressive decode is the regime
        where the paper's argument replays — no layer is compute-bound."""
        for name, run in gpt2_compare.runs.items():
            histogram = run.bottleneck_histogram()
            assert histogram.get("compute", 0) == 0, (name, histogram)
            assert histogram.get("memory", 0) + histogram.get("crypto", 0) \
                == sum(histogram.values())

    def test_baseline_also_memory_bound(self, gpt2_compare):
        histogram = gpt2_compare.baseline.bottleneck_histogram()
        assert histogram.get("memory", 0) > 0
        assert histogram.get("compute", 0) == 0

    def test_metadata_overhead_measured_on_kv_traffic(self, gpt2_compare):
        """Protection metadata grows with context length because the KV
        stream is protected traffic — measured, not guessed."""
        npu = npu_config("edge")
        longer = compare_schemes(Pipeline(npu), get_workload("gpt2@s256"),
                                 ["sgx-64b"])
        short_md = gpt2_compare.runs["sgx-64b"].metadata_bytes
        long_md = longer.runs["sgx-64b"].metadata_bytes
        assert long_md > short_md

    def test_seq_travels_on_the_runs(self, gpt2_compare):
        assert gpt2_compare.baseline.seq == 64
        for run in gpt2_compare.runs.values():
            assert run.seq == 64


class TestFastVsReferenceDramOnTransformer:
    def test_agreement_on_gpt2_cell(self):
        npu = npu_config("edge")
        topology = get_workload("gpt2@s64").subset(13)  # two blocks + head
        scheme = "mgx-64b"
        fast = Pipeline(npu, use_fast_dram=True).run(
            topology, make_scheme(scheme))
        ref = Pipeline(npu, use_fast_dram=False).run(
            topology, make_scheme(scheme))
        assert fast.total_bytes == ref.total_bytes
        for f, r in zip(fast.layers, ref.layers):
            assert f.dram_cycles == pytest.approx(r.dram_cycles, rel=0.05)


class TestSeqThroughTheService:
    def test_seq_variants_cache_under_distinct_fingerprints(self, tmp_path):
        store = ResultStore(tmp_path)
        service = EvalService(store=store)
        a = service.compare("edge", "gpt2@s64", ["seda"])
        b = service.compare("edge", "gpt2@s96", ["seda"])
        assert a.workload == "gpt2_s64"
        assert b.workload == "gpt2_s96"
        assert a.runs["seda"].seq == 64
        assert b.runs["seda"].seq == 96
        # KV metadata grows with the context, so the cells differ.
        assert a.runs["seda"].total_bytes < b.runs["seda"].total_bytes

        # Both serve from cache on a fresh service.
        service2 = EvalService(store=ResultStore(tmp_path))
        service2.evaluate([
            service2.request("edge", "gpt2@s64", ["seda"]),
            service2.request("edge", "gpt2@s96", ["seda"]),
        ])
        assert service2.store.summary().last_run["hits"] == 2

    def test_stale_v2_record_demoted_never_deserialized(self, tmp_path):
        """Acceptance: v2 records (pre-KV geometry, truncated crypto
        math) are demoted — miss + eviction + recompute — not served."""
        from repro.runner.records import SCHEMA_VERSION
        from repro.runner.store import fingerprint

        store = ResultStore(tmp_path)
        service = EvalService(store=store)
        request = service.request("edge", "gpt2@s64", ["seda"])
        key = fingerprint(request.npu, request.workload, request.scheme_names)
        store.put(key, {"schema_version": 2, "stale": "pre-KV geometry"})
        store.flush_stats()

        result = service.compare("edge", "gpt2@s64", ["seda"])
        assert result.runs["seda"].total_bytes > 0
        stats = store.summary().last_run
        assert stats["hits"] == 0
        assert stats["misses"] == 1
        assert stats["evictions"] == 1
        fresh = ResultStore(tmp_path).get(key)
        assert fresh["schema_version"] == SCHEMA_VERSION == 4
        assert fresh["runs"]["seda"]["seq"] == 64


class TestSeqThroughTheCli:
    def test_run_accepts_seq_suffix(self, capsys):
        assert cli_main(["run", "gpt2@s64", "--npu", "edge",
                         "--scheme", "seda"]) == 0
        out = capsys.readouterr().out
        assert "gpt2_s64" in out
        assert "sequence length" in out
        assert "KV stream bytes" in out
        assert "compute" not in out.split("bottlenecks")[1].splitlines()[0]

    def test_run_seq_flag_equals_suffix(self, capsys):
        assert cli_main(["run", "gpt2", "--seq", "64", "--npu", "edge",
                         "--scheme", "seda"]) == 0
        flag_out = capsys.readouterr().out
        assert "gpt2_s64" in flag_out

    def test_describe_reports_seq_and_kv(self, capsys):
        assert cli_main(["describe", "gpt2", "--seq", "96"]) == 0
        out = capsys.readouterr().out
        assert "seq 96" in out
        assert "KV stream" in out

    def test_seq_flag_conflicts_with_different_suffix(self, capsys):
        rc = cli_main(["describe", "gpt2@s128", "--seq", "64"])
        assert rc == 2
        assert "conflicts" in capsys.readouterr().err

    def test_sweep_seq_conflict_detected_even_at_the_default(self, capsys):
        """An explicit @s128 (the default) still clashes with --seq 256
        — canonicalization must not silently override the suffix."""
        rc = cli_main(["sweep", "--npu", "edge", "--workloads", "gpt2@s128",
                       "--seq", "256", "--no-cache"])
        assert rc == 2
        assert "conflicts" in capsys.readouterr().err

    def test_list_derives_catalog_from_zoo(self, capsys):
        from repro.models.zoo import ALL_WORKLOADS

        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ALL_WORKLOADS:
            assert f" {name}" in out
        assert "gpt2 (default s128)" in out

    def test_seq_on_conv_workload_rejected(self, capsys):
        rc = cli_main(["describe", "resnet18@s64"])
        assert rc == 2
        assert "no sequence dimension" in capsys.readouterr().err

    def test_sweep_seq_defaults_to_transformer_set(self, tmp_path, capsys):
        out_json = tmp_path / "sweep.json"
        rc = cli_main([
            "sweep", "--npu", "edge", "--workloads", "gpt2", "vit_b16",
            "--seq", "64", "--schemes", "seda", "--no-cache",
            "--json", str(out_json),
        ])
        assert rc == 0
        payload = json.loads(out_json.read_text())
        assert payload["workloads"] == ["gpt2@s64", "vit_b16@s64"]

    def test_sweep_seq_rejects_non_seq_workloads(self, capsys):
        rc = cli_main(["sweep", "--npu", "edge", "--workloads", "lenet",
                       "--seq", "64", "--no-cache"])
        assert rc == 2
        assert "no sequence dimension" in capsys.readouterr().err

    def test_sweep_default_seq_spec_shares_the_plain_fingerprint(
            self, tmp_path):
        """gpt2@s128 IS gpt2 (128 is the published default), so the
        sweep canonicalizes the spec and one cached cell serves both."""
        args = ["sweep", "--npu", "edge", "--schemes", "seda",
                "--cache-dir", str(tmp_path)]
        assert cli_main(args + ["--workloads", "gpt2@s128"]) == 0
        assert cli_main(args + ["--workloads", "gpt2"]) == 0
        assert cli_main(args + ["--workloads", "gpt2", "--seq", "128"]) == 0
        store = ResultStore(tmp_path)
        assert store.summary().entries == 1
        assert store.summary().lifetime["hits"] == 2

    def test_sweep_seq_with_batch(self, tmp_path):
        out_json = tmp_path / "s.json"
        rc = cli_main([
            "sweep", "--npu", "edge", "--workloads", "gpt2",
            "--seq", "64", "--batch", "2", "--schemes", "seda",
            "--no-cache", "--json", str(out_json),
        ])
        assert rc == 0
        payload = json.loads(out_json.read_text())
        assert payload["workloads"] == ["gpt2@s64@b2"]
