"""Smoke tests: every shipped example runs to completion."""

import os
import subprocess
import sys
import tempfile

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "examples")


def _run(script, *args, timeout=240):
    with tempfile.TemporaryDirectory() as cache_dir:
        # Keep example runs hermetic: the eval-service result store goes
        # to a throwaway directory instead of the user's cache.
        env = dict(os.environ, REPRO_CACHE_DIR=cache_dir)
        return subprocess.run(
            [sys.executable, os.path.join(EXAMPLES_DIR, script), *args],
            capture_output=True, text=True, timeout=timeout, env=env)


class TestExamples:
    def test_quickstart(self):
        result = _run("quickstart.py", "lenet", "edge")
        assert result.returncode == 0, result.stderr
        assert "SeDA bottom line" in result.stdout
        assert "normalized memory traffic" in result.stdout

    def test_attack_demo(self):
        result = _run("attack_demo.py")
        assert result.returncode == 0, result.stderr
        assert "ATTACK SUCCEEDS" in result.stdout
        assert "ATTACK DEFEATED" in result.stdout
        assert "replay attack       : detected" in result.stdout

    def test_secure_inference(self):
        result = _run("secure_inference.py")
        assert result.returncode == 0, result.stderr
        assert "bit-identical   : True" in result.stdout
        assert "inference aborted" in result.stdout

    def test_design_space(self):
        result = _run("design_space.py", "lenet")
        assert result.returncode == 0, result.stderr
        assert "SRAM capacity sweep" in result.stdout
        assert "Crypto-engine sizing" in result.stdout

    def test_custom_workload(self):
        result = _run("custom_workload.py")
        assert result.returncode == 0, result.stderr
        assert "CSV round-trip ok" in result.stdout
        assert "ranker_b512" in result.stdout

    @pytest.mark.slow
    def test_paper_figures_quick(self):
        result = _run("paper_figures.py", "--quick", timeout=600)
        assert result.returncode == 0, result.stderr
        assert "Fig. 5(a)" in result.stdout
        assert "Table III" in result.stdout
