"""28 nm area/power model: the Fig. 4 scaling claim."""

import pytest

from repro.hwmodel.aes_cost import (
    BAES_28NM,
    TAES_28NM,
    lanes_for_npu_bandwidth,
    sweep_bandwidth,
)


class TestTaesScaling:
    def test_linear_area(self):
        points = sweep_bandwidth(TAES_28NM, 8)
        unit = points[0].area_um2
        for point in points:
            assert point.area_um2 == pytest.approx(
                unit * point.bandwidth_multiple)

    def test_linear_power(self):
        points = sweep_bandwidth(TAES_28NM, 8)
        unit = points[0].power_uw
        assert points[-1].power_uw == pytest.approx(8 * unit)

    def test_engine_counts(self):
        points = sweep_bandwidth(TAES_28NM, 4)
        assert [p.engines for p in points] == [1, 2, 3, 4]


class TestBaesScaling:
    def test_single_engine_always(self):
        for point in sweep_bandwidth(BAES_28NM, 8):
            assert point.engines == 1

    def test_near_flat_area(self):
        """Fig. 4 shape: B-AES 8x costs barely more than 1x."""
        points = sweep_bandwidth(BAES_28NM, 8)
        assert points[-1].area_um2 < 1.3 * points[0].area_um2

    def test_near_flat_power(self):
        points = sweep_bandwidth(BAES_28NM, 8)
        assert points[-1].power_uw < 1.3 * points[0].power_uw

    def test_lane_counts(self):
        points = sweep_bandwidth(BAES_28NM, 4)
        assert [p.xor_lanes for p in points] == [1, 2, 3, 4]


class TestComparison:
    def test_equal_at_unit_bandwidth(self):
        assert TAES_28NM.cost(1).area_um2 == BAES_28NM.cost(1).area_um2
        assert TAES_28NM.cost(1).power_uw == BAES_28NM.cost(1).power_uw

    @pytest.mark.parametrize("multiple", [2, 4, 8])
    def test_baes_cheaper_beyond_unit(self, multiple):
        assert BAES_28NM.cost(multiple).area_um2 < \
            TAES_28NM.cost(multiple).area_um2
        assert BAES_28NM.cost(multiple).power_uw < \
            TAES_28NM.cost(multiple).power_uw

    def test_savings_grow_with_bandwidth(self):
        savings = [
            TAES_28NM.cost(m).area_um2 - BAES_28NM.cost(m).area_um2
            for m in range(1, 9)
        ]
        assert savings == sorted(savings)

    def test_fig4_endpoint_magnitudes(self):
        """T-AES at 8x lands near the paper's ~45k um^2 / ~24k uW."""
        point = TAES_28NM.cost(8)
        assert 35_000 < point.area_um2 < 55_000
        assert 18_000 < point.power_uw < 28_000

    def test_validation(self):
        with pytest.raises(ValueError):
            TAES_28NM.cost(0)
        with pytest.raises(ValueError):
            sweep_bandwidth(TAES_28NM, 0)


class TestLaneSizing:
    def test_server_npu(self):
        # 20 GB/s at 1 GHz; one engine gives 16 GB/s -> 2 lanes.
        assert lanes_for_npu_bandwidth(20.0, 1.0) == 2

    def test_edge_npu(self):
        # 10 GB/s at 2.75 GHz; engine gives 44 GB/s -> 1 lane.
        assert lanes_for_npu_bandwidth(10.0, 2.75) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            lanes_for_npu_bandwidth(0, 1.0)
