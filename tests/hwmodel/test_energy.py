"""Energy model extension."""

import pytest

from repro.accel.simulator import AcceleratorSim
from repro.accel.systolic import SystolicArray
from repro.hwmodel.energy import EnergyBreakdown, EnergyModel, EnergyParams
from repro.models.layer import conv
from repro.models.topology import Topology
from repro.protection import make_scheme
from repro.tiling.tile import SramBudget


@pytest.fixture(scope="module")
def model_run():
    sim = AcceleratorSim(SystolicArray(16, 16), SramBudget.split(64 << 10))
    return sim.run(Topology("e", [
        conv("c1", 34, 34, 3, 3, 8, 16),
        conv("c2", 32, 32, 3, 3, 16, 16),
    ]))


def _energy(scheme_name, run):
    scheme = make_scheme(scheme_name)
    return EnergyModel().model_energy(scheme.protect_model(run))


class TestBreakdown:
    def test_addition(self):
        a = EnergyBreakdown(dram_pj=1, aes_pj=2, hash_pj=3, xor_pj=4)
        b = EnergyBreakdown(dram_pj=10, aes_pj=20, hash_pj=30, xor_pj=40)
        total = a + b
        assert total.total_pj == 110
        assert total.dram_pj == 11

    def test_unit_conversion(self):
        assert EnergyBreakdown(dram_pj=2e6).total_uj == pytest.approx(2.0)

    def test_params_validation(self):
        with pytest.raises(ValueError):
            EnergyParams(dram_pj_per_byte=-1)


class TestSchemeComparison:
    def test_baseline_has_no_crypto_energy(self, model_run):
        baseline = _energy("baseline", model_run)
        assert baseline.aes_pj == 0
        assert baseline.hash_pj == 0
        assert baseline.dram_pj > 0

    def test_ordering_mirrors_traffic(self, model_run):
        """Energy overhead preserves the Fig. 5 scheme ordering."""
        model = EnergyModel()
        baseline = _energy("baseline", model_run)
        overheads = {
            name: model.overhead_vs(_energy(name, model_run), baseline)
            for name in ("sgx-64b", "mgx-64b", "seda")
        }
        assert overheads["sgx-64b"] > overheads["mgx-64b"] > overheads["seda"]
        assert overheads["seda"] < 0.10

    def test_seda_fewer_aes_ops(self, model_run):
        """B-AES spends 1 AES per 64 B vs 4 per 64 B for CTR schemes."""
        seda = _energy("seda", model_run)
        mgx = _energy("mgx-64b", model_run)
        assert seda.aes_pj < mgx.aes_pj / 3
        assert seda.xor_pj > 0  # the fan-out lanes do the rest

    def test_overhead_validation(self):
        with pytest.raises(ValueError):
            EnergyModel().overhead_vs(EnergyBreakdown(), EnergyBreakdown())
