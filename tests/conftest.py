"""Shared fixtures: small topologies and pipelines sized for fast tests."""

import pytest

from repro.accel.systolic import SystolicArray
from repro.core.config import NpuConfig
from repro.models.layer import conv, dwconv, gemm
from repro.models.topology import Topology
from repro.tiling.tile import SramBudget


@pytest.fixture
def tiny_conv_layer():
    """A conv layer small enough to hand-check."""
    return conv("c1", 16, 16, 3, 3, 4, 8)


@pytest.fixture
def tiny_gemm_layer():
    return gemm("fc", 32, 64, 16)


@pytest.fixture
def tiny_topology():
    """Three layers exercising conv, depthwise and gemm paths."""
    return Topology("tiny", [
        conv("c1", 18, 18, 3, 3, 3, 8),
        dwconv("dw", 16, 16, 3, 3, 8),
        gemm("fc", 1, 8 * 14 * 14, 10),
    ])


@pytest.fixture
def small_budget():
    return SramBudget.split(64 << 10)


@pytest.fixture
def small_array():
    return SystolicArray(8, 8)


@pytest.fixture
def test_npu():
    """A scaled-down NPU so whole-pipeline tests stay fast."""
    return NpuConfig(
        name="test",
        pe_rows=16, pe_cols=16,
        bandwidth_gbps=4.0, dram_channels=2,
        freq_ghz=1.0,
        sram_bytes=64 << 10,
    )
