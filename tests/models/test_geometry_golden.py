"""Golden per-layer geometry for the thirteen zoo workloads.

Two layers of defence against geometry regressions:

- hand-written shape tables (ofmap dims, MACs) for resnet18 / alexnet /
  yolo_tiny, checked against the published / SCALE-Sim layer shapes;
- a frozen ``golden_geometry.json`` with every layer's ofmap dims, GEMM
  view, MACs and tensor footprints for all 13 workloads, plus
  independent whole-model MAC totals from the literature so the frozen
  file cannot silently drift along with a zoo bug.
"""

import json
import os

import pytest

from repro.models.zoo import WORKLOADS, get_workload

_GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden_geometry.json")


@pytest.fixture(scope="module")
def golden():
    with open(_GOLDEN_PATH) as handle:
        return json.load(handle)


# (layer name, ofmap_h, ofmap_w): the canonical spatial chains.
_RESNET18_SHAPES = [
    ("conv1", 112, 112),
    ("conv2_1_a", 56, 56), ("conv2_1_b", 56, 56),
    ("conv2_2_a", 56, 56), ("conv2_2_b", 56, 56),
    ("conv3_1_a", 28, 28), ("conv3_1_b", 28, 28), ("conv3_1_ds", 28, 28),
    ("conv3_2_a", 28, 28), ("conv3_2_b", 28, 28),
    ("conv4_1_a", 14, 14), ("conv4_1_b", 14, 14), ("conv4_1_ds", 14, 14),
    ("conv4_2_a", 14, 14), ("conv4_2_b", 14, 14),
    ("conv5_1_a", 7, 7), ("conv5_1_b", 7, 7), ("conv5_1_ds", 7, 7),
    ("conv5_2_a", 7, 7), ("conv5_2_b", 7, 7),
    ("fc", 1, 1),
]

_ALEXNET_SHAPES = [
    ("conv1", 55, 55), ("conv2", 27, 27), ("conv3", 13, 13),
    ("conv4", 13, 13), ("conv5", 13, 13),
    ("fc6", 1, 1), ("fc7", 1, 1), ("fc8", 1, 1),
]

_YOLO_TINY_SHAPES = [
    ("conv1", 416, 416), ("conv2", 208, 208), ("conv3", 104, 104),
    ("conv4", 52, 52), ("conv5", 26, 26), ("conv6", 13, 13),
    ("conv7", 13, 13), ("conv8", 13, 13), ("conv9", 13, 13),
    ("conv10", 13, 13),
]


@pytest.mark.parametrize("workload,shapes", [
    ("resnet18", _RESNET18_SHAPES),
    ("alexnet", _ALEXNET_SHAPES),
    ("yolo_tiny", _YOLO_TINY_SHAPES),
])
class TestHandwrittenShapeTables:
    def test_layer_names_and_order(self, workload, shapes):
        topo = get_workload(workload)
        assert [l.name for l in topo] == [name for name, _, _ in shapes]

    def test_ofmap_dims(self, workload, shapes):
        topo = get_workload(workload)
        got = [(l.name, l.ofmap_h, l.ofmap_w) for l in topo]
        assert got == shapes


class TestPublishedTotals:
    """Whole-model MAC totals from the model papers / common references,
    independent of the frozen JSON."""

    def test_resnet18_1_8_gmacs(self):
        assert get_workload("resnet18").total_macs == pytest.approx(1.814e9, rel=0.01)

    def test_mobilenet_569_mmacs(self):
        # The MobileNet paper's own "569 million mult-adds" figure.
        assert get_workload("mobilenet").total_macs == pytest.approx(569e6, rel=0.01)

    def test_alexnet_ungrouped_1_13_gmacs(self):
        # SCALE-Sim models AlexNet without the 2-way grouped convs.
        assert get_workload("alexnet").total_macs == pytest.approx(1.135e9, rel=0.01)

    def test_googlenet_1_6_gmacs(self):
        assert get_workload("googlenet").total_macs == pytest.approx(1.58e9, rel=0.01)

    def test_yolo_tiny_2_1_gmacs(self):
        assert get_workload("yolo_tiny").total_macs == pytest.approx(2.13e9, rel=0.01)

    def test_padded_convs_present_where_originals_use_them(self):
        """The padded models actually carry padding (not inflated ifmaps)."""
        for name in ("resnet18", "mobilenet", "googlenet", "fasterrcnn",
                     "yolo_tiny", "alphagozero"):
            topo = get_workload(name)
            assert any(l.pad_h > 0 for l in topo), name

    def test_valid_models_stay_valid(self):
        for name in ("lenet",):
            assert all(l.pad_h == 0 and l.pad_w == 0
                       for l in get_workload(name)), name


@pytest.mark.parametrize("workload", WORKLOADS)
class TestFrozenGeometry:
    def test_every_layer_matches_golden(self, workload, golden):
        topo = get_workload(workload)
        want = golden[workload]
        assert len(topo) == len(want)
        for layer, expect in zip(topo, want):
            got = {
                "name": layer.name, "ofmap_h": layer.ofmap_h,
                "ofmap_w": layer.ofmap_w, "gemm_m": layer.gemm_m,
                "gemm_k": layer.gemm_k, "gemm_n": layer.gemm_n,
                "macs": layer.macs, "ifmap_bytes": layer.ifmap_bytes,
                "weight_bytes": layer.weight_bytes,
                "ofmap_bytes": layer.ofmap_bytes,
            }
            assert got == expect, layer.name

    def test_footprints_are_stored_extent_only(self, workload, golden):
        """ifmap footprints never include padding zeros."""
        for layer in get_workload(workload):
            assert layer.ifmap_bytes == \
                layer.batch * layer.ifmap_h * layer.ifmap_w * layer.channels
