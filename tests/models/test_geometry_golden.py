"""Golden per-layer geometry for the thirteen zoo workloads.

Two layers of defence against geometry regressions:

- hand-written shape tables (ofmap dims, MACs) for resnet18 / alexnet /
  yolo_tiny, checked against the published / SCALE-Sim layer shapes;
- a frozen ``golden_geometry.json`` with every layer's ofmap dims, GEMM
  view, MACs and tensor footprints for all 13 workloads, plus
  independent whole-model MAC totals from the literature so the frozen
  file cannot silently drift along with a zoo bug.
"""

import json
import os

import pytest

from repro.models.zoo import ALL_WORKLOADS, get_workload

_GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden_geometry.json")


@pytest.fixture(scope="module")
def golden():
    with open(_GOLDEN_PATH) as handle:
        return json.load(handle)


# (layer name, ofmap_h, ofmap_w): the canonical spatial chains.
_RESNET18_SHAPES = [
    ("conv1", 112, 112),
    ("conv2_1_a", 56, 56), ("conv2_1_b", 56, 56),
    ("conv2_2_a", 56, 56), ("conv2_2_b", 56, 56),
    ("conv3_1_a", 28, 28), ("conv3_1_b", 28, 28), ("conv3_1_ds", 28, 28),
    ("conv3_2_a", 28, 28), ("conv3_2_b", 28, 28),
    ("conv4_1_a", 14, 14), ("conv4_1_b", 14, 14), ("conv4_1_ds", 14, 14),
    ("conv4_2_a", 14, 14), ("conv4_2_b", 14, 14),
    ("conv5_1_a", 7, 7), ("conv5_1_b", 7, 7), ("conv5_1_ds", 7, 7),
    ("conv5_2_a", 7, 7), ("conv5_2_b", 7, 7),
    ("fc", 1, 1),
]

_ALEXNET_SHAPES = [
    ("conv1", 55, 55), ("conv2", 27, 27), ("conv3", 13, 13),
    ("conv4", 13, 13), ("conv5", 13, 13),
    ("fc6", 1, 1), ("fc7", 1, 1), ("fc8", 1, 1),
]

_YOLO_TINY_SHAPES = [
    ("conv1", 416, 416), ("conv2", 208, 208), ("conv3", 104, 104),
    ("conv4", 52, 52), ("conv5", 26, 26), ("conv6", 13, 13),
    ("conv7", 13, 13), ("conv8", 13, 13), ("conv9", 13, 13),
    ("conv10", 13, 13),
]


@pytest.mark.parametrize("workload,shapes", [
    ("resnet18", _RESNET18_SHAPES),
    ("alexnet", _ALEXNET_SHAPES),
    ("yolo_tiny", _YOLO_TINY_SHAPES),
])
class TestHandwrittenShapeTables:
    def test_layer_names_and_order(self, workload, shapes):
        topo = get_workload(workload)
        assert [l.name for l in topo] == [name for name, _, _ in shapes]

    def test_ofmap_dims(self, workload, shapes):
        topo = get_workload(workload)
        got = [(l.name, l.ofmap_h, l.ofmap_w) for l in topo]
        assert got == shapes


class TestPublishedTotals:
    """Whole-model MAC totals from the model papers / common references,
    independent of the frozen JSON."""

    def test_resnet18_1_8_gmacs(self):
        assert get_workload("resnet18").total_macs == pytest.approx(1.814e9, rel=0.01)

    def test_mobilenet_569_mmacs(self):
        # The MobileNet paper's own "569 million mult-adds" figure.
        assert get_workload("mobilenet").total_macs == pytest.approx(569e6, rel=0.01)

    def test_alexnet_ungrouped_1_13_gmacs(self):
        # SCALE-Sim models AlexNet without the 2-way grouped convs.
        assert get_workload("alexnet").total_macs == pytest.approx(1.135e9, rel=0.01)

    def test_googlenet_1_6_gmacs(self):
        assert get_workload("googlenet").total_macs == pytest.approx(1.58e9, rel=0.01)

    def test_yolo_tiny_2_1_gmacs(self):
        assert get_workload("yolo_tiny").total_macs == pytest.approx(2.13e9, rel=0.01)

    def test_padded_convs_present_where_originals_use_them(self):
        """The padded models actually carry padding (not inflated ifmaps)."""
        for name in ("resnet18", "mobilenet", "googlenet", "fasterrcnn",
                     "yolo_tiny", "alphagozero"):
            topo = get_workload(name)
            assert any(l.pad_h > 0 for l in topo), name

    def test_valid_models_stay_valid(self):
        for name in ("lenet",):
            assert all(l.pad_h == 0 and l.pad_w == 0
                       for l in get_workload(name)), name


# Hand-written per-layer (M, K, N) GEMM tables for one encoder block of
# each transformer workload, straight from the published architectures.
_VIT_BLOCK1_GEMMS = [
    ("l1_qkv", 197, 768, 2304),
    ("l1_scores", 197, 768, 197),
    ("l1_ctx", 197, 197, 768),
    ("l1_proj", 197, 768, 768),
    ("l1_ff1", 197, 768, 3072),
    ("l1_ff2", 197, 3072, 768),
]

_BERT_BLOCK1_GEMMS = [
    ("l1_qkv", 128, 768, 2304),
    ("l1_scores", 128, 768, 128),
    ("l1_ctx", 128, 128, 768),
    ("l1_proj", 128, 768, 768),
    ("l1_ff1", 128, 768, 3072),
    ("l1_ff2", 128, 3072, 768),
]

_GPT2_BLOCK1_GEMMS = [
    ("l1_qkv", 1, 768, 2304),
    ("l1_attn", 1, 768, 128),
    ("l1_ctx", 1, 128, 768),
    ("l1_proj", 1, 768, 768),
    ("l1_ff1", 1, 768, 3072),
    ("l1_ff2", 1, 3072, 768),
]


class TestTransformerShapeTables:
    @pytest.mark.parametrize("workload,table", [
        ("vit_b16", _VIT_BLOCK1_GEMMS),
        ("bert_base", _BERT_BLOCK1_GEMMS),
        ("gpt2", _GPT2_BLOCK1_GEMMS),
    ])
    def test_first_block_gemm_view(self, workload, table):
        topo = get_workload(workload)
        by_name = {l.name: l for l in topo}
        for name, m, k, n in table:
            layer = by_name[name]
            assert (layer.gemm_m, layer.gemm_k, layer.gemm_n) == (m, k, n), name

    def test_vit_patch_embedding_is_a_stride16_conv(self):
        patch = get_workload("vit_b16")[0]
        assert (patch.ofmap_h, patch.ofmap_w) == (14, 14)  # 196 patches
        assert (patch.gemm_m, patch.gemm_k, patch.gemm_n) == (196, 768, 768)

    def test_attention_operands_are_kv_not_params(self):
        for workload in ("vit_b16", "bert_base", "gpt2", "transformer_fwd"):
            topo = get_workload(workload)
            kv_layers = [l for l in topo if l.kv]
            assert len(kv_layers) == 2 * sum(
                1 for l in topo if l.name.endswith("_ctx")), workload
            for layer in kv_layers:
                assert layer.param_bytes == 0
                assert layer.kv_bytes_per_image == layer.weight_bytes

    def test_gpt2_decode_is_m1_with_seq_sized_kv(self):
        topo = get_workload("gpt2@s256")
        gemms = [l for l in topo]
        assert all(l.gemm_m == 1 for l in gemms)
        attn = next(l for l in gemms if l.name == "l1_attn")
        ctx = next(l for l in gemms if l.name == "l1_ctx")
        # K cache: T x d_model bytes; V cache: T x d_model bytes.
        assert attn.kv_bytes_per_image == 256 * 768
        assert ctx.kv_bytes_per_image == 256 * 768


class TestTransformerPublishedTotals:
    """Published MAC/parameter totals for the transformer workloads.

    Parameter counts cover the GEMM operands (the tensors that stream
    through the systolic array); embeddings/layer norms are excluded and
    the deltas to the full published counts are noted inline.
    """

    def test_vit_b16_published_macs(self):
        # ViT-B/16 at 224x224: ~17.6 GMACs (DeiT paper's 17.58 GFLOPs,
        # multiply-accumulate counting).
        assert get_workload("vit_b16").total_macs == pytest.approx(
            17.58e9, rel=0.01)

    def test_vit_b16_published_params(self):
        # 86.6 M published; minus position embeddings (151 K), CLS token
        # and layer norms -> 86.3 M GEMM parameters.
        topo = get_workload("vit_b16")
        assert topo.total_param_bytes == pytest.approx(86.3e6, rel=0.005)
        # Exact decomposition: patch embed + 12 x block + head.
        assert topo.total_param_bytes == (
            16 * 16 * 3 * 768 + 12 * (768 * 2304 + 768 * 768
                                      + 768 * 3072 + 3072 * 768)
            + 768 * 1000)

    def test_bert_base_published_macs_at_128(self):
        # 12 encoder layers at T=128: ~11.2 GMACs.
        assert get_workload("bert_base").total_macs == pytest.approx(
            11.2e9, rel=0.01)

    def test_bert_base_published_params(self):
        # 110 M published including the 23.8 M embedding table; the
        # encoder + pooler GEMM stack is ~85.5 M.
        topo = get_workload("bert_base")
        assert topo.total_param_bytes == (
            12 * (768 * 2304 + 768 * 768 + 768 * 3072 + 3072 * 768)
            + 768 * 768)
        assert topo.total_param_bytes == pytest.approx(85.5e6, rel=0.005)

    def test_gpt2_published_params(self):
        # 124.4 M published; GEMM operands (12 blocks + weight-tied
        # lm_head over the 50257 vocabulary) are ~123.5 M — position
        # embeddings (786 K) and layer norms make up the rest.
        topo = get_workload("gpt2")
        assert topo.total_param_bytes == (
            12 * (768 * 2304 + 768 * 768 + 768 * 3072 + 3072 * 768)
            + 768 * 50257)
        assert topo.total_param_bytes == pytest.approx(124.4e6, rel=0.01)

    def test_gpt2_decode_macs_are_tiny_but_streams_are_not(self):
        """The decode-step signature: ~126 MMACs moving >125 MB."""
        topo = get_workload("gpt2")
        assert topo.total_macs == pytest.approx(126e6, rel=0.02)
        streamed = topo.total_param_bytes + topo.total_kv_bytes
        # O(1) MAC per streamed byte - the memory-bound regime.
        assert streamed > 125e6

    def test_kv_stream_scales_linearly_with_context(self):
        short = get_workload("gpt2@s128").total_kv_bytes
        long = get_workload("gpt2@s512").total_kv_bytes
        assert long == 4 * short == 4 * (2 * 12 * 128 * 768)


@pytest.mark.parametrize("workload", ALL_WORKLOADS)
class TestFrozenGeometry:
    def test_every_layer_matches_golden(self, workload, golden):
        topo = get_workload(workload)
        want = golden[workload]
        assert len(topo) == len(want)
        for layer, expect in zip(topo, want):
            got = {
                "name": layer.name, "ofmap_h": layer.ofmap_h,
                "ofmap_w": layer.ofmap_w, "gemm_m": layer.gemm_m,
                "gemm_k": layer.gemm_k, "gemm_n": layer.gemm_n,
                "macs": layer.macs, "ifmap_bytes": layer.ifmap_bytes,
                "weight_bytes": layer.weight_bytes,
                "ofmap_bytes": layer.ofmap_bytes,
            }
            assert got == expect, layer.name

    def test_footprints_are_stored_extent_only(self, workload, golden):
        """ifmap footprints never include padding zeros."""
        for layer in get_workload(workload):
            assert layer.ifmap_bytes == \
                layer.batch * layer.ifmap_h * layer.ifmap_w * layer.channels
