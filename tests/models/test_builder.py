"""Parametric topology builders."""

import pytest

from repro.models.builder import (
    cnn,
    depthwise_separable_stack,
    mlp,
    residual_tower,
    transformer_encoder,
)
from repro.models.layer import LayerKind


class TestMlp:
    def test_layer_count(self):
        topo = mlp("m", batch=8, dims=[16, 32, 4])
        assert len(topo) == 2

    def test_macs(self):
        topo = mlp("m", batch=8, dims=[16, 32, 4])
        assert topo.total_macs == 8 * (16 * 32 + 32 * 4)

    def test_dims_chain(self):
        topo = mlp("m", batch=2, dims=[4, 8, 16])
        assert topo[0].gemm_n == topo[1].gemm_k

    def test_validation(self):
        with pytest.raises(ValueError):
            mlp("m", batch=0, dims=[4, 8])
        with pytest.raises(ValueError):
            mlp("m", batch=2, dims=[4])


class TestCnn:
    def test_channel_chain(self):
        topo = cnn("c", 32, 3, [8, 16, 32], downsample_every=2)
        for prev, cur in zip(topo.layers, topo.layers[1:]):
            assert cur.channels == prev.num_filters

    def test_downsampling(self):
        topo = cnn("c", 32, 3, [8, 16], downsample_every=1)
        assert topo[0].stride_h == 2
        assert topo[1].ifmap_h < topo[0].ifmap_h

    def test_no_downsampling(self):
        topo = cnn("c", 16, 3, [8, 8], downsample_every=0)
        assert all(l.stride_h == 1 for l in topo)

    def test_over_downsampling_rejected(self):
        with pytest.raises(ValueError):
            cnn("c", 4, 3, [8] * 5, downsample_every=1)

    def test_validation(self):
        with pytest.raises(ValueError):
            cnn("c", 0, 3, [8])
        with pytest.raises(ValueError):
            cnn("c", 16, 3, [])


class TestResidualTower:
    def test_structure(self):
        topo = residual_tower("r", board=19, channels=64, blocks=3,
                              input_planes=17)
        assert len(topo) == 1 + 2 * 3
        assert topo[0].channels == 17
        assert all(l.num_filters == 64 for l in topo)

    def test_matches_zoo_shape(self):
        from repro.models.zoo import get_workload
        tower = residual_tower("algo", board=19, channels=256, blocks=19,
                               input_planes=17)
        zoo = get_workload("alphagozero")
        zoo_tower_macs = sum(l.macs for l in zoo
                             if l.name.startswith(("stem", "res")))
        assert tower.total_macs == zoo_tower_macs

    def test_validation(self):
        with pytest.raises(ValueError):
            residual_tower("r", 19, 64, 0, 17)


class TestTransformer:
    def test_gemms_per_layer(self):
        topo = transformer_encoder("t", num_layers=2, seq=64,
                                   d_model=128, d_ff=512)
        assert len(topo) == 16

    def test_matches_zoo(self):
        from repro.models.zoo import get_workload
        built = transformer_encoder("trf", num_layers=6, seq=256,
                                    d_model=512, d_ff=2048)
        assert built.total_macs == get_workload("transformer_fwd").total_macs

    def test_validation(self):
        with pytest.raises(ValueError):
            transformer_encoder("t", 0, 64, 128, 512)


class TestDepthwiseStack:
    def test_pairs(self):
        topo = depthwise_separable_stack("d", 32, [(8, 16, 1), (16, 32, 2)])
        assert len(topo) == 4
        assert topo[0].kind is LayerKind.DWCONV
        assert topo[1].kind is LayerKind.CONV
        assert topo[1].is_pointwise

    def test_validation(self):
        with pytest.raises(ValueError):
            depthwise_separable_stack("d", 32, [])
