"""Layer descriptor arithmetic: GEMM view, footprints, halos, padding,
batch."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.layer import conv, dwconv, gemm, same_pads


class TestConvLayer:
    def test_output_dims(self):
        layer = conv("c", 32, 32, 3, 3, 4, 8)
        assert layer.ofmap_h == 30
        assert layer.ofmap_w == 30

    def test_strided_output(self):
        layer = conv("c", 227, 227, 11, 11, 3, 96, stride=4)
        assert layer.ofmap_h == 55

    def test_gemm_view(self):
        layer = conv("c", 32, 32, 3, 3, 4, 8)
        assert layer.gemm_m == 30 * 30
        assert layer.gemm_k == 3 * 3 * 4
        assert layer.gemm_n == 8

    def test_macs(self):
        layer = conv("c", 8, 8, 3, 3, 2, 4)
        assert layer.macs == 6 * 6 * 18 * 4

    def test_footprints(self):
        layer = conv("c", 8, 8, 3, 3, 2, 4)
        assert layer.ifmap_bytes == 8 * 8 * 2
        assert layer.weight_bytes == 3 * 3 * 2 * 4
        assert layer.ofmap_bytes == 6 * 6 * 4

    def test_halo(self):
        assert conv("c", 8, 8, 3, 3, 1, 1).halo_rows() == 2
        assert conv("c", 8, 8, 3, 3, 1, 1, stride=2).halo_rows() == 1
        assert conv("c", 8, 8, 1, 1, 1, 1).halo_rows() == 0
        assert conv("c", 8, 8, 3, 3, 1, 1, stride=3).halo_rows() == 0

    def test_pointwise(self):
        assert conv("c", 8, 8, 1, 1, 4, 4).is_pointwise
        assert not conv("c", 8, 8, 3, 3, 4, 4).is_pointwise


class TestDepthwise:
    def test_gemm_view(self):
        layer = dwconv("dw", 16, 16, 3, 3, 32)
        assert layer.gemm_k == 9
        assert layer.gemm_n == 32

    def test_macs_per_channel(self):
        layer = dwconv("dw", 16, 16, 3, 3, 32)
        assert layer.macs == 14 * 14 * 9 * 32

    def test_weight_footprint(self):
        layer = dwconv("dw", 16, 16, 3, 3, 32)
        assert layer.weight_bytes == 9 * 32


class TestGemm:
    def test_dims(self):
        layer = gemm("fc", 64, 256, 10)
        assert (layer.gemm_m, layer.gemm_k, layer.gemm_n) == (64, 256, 10)

    def test_footprints(self):
        layer = gemm("fc", 64, 256, 10)
        assert layer.ifmap_bytes == 64 * 256
        assert layer.weight_bytes == 256 * 10
        assert layer.ofmap_bytes == 64 * 10

    def test_no_halo(self):
        assert gemm("fc", 64, 256, 10).halo_rows() == 0


class TestPadding:
    def test_same_pad_preserves_spatial(self):
        layer = conv("c", 56, 56, 3, 3, 64, 64, same=True)
        assert (layer.pad_h, layer.pad_w) == (1, 1)
        assert (layer.ofmap_h, layer.ofmap_w) == (56, 56)

    def test_same_pad_strided_is_ceil(self):
        layer = conv("c", 224, 224, 7, 7, 3, 64, stride=2, same=True)
        assert (layer.pad_h, layer.pad_w) == (3, 3)
        assert layer.ofmap_h == 112  # ceil(224 / 2)

    def test_explicit_asymmetric_filter_pads(self):
        layer = conv("c", 161, 300, 41, 11, 1, 32, stride=2, pad_h=5, pad_w=5)
        assert (layer.ofmap_h, layer.ofmap_w) == (66, 150)

    def test_same_pads_helper(self):
        assert same_pads(3, 3) == (1, 1)
        assert same_pads(7, 5) == (3, 2)
        assert same_pads(1, 1) == (0, 0)

    def test_same_rejects_even_filters(self):
        """Even filters can't pad symmetrically to 'same'; silent
        shrinkage would be the exact bug this PR removes."""
        with pytest.raises(ValueError):
            same_pads(2, 2)
        with pytest.raises(ValueError):
            conv("c", 32, 32, 4, 4, 3, 8, same=True)

    def test_padding_not_in_footprint(self):
        """Padding zeros are synthesized on chip, never stored in DRAM."""
        padded = conv("c", 56, 56, 3, 3, 64, 64, same=True)
        valid = conv("c", 56, 56, 3, 3, 64, 64)
        assert padded.ifmap_bytes == valid.ifmap_bytes == 56 * 56 * 64

    def test_padded_gemm_view(self):
        layer = conv("c", 13, 13, 3, 3, 256, 512, same=True)
        assert layer.gemm_m == 13 * 13
        assert layer.macs == 13 * 13 * 9 * 256 * 512

    def test_halo_independent_of_padding(self):
        assert conv("c", 8, 8, 3, 3, 1, 1, same=True).halo_rows() == \
            conv("c", 8, 8, 3, 3, 1, 1).halo_rows() == 2

    def test_pointwise_requires_no_padding(self):
        assert conv("c", 8, 8, 1, 1, 4, 4).is_pointwise
        assert not conv("c", 8, 8, 1, 1, 4, 4, pad_h=1, pad_w=1).is_pointwise

    def test_same_and_explicit_pads_conflict(self):
        with pytest.raises(ValueError):
            conv("c", 8, 8, 3, 3, 1, 1, pad_h=1, same=True)

    def test_dwconv_same(self):
        layer = dwconv("dw", 112, 112, 3, 3, 32, stride=2, same=True)
        assert layer.ofmap_h == 56


class TestBatch:
    def test_per_image_quantities_scale(self):
        base = conv("c", 16, 16, 3, 3, 4, 8)
        batched = conv("c", 16, 16, 3, 3, 4, 8, batch=4)
        assert batched.gemm_m == base.gemm_m
        assert batched.macs == 4 * base.macs
        assert batched.ifmap_bytes == 4 * base.ifmap_bytes
        assert batched.ofmap_bytes == 4 * base.ofmap_bytes

    def test_weights_shared_across_batch(self):
        base = conv("c", 16, 16, 3, 3, 4, 8)
        batched = conv("c", 16, 16, 3, 3, 4, 8, batch=4)
        assert batched.weight_bytes == base.weight_bytes

    def test_per_image_accessors(self):
        layer = gemm("fc", 64, 256, 10, batch=3)
        assert layer.ifmap_bytes_per_image == 64 * 256
        assert layer.ifmap_bytes == 3 * 64 * 256
        assert layer.macs_per_image == 64 * 256 * 10
        assert layer.macs == 3 * 64 * 256 * 10

    def test_invalid_batch(self):
        with pytest.raises(ValueError):
            conv("c", 8, 8, 3, 3, 1, 1, batch=0)


class TestValidation:
    def test_nonpositive_dim(self):
        with pytest.raises(ValueError):
            conv("bad", 0, 8, 3, 3, 1, 1)

    def test_filter_bigger_than_ifmap(self):
        with pytest.raises(ValueError):
            conv("bad", 2, 2, 3, 3, 1, 1)

    def test_filter_bigger_than_ifmap_ok_with_padding(self):
        """Legal for small late-stage feature maps once padding exists;
        validation is against the padded extent."""
        layer = conv("ok", 2, 2, 3, 3, 1, 1, same=True)
        assert layer.ofmap_h == 2

    def test_filter_bigger_than_padded_ifmap_rejected(self):
        with pytest.raises(ValueError):
            conv("bad", 2, 2, 5, 5, 1, 1, same=False, pad_h=1, pad_w=1)

    def test_negative_pad_rejected(self):
        with pytest.raises(ValueError):
            conv("bad", 8, 8, 3, 3, 1, 1, pad_h=-1)

    @given(st.integers(1, 64), st.integers(1, 7), st.integers(1, 4))
    @settings(max_examples=50)
    def test_gemm_identity_macs(self, size, filt, stride):
        """MACs always equal M*K*N for any valid conv."""
        if filt > size:
            return
        layer = conv("c", size, size, filt, filt, 3, 5, stride=stride)
        assert layer.macs == layer.gemm_m * layer.gemm_k * layer.gemm_n
        assert layer.ofmap_h >= 1

    @given(st.integers(1, 64), st.integers(1, 7).map(lambda v: 2 * v + 1),
           st.integers(1, 4))
    @settings(max_examples=50)
    def test_same_padding_is_ceil_everywhere(self, size, filt, stride):
        """same=True yields ceil(in/stride) outputs for any odd filter."""
        layer = conv("c", size, size, filt, filt, 3, 5, stride=stride,
                     same=True)
        assert layer.ofmap_h == -(-size // stride)
