"""Layer descriptor arithmetic: GEMM view, footprints, halos."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.layer import conv, dwconv, gemm


class TestConvLayer:
    def test_output_dims(self):
        layer = conv("c", 32, 32, 3, 3, 4, 8)
        assert layer.ofmap_h == 30
        assert layer.ofmap_w == 30

    def test_strided_output(self):
        layer = conv("c", 227, 227, 11, 11, 3, 96, stride=4)
        assert layer.ofmap_h == 55

    def test_gemm_view(self):
        layer = conv("c", 32, 32, 3, 3, 4, 8)
        assert layer.gemm_m == 30 * 30
        assert layer.gemm_k == 3 * 3 * 4
        assert layer.gemm_n == 8

    def test_macs(self):
        layer = conv("c", 8, 8, 3, 3, 2, 4)
        assert layer.macs == 6 * 6 * 18 * 4

    def test_footprints(self):
        layer = conv("c", 8, 8, 3, 3, 2, 4)
        assert layer.ifmap_bytes == 8 * 8 * 2
        assert layer.weight_bytes == 3 * 3 * 2 * 4
        assert layer.ofmap_bytes == 6 * 6 * 4

    def test_halo(self):
        assert conv("c", 8, 8, 3, 3, 1, 1).halo_rows() == 2
        assert conv("c", 8, 8, 3, 3, 1, 1, stride=2).halo_rows() == 1
        assert conv("c", 8, 8, 1, 1, 1, 1).halo_rows() == 0
        assert conv("c", 8, 8, 3, 3, 1, 1, stride=3).halo_rows() == 0

    def test_pointwise(self):
        assert conv("c", 8, 8, 1, 1, 4, 4).is_pointwise
        assert not conv("c", 8, 8, 3, 3, 4, 4).is_pointwise


class TestDepthwise:
    def test_gemm_view(self):
        layer = dwconv("dw", 16, 16, 3, 3, 32)
        assert layer.gemm_k == 9
        assert layer.gemm_n == 32

    def test_macs_per_channel(self):
        layer = dwconv("dw", 16, 16, 3, 3, 32)
        assert layer.macs == 14 * 14 * 9 * 32

    def test_weight_footprint(self):
        layer = dwconv("dw", 16, 16, 3, 3, 32)
        assert layer.weight_bytes == 9 * 32


class TestGemm:
    def test_dims(self):
        layer = gemm("fc", 64, 256, 10)
        assert (layer.gemm_m, layer.gemm_k, layer.gemm_n) == (64, 256, 10)

    def test_footprints(self):
        layer = gemm("fc", 64, 256, 10)
        assert layer.ifmap_bytes == 64 * 256
        assert layer.weight_bytes == 256 * 10
        assert layer.ofmap_bytes == 64 * 10

    def test_no_halo(self):
        assert gemm("fc", 64, 256, 10).halo_rows() == 0


class TestValidation:
    def test_nonpositive_dim(self):
        with pytest.raises(ValueError):
            conv("bad", 0, 8, 3, 3, 1, 1)

    def test_filter_bigger_than_ifmap(self):
        with pytest.raises(ValueError):
            conv("bad", 2, 2, 3, 3, 1, 1)

    @given(st.integers(1, 64), st.integers(1, 7), st.integers(1, 4))
    @settings(max_examples=50)
    def test_gemm_identity_macs(self, size, filt, stride):
        """MACs always equal M*K*N for any valid conv."""
        if filt > size:
            return
        layer = conv("c", size, size, filt, filt, 3, 5, stride=stride)
        assert layer.macs == layer.gemm_m * layer.gemm_k * layer.gemm_n
        assert layer.ofmap_h >= 1
