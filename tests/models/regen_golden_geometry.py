"""Regenerate ``golden_geometry.json`` from the current zoo.

Run deliberately, review the diff, and commit both together::

    PYTHONPATH=src python tests/models/regen_golden_geometry.py

The frozen file exists to catch *unintended* geometry drift, so a regen
must always be an explicit decision: the independent published-total
assertions in ``test_geometry_golden.py`` stay hand-written and will
flag a zoo bug even if this file is regenerated along with it.
"""

import json
import os

from repro.models.zoo import ALL_WORKLOADS, get_workload

_GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden_geometry.json")


def layer_record(layer) -> dict:
    return {
        "name": layer.name, "ofmap_h": layer.ofmap_h,
        "ofmap_w": layer.ofmap_w, "gemm_m": layer.gemm_m,
        "gemm_k": layer.gemm_k, "gemm_n": layer.gemm_n,
        "macs": layer.macs, "ifmap_bytes": layer.ifmap_bytes,
        "weight_bytes": layer.weight_bytes,
        "ofmap_bytes": layer.ofmap_bytes,
    }


def main() -> None:
    golden = {
        workload: [layer_record(layer) for layer in get_workload(workload)]
        for workload in ALL_WORKLOADS
    }
    with open(_GOLDEN_PATH, "w") as handle:
        json.dump(golden, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"wrote {_GOLDEN_PATH} ({len(golden)} workloads)")


if __name__ == "__main__":
    main()
