"""Topology transformations."""

import pytest

from repro.models.builder import mlp
from repro.models.layer import LayerKind, conv, gemm
from repro.models.topology import Topology
from repro.models.transforms import describe, filter_layers, with_batch
from repro.models.zoo import get_workload


class TestWithBatch:
    def test_scales_macs_linearly(self):
        base = mlp("m", batch=4, dims=[16, 32, 8])
        doubled = with_batch(base, 2)
        assert doubled.total_macs == 2 * base.total_macs

    def test_weights_unchanged(self):
        base = get_workload("ncf")
        scaled = with_batch(base, 4)
        assert scaled.total_weight_bytes == base.total_weight_bytes

    def test_name_tagged(self):
        assert with_batch(mlp("m", 1, [4, 4]), 8).name == "m_b8"

    def test_conv_batches_spatially(self):
        """Batching a conv topology replicates the per-image spatial M
        instead of folding batch into GEMM-M."""
        base = get_workload("lenet")
        scaled = with_batch(base, 2)
        assert scaled.batch == 2
        assert scaled.total_macs == 2 * base.total_macs
        assert scaled.total_weight_bytes == base.total_weight_bytes
        for a, b in zip(scaled, base):
            assert a.gemm_m == b.gemm_m          # per-image M untouched
            assert a.ofmap_h == b.ofmap_h
            assert a.halo_rows() == b.halo_rows()
            assert a.ifmap_bytes == 2 * b.ifmap_bytes
            assert a.ofmap_bytes == 2 * b.ofmap_bytes

    def test_compounds_existing_batch(self):
        twice = with_batch(with_batch(get_workload("lenet"), 2), 3)
        assert twice.batch == 6

    def test_invalid_batch(self):
        with pytest.raises(ValueError):
            with_batch(mlp("m", 1, [4, 4]), 0)


class TestFilterLayers:
    def test_keep_convs(self):
        topo = get_workload("lenet")
        convs = filter_layers(topo, lambda l: l.kind is LayerKind.CONV,
                              "convs")
        assert all(l.kind is LayerKind.CONV for l in convs)
        assert len(convs) < len(topo)

    def test_empty_result_rejected(self):
        topo = get_workload("dlrm")
        with pytest.raises(ValueError):
            filter_layers(topo, lambda l: l.kind is LayerKind.DWCONV)


class TestDescribe:
    def test_contains_key_facts(self):
        text = describe(get_workload("resnet18"))
        assert "resnet18" in text
        assert "GMACs" in text
        assert "heaviest layer" in text
        assert "layer kinds" in text

    def test_kind_counts(self):
        topo = Topology("t", [conv("c", 8, 8, 3, 3, 1, 2),
                              gemm("g", 4, 8, 2)])
        text = describe(topo)
        assert "conv=1" in text
        assert "gemm=1" in text
