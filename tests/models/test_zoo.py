"""The paper workloads + transformer scenarios: presence, sanity, shapes."""

import pytest

from repro.models.zoo import (
    ALL_WORKLOADS,
    TRANSFORMER_WORKLOADS,
    WORKLOAD_ABBREVIATIONS,
    WORKLOADS,
    get_workload,
    list_workloads,
)


class TestCatalog:
    def test_thirteen_paper_workloads(self):
        assert len(WORKLOADS) == 13

    def test_transformer_scenarios_extend_the_catalog(self):
        assert TRANSFORMER_WORKLOADS == ["vit_b16", "bert_base", "gpt2"]
        assert ALL_WORKLOADS == WORKLOADS + TRANSFORMER_WORKLOADS

    def test_paper_abbreviations_cover_paper_set(self):
        paper_names = [n for n in WORKLOAD_ABBREVIATIONS.values()
                       if n in WORKLOADS]
        assert sorted(paper_names) == sorted(WORKLOADS)
        # Every abbreviation resolves to a real workload.
        assert set(WORKLOAD_ABBREVIATIONS.values()) <= set(ALL_WORKLOADS)

    def test_lookup_by_abbreviation(self):
        assert get_workload("rest").name == "resnet18"
        assert get_workload("goo").name == "googlenet"
        assert get_workload("trf").name == "transformer_fwd"
        assert get_workload("vit").name == "vit_b16"
        assert get_workload("bert").name == "bert_base"

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            get_workload("vgg19")

    def test_list_matches(self):
        assert list_workloads() == ALL_WORKLOADS


@pytest.mark.parametrize("name", ALL_WORKLOADS)
class TestEveryWorkload:
    def test_builds(self, name):
        topo = get_workload(name)
        assert len(topo) > 0

    def test_positive_macs(self, name):
        assert get_workload(name).total_macs > 0

    def test_csv_roundtrip(self, name):
        from repro.models.topology import Topology
        topo = get_workload(name)
        parsed = Topology.from_csv(name, topo.to_csv())
        assert parsed.total_macs == topo.total_macs

    def test_fresh_instance_each_call(self, name):
        assert get_workload(name) is not get_workload(name)


class TestKnownShapes:
    def test_lenet_small(self):
        topo = get_workload("lenet")
        assert topo.total_weight_bytes < 1 << 20

    def test_alexnet_fc_dominates(self):
        topo = get_workload("alexnet")
        fc_bytes = sum(l.weight_bytes for l in topo if l.name.startswith("fc"))
        assert fc_bytes > topo.total_weight_bytes * 0.9

    def test_mobilenet_has_depthwise(self):
        from repro.models.layer import LayerKind
        topo = get_workload("mobilenet")
        kinds = {l.kind for l in topo}
        assert LayerKind.DWCONV in kinds

    def test_resnet18_weight_scale(self):
        # ~11M parameters at 1 byte each.
        wgt = get_workload("resnet18").total_weight_bytes
        assert 8 << 20 < wgt < 16 << 20

    def test_alphagozero_board_shape(self):
        topo = get_workload("alphagozero")
        assert all(l.ofmap_h <= 19 for l in topo if l.kind.value == "conv")

    def test_transformer_layer_count(self):
        # 6 encoder layers x 8 GEMMs.
        assert len(get_workload("transformer_fwd")) == 48
