"""Topology container: aggregation, CSV round-trip, validation."""

import pytest

from repro.models.layer import conv, dwconv, gemm
from repro.models.topology import Topology


@pytest.fixture
def topo():
    return Topology("t", [
        conv("c1", 16, 16, 3, 3, 3, 8),
        dwconv("dw", 14, 14, 3, 3, 8),
        gemm("fc", 1, 8, 10),
    ])


class TestAggregation:
    def test_len_and_iter(self, topo):
        assert len(topo) == 3
        assert [l.name for l in topo] == ["c1", "dw", "fc"]

    def test_indexing(self, topo):
        assert topo[1].name == "dw"

    def test_total_macs(self, topo):
        assert topo.total_macs == sum(l.macs for l in topo.layers)

    def test_total_weight_bytes(self, topo):
        assert topo.total_weight_bytes == sum(l.weight_bytes for l in topo.layers)

    def test_max_activation(self, topo):
        expected = max(max(l.ifmap_bytes, l.ofmap_bytes) for l in topo.layers)
        assert topo.max_activation_bytes == expected

    def test_empty_topology_activation(self):
        assert Topology("empty").max_activation_bytes == 0


class TestCsvRoundtrip:
    def test_roundtrip_preserves_layers(self, topo):
        text = topo.to_csv()
        parsed = Topology.from_csv("t", text)
        assert len(parsed) == len(topo)
        for a, b in zip(parsed, topo):
            assert a == b

    def test_header_optional(self, topo):
        text = topo.to_csv()
        body = "\n".join(text.splitlines()[1:])
        parsed = Topology.from_csv("t", body)
        assert len(parsed) == 3

    def test_kind_column_defaults_to_conv(self):
        parsed = Topology.from_csv("t", "c1,16,16,3,3,3,8,1\n")
        assert parsed[0].kind.value == "conv"

    def test_empty_csv(self):
        with pytest.raises(ValueError):
            Topology.from_csv("t", "")

    def test_malformed_row(self):
        with pytest.raises(ValueError):
            Topology.from_csv("t", "c1,16,16\n")


class TestValidation:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            Topology("t", [gemm("a", 1, 2, 3), gemm("a", 1, 2, 3)])

    def test_subset(self, topo):
        sub = topo.subset(2)
        assert len(sub) == 2
        assert sub.name.startswith("t")
