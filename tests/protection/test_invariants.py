"""Property-based invariants across protection schemes.

Random small conv stacks are run through every scheme; the invariants
here are the ones the figures rely on, so they must hold for *any*
workload, not just the zoo.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel.layout import METADATA_BASE
from repro.accel.simulator import AcceleratorSim
from repro.accel.systolic import SystolicArray
from repro.models.layer import conv, gemm
from repro.models.topology import Topology
from repro.protection import SCHEME_NAMES, make_scheme
from repro.tiling.tile import SramBudget


@st.composite
def small_topologies(draw):
    num_layers = draw(st.integers(1, 3))
    layers = []
    hw = draw(st.sampled_from([16, 24, 33]))
    channels = draw(st.integers(1, 8))
    for i in range(num_layers):
        filters = draw(st.integers(1, 16))
        layers.append(conv(f"c{i}", hw + 2, hw + 2, 3, 3, channels, filters))
        channels = filters
    if draw(st.booleans()):
        layers.append(gemm("fc", draw(st.integers(1, 32)),
                           draw(st.integers(8, 256)),
                           draw(st.integers(1, 32))))
    return Topology("prop", layers)


def _run_model(topology):
    sim = AcceleratorSim(SystolicArray(8, 8), SramBudget.split(32 << 10))
    return sim.run(topology)


class TestSchemeInvariants:
    @given(small_topologies())
    @settings(max_examples=15, deadline=None)
    def test_protected_never_below_baseline(self, topology):
        run = _run_model(topology)
        baseline = sum(p.total_bytes for p in
                       make_scheme("baseline").protect_model(run))
        for name in SCHEME_NAMES:
            protected = sum(p.total_bytes for p in
                            make_scheme(name).protect_model(run))
            assert protected >= baseline, name

    @given(small_topologies())
    @settings(max_examples=10, deadline=None)
    def test_sgx_dominates_mgx(self, topology):
        """Adding VN + tree traffic can only increase metadata."""
        run = _run_model(topology)
        for unit in (64, 512):
            sgx = sum(p.metadata_bytes for p in
                      make_scheme(f"sgx-{unit}b").protect_model(run))
            mgx = sum(p.metadata_bytes for p in
                      make_scheme(f"mgx-{unit}b").protect_model(run))
            assert sgx >= mgx

    @given(small_topologies())
    @settings(max_examples=10, deadline=None)
    def test_metadata_lives_in_metadata_region(self, topology):
        run = _run_model(topology)
        for name in SCHEME_NAMES:
            for protection in make_scheme(name).protect_model(run):
                stream = protection.metadata_stream
                if len(stream):
                    assert int(stream.addrs.min()) >= METADATA_BASE

    @given(small_topologies())
    @settings(max_examples=10, deadline=None)
    def test_determinism(self, topology):
        run = _run_model(topology)
        for name in ("sgx-64b", "seda"):
            first = [p.total_bytes for p in
                     make_scheme(name).protect_model(run)]
            second = [p.total_bytes for p in
                      make_scheme(name).protect_model(run)]
            assert first == second

    @given(small_topologies())
    @settings(max_examples=10, deadline=None)
    def test_writeback_conservation(self, topology):
        """Metadata writes never exceed metadata reads plus dirty state:
        every written line was fetched (write-allocate) first."""
        run = _run_model(topology)
        for name in ("sgx-64b", "mgx-64b"):
            protections = make_scheme(name).protect_model(run)
            reads = sum(int((~p.metadata_stream.writes).sum())
                        for p in protections)
            writes = sum(int(p.metadata_stream.writes.sum())
                         for p in protections)
            assert writes <= reads
