"""Equivalence of the vectorized protection fast paths to the reference
implementations: over-fetch expansion, fused MAC+VN drive, shared MAC
traffic replay."""

import numpy as np

from repro.accel.trace import AccessKind, BlockStream, Trace, TraceRange
from repro.integrity.caches import MetadataCache
from repro.models.layer import conv
from repro.models.topology import Topology
from repro.protection.layout import MetadataLayout
from repro.protection.metadata_model import (
    CacheTrafficResult,
    MacTableModel,
    VnTreeModel,
    expanded_data_stream,
    overfetch_ranges,
    process_mac_vn,
)


def _random_trace(seed, n=120):
    rng = np.random.default_rng(seed)
    return Trace([
        TraceRange(int(rng.integers(0, 5_000)),
                   int(rng.integers(0, 1 << 18)),
                   int(rng.integers(1, 3_000)),
                   bool(rng.integers(0, 2)),
                   AccessKind.IFMAP,
                   int(rng.integers(0, 3)),
                   int(rng.integers(0, 200)))
        for _ in range(n)
    ])


def _assert_streams_equal(a: BlockStream, b: BlockStream):
    np.testing.assert_array_equal(a.cycles, b.cycles)
    np.testing.assert_array_equal(a.addrs, b.addrs)
    np.testing.assert_array_equal(a.writes, b.writes)
    np.testing.assert_array_equal(a.layer_ids, b.layer_ids)


class TestExpandedDataStream:
    def test_matches_per_range_overfetch(self):
        for seed in range(4):
            trace = _random_trace(seed)
            for unit in (64, 512, 4096):
                got, got_blocks = expanded_data_stream(trace, unit)
                extras = overfetch_ranges(trace.ranges, unit)
                want = Trace(trace.ranges + extras) \
                    .to_blocks().sorted_by_cycle()
                _assert_streams_equal(got, want)
                assert got_blocks == sum(r.num_blocks for r in extras)

    def test_memoized_per_unit(self):
        trace = _random_trace(0)
        assert expanded_data_stream(trace, 512)[0] is \
            expanded_data_stream(trace, 512)[0]
        # 64 B units degenerate to the shared sorted stream.
        assert expanded_data_stream(trace, 64)[0] is trace.sorted_blocks()


class TestFusedMacVn:
    def _reference(self, layout, stream, mac_bytes, vn_bytes):
        """Event-exact reference: MetadataCache.access drive, as the
        pre-columnar implementation did it."""
        mac_cache = MetadataCache(mac_bytes)
        vn_cache = MetadataCache(vn_bytes)
        mac_out = CacheTrafficResult()
        vn_out = CacheTrafficResult()
        lines = layout.mac_line_addrs_vec(stream.addrs).astype(np.uint64)
        from repro.protection.metadata_model import compress_runs
        rl, rw, rc = compress_runs(lines, stream.writes, stream.cycles)
        for i in range(len(rl)):
            hit, wb = mac_cache.access(int(rl[i]), write=bool(rw[i]))
            if not hit:
                mac_out.extend_miss(int(rc[i]), int(rl[i]))
            if wb is not None:
                mac_out.extend_writeback(int(rc[i]), wb)
        vlines = layout.vn_line_addrs_vec(stream.addrs).astype(np.uint64)
        rl, rw, rc = compress_runs(vlines, stream.writes, stream.cycles)
        leaves = layout.vn_line_indices_vec(rl.astype(np.int64))
        for i in range(len(rl)):
            addr, cyc, wr = int(rl[i]), int(rc[i]), bool(rw[i])
            hit, wb = vn_cache.access(addr, write=wr)
            if wb is not None:
                vn_out.extend_writeback(cyc, wb)
            if hit:
                continue
            vn_out.extend_miss(cyc, addr)
            leaf = int(leaves[i])
            for level in range(1, layout.tree_levels + 1):
                node = layout.tree_node_addr(leaf, level)
                node_hit, node_wb = vn_cache.access(node, write=wr)
                if node_wb is not None:
                    vn_out.extend_writeback(cyc, node_wb)
                if node_hit:
                    break
                vn_out.extend_miss(cyc, node)
        return mac_out, vn_out

    def test_matches_reference_drive(self):
        layout = MetadataLayout(64)
        for seed in range(4):
            stream = _random_trace(seed, n=80).sorted_blocks()
            # Small caches force plenty of evictions and writebacks.
            mac_bytes, vn_bytes = 512, 1024
            want_mac, want_vn = self._reference(layout, stream,
                                                mac_bytes, vn_bytes)
            mac_model = MacTableModel(layout, MetadataCache(mac_bytes))
            vn_model = VnTreeModel(layout, MetadataCache(vn_bytes))
            got_mac = CacheTrafficResult()
            got_vn = CacheTrafficResult()
            process_mac_vn(mac_model, vn_model, stream, got_mac, got_vn)
            for got, want in ((got_mac, want_mac), (got_vn, want_vn)):
                assert list(got.stream_cycles) == list(want.stream_cycles)
                assert list(got.stream_addrs) == list(want.stream_addrs)
                assert list(got.stream_writes) == list(want.stream_writes)
                assert got.misses == want.misses

    def test_single_models_match_reference(self):
        layout = MetadataLayout(64)
        stream = _random_trace(11, n=80).sorted_blocks()
        want_mac, want_vn = self._reference(layout, stream, 512, 1024)
        mac_model = MacTableModel(layout, MetadataCache(512))
        got_mac = CacheTrafficResult()
        mac_model.process(stream, got_mac)
        vn_model = VnTreeModel(layout, MetadataCache(1024))
        got_vn = CacheTrafficResult()
        vn_model.process(stream, got_vn)
        assert list(got_mac.stream_addrs) == list(want_mac.stream_addrs)
        assert list(got_vn.stream_addrs) == list(want_vn.stream_addrs)


class TestSharedMacTraffic:
    def test_mgx_replays_sgx_mac_traffic(self):
        """MGX after SGX (shared memo) equals MGX run standalone."""
        from repro.accel.simulator import AcceleratorSim
        from repro.accel.systolic import SystolicArray
        from repro.protection.mgx import MgxScheme
        from repro.protection.sgx import SgxScheme
        from repro.tiling.tile import SramBudget

        sim = AcceleratorSim(SystolicArray(16, 16), SramBudget.split(64 << 10))
        topo = Topology("t", [conv("c1", 34, 34, 3, 3, 8, 16),
                              conv("c2", 32, 32, 3, 3, 16, 16)])

        shared_run = sim.run(topo)
        SgxScheme(64).protect_model(shared_run)       # populates the memo
        replayed = MgxScheme(64).protect_model(shared_run)

        fresh_run = sim.run(topo)
        standalone = MgxScheme(64).protect_model(fresh_run)

        assert len(replayed) == len(standalone)
        for a, b in zip(replayed, standalone):
            _assert_streams_equal(a.metadata_stream, b.metadata_stream)
            assert a.data_bytes == b.data_bytes
