"""Equivalence of the LRU drive tiers against the OrderedDict oracle.

The vectorized reuse-distance engine and the compiled drive kernel must
be *bit-identical* to :class:`repro.utils.lru.LruCache` — same hit/miss
classification, same eviction victims and dirty bits, same emitted
miss/writeback streams, same final contents — on adversarial tag
streams: capacity-1 caches, all-hit working sets, all-conflict sweeps,
interleaved dirty/clean runs, warm starts, and flushes mid-stream.
"""

from collections import OrderedDict

import numpy as np
import pytest

from repro.accel.trace import AccessKind, Trace, TraceRange
from repro.integrity.caches import MetadataCache
from repro.protection import reuse_engine
from repro.protection.layout import MetadataLayout
from repro.protection.metadata_model import (
    CacheTrafficResult,
    MacTableModel,
    VnTreeModel,
    process_mac_vn,
)
from repro.utils import native


def oracle_drive(tags, writes, capacity, init=()):
    """Reference LRU drive over plain scalars (the OrderedDict model)."""
    lines = OrderedDict(init)
    hits, evictions = [], []
    for i, (tag, write) in enumerate(zip(tags, writes)):
        if tag in lines:
            hits.append(True)
            lines.move_to_end(tag)
            if write:
                lines[tag] = True
        else:
            hits.append(False)
            if len(lines) >= capacity:
                victim, dirty = lines.popitem(last=False)
                evictions.append((i, victim, bool(dirty)))
            lines[tag] = bool(write)
    return np.asarray(hits, bool), evictions, list(lines.items())


def assert_engine_matches_oracle(tags, writes, capacity, init=()):
    want_hit, want_ev, want_state = oracle_drive(tags, writes, capacity, init)
    got = reuse_engine.drive(
        np.asarray(tags, np.int64), np.asarray(writes, bool), capacity,
        [t for t, _ in init], [d for _, d in init])
    np.testing.assert_array_equal(got.hit, want_hit)
    got_ev = [(int(p), int(t), bool(d)) for p, t, d in
              zip(got.evict_pos, got.victim_tag, got.victim_dirty)]
    assert got_ev == want_ev
    assert list(zip(got.state_tags.tolist(),
                    got.state_dirty.tolist())) == want_state


class TestEngineVsOracle:
    def test_randomized_streams(self):
        rng = np.random.default_rng(2025)
        for _ in range(300):
            n = int(rng.integers(0, 400))
            ntags = int(rng.integers(1, 60))
            capacity = int(rng.integers(1, 40))
            tags = rng.integers(0, ntags, n)
            writes = rng.integers(0, 2, n).astype(bool)
            k = int(rng.integers(0, capacity + 1))
            pool = rng.permutation(ntags + 30)[:k]
            init = [(int(t), bool(rng.integers(0, 2))) for t in pool]
            assert_engine_matches_oracle(tags, writes, capacity, init)

    @pytest.mark.parametrize("capacity", [1, 2, 7, 64])
    def test_adversarial_patterns(self, capacity):
        rng = np.random.default_rng(capacity)
        n = 300
        patterns = {
            "all_same": np.zeros(n, np.int64),
            "all_distinct": np.arange(n),
            "all_hits": np.arange(n) % max(1, capacity - 1) if capacity > 1
            else np.zeros(n, np.int64),
            "all_conflict_sweep": np.arange(n) % (capacity + 1),
            "pingpong": (np.arange(n) // 2) % (capacity + 2),
        }
        for tags in patterns.values():
            for writes in (np.zeros(n, bool), np.ones(n, bool),
                           rng.integers(0, 2, n).astype(bool)):
                assert_engine_matches_oracle(tags, writes, capacity)

    def test_interleaved_dirty_clean(self):
        # Alternating dirty/clean touches of two working sets that
        # alternately fit and thrash.
        tags = np.concatenate([np.tile(np.arange(4), 8),
                               np.arange(64), np.tile(np.arange(4), 8)])
        writes = (np.arange(len(tags)) % 3 == 0)
        for capacity in (1, 4, 8, 32):
            assert_engine_matches_oracle(tags, writes, capacity)


def _random_stream(seed, n=80):
    rng = np.random.default_rng(seed)
    trace = Trace([
        TraceRange(int(rng.integers(0, 5_000)), int(rng.integers(0, 1 << 18)),
                   int(rng.integers(1, 3_000)), bool(rng.integers(0, 2)),
                   AccessKind.IFMAP, int(rng.integers(0, 3)),
                   int(rng.integers(0, 200)))
        for _ in range(n)
    ])
    return trace.sorted_blocks()


def _drive_models(layout, stream, mac_bytes, vn_bytes, flush_between):
    """One fused drive (+ optional mid-stream flush + second drive)."""
    mac = MacTableModel(layout, MetadataCache(mac_bytes))
    vn = VnTreeModel(layout, MetadataCache(vn_bytes))
    mac_out, vn_out = CacheTrafficResult(), CacheTrafficResult()
    process_mac_vn(mac, vn, stream, mac_out, vn_out)
    if flush_between:
        mac.flush(99_999, mac_out)
        vn.flush(99_999, vn_out)
    process_mac_vn(mac, vn, stream, mac_out, vn_out)
    return mac, vn, mac_out, vn_out


def _snapshot(mac, vn, mac_out, vn_out):
    stats = []
    for cache in (mac.cache, vn.cache):
        s = cache.stats
        stats.append((s.hits, s.misses, s.evictions, s.dirty_evictions,
                      s.flushed_lines, s.flush_writebacks))
    return (
        stats,
        [list(o.stream_cycles) for o in (mac_out, vn_out)],
        [list(o.stream_addrs) for o in (mac_out, vn_out)],
        [list(o.stream_writes) for o in (mac_out, vn_out)],
        [o.misses for o in (mac_out, vn_out)],
        list(mac.cache.raw_lines.items()),
        list(vn.cache.raw_lines.items()),
    )


class TestTierEquivalence:
    """Kernel, engine and scalar oracle produce identical traffic."""

    @pytest.mark.parametrize("flush_between", [False, True])
    def test_fused_drive_tiers_agree(self, monkeypatch, flush_between):
        layout = MetadataLayout(64)
        for seed in range(8):
            stream = _random_stream(seed)
            snaps = {}
            # kernel tier (skipped silently when no compiler exists —
            # the engine tier is then the production path anyway)
            if native.available():
                snaps["kernel"] = _snapshot(*_drive_models(
                    layout, stream, 512, 1024, flush_between))
            with monkeypatch.context() as patch:
                patch.setattr(native, "fused_drive",
                              lambda *a, **k: None)
                snaps["engine"] = _snapshot(*_drive_models(
                    layout, stream, 512, 1024, flush_between))
                patch.setattr(
                    reuse_engine, "drive_vn_tree", lambda *a, **k: None)
                snaps["scalar_vn"] = _snapshot(*_drive_models(
                    layout, stream, 512, 1024, flush_between))
            reference = snaps.pop("engine")
            for name, snap in snaps.items():
                assert snap == reference, f"{name} diverges from engine"

    def test_single_cache_models_tiers_agree(self, monkeypatch):
        layout = MetadataLayout(512)   # coarse units + tree still exact
        for seed in (11, 12):
            stream = _random_stream(seed)
            results = {}
            for tier in ("kernel", "engine"):
                with monkeypatch.context() as patch:
                    if tier == "engine":
                        patch.setattr(native, "fused_drive",
                                      lambda *a, **k: None)
                    elif not native.available():
                        continue
                    mac = MacTableModel(layout, MetadataCache(512))
                    vn = VnTreeModel(layout, MetadataCache(2048))
                    mo, vo = CacheTrafficResult(), CacheTrafficResult()
                    mac.process(stream, mo)
                    vn.process(stream, vo)
                    results[tier] = (
                        list(mo.stream_addrs), list(vo.stream_addrs),
                        list(mo.stream_cycles), list(vo.stream_cycles),
                        list(mo.stream_writes), list(vo.stream_writes),
                        list(mac.cache.raw_lines.items()),
                        list(vn.cache.raw_lines.items()))
            if len(results) == 2:
                assert results["kernel"] == results["engine"]

    def test_vn_fixpoint_fallback_is_exact(self, monkeypatch):
        """Force the fixpoint to give up: the scalar oracle takes over
        and the traffic is still identical to the unconstrained run."""
        layout = MetadataLayout(64)
        stream = _random_stream(21)

        def run():
            vn = VnTreeModel(layout, MetadataCache(1024))
            out = CacheTrafficResult()
            vn.process(stream, out)
            return (list(out.stream_addrs), list(out.stream_writes),
                    out.misses, list(vn.cache.raw_lines.items()))

        with monkeypatch.context() as patch:
            patch.setattr(native, "fused_drive", lambda *a, **k: None)
            want = run()
            patch.setattr(reuse_engine, "drive_vn_tree",
                          lambda *a, **k: None)
            got = run()
        assert got == want


class TestVnFixpointConvergence:
    def test_converges_on_streaming_patterns(self):
        """Sweep-style streams (the zoo workloads' shape) settle in a
        handful of rounds — the engine path, not the scalar fallback."""
        layout = MetadataLayout(64)
        lb = 64
        vn_base = layout.vn_line_addr(0) // lb
        rng = np.random.default_rng(3)
        sweep = np.concatenate([np.arange(600) for _ in range(4)])
        jitter = rng.integers(0, 3, len(sweep))
        tags = vn_base + sweep + jitter
        writes = rng.integers(0, 2, len(tags)).astype(bool)

        def node_tags(level, rid):
            leaf = tags[rid] - vn_base
            return (layout.tree_node_addr(0, level) // lb) + leaf // (8 ** level)

        out = reuse_engine.drive_vn_tree(tags, writes, 256,
                                         layout.tree_levels, node_tags)
        assert out is not None
        assert out.iterations <= 12
