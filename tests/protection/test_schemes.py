"""Protection schemes: traffic generation and relative ordering."""

import pytest

from repro.accel.simulator import AcceleratorSim
from repro.accel.systolic import SystolicArray
from repro.models.layer import conv
from repro.models.topology import Topology
from repro.models.zoo import get_workload
from repro.protection import (
    MgxScheme,
    SCHEME_NAMES,
    SedaScheme,
    SgxScheme,
    Unprotected,
    make_scheme,
)
from repro.tiling.tile import SramBudget


@pytest.fixture(scope="module")
def model_run():
    sim = AcceleratorSim(SystolicArray(16, 16), SramBudget.split(64 << 10))
    return sim.run(Topology("t", [
        conv("c1", 34, 34, 3, 3, 8, 16),
        conv("c2", 34, 34, 3, 3, 16, 16),
        conv("c3", 32, 32, 3, 3, 16, 32),
    ]))


def _total_bytes(scheme, run):
    return sum(p.total_bytes for p in scheme.protect_model(run))


def _metadata_bytes(scheme, run):
    return sum(p.metadata_bytes for p in scheme.protect_model(run))


class TestFactory:
    def test_all_names_construct(self):
        for name in SCHEME_NAMES + ["baseline"]:
            scheme = make_scheme(name)
            assert scheme.name == name

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_scheme("tdx")

    def test_granularities(self):
        assert make_scheme("sgx-512b").unit_bytes == 512
        assert make_scheme("mgx-64b").unit_bytes == 64


class TestBaseline:
    def test_no_metadata(self, model_run):
        scheme = Unprotected()
        assert _metadata_bytes(scheme, model_run) == 0

    def test_data_preserved(self, model_run):
        scheme = Unprotected()
        total = _total_bytes(scheme, model_run)
        expected = sum(r.trace.to_blocks().total_bytes for r in model_run.layers)
        assert total == expected


class TestSgx:
    def test_requires_begin_model(self, model_run):
        scheme = SgxScheme()
        with pytest.raises(RuntimeError):
            scheme.protect_layer(model_run.layers[0])

    def test_metadata_nonzero(self, model_run):
        assert _metadata_bytes(SgxScheme(64), model_run) > 0

    def test_more_metadata_than_mgx(self, model_run):
        """SGX adds VN + tree traffic on top of MGX's MACs."""
        assert _metadata_bytes(SgxScheme(64), model_run) > \
            _metadata_bytes(MgxScheme(64), model_run)

    def test_coarser_units_less_metadata(self, model_run):
        assert _metadata_bytes(SgxScheme(512), model_run) < \
            _metadata_bytes(SgxScheme(64), model_run)

    def test_state_reset_between_models(self, model_run):
        scheme = SgxScheme(64)
        first = _metadata_bytes(scheme, model_run)
        second = _metadata_bytes(scheme, model_run)
        assert first == second  # begin_model resets caches

    def test_crypto_engine_parallel(self):
        engine = SgxScheme(64).crypto_engine()
        assert engine.engines > 1


class TestMgx:
    def test_streaming_overhead_near_12_5_percent(self, model_run):
        """MGX-64B: one 64 B MAC line per eight 64 B units."""
        scheme = MgxScheme(64)
        protections = scheme.protect_model(model_run)
        data = sum(p.data_bytes for p in protections)
        metadata = sum(p.metadata_bytes for p in protections)
        assert metadata / data == pytest.approx(0.125, rel=0.25)

    def test_requires_begin_model(self, model_run):
        with pytest.raises(RuntimeError):
            MgxScheme().protect_layer(model_run.layers[0])

    def test_512_has_overfetch(self):
        """Coarse units over-fetch at unaligned tile edges."""
        sim = AcceleratorSim(SystolicArray(16, 16), SramBudget.split(32 << 10))
        run = sim.run(Topology("odd", [conv("c", 35, 35, 3, 3, 5, 16)]))
        scheme = MgxScheme(512)
        protections = scheme.protect_model(run)
        assert sum(p.overfetch_blocks for p in protections) > 0


class TestSeda:
    def test_metadata_is_per_layer_constant(self, model_run):
        scheme = SedaScheme(layer_macs_offchip=True)
        protections = scheme.protect_model(model_run)
        metadata_blocks = sum(len(p.metadata_stream) for p in protections)
        assert metadata_blocks == 2 * len(model_run.layers)

    def test_onchip_variant_zero_traffic(self, model_run):
        scheme = SedaScheme(layer_macs_offchip=False)
        assert _metadata_bytes(scheme, model_run) == 0

    def test_no_overfetch(self, model_run):
        scheme = SedaScheme()
        protections = scheme.protect_model(model_run)
        assert all(p.overfetch_blocks == 0 for p in protections)

    def test_single_engine(self, model_run):
        scheme = SedaScheme()
        scheme.begin_model(model_run)
        engine = scheme.crypto_engine()
        assert engine.engines == 1
        assert engine.xor_lanes >= 1

    def test_lanes_meet_peak_demand(self, model_run):
        scheme = SedaScheme()
        scheme.begin_model(model_run)
        engine = scheme.crypto_engine()
        assert engine.bytes_per_cycle >= model_run.peak_demand_bytes_per_cycle

    def test_optblk_choices_recorded(self, model_run):
        scheme = SedaScheme()
        scheme.begin_model(model_run)
        for result in model_run.layers:
            choice = scheme.optblk_choice(result.layer_id)
            assert choice.block_bytes >= 64


class TestOrdering:
    def test_paper_traffic_ordering(self, model_run):
        """SGX-64B > MGX-64B > SGX-512B > MGX-512B > SeDA > baseline."""
        totals = {
            name: _total_bytes(make_scheme(name), model_run)
            for name in SCHEME_NAMES + ["baseline"]
        }
        assert totals["sgx-64b"] > totals["mgx-64b"]
        assert totals["mgx-64b"] > totals["sgx-512b"]
        assert totals["sgx-512b"] > totals["mgx-512b"]
        assert totals["mgx-512b"] > totals["seda"]
        assert totals["seda"] >= totals["baseline"]
        assert totals["seda"] < 1.01 * totals["baseline"]

    def test_table3_rows(self):
        rows = [make_scheme(n).summary() for n in SCHEME_NAMES]
        names = [r.name for r in rows]
        assert "SeDA" in names
        seda_row = rows[names.index("SeDA")]
        assert seda_row.tiling_aware
        assert seda_row.encryption_scalable
        assert all(not r.tiling_aware for r in rows if r.name != "SeDA")


@pytest.mark.parametrize("workload", ["lenet", "dlrm"])
class TestOnRealWorkloads:
    def test_every_scheme_runs(self, workload):
        sim = AcceleratorSim(SystolicArray(32, 32), SramBudget.split(480 << 10))
        run = sim.run(get_workload(workload))
        for name in SCHEME_NAMES:
            protections = make_scheme(name).protect_model(run)
            assert sum(p.total_bytes for p in protections) > 0
