"""Security-metadata address layout."""

import numpy as np
import pytest

from repro.accel.layout import METADATA_BASE, PROTECTED_REGION_BYTES
from repro.protection.layout import MetadataLayout


class TestUnits:
    def test_unit_indexing(self):
        layout = MetadataLayout(64)
        assert layout.unit_of(0) == 0
        assert layout.unit_of(63) == 0
        assert layout.unit_of(64) == 1

    def test_512_unit(self):
        layout = MetadataLayout(512)
        assert layout.unit_of(511) == 0
        assert layout.unit_of(512) == 1

    def test_num_units(self):
        layout = MetadataLayout(64)
        assert layout.num_units == PROTECTED_REGION_BYTES // 64

    def test_invalid_unit(self):
        with pytest.raises(ValueError):
            MetadataLayout(32)
        with pytest.raises(ValueError):
            MetadataLayout(96)


class TestMacTable:
    def test_eight_units_share_line(self):
        layout = MetadataLayout(64)
        lines = {layout.mac_line_addr(u) for u in range(8)}
        assert len(lines) == 1
        assert layout.mac_line_addr(8) != layout.mac_line_addr(7)

    def test_lines_in_metadata_region(self):
        layout = MetadataLayout(64)
        assert layout.mac_line_addr(0) >= METADATA_BASE

    def test_vectorized_matches_scalar(self):
        layout = MetadataLayout(64)
        addrs = np.arange(100, dtype=np.uint64) * 64
        vec = layout.mac_line_addrs_vec(addrs)
        for addr, line in zip(addrs, vec):
            assert line == layout.mac_line_addr(layout.unit_of(int(addr)))

    def test_table_size_scales_with_granularity(self):
        fine = MetadataLayout(64)
        coarse = MetadataLayout(512)
        assert fine.mac_table_bytes == 8 * coarse.mac_table_bytes


class TestVnAndTree:
    def test_vn_lines_distinct_from_mac_lines(self):
        layout = MetadataLayout(64)
        assert layout.vn_line_addr(0) != layout.mac_line_addr(0)

    def test_tree_levels_positive(self):
        layout = MetadataLayout(64)
        assert layout.tree_levels >= 1

    def test_coarser_units_shallower_tree(self):
        assert MetadataLayout(512).tree_levels <= MetadataLayout(64).tree_levels

    def test_tree_node_addresses_distinct_per_level(self):
        layout = MetadataLayout(64)
        node1 = layout.tree_node_addr(0, 1)
        node2 = layout.tree_node_addr(0, 2)
        assert node1 != node2

    def test_tree_arity_grouping(self):
        layout = MetadataLayout(64)
        # 8 sibling VN lines share one level-1 parent.
        parents = {layout.tree_node_addr(i, 1) for i in range(8)}
        assert len(parents) == 1
        assert layout.tree_node_addr(8, 1) not in parents

    def test_level_validation(self):
        with pytest.raises(ValueError):
            MetadataLayout(64).tree_node_addr(0, 0)

    def test_vn_line_index_roundtrip(self):
        layout = MetadataLayout(64)
        addr = layout.vn_line_addr(100)
        assert layout.vn_line_index_of_addr(addr) == layout.vn_line_index(100)


class TestStorageOverhead:
    def test_fraction_64(self):
        layout = MetadataLayout(64)
        assert layout.metadata_overhead_fraction(with_vns=True) == \
            pytest.approx(16 / 64)
        assert layout.metadata_overhead_fraction(with_vns=False) == \
            pytest.approx(8 / 64)

    def test_fraction_512(self):
        layout = MetadataLayout(512)
        assert layout.metadata_overhead_fraction(with_vns=False) == \
            pytest.approx(8 / 512)
