"""SeDA scheme specifics beyond the cross-scheme tests."""

import pytest

from repro.accel.simulator import AcceleratorSim
from repro.accel.systolic import SystolicArray
from repro.models.layer import conv
from repro.models.topology import Topology
from repro.models.zoo import get_workload
from repro.protection.seda import SedaScheme
from repro.tiling.tile import SramBudget


@pytest.fixture(scope="module")
def run():
    sim = AcceleratorSim(SystolicArray(16, 16), SramBudget.split(64 << 10))
    return sim.run(Topology("s", [
        conv("c1", 34, 34, 3, 3, 8, 16),
        conv("c2", 32, 32, 3, 3, 16, 16),
    ]))


class TestLaneSizing:
    def test_lanes_scale_with_demand(self, run):
        scheme = SedaScheme()
        scheme.begin_model(run)
        lanes = scheme.crypto_engine().xor_lanes
        expected_min = run.peak_demand_bytes_per_cycle / 16
        assert lanes >= expected_min
        assert lanes <= expected_min + 1.0

    def test_default_engine_before_begin(self):
        # Without begin_model the engine defaults to one lane.
        assert SedaScheme().crypto_engine().xor_lanes == 1


class TestOptBlk:
    def test_choice_missing_layer(self, run):
        scheme = SedaScheme()
        scheme.begin_model(run)
        with pytest.raises(KeyError):
            scheme.optblk_choice(99)

    def test_mac_computations_from_search(self, run):
        scheme = SedaScheme()
        protections = scheme.protect_model(run)
        for protection in protections:
            choice = scheme.optblk_choice(protection.layer_id)
            assert protection.mac_computations == choice.mac_computations


class TestStorageVariants:
    def test_onchip_mac_accounting(self):
        scheme = SedaScheme()
        assert scheme.onchip_mac_bytes(10) == 11 * 8

    def test_layer_mac_chain(self, run):
        """Layer i's ofmap-MAC write line is layer i+1's read line."""
        scheme = SedaScheme(layer_macs_offchip=True)
        protections = scheme.protect_model(run)
        lines = [
            [int(a) for a in p.metadata_stream.addrs] for p in protections
        ]
        addrs = {a for pair in lines for a in pair}
        # n+1 distinct lines chain the layers together.
        assert len(addrs) == len(run.layers) + 1
        for producer, consumer in zip(lines, lines[1:]):
            write_line = producer[1]
            read_line = consumer[0]
            assert write_line == read_line

    def test_metadata_timing_brackets_layer(self, run):
        """The layer-MAC read issues at layer start, the write at end."""
        scheme = SedaScheme(layer_macs_offchip=True)
        for protection in scheme.protect_model(run):
            stream = protection.metadata_stream
            data = protection.data_stream
            assert stream.cycles[0] == data.cycles.min()
            assert stream.cycles[1] == data.cycles.max()


class TestOnRealWorkload:
    def test_overhead_scales_with_layer_count(self):
        """Metadata is linear in layers, not in data volume."""
        sim = AcceleratorSim(SystolicArray(32, 32), SramBudget.split(480 << 10))
        small = sim.run(get_workload("dlrm"))          # 6 layers
        large = sim.run(get_workload("googlenet"))     # 58 layers
        meta_small = sum(p.metadata_bytes for p in
                         SedaScheme().protect_model(small))
        meta_large = sum(p.metadata_bytes for p in
                         SedaScheme().protect_model(large))
        assert meta_small == 2 * 64 * len(small.layers)
        assert meta_large == 2 * 64 * len(large.layers)
