"""Shared metadata-traffic machinery: run compression, cache models,
over-fetch."""

import numpy as np

from repro.accel.trace import AccessKind, Trace, TraceRange
from repro.integrity.caches import MetadataCache
from repro.protection.layout import MetadataLayout
from repro.protection.metadata_model import (
    CacheTrafficResult,
    MacTableModel,
    VnTreeModel,
    compress_runs,
    overfetch_ranges,
)


def _stream(addrs, writes=None):
    trace = Trace([
        TraceRange(i, a, 64, bool(writes[i]) if writes is not None else False,
                   AccessKind.IFMAP, 0)
        for i, a in enumerate(addrs)
    ])
    return trace.to_blocks().sorted_by_cycle()


class TestCompressRuns:
    def test_empty(self):
        empty = np.empty(0, np.int64)
        values, writes, cycles = compress_runs(
            empty, np.empty(0, bool), empty)
        assert len(values) == 0

    def test_single_run(self):
        values = np.asarray([5, 5, 5])
        writes = np.asarray([False, True, False])
        cycles = np.asarray([10, 11, 12])
        rv, rw, rc = compress_runs(values, writes, cycles)
        assert list(rv) == [5]
        assert list(rw) == [True]   # OR of the run's writes
        assert list(rc) == [10]     # first access's cycle

    def test_alternating_not_merged(self):
        values = np.asarray([1, 2, 1, 2])
        writes = np.zeros(4, bool)
        cycles = np.arange(4)
        rv, _, _ = compress_runs(values, writes, cycles)
        assert list(rv) == [1, 2, 1, 2]

    def test_runs_preserve_order(self):
        values = np.asarray([3, 3, 7, 7, 3])
        rv, _, rc = compress_runs(values, np.zeros(5, bool), np.arange(5))
        assert list(rv) == [3, 7, 3]
        assert list(rc) == [0, 2, 4]


class TestMacTableModel:
    def test_streaming_one_miss_per_line(self):
        """Sequential 64 B units: one MAC-line fetch per 8 units —
        the 12.5% MGX overhead, via 64 B per 8 x 64 B."""
        layout = MetadataLayout(64)
        model = MacTableModel(layout, MetadataCache(8 << 10))
        stream = _stream([64 * i for i in range(256)])
        out = CacheTrafficResult([], [], [])
        model.process(stream, out)
        assert out.misses == 256 // 8

    def test_writes_produce_writebacks_eventually(self):
        layout = MetadataLayout(64)
        cache = MetadataCache(64)  # single line -> immediate evictions
        model = MacTableModel(layout, cache)
        stream = _stream([64 * 8 * i for i in range(4)],
                         writes=[True] * 4)
        out = CacheTrafficResult([], [], [])
        model.process(stream, out)
        model.flush(99, out)
        writes = sum(out.stream_writes)
        assert writes == 4  # every dirtied line written back exactly once

    def test_metadata_addresses_in_mac_table(self):
        layout = MetadataLayout(64)
        model = MacTableModel(layout, MetadataCache(8 << 10))
        stream = _stream([0, 64 * 100])
        out = CacheTrafficResult([], [], [])
        model.process(stream, out)
        for addr in out.stream_addrs:
            assert addr >= layout.mac_line_addr(0)


class TestVnTreeModel:
    def test_cold_miss_walks_tree(self):
        layout = MetadataLayout(64)
        model = VnTreeModel(layout, MetadataCache(16 << 10))
        stream = _stream([0])
        out = CacheTrafficResult([], [], [])
        model.process(stream, out)
        # First access: VN line miss + every tree level missed.
        assert out.misses == 1 + layout.tree_levels

    def test_warm_tree_short_walks(self):
        """Later VN misses stop at the first cached ancestor."""
        layout = MetadataLayout(64)
        model = VnTreeModel(layout, MetadataCache(16 << 10))
        # 64 sequential VN lines (8*64 units) share low tree ancestors.
        stream = _stream([64 * u for u in range(8 * 64)])
        out = CacheTrafficResult([], [], [])
        model.process(stream, out)
        cold_walk = 1 + layout.tree_levels
        # Far fewer than a cold walk per VN line.
        assert out.misses < 64 * cold_walk / 2

    def test_hits_produce_no_traffic(self):
        layout = MetadataLayout(64)
        model = VnTreeModel(layout, MetadataCache(16 << 10))
        out = CacheTrafficResult([], [], [])
        model.process(_stream([0]), out)
        first = len(out.stream_addrs)
        model.process(_stream([0]), out)
        assert len(out.stream_addrs) == first


class TestOverfetch:
    def test_64b_units_never_overfetch(self):
        ranges = [TraceRange(0, 100, 200, False, AccessKind.IFMAP, 0)]
        assert overfetch_ranges(ranges, 64) == []

    def test_aligned_range_no_overfetch(self):
        ranges = [TraceRange(0, 512, 1024, False, AccessKind.IFMAP, 0)]
        assert overfetch_ranges(ranges, 512) == []

    def test_partial_head_and_tail(self):
        ranges = [TraceRange(0, 256, 512, False, AccessKind.IFMAP, 0)]
        extras = overfetch_ranges(ranges, 512)
        assert len(extras) == 2
        head, tail = extras
        assert head.addr == 0 and head.nbytes == 256
        assert tail.addr == 768 and tail.nbytes == 256

    def test_overfetch_is_reads(self):
        ranges = [TraceRange(0, 256, 512, True, AccessKind.OFMAP, 0)]
        extras = overfetch_ranges(ranges, 512)
        assert all(not r.write for r in extras)  # RMW fetches

    def test_overfetch_bytes_bounded(self):
        ranges = [TraceRange(0, 300, 100, False, AccessKind.IFMAP, 0)]
        extras = overfetch_ranges(ranges, 512)
        assert sum(r.nbytes for r in extras) < 2 * 512
