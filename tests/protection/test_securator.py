"""Securator-style scheme: layer MACs without tiling awareness."""

import pytest

from repro.accel.simulator import AcceleratorSim
from repro.accel.systolic import SystolicArray
from repro.models.layer import conv
from repro.models.topology import Topology
from repro.protection import SedaScheme, SecuratorScheme, make_scheme
from repro.tiling.tile import SramBudget


@pytest.fixture(scope="module")
def tiled_run():
    """A run with real halo overlap so redundancy is visible."""
    sim = AcceleratorSim(SystolicArray(16, 16),
                         SramBudget(16 << 10, 1 << 20, 1 << 20))
    return sim.run(Topology("t", [
        conv("c1", 66, 66, 3, 3, 16, 16),
        conv("c2", 64, 64, 3, 3, 16, 16),
    ]))


class TestTraffic:
    def test_layer_mac_traffic_only(self, tiled_run):
        scheme = SecuratorScheme()
        protections = scheme.protect_model(tiled_run)
        metadata_blocks = sum(len(p.metadata_stream) for p in protections)
        assert metadata_blocks == 2 * len(tiled_run.layers)

    def test_traffic_near_seda(self, tiled_run):
        securator = sum(p.total_bytes for p in
                        SecuratorScheme().protect_model(tiled_run))
        seda = sum(p.total_bytes for p in
                   SedaScheme().protect_model(tiled_run))
        assert securator == pytest.approx(seda, rel=0.01)


class TestRedundantWork:
    def test_redundant_macs_recorded(self, tiled_run):
        scheme = SecuratorScheme()
        scheme.begin_model(tiled_run)
        redundant = sum(scheme.redundant_mac_computations(r.layer_id)
                        for r in tiled_run.layers)
        assert redundant > 0  # halo re-fetches re-hashed

    def test_more_mac_work_than_seda(self, tiled_run):
        """The paper's critique: Securator re-hashes overlap bytes and
        uses a fixed fine block, so its hash-engine work exceeds SeDA's
        optBlk schedule."""
        securator_macs = sum(
            p.mac_computations
            for p in SecuratorScheme().protect_model(tiled_run))
        seda_macs = sum(
            p.mac_computations for p in SedaScheme().protect_model(tiled_run))
        assert securator_macs > seda_macs

    def test_finer_blocks_more_work(self, tiled_run):
        fine = sum(p.mac_computations for p in
                   SecuratorScheme(block_bytes=32).protect_model(tiled_run))
        coarse = sum(p.mac_computations for p in
                     SecuratorScheme(block_bytes=512).protect_model(tiled_run))
        assert fine > coarse


class TestFeatures:
    def test_factory(self):
        assert make_scheme("securator").name == "securator"

    def test_summary_flags(self):
        summary = SecuratorScheme().summary()
        assert not summary.tiling_aware
        assert not summary.encryption_scalable
        assert summary.offchip_metadata == "layer MAC"

    def test_parallel_engines(self):
        assert SecuratorScheme().crypto_engine().engines == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            SecuratorScheme(block_bytes=0)
