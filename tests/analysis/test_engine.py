"""Engine behavior: JSON document shape, sorting, engine pseudo-rules,
rule selection, and the CLI wiring."""

import json

import pytest

from repro.analysis.engine import (
    JSON_SCHEMA_VERSION,
    render_text,
    run_check,
)
from repro.analysis.registry import get_rules
from repro.cli import main as cli_main

_IMPURE = """\
    import time

    STAMP = time.time()
    """


class TestJsonDocument:
    def test_document_shape(self, make_project):
        root = make_project({"src/repro/models/demo.py": _IMPURE})
        doc = run_check(root, rule_names=["fingerprint-purity"]).as_dict()
        assert doc["schema"] == JSON_SCHEMA_VERSION
        assert doc["root"] == str(root.resolve())
        assert doc["rules"] == ["fingerprint-purity"]
        assert doc["counts"] == {"fingerprint-purity": 1}
        (finding,) = doc["findings"]
        assert set(finding) == {"rule", "path", "line", "col",
                                "message", "hint"}
        assert finding["path"] == "src/repro/models/demo.py"
        assert finding["line"] == 3
        # The document must be JSON-serializable as-is.
        json.loads(json.dumps(doc))

    def test_findings_are_sorted(self, make_project):
        root = make_project({
            "src/repro/models/b.py": _IMPURE,
            "src/repro/models/a.py": _IMPURE,
        })
        result = run_check(root, rule_names=["fingerprint-purity"])
        paths = [f.path for f in result.findings]
        assert paths == sorted(paths)


class TestEngineRules:
    def test_unknown_pragma_rule_is_reported(self, make_project):
        root = make_project({"src/repro/models/demo.py": """\
            x = 1  # repro: allow(no-such-rule)
            """})
        result = run_check(root, rule_names=["fingerprint-purity"])
        (finding,) = result.findings
        assert finding.rule == "bad-pragma"
        assert "no-such-rule" in finding.message

    def test_syntax_error_is_reported(self, make_project):
        root = make_project({"src/repro/models/demo.py": """\
            def broken(:
            """})
        result = run_check(root, rule_names=["fingerprint-purity"])
        assert any(f.rule == "parse-error" for f in result.findings)

    def test_unknown_rule_selection_raises(self, make_project):
        root = make_project({})
        with pytest.raises(KeyError, match="no-such-rule"):
            run_check(root, rule_names=["no-such-rule"])

    def test_registry_rejects_unknown_names(self):
        with pytest.raises(KeyError):
            get_rules(["no-such-rule"])


class TestRenderText:
    def test_clean_run_says_clean(self, make_project):
        root = make_project({"src/repro/models/demo.py": "x = 1\n"})
        text = render_text(run_check(root,
                                     rule_names=["fingerprint-purity"]))
        assert "clean" in text

    def test_findings_render_with_location_and_count(self, make_project):
        root = make_project({"src/repro/models/demo.py": _IMPURE})
        text = render_text(run_check(root,
                                     rule_names=["fingerprint-purity"]))
        assert "src/repro/models/demo.py:3:" in text
        assert "[fingerprint-purity]" in text
        assert "1 finding(s)" in text


class TestCli:
    def test_check_clean_exit_zero(self, make_project, capsys):
        root = make_project({"src/repro/models/demo.py": "x = 1\n"})
        rc = cli_main(["check", "--root", str(root),
                       "--rule", "fingerprint-purity"])
        assert rc == 0
        assert "clean" in capsys.readouterr().out

    def test_check_findings_exit_one_and_json(self, make_project, capsys):
        root = make_project({"src/repro/models/demo.py": _IMPURE})
        rc = cli_main(["check", "--root", str(root),
                       "--rule", "fingerprint-purity", "--json"])
        assert rc == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == JSON_SCHEMA_VERSION
        assert doc["counts"] == {"fingerprint-purity": 1}

    def test_check_unknown_rule_exit_two(self, make_project, capsys):
        root = make_project({})
        rc = cli_main(["check", "--root", str(root),
                       "--rule", "no-such-rule"])
        assert rc == 2
        assert "no-such-rule" in capsys.readouterr().err

    def test_list_rules_names_every_rule(self, capsys):
        rc = cli_main(["check", "--list-rules"])
        assert rc == 0
        out = capsys.readouterr().out
        for name in ("fingerprint-purity", "schema-guard", "tier-parity",
                     "obs-noop-discipline", "hot-path-hygiene"):
            assert name in out
