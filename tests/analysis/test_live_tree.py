"""Meta-tests against the real checkout: the live tree must be clean,
and every rule's seed violation must still fire."""

from repro.analysis.engine import render_text, run_check
from repro.analysis.registry import all_rules
from repro.analysis.smoke import run_smoke


class TestLiveTree:
    def test_live_tree_is_violation_free(self, repo_root):
        result = run_check(repo_root)
        assert result.findings == [], "\n" + render_text(result)

    def test_every_rule_ships_a_seed_violation(self):
        for rule in all_rules():
            assert rule.seed_violation is not None, rule.name
            assert rule.seed_violation.path, rule.name

    def test_every_rule_has_name_and_description(self):
        for rule in all_rules():
            assert rule.name and rule.description


class TestSeedSmoke:
    def test_seeded_violations_all_fire(self, repo_root):
        import io

        out = io.StringIO()
        rc = run_smoke(repo_root, out=out)
        text = out.getvalue()
        assert rc == 0, text
        assert "all 9 rules fire" in text
