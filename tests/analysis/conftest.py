"""Shared scratch-project builder for the analysis tests."""

import textwrap
from pathlib import Path

import pytest


@pytest.fixture
def make_project(tmp_path):
    """Build a throwaway checkout: ``make_project({rel_path: source})``.

    Always creates ``src/repro/`` (what ``Project.validate`` demands);
    sources are dedented so fixtures can be written inline.
    """
    def build(files) -> Path:
        (tmp_path / "src" / "repro").mkdir(parents=True, exist_ok=True)
        for rel, text in files.items():
            path = tmp_path / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(text), encoding="utf-8")
        return tmp_path
    return build


@pytest.fixture(scope="session")
def repo_root() -> Path:
    return Path(__file__).resolve().parents[2]
