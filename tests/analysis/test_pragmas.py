"""Pragma parsing: comment-token extraction and coverage semantics."""

from repro.analysis.pragmas import parse_pragmas


class TestLinePragmas:
    def test_trailing_pragma_covers_its_line(self):
        index = parse_pragmas("x = 1  # repro: allow(some-rule)\n")
        assert index.allows("some-rule", 1)
        assert not index.allows("some-rule", 3)
        assert not index.allows("other-rule", 1)

    def test_standalone_pragma_covers_line_below(self):
        source = "# repro: allow(some-rule)\nx = 1\ny = 2\n"
        index = parse_pragmas(source)
        assert index.allows("some-rule", 1)
        assert index.allows("some-rule", 2)
        assert not index.allows("some-rule", 3)

    def test_multiple_rules_one_pragma(self):
        index = parse_pragmas("x = 1  # repro: allow(rule-a, rule-b)\n")
        assert index.allows("rule-a", 1)
        assert index.allows("rule-b", 1)

    def test_prose_after_pragma_is_tolerated(self):
        index = parse_pragmas(
            "x = 1  # repro: allow(rule-a) -- sanctioned because reasons\n")
        assert index.allows("rule-a", 1)


class TestFilePragmas:
    def test_file_pragma_covers_every_line(self):
        source = "# repro: allow-file(rule-a)\nx = 1\n\n\ny = 2\n"
        index = parse_pragmas(source)
        assert index.allows("rule-a", 1)
        assert index.allows("rule-a", 5)
        assert not index.allows("rule-b", 5)


class TestRobustness:
    def test_pragma_text_in_string_literal_is_ignored(self):
        source = 's = "# repro: allow(rule-a)"\nx = 1\n'
        index = parse_pragmas(source)
        assert not index.allows("rule-a", 1)
        assert not index.allows("rule-a", 2)
        assert index.mentions == []

    def test_mentions_record_every_named_rule(self):
        source = ("x = 1  # repro: allow(rule-a)\n"
                  "# repro: allow-file(rule-b)\n")
        index = parse_pragmas(source)
        assert (1, "rule-a") in index.mentions
        assert (2, "rule-b") in index.mentions

    def test_plain_comments_are_not_pragmas(self):
        index = parse_pragmas("# allow(rule-a)\n# repro: todo\nx = 1\n")
        assert index.mentions == []
