"""Unit tests for the whole-program effect inference.

Everything here runs over throwaway scratch checkouts built with the
shared ``make_project`` fixture, so the assertions pin the inference
*mechanics* (classification, call resolution, fixpoint propagation,
manifest layout) without depending on the live tree's contents.
"""

from pathlib import Path

from repro.analysis.context import Project
from repro.analysis.effects import (
    ALL_EFFECTS,
    analyze_project,
    get_analysis,
    module_name_for,
)
from repro.analysis.effects.manifest import (
    MANIFEST_FORMAT,
    PURE_PACKAGES,
    build_manifest,
    module_package,
)
from repro.analysis.effects.model import (
    ENV_READ,
    FS_READ,
    FS_RENAME,
    FS_UNLINK,
    FS_WRITE,
    GLOBAL_WRITE,
    LOCK_ACQUIRE,
    LOCK_RELEASE,
    PROCESS_SPAWN,
)


def _analyze(root):
    return analyze_project(Project(Path(root)))


def _direct(analysis, qualname):
    return analysis.functions[qualname].direct


class TestDirectEffects:
    def test_open_modes_and_os_calls(self, make_project):
        root = make_project({"src/repro/demo.py": """\
            import os

            def reader(path):
                with open(path) as handle:
                    return handle.read()

            def writer(path, text):
                with open(path, "w") as handle:
                    handle.write(text)

            def publisher(tmp, final):
                os.replace(tmp, final)

            def remover(path):
                os.unlink(path)
            """})
        analysis = _analyze(root)
        assert _direct(analysis, "repro.demo:reader") == {FS_READ}
        assert _direct(analysis, "repro.demo:writer") == {FS_WRITE}
        assert _direct(analysis, "repro.demo:publisher") == {FS_RENAME}
        assert _direct(analysis, "repro.demo:remover") == {FS_UNLINK}

    def test_dynamic_open_mode_assumes_write(self, make_project):
        root = make_project({"src/repro/demo.py": """\
            def opener(path, mode):
                return open(path, mode)
            """})
        analysis = _analyze(root)
        assert _direct(analysis, "repro.demo:opener") == {FS_WRITE}

    def test_path_methods_are_duck_typed(self, make_project):
        root = make_project({"src/repro/demo.py": """\
            def dump(path, text):
                path.write_text(text)

            def listing(root):
                return sorted(root.glob("*.json"))

            def renamer(src, dst):
                # str.replace homonym: must NOT classify as a rename.
                return src.replace("a", "b")
            """})
        analysis = _analyze(root)
        assert _direct(analysis, "repro.demo:dump") == {FS_WRITE}
        assert _direct(analysis, "repro.demo:listing") == {FS_READ}
        assert _direct(analysis, "repro.demo:renamer") == frozenset()

    def test_spawn_env_global_and_locks(self, make_project):
        root = make_project({"src/repro/demo.py": """\
            import fcntl
            import os
            import subprocess

            COUNT = 0

            def shell(cmd):
                return subprocess.run(cmd)

            def env_flag():
                return os.environ.get("REPRO_FLAG")

            def bump():
                global COUNT
                COUNT += 1

            def lock(handle):
                fcntl.flock(handle, fcntl.LOCK_EX)

            def unlock(handle):
                fcntl.flock(handle, fcntl.LOCK_UN)
            """})
        analysis = _analyze(root)
        assert _direct(analysis, "repro.demo:shell") == {PROCESS_SPAWN}
        assert _direct(analysis, "repro.demo:env_flag") == {ENV_READ}
        assert _direct(analysis, "repro.demo:bump") == {GLOBAL_WRITE}
        assert _direct(analysis, "repro.demo:lock") == {LOCK_ACQUIRE}
        assert _direct(analysis, "repro.demo:unlock") == {LOCK_RELEASE}

    def test_import_alias_chain_resolves(self, make_project):
        # The optional-dependency idiom the store uses: the effectful
        # module is imported under a private name and rebound at top
        # level, possibly inside try/except.
        root = make_project({"src/repro/demo.py": """\
            try:
                import fcntl as _fcntl_mod
            except ImportError:
                fcntl = None
            else:
                fcntl = _fcntl_mod

            def lock(handle):
                fcntl.flock(handle, fcntl.LOCK_EX)
            """})
        analysis = _analyze(root)
        assert _direct(analysis, "repro.demo:lock") == {LOCK_ACQUIRE}


class TestPropagation:
    def test_transitive_crosses_modules(self, make_project):
        root = make_project({
            "src/repro/io_util.py": """\
                import os

                def publish(tmp, final):
                    os.replace(tmp, final)
                """,
            "src/repro/front.py": """\
                from repro.io_util import publish

                def save(tmp, final):
                    publish(tmp, final)

                def pure(x):
                    return x + 1
                """,
        })
        analysis = _analyze(root)
        save = analysis.functions["repro.front:save"]
        assert save.direct == frozenset()
        assert save.transitive == {FS_RENAME}
        assert "repro.io_util:publish" in save.calls
        pure = analysis.functions["repro.front:pure"]
        assert pure.transitive == frozenset()

    def test_recursion_reaches_fixpoint(self, make_project):
        root = make_project({"src/repro/demo.py": """\
            import os

            def ping(n):
                if n:
                    return pong(n - 1)
                return os.listdir(".")

            def pong(n):
                return ping(n)
            """})
        analysis = _analyze(root)
        assert analysis.functions["repro.demo:ping"].transitive \
            == {FS_READ}
        assert analysis.functions["repro.demo:pong"].transitive \
            == {FS_READ}

    def test_method_calls_resolve_through_self(self, make_project):
        root = make_project({"src/repro/demo.py": """\
            import os

            class Store:
                def _sweep(self):
                    os.unlink("x")

                def clear(self):
                    self._sweep()
            """})
        analysis = _analyze(root)
        clear = analysis.functions["repro.demo:Store.clear"]
        assert "repro.demo:Store._sweep" in clear.calls
        assert clear.transitive == {FS_UNLINK}

    def test_module_summary_and_reachability(self, make_project):
        root = make_project({"src/repro/demo.py": """\
            import os

            def touch(path):
                os.utime(path, None)

            def entry(path):
                touch(path)
            """})
        analysis = _analyze(root)
        direct, transitive = analysis.module_summary("repro.demo")
        assert direct == {FS_WRITE}
        assert transitive == {FS_WRITE}
        reached = analysis.reachable_from(["repro.demo:entry"])
        assert "repro.demo:touch" in reached

    def test_module_toplevel_gets_pseudo_function(self, make_project):
        root = make_project({"src/repro/demo.py": """\
            import os

            STAMP = os.getenv("REPRO_STAMP")
            """})
        analysis = _analyze(root)
        assert _direct(analysis, "repro.demo:<module>") == {ENV_READ}


class TestManifest:
    def test_build_layout(self, make_project):
        root = make_project({"src/repro/demo.py": """\
            import os

            def sweep(path):
                os.unlink(path)
            """})
        manifest = build_manifest(_analyze(root))
        assert manifest["format"] == MANIFEST_FORMAT
        assert manifest["pure_packages"] == list(PURE_PACKAGES)
        entry = manifest["modules"]["repro.demo"]
        assert entry["direct"] == [FS_UNLINK]
        assert entry["transitive"] == [FS_UNLINK]
        for module in manifest["modules"].values():
            assert set(module["direct"]) <= set(ALL_EFFECTS)
            assert set(module["transitive"]) <= set(ALL_EFFECTS)

    def test_module_package_grouping(self):
        assert module_package("repro.runner.store") == "repro.runner"
        assert module_package("repro.tiling") == "repro.tiling"
        assert module_package("repro") == "repro"

    def test_module_name_for_paths(self):
        assert module_name_for("src/repro/runner/store.py") \
            == "repro.runner.store"
        assert module_name_for("src/repro/tiling/__init__.py") \
            == "repro.tiling"

    def test_get_analysis_is_memoized(self, make_project):
        root = make_project({"src/repro/demo.py": """\
            def pure(x):
                return x
            """})
        project = Project(Path(root))
        assert get_analysis(project) is get_analysis(project)
