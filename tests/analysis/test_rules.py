"""Per-rule fixtures: positive, negative and pragma-suppressed cases.

Each case builds a minimal scratch checkout and runs exactly one rule
over it, so cross-rule noise (e.g. schema-guard noticing the scratch
tree has no records module) never reaches these assertions.
"""

import pytest

from repro.analysis.engine import run_check


def _findings(root, rule):
    result = run_check(root, rule_names=[rule])
    return [f for f in result.findings if f.rule == rule]


class TestFingerprintPurity:
    RULE = "fingerprint-purity"

    def test_clock_read_in_scope_fires(self, make_project):
        root = make_project({"src/repro/models/demo.py": """\
            import time

            STAMP = time.time()
            """})
        found = _findings(root, self.RULE)
        assert len(found) == 1
        assert found[0].path == "src/repro/models/demo.py"
        assert "time.time" in found[0].message
        assert found[0].hint

    def test_deterministic_module_is_clean(self, make_project):
        root = make_project({"src/repro/models/demo.py": """\
            def double(values):
                return [v * 2 for v in values]
            """})
        assert _findings(root, self.RULE) == []

    def test_pragma_suppresses_seeded_rng(self, make_project):
        root = make_project({"src/repro/models/demo.py": """\
            import random

            def shuffle(items, seed):
                rng = random.Random(seed)  # repro: allow(fingerprint-purity)
                rng.shuffle(items)
                return items
            """})
        assert _findings(root, self.RULE) == []

    def test_excluded_module_is_out_of_scope(self, make_project):
        root = make_project({"src/repro/obs/demo.py": """\
            import time

            STAMP = time.time()
            """})
        assert _findings(root, self.RULE) == []

    def test_unsorted_glob_fires_sorted_does_not(self, make_project):
        root = make_project({"src/repro/models/demo.py": """\
            def listing(root):
                return [p.name for p in root.glob("*.json")]

            def sorted_listing(root):
                return [p.name for p in sorted(root.glob("*.json"))]
            """})
        found = _findings(root, self.RULE)
        assert len(found) == 1
        assert ".glob()" in found[0].message

    def test_set_iteration_fires(self, make_project):
        root = make_project({"src/repro/models/demo.py": """\
            def names(items):
                return [n for n in set(items)]
            """})
        found = _findings(root, self.RULE)
        assert len(found) == 1
        assert "hash-order" in found[0].message

    def test_env_read_fires(self, make_project):
        root = make_project({"src/repro/models/demo.py": """\
            import os

            FLAG = os.environ.get("SOME_FLAG")
            """})
        assert len(_findings(root, self.RULE)) == 1


class TestHotPathHygiene:
    RULE = "hot-path-hygiene"

    def test_tolist_iteration_fires(self, make_project):
        root = make_project({"src/repro/dram/demo.py": """\
            def total(addrs):
                acc = 0
                for addr in addrs.tolist():
                    acc += addr
                return acc
            """})
        found = _findings(root, self.RULE)
        assert len(found) == 1
        assert ".tolist()" in found[0].message

    def test_column_operations_are_clean(self, make_project):
        root = make_project({"src/repro/dram/demo.py": """\
            def totals(addrs, streams):
                base = addrs.sum()
                return [base + s.length for s in streams]
            """})
        assert _findings(root, self.RULE) == []

    def test_enumerate_over_column_fires(self, make_project):
        root = make_project({"src/repro/dram/demo.py": """\
            def scan(cycles):
                return [i for i, c in enumerate(cycles)]
            """})
        found = _findings(root, self.RULE)
        assert len(found) == 1
        assert "enumerate" in found[0].message

    def test_pragma_suppresses_scalar_carry(self, make_project):
        root = make_project({"src/repro/dram/demo.py": """\
            def carry(arrivals):
                acc = 0.0
                # repro: allow(hot-path-hygiene)
                for a in arrivals.tolist():
                    acc = max(acc, a)
                return acc
            """})
        assert _findings(root, self.RULE) == []

    def test_unscoped_plane_is_ignored(self, make_project):
        root = make_project({"src/repro/models/demo.py": """\
            def total(addrs):
                return sum(a for a in addrs.tolist())
            """})
        assert _findings(root, self.RULE) == []


class TestObsDiscipline:
    RULE = "obs-noop-discipline"

    def test_recorder_call_in_loop_fires(self, make_project):
        root = make_project({"src/repro/protection/demo.py": """\
            from repro import obs

            def drive(accesses):
                for access in accesses:
                    obs.incr("demo.access")
            """})
        found = _findings(root, self.RULE)
        assert len(found) == 1
        assert "obs.incr" in found[0].message

    def test_stage_granularity_is_clean(self, make_project):
        root = make_project({"src/repro/protection/demo.py": """\
            from repro import obs

            def drive(accesses):
                with obs.span("demo.drive"):
                    total = len(accesses)
                obs.incr("demo.accesses", total)
            """})
        assert _findings(root, self.RULE) == []

    def test_function_boundary_stops_the_walk(self, make_project):
        root = make_project({"src/repro/protection/demo.py": """\
            from repro import obs

            def build(stages):
                handlers = []
                for stage in stages:
                    def handler():
                        obs.incr("demo.stage")
                    handlers.append(handler)
                return handlers
            """})
        assert _findings(root, self.RULE) == []

    def test_pragma_suppresses_sanctioned_loop(self, make_project):
        root = make_project({"src/repro/protection/demo.py": """\
            from repro import obs

            def drive(layers):
                for layer in layers:
                    # repro: allow(obs-noop-discipline)
                    obs.incr("demo.layer")
            """})
        assert _findings(root, self.RULE) == []

    def test_recorder_call_in_comprehension_fires(self, make_project):
        root = make_project({"src/repro/accel/demo.py": """\
            from repro import obs

            def drive(accesses):
                return [obs.incr("demo.access") for _ in accesses]
            """})
        assert len(_findings(root, self.RULE)) == 1


_GOOD_NATIVE = """\
    FALLBACKS = {
        "my_kernel": ["repro.slow:slow_kernel"],
    }

    def _load():
        return None

    def my_kernel(x):
        lib = _load()
        return None if lib is None else x

    def available():
        return _load() is not None
    """

_SLOW = """\
    def slow_kernel(x):
        return x
    """

_KERNEL_TEST = """\
    from repro.slow import slow_kernel
    from repro.utils import native

    def test_kernel_parity():
        assert native.my_kernel(3) in (None, slow_kernel(3))
    """


class TestTierParity:
    RULE = "tier-parity"

    def _tree(self, native):
        return {
            "src/repro/utils/native.py": native,
            "src/repro/slow.py": _SLOW,
            "tests/test_kernels.py": _KERNEL_TEST,
        }

    def test_registered_and_tested_kernel_is_clean(self, make_project):
        root = make_project(self._tree(_GOOD_NATIVE))
        assert _findings(root, self.RULE) == []

    def test_unregistered_entry_point_fires(self, make_project):
        native = _GOOD_NATIVE + (
            "\n"
            "    def rogue_kernel(x):\n"
            "        lib = _load()\n"
            "        return x\n")
        root = make_project(self._tree(native))
        found = _findings(root, self.RULE)
        messages = " | ".join(f.message for f in found)
        assert "rogue_kernel" in messages
        assert "not in" in messages

    def test_unresolvable_fallback_fires(self, make_project):
        native = _GOOD_NATIVE.replace("repro.slow:slow_kernel",
                                      "repro.slow:missing_kernel")
        root = make_project(self._tree(native))
        found = _findings(root, self.RULE)
        assert any("does not resolve" in f.message for f in found)

    def test_untested_kernel_fires(self, make_project):
        files = self._tree(_GOOD_NATIVE)
        files["tests/test_kernels.py"] = "def test_unrelated():\n    pass\n"
        root = make_project(files)
        found = _findings(root, self.RULE)
        assert any("never named under tests/" in f.message for f in found)

    def test_stale_manifest_entry_fires(self, make_project):
        native = _GOOD_NATIVE.replace(
            '"my_kernel": ["repro.slow:slow_kernel"],',
            '"my_kernel": ["repro.slow:slow_kernel"],\n'
            '        "gone_kernel": ["repro.slow:slow_kernel"],')
        root = make_project(self._tree(native))
        found = _findings(root, self.RULE)
        assert any("gone_kernel" in f.message for f in found)

    def test_missing_manifest_fires(self, make_project):
        native = "\n".join(
            line for line in _GOOD_NATIVE.splitlines()
            if "FALLBACKS" not in line and '"my_kernel"' not in line
            and line.strip() != "}") + "\n"
        root = make_project(self._tree(native))
        found = _findings(root, self.RULE)
        assert any("no literal FALLBACKS manifest" in f.message
                   for f in found)


class TestSchemaGuard:
    RULE = "schema-guard"

    @pytest.fixture
    def records_source(self, repo_root):
        return (repo_root / "src/repro/runner/records.py") \
            .read_text(encoding="utf-8")

    def _tree(self, source):
        return {"src/repro/runner/records.py": source}

    def test_pinned_layout_is_clean(self, make_project, records_source):
        root = make_project(self._tree(records_source))
        assert _findings(root, self.RULE) == []

    def test_field_change_without_bump_fires(self, make_project,
                                             records_source):
        mutated = records_source.replace(
            '"scheme_name": run.scheme_name,',
            '"scheme_name": run.scheme_name,\n        "smoke": 0,')
        assert mutated != records_source
        root = make_project(self._tree(mutated))
        found = _findings(root, self.RULE)
        assert len(found) == 1
        assert "without bumping SCHEMA_VERSION" in found[0].message

    def test_field_change_with_bump_wants_regen(self, make_project,
                                                records_source):
        mutated = records_source.replace(
            '"scheme_name": run.scheme_name,',
            '"scheme_name": run.scheme_name,\n        "smoke": 0,')
        mutated = mutated.replace("SCHEMA_VERSION = 4",
                                  "SCHEMA_VERSION = 5")
        assert "SCHEMA_VERSION = 5" in mutated
        root = make_project(self._tree(mutated))
        found = _findings(root, self.RULE)
        assert found
        assert all("regenerate" in f.hint for f in found)

    def test_bare_bump_wants_regen(self, make_project, records_source):
        mutated = records_source.replace("SCHEMA_VERSION = 4",
                                         "SCHEMA_VERSION = 5")
        root = make_project(self._tree(mutated))
        found = _findings(root, self.RULE)
        assert len(found) == 1
        assert "pinned manifest records" in found[0].message


class TestAtomicWriteDiscipline:
    RULE = "atomic-write-discipline"
    STORE = "src/repro/runner/store.py"

    CLEAN_STORE = """\
        import json
        import os
        import tempfile

        class ResultStore:
            def _path(self, key):
                return key

            def put(self, key, record):
                fd, tmp = tempfile.mkstemp(dir=".")
                with os.fdopen(fd, "w") as handle:
                    json.dump(record, handle)
                os.replace(tmp, self._path(key))

            def clear(self):
                pass

            def flush_stats(self):
                pass

            def demote_hit(self, key):
                pass
        """

    def test_mkstemp_plus_publish_is_clean(self, make_project):
        root = make_project({self.STORE: self.CLEAN_STORE})
        assert _findings(root, self.RULE) == []

    def test_direct_write_in_store_fires(self, make_project):
        root = make_project({self.STORE: self.CLEAN_STORE + """\

            def fast_put(store, key, record):
                with open(store._path(key), "w") as handle:
                    json.dump(record, handle)
        """})
        found = _findings(root, self.RULE)
        assert len(found) == 1
        assert found[0].path == self.STORE
        assert "writes a file directly" in found[0].message

    def test_mkstemp_without_publish_fires(self, make_project):
        root = make_project({self.STORE: self.CLEAN_STORE + """\

            def spill(record):
                fd, tmp = tempfile.mkstemp(dir=".")
                with os.fdopen(fd, "w") as handle:
                    json.dump(record, handle)
                return tmp
        """})
        found = _findings(root, self.RULE)
        assert len(found) == 1
        assert "neither publishes" in found[0].message

    def test_discipline_follows_the_call_graph(self, make_project):
        root = make_project({
            self.STORE: """\
                from repro.runner.spill import dump

                class ResultStore:
                    def _path(self, key):
                        return key

                    def put(self, key, record):
                        dump(self._path(key), record)

                    def clear(self):
                        pass

                    def flush_stats(self):
                        pass

                    def demote_hit(self, key):
                        pass
                """,
            "src/repro/runner/spill.py": """\
                import json

                def dump(path, record):
                    with open(path, "w") as handle:
                        json.dump(record, handle)
                """,
        })
        found = _findings(root, self.RULE)
        assert len(found) == 1
        assert found[0].path == "src/repro/runner/spill.py"
        assert "reader can observe" in found[0].message

    def test_missing_store_module_fires(self, make_project):
        root = make_project({"src/repro/runner/__init__.py": ""})
        found = _findings(root, self.RULE)
        assert len(found) == 1
        assert "missing entirely" in found[0].message

    def test_pragma_suppresses(self, make_project):
        source = self.CLEAN_STORE + """\

            def fast_put(store, key, record):
                with open(store._path(key), "w") as handle:  # repro: allow(atomic-write-discipline)
                    json.dump(record, handle)
        """
        root = make_project({self.STORE: source})
        assert _findings(root, self.RULE) == []


class TestLockDiscipline:
    RULE = "lock-discipline"
    STORE = "src/repro/runner/store.py"

    PREAMBLE = """\
        import json
        import os
        import tempfile
        from contextlib import contextmanager

        class ResultStore:
            def _stats_path(self):
                return "stats.json"

            def _record_paths(self):
                return []

            def _load_persistent(self):
                with open(self._stats_path()) as handle:
                    return json.load(handle)

            @contextmanager
            def _stats_lock(self):
                yield

            @contextmanager
            def _writer_lock(self):
                yield
        """

    def test_locked_rmw_is_clean(self, make_project):
        root = make_project({self.STORE: self.PREAMBLE + """\

            def flush_stats(self):
                with self._stats_lock():
                    data = self._load_persistent()
                    fd, tmp = tempfile.mkstemp(dir=".")
                    with os.fdopen(fd, "w") as handle:
                        json.dump(data, handle)
                    os.replace(tmp, self._stats_path())

            def clear(self):
                with self._writer_lock():
                    for path in self._record_paths():
                        path.unlink()
        """})
        assert _findings(root, self.RULE) == []

    def test_unlocked_stats_merge_fires(self, make_project):
        root = make_project({self.STORE: self.PREAMBLE + """\

            def flush_stats(self):
                data = self._load_persistent()
                fd, tmp = tempfile.mkstemp(dir=".")
                with os.fdopen(fd, "w") as handle:
                    json.dump(data, handle)
                os.replace(tmp, self._stats_path())
        """})
        found = _findings(root, self.RULE)
        assert found
        assert all("_stats_lock" in f.message for f in found)
        assert any("concurrent writers lose updates" in f.message
                   for f in found)

    def test_taint_tracks_enumerated_paths(self, make_project):
        root = make_project({self.STORE: self.PREAMBLE + """\

            def clear(self):
                doomed = list(self._record_paths())
                for path in doomed:
                    path.unlink()
        """})
        found = _findings(root, self.RULE)
        assert found
        assert all("_writer_lock" in f.message for f in found)

    def test_bare_lock_call_fires(self, make_project):
        root = make_project({self.STORE: self.PREAMBLE + """\

            def clear(self):
                self._writer_lock()
        """})
        found = _findings(root, self.RULE)
        assert len(found) == 1
        assert "outside a 'with' statement" in found[0].message

    def test_flock_outside_lock_helper_fires(self, make_project):
        root = make_project({self.STORE: self.PREAMBLE + """\

            def grab(self, handle):
                import fcntl
                fcntl.flock(handle, fcntl.LOCK_EX)
        """})
        found = _findings(root, self.RULE)
        assert len(found) == 1
        assert "*_lock contextmanager" in found[0].message

    def test_flock_without_finally_release_fires(self, make_project):
        root = make_project({self.STORE: self.PREAMBLE + """\

            @contextmanager
            def _sidecar_lock(self, handle):
                import fcntl
                fcntl.flock(handle, fcntl.LOCK_EX)
                yield
                fcntl.flock(handle, fcntl.LOCK_UN)
        """})
        found = _findings(root, self.RULE)
        assert len(found) == 1
        assert "LOCK_UN in a finally" in found[0].message


class TestEffectBudget:
    RULE = "effect-budget"
    PURE = "src/repro/tiling/demo.py"

    def _at(self, root, path):
        return [f for f in _findings(root, self.RULE)
                if f.path == path]

    def test_effect_in_pure_package_fires(self, make_project):
        root = make_project({self.PURE: """\
            def dump_plan(plan, path):
                path.write_text(repr(plan))
            """})
        found = self._at(root, self.PURE)
        assert len(found) == 1
        assert "pure package repro.tiling" in found[0].message

    def test_pure_math_is_clean(self, make_project):
        root = make_project({self.PURE: """\
            def blocks(n, b):
                return (n + b - 1) // b
            """})
        assert self._at(root, self.PURE) == []

    def test_effect_outside_pure_packages_is_out_of_scope(
            self, make_project):
        impure = "src/repro/runner/spill.py"
        root = make_project({impure: """\
            def dump(path, text):
                path.write_text(text)
            """})
        assert self._at(root, impure) == []

    def test_pragma_suppresses(self, make_project):
        root = make_project({self.PURE: """\
            def dump_plan(plan, path):
                path.write_text(repr(plan))  # repro: allow(effect-budget)
            """})
        assert self._at(root, self.PURE) == []

    def test_scratch_tree_reports_manifest_drift(self, make_project):
        # A scratch checkout with none of the pinned pure modules must
        # say so (with the regenerate hint), not silently pass.
        root = make_project({self.PURE: """\
            def blocks(n, b):
                return (n + b - 1) // b
            """})
        drift = [f for f in _findings(root, self.RULE)
                 if "no longer exists" in f.message
                 or "missing from the pinned manifest" in f.message]
        assert drift
        assert all("python -m repro.analysis.effects.manifest"
                   in f.hint for f in drift)
