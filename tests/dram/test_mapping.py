"""Address -> (channel, bank, row) mapping."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.mapping import AddressMapping
from repro.dram.timing import DramConfig

CFG = DramConfig(total_bandwidth_gbps=16.0, channels=4,
                 banks_per_channel=8, row_bytes=1024)
MAPPING = AddressMapping(CFG)


class TestInterleaving:
    def test_consecutive_blocks_round_robin_channels(self):
        addrs = np.arange(8, dtype=np.uint64) * 64
        channels, _, _ = MAPPING.decompose(addrs)
        assert list(channels) == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_row_fills_before_bank_changes(self):
        # Channel-local blocks: one row holds row_bytes/64 = 16 blocks.
        addrs = np.arange(0, 64 * 4 * 17, 64 * 4, dtype=np.uint64)  # channel 0
        _, banks, rows = MAPPING.decompose(addrs)
        assert (banks[:16] == banks[0]).all()
        assert banks[16] == banks[0] + 1
        assert (rows[:16] == rows[0]).all()

    def test_row_advances_after_all_banks(self):
        blocks_per_row = CFG.blocks_per_row
        stride = 64 * CFG.channels
        one_row_all_banks = blocks_per_row * CFG.banks_per_channel
        addr = one_row_all_banks * stride
        _, bank, row = MAPPING.decompose_one(addr)
        assert bank == 0
        assert row == 1

    def test_decompose_one_matches_vector(self):
        for addr in (0, 64, 4096, 123456 * 64):
            single = MAPPING.decompose_one(addr)
            channel, bank, row = MAPPING.decompose(
                np.asarray([addr], dtype=np.uint64))
            assert single == (channel[0], bank[0], row[0])

    @given(st.integers(0, 2**34 // 64))
    @settings(max_examples=100)
    def test_fields_in_range(self, block):
        channel, bank, row = MAPPING.decompose_one(block * 64)
        assert 0 <= channel < CFG.channels
        assert 0 <= bank < CFG.banks_per_channel
        assert row >= 0
