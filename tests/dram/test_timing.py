"""DRAM configuration and timing arithmetic."""

import pytest

from repro.dram.timing import DramConfig, DramTiming, EDGE_DRAM, SERVER_DRAM


class TestTiming:
    def test_row_miss_penalty(self):
        timing = DramTiming(t_rcd_ns=14.0, t_rp_ns=14.0)
        assert timing.row_miss_penalty_ns == 28.0


class TestConfig:
    def test_channel_bandwidth(self):
        assert SERVER_DRAM.channel_bandwidth_gbps == 5.0
        assert EDGE_DRAM.channel_bandwidth_gbps == 2.5

    def test_burst_time(self):
        # 64 B at 5 GB/s per channel = 12.8 ns.
        assert SERVER_DRAM.burst_ns == pytest.approx(12.8)

    def test_blocks_per_row(self):
        assert SERVER_DRAM.blocks_per_row == 2048 // 64

    def test_cycle_conversion(self):
        assert SERVER_DRAM.to_cycles(10.0, freq_ghz=1.0) == 10.0
        assert SERVER_DRAM.to_cycles(10.0, freq_ghz=2.75) == pytest.approx(27.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            DramConfig(total_bandwidth_gbps=0)
        with pytest.raises(ValueError):
            DramConfig(total_bandwidth_gbps=10, channels=0)
        with pytest.raises(ValueError):
            DramConfig(total_bandwidth_gbps=10, row_bytes=100)
        with pytest.raises(ValueError):
            SERVER_DRAM.to_cycles(1.0, freq_ghz=0)
