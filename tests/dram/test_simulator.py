"""DRAM timing: reference event model vs vectorized fast model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel.trace import BlockStream
from repro.dram.simulator import DramSim
from repro.dram.timing import DramConfig, SERVER_DRAM


def _stream(addrs, cycles=None, writes=None):
    n = len(addrs)
    return BlockStream(
        np.asarray(cycles if cycles is not None else np.zeros(n), np.int64),
        np.asarray(addrs, np.uint64),
        np.asarray(writes if writes is not None else np.zeros(n, bool), bool),
        np.zeros(n, np.int32),
    )


@pytest.fixture
def sim():
    return DramSim(SERVER_DRAM, freq_ghz=1.0)


class TestEmptyAndTrivial:
    def test_empty_stream(self, sim):
        result = sim.simulate(_stream([]))
        assert result.requests == 0
        assert result.busy_cycles == 0.0
        fast = sim.simulate_fast(_stream([]))
        assert fast.requests == 0

    def test_single_request(self, sim):
        result = sim.simulate(_stream([0]))
        assert result.requests == 1
        assert result.row_misses == 1  # cold row buffer
        assert result.completion_cycle > 0


class TestRowBufferBehaviour:
    def test_sequential_mostly_hits(self, sim):
        addrs = np.arange(4096, dtype=np.uint64) * 64
        result = sim.simulate_fast(_stream(addrs))
        assert result.row_hit_rate > 0.9

    def test_random_mostly_misses(self, sim):
        rng = np.random.default_rng(7)
        addrs = rng.integers(0, 1 << 22, 4096).astype(np.uint64) * 64
        result = sim.simulate_fast(_stream(addrs))
        assert result.row_hit_rate < 0.2

    def test_interleaved_streams_thrash(self, sim):
        """Alternating far-apart regions in the same banks adds misses."""
        a = np.arange(1024, dtype=np.uint64) * 64
        b = a + (1 << 30)
        interleaved = np.empty(2048, dtype=np.uint64)
        interleaved[0::2] = a
        interleaved[1::2] = b
        seq = sim.simulate_fast(_stream(np.concatenate([a, b])))
        mix = sim.simulate_fast(_stream(interleaved))
        assert mix.row_misses > seq.row_misses

    def test_repeated_same_block_hits(self, sim):
        addrs = np.zeros(100, dtype=np.uint64)
        result = sim.simulate_fast(_stream(addrs))
        assert result.row_misses == 1


class TestFastVsReference:
    @given(st.lists(st.integers(0, 1 << 20), min_size=1, max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_miss_counts_agree(self, blocks):
        sim = DramSim(SERVER_DRAM, freq_ghz=1.0)
        addrs = np.asarray(blocks, dtype=np.uint64) * 64
        ref = sim.simulate(_stream(addrs))
        fast = sim.simulate_fast(_stream(addrs))
        assert ref.row_misses == fast.row_misses
        assert ref.row_hits == fast.row_hits

    @given(st.lists(st.integers(0, 1 << 16), min_size=1, max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_busy_times_agree(self, blocks):
        """Both engines account identical per-channel busy time."""
        sim = DramSim(SERVER_DRAM, freq_ghz=1.0)
        addrs = np.asarray(blocks, dtype=np.uint64) * 64
        ref = sim.simulate(_stream(addrs))
        fast = sim.simulate_fast(_stream(addrs))
        assert ref.busy_cycles == pytest.approx(fast.busy_cycles, rel=1e-9)

    def test_completion_bounds_busy(self, sim):
        addrs = np.arange(2000, dtype=np.uint64) * 64
        ref = sim.simulate(_stream(addrs))
        assert ref.completion_cycle >= ref.busy_cycles

    def test_randomized_mixed_traffic_agreement(self, sim):
        """Random addresses, cycles and writes: the fast model matches
        the reference's hit/miss classification exactly and its busy
        accounting to float tolerance."""
        rng = np.random.default_rng(1234)
        for _ in range(10):
            n = int(rng.integers(1, 2000))
            addrs = rng.integers(0, 1 << 26, n).astype(np.uint64) * 64
            cycles = rng.integers(0, 10_000, n)
            writes = rng.integers(0, 2, n).astype(bool)
            stream = _stream(addrs, cycles=cycles, writes=writes)
            ref = sim.simulate(stream)
            fast = sim.simulate_fast(stream)
            assert ref.row_misses == fast.row_misses
            assert ref.row_hits == fast.row_hits
            assert ref.per_channel_requests == fast.per_channel_requests
            assert ref.busy_cycles == pytest.approx(fast.busy_cycles,
                                                    rel=1e-9)


class TestBatchedFastModel:
    def test_batch_matches_per_stream(self, sim):
        rng = np.random.default_rng(7)
        streams = []
        for _ in range(8):
            n = int(rng.integers(0, 1500))
            addrs = rng.integers(0, 1 << 24, n).astype(np.uint64) * 64
            cycles = rng.integers(0, 5_000, n)
            writes = rng.integers(0, 2, n).astype(bool)
            streams.append(_stream(addrs, cycles=cycles, writes=writes))
        batch = sim.simulate_fast_batch(streams)
        for stream, got in zip(streams, batch):
            want = sim.simulate_fast(stream)
            assert got.requests == want.requests
            assert got.row_misses == want.row_misses
            assert got.busy_cycles == want.busy_cycles
            assert got.per_channel_busy == want.per_channel_busy

    def test_batch_parts_match_concatenation(self, sim):
        rng = np.random.default_rng(9)
        part_lists, combined = [], []
        for _ in range(5):
            parts = []
            for _ in range(2):
                n = int(rng.integers(0, 800))
                addrs = rng.integers(0, 1 << 22, n).astype(np.uint64) * 64
                cycles = rng.integers(0, 4_000, n)
                parts.append(_stream(addrs, cycles=cycles))
            part_lists.append(parts)
            combined.append(BlockStream.concat(parts))
        got = sim.simulate_fast_batch_parts(part_lists)
        want = sim.simulate_fast_batch(combined)
        for g, w in zip(got, want):
            assert g.row_misses == w.row_misses
            assert g.busy_cycles == w.busy_cycles

    def test_batch_empty_streams(self, sim):
        results = sim.simulate_fast_batch([_stream([]), _stream([0, 64])])
        assert results[0].requests == 0
        assert results[1].requests == 2


class TestNativeBatchTiers:
    """The native batched-model kernels (fused geometry pass, insertion
    merge scan) must match the pure numpy tier bit for bit."""

    def _part_lists(self, seed):
        rng = np.random.default_rng(seed)
        part_lists = []
        for _ in range(6):
            n = int(rng.integers(1, 1200))
            m = int(rng.integers(0, 400))
            # Cycle-sorted data part (the geom_counts fast path) plus an
            # unsorted metadata part (the packed-sort path), like the
            # pipeline's (data, metadata) entries.
            data = _stream(rng.integers(0, 1 << 22, n).astype(np.uint64) * 64,
                           cycles=np.sort(rng.integers(0, 4_000, n)),
                           writes=rng.integers(0, 2, n).astype(bool))
            parts = [data]
            if m:
                parts.append(_stream(
                    rng.integers(0, 1 << 22, m).astype(np.uint64) * 64,
                    cycles=rng.integers(0, 4_000, m),
                    writes=rng.integers(0, 2, m).astype(bool)))
            part_lists.append(parts)
        return part_lists

    @pytest.mark.parametrize("seed", [3, 11, 29])
    def test_native_matches_numpy(self, seed, monkeypatch):
        from repro.utils import native
        if not native.available():
            pytest.skip("no native kernel in this environment")
        sim = DramSim(SERVER_DRAM, freq_ghz=1.0)
        got = sim.simulate_fast_batch_parts(self._part_lists(seed))
        monkeypatch.setattr(native, "available", lambda: False)
        monkeypatch.setattr(native, "geom_counts", lambda *a, **k: None)
        sim = DramSim(SERVER_DRAM, freq_ghz=1.0)
        want = sim.simulate_fast_batch_parts(self._part_lists(seed))
        for g, w in zip(got, want):
            assert g == w

    def test_native_matches_reference_model(self):
        """End to end against the event-driven model: the native batch
        tier classifies hits/misses exactly."""
        sim = DramSim(SERVER_DRAM, freq_ghz=1.0)
        part_lists = self._part_lists(17)
        batch = sim.simulate_fast_batch_parts(part_lists)
        for parts, got in zip(part_lists, batch):
            ref = sim.simulate(BlockStream.concat(parts))
            assert got.row_misses == ref.row_misses
            assert got.per_channel_requests == ref.per_channel_requests


class TestBandwidthScaling:
    def test_busy_scales_with_bandwidth(self):
        addrs = np.arange(4096, dtype=np.uint64) * 64
        fast_cfg = DramConfig(total_bandwidth_gbps=40.0)
        slow_cfg = DramConfig(total_bandwidth_gbps=10.0)
        fast = DramSim(fast_cfg, 1.0).simulate_fast(_stream(addrs))
        slow = DramSim(slow_cfg, 1.0).simulate_fast(_stream(addrs))
        assert slow.busy_cycles > 3.5 * fast.busy_cycles

    def test_frequency_scaling(self):
        addrs = np.arange(1024, dtype=np.uint64) * 64
        base = DramSim(SERVER_DRAM, 1.0).simulate_fast(_stream(addrs))
        double = DramSim(SERVER_DRAM, 2.0).simulate_fast(_stream(addrs))
        # Same wall-clock service = twice the cycles at twice the clock.
        assert double.busy_cycles == pytest.approx(2 * base.busy_cycles)

    def test_ideal_bandwidth_bound(self, sim):
        """Busy time never beats the pure-bandwidth lower bound."""
        addrs = np.arange(8192, dtype=np.uint64) * 64
        result = sim.simulate_fast(_stream(addrs))
        ideal = 8192 * 64 / 20.0  # ns at 20 GB/s == cycles at 1 GHz
        assert result.busy_cycles >= ideal / SERVER_DRAM.channels * 0.99

    def test_invalid_frequency(self):
        with pytest.raises(ValueError):
            DramSim(SERVER_DRAM, 0)
