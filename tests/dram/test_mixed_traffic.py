"""DRAM model under mixed and adversarial traffic patterns."""

import numpy as np
import pytest

from repro.accel.trace import BlockStream
from repro.dram.simulator import DramSim
from repro.dram.timing import DramConfig, SERVER_DRAM


def _stream(addrs, writes=None, cycles=None):
    n = len(addrs)
    return BlockStream(
        np.asarray(cycles if cycles is not None else np.zeros(n), np.int64),
        np.asarray(addrs, np.uint64),
        np.asarray(writes if writes is not None else np.zeros(n, bool), bool),
        np.zeros(n, np.int32),
    )


@pytest.fixture
def sim():
    return DramSim(SERVER_DRAM, freq_ghz=1.0)


class TestReadWriteMix:
    def test_writes_cost_same_bus_time(self, sim):
        addrs = np.arange(1024, dtype=np.uint64) * 64
        reads = sim.simulate_fast(_stream(addrs))
        writes = sim.simulate_fast(_stream(addrs, writes=np.ones(1024, bool)))
        assert reads.busy_cycles == pytest.approx(writes.busy_cycles)

    def test_interleaved_rw_same_row_still_hits(self, sim):
        addrs = np.repeat(np.arange(64, dtype=np.uint64) * 64, 2)
        writes = np.tile([False, True], 64)
        result = sim.simulate_fast(_stream(addrs, writes=writes))
        assert result.row_hit_rate > 0.9


class TestChannelBalance:
    def test_sequential_traffic_balances_channels(self, sim):
        addrs = np.arange(4096, dtype=np.uint64) * 64
        result = sim.simulate_fast(_stream(addrs))
        counts = result.per_channel_requests
        assert max(counts) - min(counts) <= 1

    def test_single_channel_hotspot(self, sim):
        """Traffic striding by channels*64 lands on one channel and
        serializes there."""
        stride = SERVER_DRAM.channels * 64
        addrs = np.arange(1024, dtype=np.uint64) * stride
        result = sim.simulate_fast(_stream(addrs))
        counts = result.per_channel_requests
        assert counts[0] == 1024
        assert sum(counts[1:]) == 0
        # Hotspot busy time ~4x the balanced case.
        balanced = sim.simulate_fast(
            _stream(np.arange(1024, dtype=np.uint64) * 64))
        assert result.busy_cycles > 3.5 * balanced.busy_cycles


class TestIssueOrderMatters:
    def test_sorted_vs_shuffled_issue(self, sim):
        """Row locality is an issue-order property: the same addresses
        shuffled in time produce more conflicts."""
        n = 4096
        addrs = np.arange(n, dtype=np.uint64) * 64
        rng = np.random.default_rng(5)
        shuffled_cycles = rng.permutation(n).astype(np.int64)
        ordered = sim.simulate_fast(_stream(addrs))
        shuffled = sim.simulate_fast(_stream(addrs, cycles=shuffled_cycles))
        assert shuffled.row_misses > ordered.row_misses


class TestConfiguration:
    def test_more_banks_absorb_conflicts(self):
        addrs = np.arange(8192, dtype=np.uint64) * 2048  # row-thrashing
        few = DramSim(DramConfig(total_bandwidth_gbps=20, banks_per_channel=4),
                      1.0).simulate_fast(_stream(addrs))
        many = DramSim(DramConfig(total_bandwidth_gbps=20, banks_per_channel=32),
                       1.0).simulate_fast(_stream(addrs))
        assert many.busy_cycles < few.busy_cycles
