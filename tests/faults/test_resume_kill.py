"""Mid-sweep SIGKILL + ``repro sweep --resume``: the acceptance pin.

A real CLI sweep is killed via an injected ``journal.append:kill:@2``
(SIGKILL with exactly two cells journaled); the resumed sweep must
finish the grid while recomputing zero finished cells.
"""

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

from repro.runner.journal import SweepJournal
from repro.runner.store import ResultStore

SRC = Path(__file__).resolve().parents[2] / "src"
WORKLOADS = ["lenet", "dlrm", "ncf"]
SCHEMES = ["mgx-64b", "seda"]


def run_sweep(cache_dir, *extra, fault_spec=None, timeout=300):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC)
    env.pop("REPRO_FAULTS", None)
    if fault_spec is not None:
        env["REPRO_FAULTS"] = fault_spec
    command = [sys.executable, "-m", "repro.cli", "sweep",
               "--npu", "edge", "--workloads", *WORKLOADS,
               "--schemes", *SCHEMES, "--cache-dir", str(cache_dir),
               *extra]
    return subprocess.run(command, env=env, capture_output=True,
                          text=True, timeout=timeout)


class TestResumeAfterKill:
    def test_sigkill_then_resume_recomputes_zero_finished_cells(
            self, tmp_path):
        cache = tmp_path / "cache"

        killed = run_sweep(cache,
                           fault_spec="journal.append:kill:@2")
        assert killed.returncode == -signal.SIGKILL

        # The kill fires after the second journal line is durable, and
        # every record is published before its journal line: exactly
        # two cells survived, intact.
        journal = SweepJournal(cache)
        store = ResultStore(cache)
        assert journal.counts() == {"done": 2, "failed": 0}
        assert store.entries() == 2
        for line in journal.path.read_text().splitlines():
            assert json.loads(line)["status"] == "done"

        resumed = run_sweep(cache, "--resume")
        assert resumed.returncode == 0, resumed.stderr

        assert ResultStore(cache).entries() == len(WORKLOADS)
        assert SweepJournal(cache).counts() == \
            {"done": len(WORKLOADS), "failed": 0}
        assert "2 served from cache, 1 computed" in resumed.stdout

        # The killed run never flushed its stats, so the lifetime
        # counters are exactly the resumed run's: two disk hits, one
        # recompute, and — the acceptance pin — zero dedupe
        # republishes, i.e. no finished cell was recomputed.
        lifetime = ResultStore(cache).summary().lifetime
        assert lifetime["hits"] == 2
        assert lifetime["misses"] == 1
        assert lifetime["puts"] == 1
        assert lifetime["dedupes"] == 0

    def test_resume_without_store_is_rejected(self, tmp_path):
        result = run_sweep(tmp_path / "cache", "--resume", "--no-cache")
        assert result.returncode == 2
        assert "--resume needs the on-disk store" in result.stderr
