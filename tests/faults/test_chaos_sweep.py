"""Chaos suite: real (small) sweeps under seeded fault schedules.

Invariants pinned here, per the failure model:

- a faulted sweep that retries its way through produces bit-identical
  records to a fault-free run;
- partial failure yields exactly N-K results plus K FailedCell reports
  with exact store/journal accounting — no lost or duplicate records;
- ``resume`` never recomputes a finished cell and never burns retry
  budget on journaled-permanent cells, but does retry transients;
- corrupt records quarantine, recompute, and republish;
- persistence failures in tolerant mode cost durability, not results.
"""

import pytest

from repro import faults
from repro.faults import FaultPlan
from repro.runner.records import comparison_to_dict
from repro.runner.service import EvalService
from repro.runner.store import ResultStore, fingerprint

from tests.faults.conftest import find_seed

SCHEMES = ("mgx-64b", "seda")
WORKLOADS = ("lenet", "dlrm", "ncf")


def requests(retries=0):
    return [EvalService.request("edge", w, SCHEMES, retries=retries)
            for w in WORKLOADS]


def keys():
    return [fingerprint(r.npu, r.workload, r.scheme_names)
            for r in requests()]


def cell_keys():
    return [f"{r.npu.name}:{r.workload}" for r in requests()]


class TestBitIdentical:
    def test_faulted_sweep_matches_fault_free(self, plan, tmp_path):
        clean = EvalService(store=ResultStore(tmp_path / "clean"))
        baseline = clean.evaluate(requests())

        # Transient faults on ~a third of (cell, attempt) draws; the
        # seed guarantees no cell fails all four allowed attempts.
        def survivable(seed):
            probe = FaultPlan.parse(f"seed={seed},cell:raise:0.35")
            return all(not all(probe.triggered("cell", k, a)
                               for a in range(1, 5))
                       for k in cell_keys())

        seed = find_seed(survivable)
        plan(f"seed={seed},cell:raise:0.35")
        chaotic = EvalService(store=ResultStore(tmp_path / "chaos"))
        results, failures = chaotic.evaluate_tolerant(requests(retries=3))

        assert failures == []
        assert [comparison_to_dict(r) for r in results] == \
            [comparison_to_dict(r) for r in baseline]
        # And the persisted records are byte-identical across stores.
        for key in keys():
            a = (tmp_path / "clean").joinpath(key[:2], f"{key}.json")
            b = (tmp_path / "chaos").joinpath(key[:2], f"{key}.json")
            assert a.read_bytes() == b.read_bytes()


class TestAccounting:
    def test_partial_failure_exact_store_and_journal_accounting(
            self, plan, tmp_path):
        cells = cell_keys()

        def exactly_one(seed):
            probe = FaultPlan.parse(f"seed={seed},cell:permanent:0.4")
            return sum(bool(probe.triggered("cell", k, 1))
                       for k in cells) == 1

        seed = find_seed(exactly_one)
        active = plan(f"seed={seed},cell:permanent:0.4")
        predicted = [i for i, k in enumerate(cells)
                     if active.triggered("cell", k, 1)]

        store = ResultStore(tmp_path / "cache")
        service = EvalService(store=store)
        results, failures = service.evaluate_tolerant(requests())

        assert [i for i, r in enumerate(results) if r is None] == predicted
        assert [cell.index for cell in failures] == predicted
        assert failures[0].kind == "permanent"
        # N-K records, each put exactly once: nothing lost, nothing
        # duplicated, nothing extra.  (The service flushes per-run
        # stats into the lifetime file, so read the flushed delta.)
        last_run = store.summary().last_run
        assert store.entries() == len(WORKLOADS) - 1
        assert last_run["puts"] == len(WORKLOADS) - 1
        assert last_run["dedupes"] == 0
        assert service.journal.counts() == {"done": 2, "failed": 1}


class TestResume:
    def test_resume_never_recomputes_finished_cells(self, tmp_path):
        store_root = tmp_path / "cache"
        first = EvalService(store=ResultStore(store_root))
        baseline, failures = first.evaluate_tolerant(requests())
        assert failures == []

        resumed_store = ResultStore(store_root)
        resumed = EvalService(store=resumed_store, resume=True)
        resumed.executor.run = \
            lambda *a, **k: pytest.fail("resume recomputed a finished cell")
        results, failures = resumed.evaluate_tolerant(requests())
        assert failures == []
        assert [comparison_to_dict(r) for r in results] == \
            [comparison_to_dict(r) for r in baseline]
        # Served purely from disk: no new puts, no dedupe republishes.
        last_run = resumed_store.summary().last_run
        assert last_run["hits"] == len(WORKLOADS)
        assert last_run["puts"] == 0
        assert last_run["dedupes"] == 0

    def test_resume_skips_journaled_permanent_failures(self, plan, tmp_path):
        plan("cell:permanent")
        store_root = tmp_path / "cache"
        service = EvalService(store=ResultStore(store_root))
        results, failures = service.evaluate_tolerant(requests(retries=2))
        assert results == [None] * len(WORKLOADS)
        assert all(cell.kind == "permanent" and cell.attempts == 1
                   for cell in failures)

        faults.install(None)  # the fault is gone, but the journal remembers
        resumed = EvalService(store=ResultStore(store_root), resume=True)
        resumed.executor.run = \
            lambda *a, **k: pytest.fail("resume must not retry a "
                                        "journaled-permanent cell")
        results, failures = resumed.evaluate_tolerant(requests(retries=2))
        assert results == [None] * len(WORKLOADS)
        assert all(cell.from_journal for cell in failures)
        assert len(failures) == len(WORKLOADS)

    def test_resume_retries_journaled_transient_failures(self, plan,
                                                         tmp_path):
        plan("cell:raise")  # transient, and retries=0 exhausts at once
        store_root = tmp_path / "cache"
        service = EvalService(store=ResultStore(store_root))
        results, failures = service.evaluate_tolerant(requests())
        assert results == [None] * len(WORKLOADS)
        assert all(cell.kind == "transient" for cell in failures)

        faults.install(None)  # transient trouble cleared: resume retries
        resumed = EvalService(store=ResultStore(store_root), resume=True)
        results, failures = resumed.evaluate_tolerant(requests())
        assert failures == []
        assert all(r is not None for r in results)
        # Last-wins: the journal now remembers every cell as done.
        assert resumed.journal.counts() == {"done": len(WORKLOADS),
                                            "failed": 0}


class TestQuarantine:
    def test_injected_corruption_quarantines_and_recomputes(self, plan,
                                                            tmp_path):
        store_root = tmp_path / "cache"
        EvalService(store=ResultStore(store_root)).evaluate(requests())

        plan("store.read:corrupt:@1")  # first read back is torn
        store = ResultStore(store_root)
        service = EvalService(store=store)
        results, failures = service.evaluate_tolerant(requests())
        assert failures == []
        assert all(r is not None for r in results)
        last_run = store.summary().last_run
        assert last_run["quarantined"] == 1
        assert store.quarantined_count() == 1
        # The corrupt cell recomputed and republished; the other two
        # were clean hits.
        assert last_run["puts"] == 1
        assert last_run["hits"] == len(WORKLOADS) - 1
        assert last_run["misses"] == 1

    def test_quarantined_bytes_preserved_for_inspection(self, tmp_path):
        store_root = tmp_path / "cache"
        EvalService(store=ResultStore(store_root)).evaluate(requests())
        key = keys()[0]
        path = store_root / key[:2] / f"{key}.json"
        path.write_text("{torn")
        store = ResultStore(store_root)
        assert store.get(key) is None
        [quarantined] = store.quarantined_paths()
        assert quarantined.read_text() == "{torn"


class TestPersistFaults:
    def test_tolerant_sweep_survives_store_put_faults(self, plan, tmp_path):
        plan("store.put:oserror")
        store = ResultStore(tmp_path / "cache")
        service = EvalService(store=store)
        results, failures = service.evaluate_tolerant(requests())
        # Results computed and returned; only durability was lost.
        assert failures == []
        assert all(r is not None for r in results)
        assert service.persist_errors == len(WORKLOADS)
        assert store.entries() == 0

    def test_strict_evaluate_fails_fast_on_persist_faults(self, plan,
                                                          tmp_path):
        plan("store.put:oserror")
        service = EvalService(store=ResultStore(tmp_path / "cache"))
        with pytest.raises(OSError, match="injected fault at store.put"):
            service.evaluate(requests())
