"""Chaos-suite fixtures: isolated fault plans and a private recorder."""

import pytest

from repro import faults, obs


@pytest.fixture(autouse=True)
def _isolated_faults():
    """No fault plan leaks into or out of any test in this package."""
    previous = faults.install(None)
    yield
    faults.install(previous)


@pytest.fixture
def plan():
    """Install a plan parsed from a spec string; auto-restored."""

    def _install(spec: str) -> faults.FaultPlan:
        parsed = faults.FaultPlan.parse(spec)
        faults.install(parsed)
        return parsed

    return _install


@pytest.fixture
def recorder():
    """A private obs recorder active for the duration of the test."""
    previous = obs.install(obs.Recorder())
    try:
        yield obs.get()
    finally:
        obs.install(previous)


def find_seed(predicate, limit: int = 20000) -> int:
    """Smallest seed whose deterministic draws satisfy ``predicate``.

    Brute force is fine here: a draw is one sha256 of a short string,
    and the chaos tests constrain a handful of (site, key, attempt)
    triples — the search ends within a few hundred seeds in practice.
    """
    for seed in range(limit):
        if predicate(seed):
            return seed
    raise AssertionError(f"no seed under {limit} satisfies the predicate")
