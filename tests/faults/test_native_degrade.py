"""Native-kernel tier loss: loud once, graceful forever, never a crash."""

import warnings

import pytest

from repro.utils import native


@pytest.fixture
def fresh_native(monkeypatch):
    """Reset the module's load latch; restored by monkeypatch."""
    monkeypatch.setattr(native, "_lib", None)
    monkeypatch.setattr(native, "_load_attempted", False)
    monkeypatch.delenv("REPRO_NO_NATIVE_KERNEL", raising=False)


class TestDegradation:
    def test_build_failure_warns_once_and_latches(self, plan, recorder,
                                                  fresh_native):
        plan("native.build:fail")
        with pytest.warns(RuntimeWarning,
                          match="native kernels unavailable"):
            assert not native.available()
        assert recorder.counters["native.degraded"] == 1
        # Latched: later probes are silent no-ops on the numpy tier.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert not native.available()
        assert recorder.counters["native.degraded"] == 1

    def test_load_failure_degrades_not_crashes(self, plan, recorder,
                                               fresh_native, monkeypatch):
        monkeypatch.setattr(native, "_build",
                            lambda: "/nonexistent/kernels.so")
        plan("native.load:fail")
        with pytest.warns(RuntimeWarning, match="OSError"):
            assert not native.available()
        assert recorder.counters["native.degraded"] == 1

    def test_deliberate_opt_out_stays_silent(self, recorder, fresh_native,
                                             monkeypatch):
        monkeypatch.setenv("REPRO_NO_NATIVE_KERNEL", "1")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert not native.available()
        assert "native.degraded" not in recorder.counters
