"""GridExecutor under injected faults: retries, timeouts, tolerance,
pool restarts, serial fallback."""

from concurrent.futures import Future
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.core.config import npu_config
from repro.faults import FaultPlan
from repro.runner.executor import (
    CellError,
    EvalRequest,
    GridExecutor,
    SweepAborted,
    run_cell,
)

from tests.faults.conftest import find_seed

SCHEMES = ("mgx-64b", "seda")
WORKLOADS = ("lenet", "dlrm", "ncf")


def grid(retries=0, timeout=None):
    edge = npu_config("edge")
    return [EvalRequest(edge, w, SCHEMES, retries=retries, timeout=timeout)
            for w in WORKLOADS]


def cell_key(request):
    return f"{request.npu.name}:{request.workload}"


class TestRetries:
    def test_transient_fault_retried_to_success(self, plan, recorder):
        plan("cell:raise:@1")  # first cell attempt in-process fails
        executor = GridExecutor(jobs=1)
        records = executor.run(grid(retries=1)[:1])
        assert records[0]["workload"] == "lenet"
        assert executor._attempts[0] == 2
        assert recorder.counters["executor.retries"] == 1
        assert executor.failures == []

    def test_transient_budget_exhausted(self, plan):
        plan("cell:raise")  # every attempt fails, classified transient
        failures = []
        executor = GridExecutor(jobs=1)
        records = executor.run(grid(retries=2)[:1], on_failure=failures.append)
        assert records == [None]
        [cell] = failures
        assert cell.kind == "transient"
        assert cell.attempts == 3  # 1 try + 2 retries
        assert executor.failures == [cell]

    def test_permanent_fault_never_retried(self, plan):
        plan("cell:permanent")
        failures = []
        records = GridExecutor(jobs=1).run(grid(retries=5)[:1],
                                           on_failure=failures.append)
        assert records == [None]
        [cell] = failures
        assert cell.kind == "permanent"
        assert cell.attempts == 1

    def test_without_on_failure_first_failure_raises(self, plan):
        plan("cell:permanent")
        with pytest.raises(CellError, match="injected permanent fault"):
            GridExecutor(jobs=1).run(grid()[:1])

    def test_injected_error_names_the_cell_and_attempt(self, plan):
        plan("cell:raise")
        with pytest.raises(CellError) as info:
            run_cell(grid()[0].payload(attempt=2))
        assert info.value.workload == "lenet"
        assert info.value.npu == "edge"
        assert info.value.schemes == SCHEMES
        assert info.value.attempt == 2
        assert info.value.transient
        assert "attempt 2" in str(info.value)


class TestTimeout:
    def test_slow_cell_times_out_transient(self, plan):
        plan("cell:delay:1:5")  # 5s artificial latency per attempt
        with pytest.raises(CellError, match="cell timeout") as info:
            GridExecutor(jobs=1).run(grid(timeout=0.25)[:1])
        assert info.value.transient

    def test_timeout_disarmed_after_fast_cell(self, plan):
        # A cell well under its deadline must not leave a pending alarm.
        import signal
        records = GridExecutor(jobs=1).run(grid(timeout=60.0)[:1])
        assert records[0]["workload"] == "lenet"
        assert signal.getitimer(signal.ITIMER_REAL) == (0.0, 0.0)


class TestTolerantAccounting:
    def test_seeded_partial_failure_exact_accounting(self, plan):
        # Pick a seed where the plan's own deterministic draws predict
        # exactly one failed cell, then check the executor agrees.
        requests = grid()
        keys = [cell_key(r) for r in requests]

        def exactly_one(seed):
            probe = FaultPlan.parse(f"seed={seed},cell:permanent:0.4")
            return sum(bool(probe.triggered("cell", k, 1))
                       for k in keys) == 1

        seed = find_seed(exactly_one)
        active = plan(f"seed={seed},cell:permanent:0.4")
        predicted = [i for i, k in enumerate(keys)
                     if active.triggered("cell", k, 1)]

        failures = []
        progress = []
        executor = GridExecutor(
            jobs=1, progress=lambda done, total, req: progress.append(done))
        records = executor.run(requests, on_failure=failures.append)

        assert [i for i, r in enumerate(records) if r is None] == predicted
        assert [cell.index for cell in failures] == predicted
        assert len([r for r in records if r is not None]) == 2
        # Monotone progress: every cell resolves exactly once, in order.
        assert progress == [1, 2, 3]

    def test_max_failures_aborts_with_report(self, plan):
        plan("cell:permanent")
        failures = []
        with pytest.raises(SweepAborted) as info:
            GridExecutor(jobs=1).run(grid(), on_failure=failures.append,
                                     max_failures=1)
        assert len(info.value.failures) == 2  # the one allowed + the last
        assert "--max-failures 1" in str(info.value)

    def test_zero_max_failures_aborts_on_first(self, plan):
        plan("cell:permanent")
        with pytest.raises(SweepAborted):
            GridExecutor(jobs=1).run(grid(), on_failure=lambda cell: None,
                                     max_failures=0)


class TestPoolRestart:
    def test_sigkilled_worker_restarts_pool_and_completes(self, plan,
                                                          recorder):
        # Seed chosen so the kill draw fires for exactly one (cell,
        # attempt) pair: lenet on its first attempt, nothing on the
        # retry round — so the broken pool restarts once and finishes.
        requests = grid(retries=1)
        keys = [cell_key(r) for r in requests]

        def only_lenet_attempt_one(seed):
            probe = FaultPlan.parse(f"seed={seed},cell:kill:0.4")
            draws = {(k, a): bool(probe.triggered("cell", k, a))
                     for k in keys for a in range(1, 7)}
            return draws[("edge:lenet", 1)] and \
                sum(draws.values()) == 1

        seed = find_seed(only_lenet_attempt_one)
        plan(f"seed={seed},cell:kill:0.4")

        executor = GridExecutor(jobs=2)
        records = executor.run(requests)
        assert [r["workload"] for r in records] == list(WORKLOADS)
        assert executor.failures == []
        assert recorder.counters["executor.pool_restarts"] == 1

    def test_injected_broken_pool_falls_back_to_serial(self, monkeypatch,
                                                       recorder):
        # Restart budget exhausted (simulated): the executor must fall
        # back to serial for the *unfinished* cells only, and the
        # on_result callback of an already-completed cell never refires.
        executor = GridExecutor(jobs=2)
        fired = []

        def breaking_pool(requests, on_result, completed):
            record = run_cell(requests[0].payload())
            record.pop("_obs", None)
            completed[0] = record
            if on_result is not None:
                on_result(0, requests[0], record)
            raise BrokenProcessPool("injected: restarts exhausted")

        monkeypatch.setattr(executor, "_run_pool", breaking_pool)
        records = executor.run(
            grid(), on_result=lambda i, req, rec: fired.append(i))
        assert [r["workload"] for r in records] == list(WORKLOADS)
        assert fired == [0, 1, 2]  # exactly once per cell, no refires
        assert recorder.counters["executor.pool_fallbacks"] == 1

    def test_pool_worker_failure_partial_completion_serial_resume(
            self, plan, monkeypatch):
        # Pool dies after one cell completed *and* one cell failed
        # terminally; the serial remainder must recompute only the
        # genuinely unfinished cell.
        executor = GridExecutor(jobs=2)
        failures = []

        def breaking_pool(requests, on_result, completed):
            record = run_cell(requests[0].payload())
            record.pop("_obs", None)
            completed[0] = record
            executor._finalize_failure(
                1, requests[1], 1,
                CellError("poisoned", workload=requests[1].workload,
                          npu="edge", schemes=requests[1].scheme_names))
            raise BrokenProcessPool("injected")

        monkeypatch.setattr(executor, "_run_pool", breaking_pool)
        records = executor.run(grid(), on_failure=failures.append)
        assert records[0]["workload"] == "lenet"
        assert records[1] is None
        assert records[2]["workload"] == "ncf"
        assert [cell.index for cell in failures] == [1]


class TestDrainCallbackCounting:
    @staticmethod
    def _finished_future(record):
        future = Future()
        future.set_result(record)
        return future

    def test_drain_counts_and_logs_suppressed_callback_errors(
            self, recorder, caplog):
        executor = GridExecutor(jobs=2)
        requests = grid()
        futures = {
            self._finished_future({"workload": "lenet"}): (0, 1),
            self._finished_future({"workload": "dlrm"}): (1, 1),
        }
        records = [None] * len(requests)

        def explode(index, request, record):
            raise OSError("disk full during drain")

        with caplog.at_level("WARNING", logger="repro.runner.executor"):
            executor._drain_finished(futures, requests, records, {}, explode)
        assert records[0] == {"workload": "lenet"}
        assert records[1] == {"workload": "dlrm"}
        assert recorder.counters["executor.callback_errors"] == 2
        # Only the first suppressed error is logged.
        messages = [r for r in caplog.records
                    if "suppressed a callback error" in r.message]
        assert len(messages) == 1
