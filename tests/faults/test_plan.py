"""FaultPlan: spec parsing, deterministic draws, modes, the test seam."""

import json
import time

import pytest

from repro import faults
from repro.faults import FaultInjected, FaultPermanent, FaultPlan, FaultRule


class TestParsing:
    def test_simple_clause_defaults(self):
        plan = FaultPlan.parse("cell:raise")
        assert plan.seed == 0
        assert plan.rules == (FaultRule(site="cell", mode="raise"),)
        assert plan.rules[0].rate == 1.0 and plan.rules[0].nth is None

    def test_full_spec(self):
        plan = FaultPlan.parse(
            "seed=7,cell:raise:0.2,store.read:corrupt:0.3,"
            "journal.append:kill:@3,cell:delay:1:0.5")
        assert plan.seed == 7
        assert len(plan.rules) == 4
        assert plan.rules[0] == FaultRule("cell", "raise", rate=0.2)
        assert plan.rules[2].nth == 3
        assert plan.rules[3].arg == 0.5

    def test_spec_round_trips(self):
        spec = "seed=7,cell:raise:0.2,journal.append:kill:@3,cell:delay:1:0.5"
        assert FaultPlan.parse(spec).spec() == spec
        assert FaultPlan.parse(FaultPlan.parse(spec).spec()).rules == \
            FaultPlan.parse(spec).rules

    def test_blank_clauses_skipped(self):
        assert FaultPlan.parse("").rules == ()
        assert FaultPlan.parse(" , cell:raise , ").rules == \
            (FaultRule("cell", "raise"),)

    @pytest.mark.parametrize("bad", [
        "cell",                   # no mode
        "cell:explode",           # unknown mode
        ":raise",                 # empty site
        "cell:raise:1.5",         # rate out of range
        "cell:raise:@0",          # @N wants N >= 1
        "cell:raise:0.1:2:extra"  # too many parts
    ])
    def test_bad_clauses_rejected(self, bad):
        with pytest.raises(ValueError, match="bad fault clause"):
            FaultPlan.parse(bad)


class TestDraws:
    def test_same_seed_same_decisions(self):
        a = FaultPlan.parse("seed=3,cell:raise:0.5")
        b = FaultPlan.parse("seed=3,cell:raise:0.5")
        keys = [f"edge:w{i}" for i in range(64)]
        decisions = lambda p: [bool(p.triggered("cell", k, 1))  # noqa: E731
                               for k in keys]
        assert decisions(a) == decisions(b)

    def test_different_seed_different_decisions(self):
        keys = [f"edge:w{i}" for i in range(64)]
        a = [bool(FaultPlan.parse("seed=1,cell:raise:0.5")
                  .triggered("cell", k, 1)) for k in keys]
        b = [bool(FaultPlan.parse("seed=2,cell:raise:0.5")
                  .triggered("cell", k, 1)) for k in keys]
        assert a != b

    def test_attempt_changes_the_draw(self):
        # Retries re-draw: across enough keys, some decision must flip
        # between attempt 1 and attempt 2.
        plan = FaultPlan.parse("seed=5,cell:raise:0.5")
        flips = [k for k in (f"edge:w{i}" for i in range(64))
                 if bool(plan.triggered("cell", k, 1))
                 != bool(plan.triggered("cell", k, 2))]
        assert flips

    def test_rate_bounds(self):
        always = FaultPlan.parse("cell:raise:1")
        never = FaultPlan.parse("cell:raise:0")
        for key in ("a", "b", "c"):
            assert always.triggered("cell", key, 1)
            assert not never.triggered("cell", key, 1)

    def test_rate_roughly_respected(self):
        plan = FaultPlan.parse("seed=11,cell:raise:0.2")
        hits = sum(bool(plan.triggered("cell", f"k{i}", 1))
                   for i in range(1000))
        assert 130 <= hits <= 270  # 20% +- wide determinism margin

    def test_nth_trigger_fires_exactly_once(self):
        plan = FaultPlan.parse("cell:raise:@3")
        fired = [bool(plan.triggered("cell", f"k{i}", 1)) for i in range(6)]
        assert fired == [False, False, True, False, False, False]

    def test_site_mismatch_never_triggers(self):
        plan = FaultPlan.parse("cell:raise")
        assert not plan.triggered("store.put", "k", 1)


class TestModes:
    def test_raise_is_transient_class(self):
        with pytest.raises(FaultInjected):
            FaultPlan.parse("cell:raise").fire("cell", key="k")

    def test_permanent_is_a_subclass(self):
        plan = FaultPlan.parse("cell:permanent")
        with pytest.raises(FaultPermanent):
            plan.fire("cell", key="k")
        assert issubclass(FaultPermanent, FaultInjected)

    def test_oserror(self):
        with pytest.raises(OSError, match="injected fault at store.put"):
            FaultPlan.parse("store.put:oserror").fire("store.put", key="k")

    def test_delay_sleeps_then_falls_through(self):
        plan = FaultPlan.parse("cell:delay:1:0.05")
        start = time.monotonic()
        plan.fire("cell", key="k")  # must not raise
        assert time.monotonic() - start >= 0.04

    def test_should_fail(self):
        plan = FaultPlan.parse("native.build:fail")
        assert plan.should_fail("native.build")
        assert not plan.should_fail("native.load")

    def test_corrupt_text_breaks_json(self):
        plan = FaultPlan.parse("store.read:corrupt")
        text = json.dumps({"schema_version": 1, "payload": [1, 2, 3]})
        garbled = plan.corrupt_text("store.read", "k", text)
        assert garbled != text
        with pytest.raises(json.JSONDecodeError):
            json.loads(garbled)

    def test_corrupt_text_passthrough_when_not_triggered(self):
        plan = FaultPlan.parse("store.read:corrupt:0")
        assert plan.corrupt_text("store.read", "k", "{}") == "{}"


class TestModuleSeam:
    def test_inactive_hooks_are_noops(self):
        assert faults.active() is None
        faults.fire("cell", key="k")  # must not raise
        assert not faults.should_fail("native.build")
        assert faults.corrupt_text("store.read", "k", "text") == "text"

    def test_install_returns_previous(self):
        first = FaultPlan.parse("cell:raise")
        assert faults.install(first) is None
        second = FaultPlan.parse("cell:delay")
        assert faults.install(second) is first
        assert faults.active() is second

    def test_module_fire_routes_to_plan(self):
        faults.install(FaultPlan.parse("cell:raise"))
        with pytest.raises(FaultInjected):
            faults.fire("cell", key="k")

    def test_env_activation_is_lazy_and_once(self, monkeypatch):
        monkeypatch.setattr(faults, "_active", None)
        monkeypatch.setattr(faults, "_env_loaded", False)
        monkeypatch.setenv(faults.FAULTS_ENV, "seed=9,cell:raise:0.5")
        plan = faults.active()
        assert plan is not None and plan.seed == 9
        # A later env change is ignored: the spec is read exactly once.
        monkeypatch.setenv(faults.FAULTS_ENV, "seed=1,cell:kill")
        assert faults.active() is plan

    def test_install_none_pins_env_out(self, monkeypatch):
        monkeypatch.setattr(faults, "_active", None)
        monkeypatch.setattr(faults, "_env_loaded", False)
        monkeypatch.setenv(faults.FAULTS_ENV, "cell:raise")
        faults.install(None)
        assert faults.active() is None
