"""Inter-layer tiling pattern extraction and compatibility."""

import pytest

from repro.models.layer import conv
from repro.tiling.patterns import (
    TileWalk,
    TilingPattern,
    pattern_of,
    patterns_compatible,
    producer_consumer_mismatches,
)
from repro.tiling.tile import SramBudget, plan_tiling


def _plan(layer, ifmap_kb=1024, wgt_kb=1024, ofmap_kb=1024):
    return plan_tiling(layer, SramBudget(ifmap_kb << 10, wgt_kb << 10,
                                         ofmap_kb << 10))


class TestPatternExtraction:
    def test_single_tile_is_trivial(self):
        layer = conv("c", 16, 16, 3, 3, 4, 8)
        plan = _plan(layer)
        assert pattern_of(plan, "ifmap").is_trivial
        assert pattern_of(plan, "ofmap").is_trivial
        assert pattern_of(plan, "weight").is_trivial

    def test_banded_ifmap(self):
        layer = conv("c", 64, 64, 3, 3, 16, 8)
        plan = _plan(layer, ifmap_kb=16)
        pattern = pattern_of(plan, "ifmap")
        assert pattern.walk is TileWalk.ROW_BANDS
        assert pattern.tiles == plan.num_m_tiles

    def test_filter_grouped_weights(self):
        layer = conv("c", 16, 16, 3, 3, 16, 512)
        plan = _plan(layer, wgt_kb=8)
        pattern = pattern_of(plan, "weight")
        assert pattern.walk is TileWalk.FILTER_GROUPS

    def test_unknown_tensor(self):
        layer = conv("c", 16, 16, 3, 3, 4, 8)
        with pytest.raises(ValueError):
            pattern_of(_plan(layer), "psum")


class TestCompatibility:
    def test_trivial_always_compatible(self):
        trivial = TilingPattern(TileWalk.SINGLE, 0, 0, 1)
        banded = TilingPattern(TileWalk.ROW_BANDS, 8, 0, 4)
        assert patterns_compatible(trivial, banded)
        assert patterns_compatible(banded, trivial)

    def test_nested_bands_compatible(self):
        producer = TilingPattern(TileWalk.ROW_BANDS, 8, 0, 4)
        consumer = TilingPattern(TileWalk.ROW_BANDS, 4, 0, 8)
        assert patterns_compatible(producer, consumer)

    def test_non_divisible_bands_incompatible(self):
        producer = TilingPattern(TileWalk.ROW_BANDS, 8, 0, 4)
        consumer = TilingPattern(TileWalk.ROW_BANDS, 3, 0, 11)
        assert not patterns_compatible(producer, consumer)

    def test_cross_walk_incompatible(self):
        """The Fig. 3(b) hazard: producer writes bands, consumer reads
        channel groups."""
        producer = TilingPattern(TileWalk.ROW_BANDS, 8, 0, 4)
        consumer = TilingPattern(TileWalk.FILTER_GROUPS, 0, 16, 4)
        assert not patterns_compatible(producer, consumer)

    def test_filter_groups_nesting(self):
        producer = TilingPattern(TileWalk.FILTER_GROUPS, 0, 32, 4)
        consumer = TilingPattern(TileWalk.FILTER_GROUPS, 0, 16, 8)
        assert patterns_compatible(producer, consumer)
        assert not patterns_compatible(consumer, producer)


class TestTopologyScan:
    def test_mismatch_counting(self):
        layers = [
            conv("a", 66, 66, 3, 3, 16, 16),
            conv("b", 64, 64, 3, 3, 16, 16),
        ]
        plans = [_plan(layers[0], ifmap_kb=16), _plan(layers[1], ifmap_kb=16)]
        count = producer_consumer_mismatches(layers, plans)
        assert count >= 0

    def test_parallel_length_validation(self):
        layers = [conv("a", 16, 16, 3, 3, 4, 8)]
        with pytest.raises(ValueError):
            producer_consumer_mismatches(layers, [])
