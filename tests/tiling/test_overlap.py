"""Intra-layer overlap analysis (the redundancy SeDA's optBlk removes)."""

import pytest

from repro.models.layer import conv
from repro.tiling.overlap import analyze_overlap
from repro.tiling.tile import SramBudget, plan_tiling


class TestNoOverlapCases:
    def test_single_tile_layer(self):
        layer = conv("c", 16, 16, 3, 3, 4, 8)
        plan = plan_tiling(layer, SramBudget(1 << 20, 1 << 20, 1 << 20))
        report = analyze_overlap(layer, plan)
        assert not report.has_overlap
        assert report.overlap_fraction == 0.0
        assert report.redundant_mac_blocks == 0

    def test_pointwise_conv_banded(self):
        """1x1 stride-1 conv has no halo even when banded."""
        layer = conv("c", 64, 64, 1, 1, 16, 8)
        plan = plan_tiling(layer, SramBudget(16 << 10, 1 << 20, 1 << 20))
        if plan.num_m_tiles > 1 and plan.ifmap_passes == 1:
            report = analyze_overlap(layer, plan)
            assert report.overlap_bytes == 0


class TestHaloOverlap:
    def test_banded_conv_has_overlap(self):
        layer = conv("c", 64, 64, 3, 3, 16, 8)
        plan = plan_tiling(layer, SramBudget(16 << 10, 1 << 20, 1 << 20))
        assert plan.num_m_tiles > 1
        report = analyze_overlap(layer, plan)
        assert report.has_overlap
        expected = plan.halo_bytes_per_boundary * (plan.num_m_tiles - 1)
        assert report.overlap_bytes == expected

    def test_overlap_matches_fetch_delta(self):
        """overlap == fetched - unique when passes == 1."""
        layer = conv("c", 64, 64, 3, 3, 16, 8)
        plan = plan_tiling(layer, SramBudget(16 << 10, 1 << 20, 1 << 20))
        report = analyze_overlap(layer, plan)
        if plan.ifmap_passes == 1:
            assert report.overlap_bytes == \
                report.fetched_ifmap_bytes - report.unique_ifmap_bytes

    def test_block_granularity_scaling(self):
        layer = conv("c", 64, 64, 3, 3, 16, 8)
        plan = plan_tiling(layer, SramBudget(16 << 10, 1 << 20, 1 << 20))
        fine = analyze_overlap(layer, plan, block_bytes=64)
        coarse = analyze_overlap(layer, plan, block_bytes=512)
        assert fine.redundant_mac_blocks >= coarse.redundant_mac_blocks

    def test_multi_pass_counts_rereads(self):
        """Re-reading the whole ifmap per filter group is all redundant."""
        layer = conv("c", 64, 64, 3, 3, 64, 512)
        plan = plan_tiling(layer, SramBudget(24 << 10, 8 << 10, 1 << 20))
        report = analyze_overlap(layer, plan)
        if plan.ifmap_passes > 1:
            assert report.overlap_bytes >= \
                layer.ifmap_bytes * (plan.ifmap_passes - 1)


class TestValidation:
    def test_mismatched_plan(self):
        layer_a = conv("a", 16, 16, 3, 3, 4, 8)
        layer_b = conv("b", 16, 16, 3, 3, 4, 8)
        plan = plan_tiling(layer_a, SramBudget(1 << 20, 1 << 20, 1 << 20))
        with pytest.raises(ValueError):
            analyze_overlap(layer_b, plan)

    def test_invalid_block_size(self):
        layer = conv("a", 16, 16, 3, 3, 4, 8)
        plan = plan_tiling(layer, SramBudget(1 << 20, 1 << 20, 1 << 20))
        with pytest.raises(ValueError):
            analyze_overlap(layer, plan, block_bytes=0)
