"""SecureLoop-style optBlk search."""

import pytest

from repro.models.layer import conv, gemm
from repro.tiling.optblk import (
    BURST_BYTES,
    DEFAULT_CANDIDATES,
    aligned_block_for_tiles,
    search_optblk,
    search_optblk_model,
)
from repro.tiling.tile import SramBudget, plan_tiling


def _plan(layer, budget_bytes=1 << 20):
    return plan_tiling(layer, SramBudget.split(budget_bytes))


class TestSearch:
    def test_returns_candidate(self):
        layer = conv("c", 64, 64, 3, 3, 16, 8)
        choice = search_optblk(layer, _plan(layer, 64 << 10))
        assert choice.block_bytes in DEFAULT_CANDIDATES

    def test_single_tile_prefers_large_blocks(self):
        """With no tiling there are no straddles; fewer MACs win."""
        layer = conv("c", 32, 32, 3, 3, 8, 8)
        choice = search_optblk(layer, _plan(layer))
        assert choice.block_bytes == max(DEFAULT_CANDIDATES)
        assert choice.is_straddle_free

    def test_blocks_cover_tensor(self):
        layer = conv("c", 64, 64, 3, 3, 16, 8)
        choice = search_optblk(layer, _plan(layer, 64 << 10))
        assert choice.blocks_per_layer * choice.block_bytes >= layer.ifmap_bytes

    def test_mac_computations_lower_bound(self):
        layer = conv("c", 64, 64, 3, 3, 16, 8)
        choice = search_optblk(layer, _plan(layer, 64 << 10))
        assert choice.mac_computations >= choice.blocks_per_layer

    def test_empty_candidates(self):
        layer = conv("c", 16, 16, 3, 3, 4, 8)
        with pytest.raises(ValueError):
            search_optblk(layer, _plan(layer), candidates=())

    def test_invalid_candidate(self):
        layer = conv("c", 16, 16, 3, 3, 4, 8)
        with pytest.raises(ValueError):
            search_optblk(layer, _plan(layer), candidates=(0,))

    def test_beats_naive_512(self):
        """The chosen block never does more MAC work than a fixed 512 B
        granularity — that's the point of the search."""
        layer = conv("c", 100, 100, 3, 3, 24, 16)
        plan = _plan(layer, 64 << 10)
        best = search_optblk(layer, plan)
        fixed = search_optblk(layer, plan, candidates=(512,))
        assert best.mac_computations <= fixed.mac_computations


class TestBatchedSearch:
    def test_blocks_cover_batched_tensor(self):
        base = conv("c", 64, 64, 3, 3, 16, 8)
        batched = conv("c", 64, 64, 3, 3, 16, 8, batch=4)
        choice_1 = search_optblk(base, _plan(base, 64 << 10))
        choice_n = search_optblk(batched, _plan(batched, 64 << 10))
        # The authentication blocks span the whole batched ifmap…
        assert choice_n.blocks_per_layer >= 4 * choice_1.blocks_per_layer - 4
        # …and straddle waste scales with the per-image boundaries
        # repeating every image.
        assert choice_n.straddle_blocks == 4 * choice_1.straddle_blocks

    def test_batched_straddle_free_stays_straddle_free(self):
        layer = conv("c", 32, 32, 3, 3, 8, 8, batch=8)
        choice = search_optblk(layer, _plan(layer))
        assert choice.is_straddle_free


class TestVectorizedModelSearch:
    def test_matches_per_layer_search(self):
        """One numpy pass over all layers == the scalar per-layer search."""
        layers = [
            conv("c0", 64, 64, 3, 3, 16, 8),
            conv("c1", 100, 100, 3, 3, 24, 16, batch=4),
            conv("c2", 32, 32, 3, 3, 8, 8),
            gemm("fc", 512, 512, 1000),
        ]
        pairs = [(layer, _plan(layer, 64 << 10)) for layer in layers]
        batch = search_optblk_model(pairs)
        assert batch == [search_optblk(layer, plan) for layer, plan in pairs]

    def test_empty_model(self):
        assert search_optblk_model([]) == []

    def test_validates_candidates(self):
        layer = conv("c", 16, 16, 3, 3, 4, 8)
        with pytest.raises(ValueError):
            search_optblk_model([(layer, _plan(layer))], candidates=())
        with pytest.raises(ValueError):
            search_optblk_model([(layer, _plan(layer))], candidates=(0,))


class TestAlignedHelper:
    def test_divisor_found(self):
        assert aligned_block_for_tiles(4096) == 4096
        assert aligned_block_for_tiles(1536) == 512

    def test_non_power_of_two_spans(self):
        # 2560 = 512 * 5: the largest dividing candidate wins.
        assert aligned_block_for_tiles(2560) == 512
        # 1920 = 128 * 15: 256 does not divide, 128 does.
        assert aligned_block_for_tiles(1920) == 128
        # 8064 = 2^7 * 63: dividing candidates stop at 128.
        assert aligned_block_for_tiles(8064) == 128

    def test_burst_aligned_floor_below_candidate_set(self):
        """When no candidate divides, the span's two-adic alignment is
        the answer — not ``min(candidates)``, which may straddle while a
        smaller aligned power of two exists."""
        # 1920 aligns to 128; with only {256, 512} on offer the floor
        # is 128, not the old (straddling) min(candidates) == 256.
        assert aligned_block_for_tiles(1920, candidates=(256, 512)) == 128
        # Alignment above the candidate cap clamps to max(candidates).
        assert aligned_block_for_tiles(4096, candidates=(256, 512)) == 512

    def test_degenerates_to_burst(self):
        # 1000 = 8 * 125: alignment (8) is below one burst — no
        # burst-aligned block can avoid straddling; floor to the burst.
        assert aligned_block_for_tiles(1000) == BURST_BYTES
        assert aligned_block_for_tiles(999) == BURST_BYTES

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            aligned_block_for_tiles(4096, candidates=())
        with pytest.raises(ValueError):
            aligned_block_for_tiles(0)
        with pytest.raises(ValueError):
            aligned_block_for_tiles(4096, candidates=(0,))
