"""SecureLoop-style optBlk search."""

import pytest

from repro.models.layer import conv
from repro.tiling.optblk import (
    DEFAULT_CANDIDATES,
    aligned_block_for_tiles,
    search_optblk,
)
from repro.tiling.tile import SramBudget, plan_tiling


def _plan(layer, budget_bytes=1 << 20):
    return plan_tiling(layer, SramBudget.split(budget_bytes))


class TestSearch:
    def test_returns_candidate(self):
        layer = conv("c", 64, 64, 3, 3, 16, 8)
        choice = search_optblk(layer, _plan(layer, 64 << 10))
        assert choice.block_bytes in DEFAULT_CANDIDATES

    def test_single_tile_prefers_large_blocks(self):
        """With no tiling there are no straddles; fewer MACs win."""
        layer = conv("c", 32, 32, 3, 3, 8, 8)
        choice = search_optblk(layer, _plan(layer))
        assert choice.block_bytes == max(DEFAULT_CANDIDATES)
        assert choice.is_straddle_free

    def test_blocks_cover_tensor(self):
        layer = conv("c", 64, 64, 3, 3, 16, 8)
        choice = search_optblk(layer, _plan(layer, 64 << 10))
        assert choice.blocks_per_layer * choice.block_bytes >= layer.ifmap_bytes

    def test_mac_computations_lower_bound(self):
        layer = conv("c", 64, 64, 3, 3, 16, 8)
        choice = search_optblk(layer, _plan(layer, 64 << 10))
        assert choice.mac_computations >= choice.blocks_per_layer

    def test_empty_candidates(self):
        layer = conv("c", 16, 16, 3, 3, 4, 8)
        with pytest.raises(ValueError):
            search_optblk(layer, _plan(layer), candidates=())

    def test_invalid_candidate(self):
        layer = conv("c", 16, 16, 3, 3, 4, 8)
        with pytest.raises(ValueError):
            search_optblk(layer, _plan(layer), candidates=(0,))

    def test_beats_naive_512(self):
        """The chosen block never does more MAC work than a fixed 512 B
        granularity — that's the point of the search."""
        layer = conv("c", 100, 100, 3, 3, 24, 16)
        plan = _plan(layer, 64 << 10)
        best = search_optblk(layer, plan)
        fixed = search_optblk(layer, plan, candidates=(512,))
        assert best.mac_computations <= fixed.mac_computations


class TestBatchedSearch:
    def test_blocks_cover_batched_tensor(self):
        base = conv("c", 64, 64, 3, 3, 16, 8)
        batched = conv("c", 64, 64, 3, 3, 16, 8, batch=4)
        choice_1 = search_optblk(base, _plan(base, 64 << 10))
        choice_n = search_optblk(batched, _plan(batched, 64 << 10))
        # The authentication blocks span the whole batched ifmap…
        assert choice_n.blocks_per_layer >= 4 * choice_1.blocks_per_layer - 4
        # …and straddle waste scales with the per-image boundaries
        # repeating every image.
        assert choice_n.straddle_blocks == 4 * choice_1.straddle_blocks

    def test_batched_straddle_free_stays_straddle_free(self):
        layer = conv("c", 32, 32, 3, 3, 8, 8, batch=8)
        choice = search_optblk(layer, _plan(layer))
        assert choice.is_straddle_free


class TestAlignedHelper:
    def test_divisor_found(self):
        assert aligned_block_for_tiles(4096) == 4096
        assert aligned_block_for_tiles(1536) == 512

    def test_fallback_to_minimum(self):
        assert aligned_block_for_tiles(1000) == 64  # 1000 % 64 != 0 -> min
