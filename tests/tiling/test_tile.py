"""Tiling planner: fit constraints, traffic accounting, schedule choice."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.layer import conv, gemm
from repro.tiling.tile import SramBudget, plan_tiling


class TestSramBudget:
    def test_split_conserves(self):
        budget = SramBudget.split(1 << 20)
        assert budget.total_bytes == 1 << 20

    def test_split_validation(self):
        with pytest.raises(ValueError):
            SramBudget.split(0)
        with pytest.raises(ValueError):
            SramBudget.split(1024, ifmap_frac=0.6, weight_frac=0.5)

    def test_direct_validation(self):
        with pytest.raises(ValueError):
            SramBudget(0, 1, 1)


class TestFitsEntirely:
    def test_single_tile(self):
        layer = conv("c", 16, 16, 3, 3, 4, 8)
        budget = SramBudget(1 << 20, 1 << 20, 1 << 20)
        plan = plan_tiling(layer, budget)
        assert plan.num_m_tiles == 1
        assert plan.num_n_tiles == 1
        assert plan.num_k_tiles == 1
        assert plan.ifmap_traffic == layer.ifmap_bytes
        assert plan.weight_traffic == layer.weight_bytes
        assert plan.ofmap_traffic == layer.ofmap_bytes
        assert plan.halo_traffic == 0


class TestBandedTiling:
    def test_m_tiling_triggers(self):
        layer = conv("c", 64, 64, 3, 3, 16, 8)
        # ifmap is 64*64*16 = 64 KiB; force several bands.
        budget = SramBudget(16 << 10, 1 << 20, 1 << 20)
        plan = plan_tiling(layer, budget)
        assert plan.num_m_tiles > 1
        assert plan.halo_bytes_per_boundary > 0
        # Halo re-reads make fetched > unique footprint.
        assert plan.ifmap_traffic > layer.ifmap_bytes

    def test_n_tiling_triggers(self):
        layer = conv("c", 16, 16, 3, 3, 16, 512)
        budget = SramBudget(1 << 20, 8 << 10, 1 << 20)
        plan = plan_tiling(layer, budget)
        assert plan.num_n_tiles > 1

    def test_resident_operand_read_once(self):
        """Whichever dimension isn't cut streams exactly once."""
        layer = conv("c", 64, 64, 3, 3, 16, 8)
        budget = SramBudget(16 << 10, 1 << 20, 1 << 20)
        plan = plan_tiling(layer, budget)
        assert plan.weight_traffic == layer.weight_bytes

    def test_too_small_budget_raises(self):
        layer = conv("c", 256, 256, 3, 3, 64, 64)
        budget = SramBudget(256, 256, 256)
        with pytest.raises(ValueError):
            plan_tiling(layer, budget)


class TestKTiledSchedule:
    def test_large_gemm_prefers_k_tiling(self):
        """A huge-K FC layer must not re-read the ifmap per filter group."""
        layer = gemm("fc6", 64, 25088, 4096)
        budget = SramBudget.split(480 << 10)
        plan = plan_tiling(layer, budget)
        assert plan.is_k_tiled
        # Minimum possible traffic is one pass of each tensor.
        floor = layer.ifmap_bytes + layer.weight_bytes
        assert plan.total_read_traffic < 3 * floor

    def test_conv_never_k_tiled(self):
        layer = conv("c", 64, 64, 3, 3, 16, 8)
        plan = plan_tiling(layer, SramBudget.split(64 << 10))
        assert not plan.is_k_tiled

    def test_k_tiled_traffic_consistency(self):
        layer = gemm("fc", 256, 4096, 1024)
        plan = plan_tiling(layer, SramBudget.split(128 << 10))
        if plan.is_k_tiled:
            assert plan.ifmap_traffic == layer.ifmap_bytes * plan.num_n_tiles
            assert plan.weight_traffic == layer.weight_bytes * plan.num_m_tiles


class TestPaddedGeometry:
    def test_padded_layer_plans_on_stored_footprint(self):
        padded = conv("c", 56, 56, 3, 3, 64, 64, same=True)
        valid = conv("c", 56, 56, 3, 3, 64, 64)
        budget = SramBudget(1 << 20, 1 << 20, 1 << 20)
        plan_p = plan_tiling(padded, budget)
        plan_v = plan_tiling(valid, budget)
        # Same stored ifmap: single-tile traffic identical; the padded
        # layer just produces a larger (56 vs 54) output.
        assert plan_p.ifmap_traffic == plan_v.ifmap_traffic
        assert plan_p.ofmap_traffic == padded.ofmap_bytes > plan_v.ofmap_traffic

    def test_filter_exceeding_stored_ifmap_plans(self):
        """Small late-stage fmaps with same padding must still plan."""
        layer = conv("c", 2, 2, 3, 3, 32, 64, same=True)
        plan = plan_tiling(layer, SramBudget.split(64 << 10))
        assert plan.num_m_tiles >= 1
        assert plan.ofmap_traffic == 2 * 2 * 64


class TestBatchedTiling:
    def test_activation_traffic_scales_weights_resident(self):
        base = conv("c", 64, 64, 3, 3, 16, 8)
        batched = conv("c", 64, 64, 3, 3, 16, 8, batch=4)
        budget = SramBudget(16 << 10, 1 << 20, 1 << 20)
        plan_1 = plan_tiling(base, budget)
        plan_n = plan_tiling(batched, budget)
        assert plan_n.batch == 4
        assert plan_n.num_m_tiles == plan_1.num_m_tiles  # per-image schedule
        assert plan_n.ifmap_traffic == 4 * plan_1.ifmap_traffic
        assert plan_n.ofmap_traffic == 4 * plan_1.ofmap_traffic
        assert plan_n.halo_traffic == 4 * plan_1.halo_traffic
        # Weights fit their partition whole: fetched once for the batch.
        assert plan_n.weight_traffic == plan_1.weight_traffic == base.weight_bytes

    def test_streamed_weights_reload_per_image(self):
        layer = conv("c", 16, 16, 3, 3, 16, 512, batch=3)
        base = conv("c", 16, 16, 3, 3, 16, 512)
        budget = SramBudget(1 << 20, 8 << 10, 1 << 20)
        plan_n = plan_tiling(layer, budget)
        plan_1 = plan_tiling(base, budget)
        assert plan_n.num_n_tiles > 1
        assert plan_n.weight_traffic == 3 * plan_1.weight_traffic

    def test_k_tiled_batch_scaling(self):
        base = gemm("fc", 256, 4096, 1024)
        batched = gemm("fc", 256, 4096, 1024, batch=2)
        budget = SramBudget.split(128 << 10)
        plan_1 = plan_tiling(base, budget)
        plan_n = plan_tiling(batched, budget)
        assert plan_n.is_k_tiled and plan_1.is_k_tiled
        assert plan_n.ifmap_traffic == 2 * plan_1.ifmap_traffic
        assert plan_n.weight_traffic == 2 * plan_1.weight_traffic
        assert plan_n.ofmap_traffic == 2 * plan_1.ofmap_traffic


class TestInvariants:
    @given(st.integers(8, 64), st.integers(1, 5), st.integers(1, 32),
           st.integers(1, 64), st.integers(14, 20))
    @settings(max_examples=60, deadline=None)
    def test_plan_always_fits_sram(self, size, filt, channels, filters, budget_pow):
        if filt > size:
            return
        layer = conv("c", size, size, filt, filt, channels, filters)
        budget = SramBudget.split(1 << budget_pow)
        try:
            plan = plan_tiling(layer, budget)
        except ValueError:
            return  # genuinely cannot fit: acceptable outcome
        assert plan.ifmap_tile_bytes <= budget.ifmap_bytes
        assert plan.weight_tile_bytes <= budget.weight_bytes
        assert plan.ofmap_tile_bytes <= budget.ofmap_bytes

    @given(st.integers(8, 64), st.integers(1, 3), st.integers(1, 16),
           st.integers(1, 64))
    @settings(max_examples=60, deadline=None)
    def test_traffic_at_least_tensor_sizes(self, size, filt, channels, filters):
        if filt > size:
            return
        layer = conv("c", size, size, filt, filt, channels, filters)
        budget = SramBudget.split(32 << 10)
        try:
            plan = plan_tiling(layer, budget)
        except ValueError:
            return
        assert plan.ifmap_traffic >= layer.ifmap_bytes
        assert plan.weight_traffic >= layer.weight_bytes
        assert plan.ofmap_traffic == layer.ofmap_bytes
