"""Tier parity of the native kernel entry points.

Every public kernel in :mod:`repro.utils.native` must keep a registered
pure-Python/numpy fallback (the ``FALLBACKS`` manifest) and match it
exactly.  The broad equivalence suites live next to the models
(``tests/protection/test_reuse_engine.py``, ``tests/dram``); this file
pins the manifest itself and drives ``dram_completion`` /
``insertion_scan`` head-to-head against their slow tiers.
"""

import importlib

import numpy as np
import pytest

from repro.accel.trace import BlockStream
from repro.dram.simulator import DramSim
from repro.dram.timing import SERVER_DRAM
from repro.utils import native


def _stream(addrs, cycles=None, writes=None):
    n = len(addrs)
    return BlockStream(
        np.asarray(cycles if cycles is not None else np.zeros(n), np.int64),
        np.asarray(addrs, np.uint64),
        np.asarray(writes if writes is not None else np.zeros(n, bool), bool),
        np.zeros(n, np.int32),
    )


class TestFallbacksManifest:
    def test_every_entry_point_is_registered(self):
        for entry in ("fused_drive", "insertion_scan", "geom_counts",
                      "dram_completion"):
            assert entry in native.FALLBACKS
            assert callable(getattr(native, entry))

    def test_every_fallback_resolves(self):
        for entry, targets in native.FALLBACKS.items():
            assert targets, f"{entry} has no fallback tier"
            for target in targets:
                module_name, qualname = target.split(":")
                obj = importlib.import_module(module_name)
                for part in qualname.split("."):
                    obj = getattr(obj, part)
                assert callable(obj), f"{entry} fallback {target}"

    def test_manifest_has_no_stale_entries(self):
        for entry in native.FALLBACKS:
            assert callable(getattr(native, entry, None)), \
                f"FALLBACKS registers missing kernel {entry!r}"


class TestDramCompletionParity:
    def _case(self, seed, nbanks):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 600))
        arrivals = np.sort(rng.uniform(0, 3_000, n))
        banks = rng.integers(0, nbanks, n)
        service = rng.uniform(1.0, 40.0, n)
        return arrivals, banks, service

    @pytest.mark.parametrize("seed", [1, 5, 23])
    def test_kernel_matches_python_carry(self, seed, monkeypatch):
        if not native.available():
            pytest.skip("no native kernel in this environment")
        sim = DramSim(SERVER_DRAM, freq_ghz=1.0)
        nbanks = sim.config.banks_per_channel
        arrivals, banks, service = self._case(seed, nbanks)
        burst = 4.0
        got = native.dram_completion(arrivals, banks, service, burst,
                                     nbanks)
        assert got is not None
        monkeypatch.setattr(native, "dram_completion",
                            lambda *a, **k: None)
        want = sim._channel_completion(arrivals, banks, service, burst)
        # The kernel is a float64-identical transcription of the carry.
        assert got == want


class TestInsertionScanParity:
    def _part_lists(self, seed):
        rng = np.random.default_rng(seed)
        part_lists = []
        for _ in range(5):
            n = int(rng.integers(1, 900))
            m = int(rng.integers(1, 300))
            data = _stream(
                rng.integers(0, 1 << 22, n).astype(np.uint64) * 64,
                cycles=np.sort(rng.integers(0, 4_000, n)),
                writes=rng.integers(0, 2, n).astype(bool))
            meta = _stream(
                rng.integers(0, 1 << 22, m).astype(np.uint64) * 64,
                cycles=rng.integers(0, 4_000, m),
                writes=rng.integers(0, 2, m).astype(bool))
            part_lists.append([data, meta])
        return part_lists

    @pytest.mark.parametrize("seed", [2, 13])
    def test_kernel_matches_numpy_scan(self, seed, monkeypatch):
        if not native.available():
            pytest.skip("no native kernel in this environment")
        sim = DramSim(SERVER_DRAM, freq_ghz=1.0)
        got = sim.simulate_fast_batch_parts(self._part_lists(seed))
        monkeypatch.setattr(native, "insertion_scan",
                            lambda *a, **k: False)
        want = sim.simulate_fast_batch_parts(self._part_lists(seed))
        for g, w in zip(got, want):
            assert g == w
