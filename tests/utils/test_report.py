"""Text report rendering."""

import pytest

from repro.utils.report import bar_chart, format_table, percent


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "bbbb"], [[1, 2.5], [333, 4.0]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        # Every row has the same width.
        assert len({len(line) for line in lines[2:]}) == 1

    def test_float_formatting(self):
        out = format_table(["x"], [[1.23456]], float_fmt="{:.1f}")
        assert "1.2" in out
        assert "1.23" not in out

    def test_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])


class TestBarChart:
    def test_peak_fills_width(self):
        out = bar_chart({"x": 2.0, "y": 1.0}, width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_baseline_marker(self):
        out = bar_chart({"x": 2.0}, width=10, baseline=1.0)
        assert "|" in out

    def test_values_rendered(self):
        out = bar_chart({"x": 1.5}, value_fmt="{:.2f}")
        assert "1.50" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart({})
        with pytest.raises(ValueError):
            bar_chart({"x": 1.0}, width=5)
        with pytest.raises(ValueError):
            bar_chart({"x": 0.0})


class TestPercent:
    def test_positive(self):
        assert percent(1.1226) == "+12.26%"

    def test_negative(self):
        assert percent(0.9) == "-10.00%"

    def test_zero(self):
        assert percent(1.0) == "+0.00%"
