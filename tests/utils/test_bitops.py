"""Unit and property tests for byte/bit helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.bitops import (
    align_down,
    align_up,
    bytes_to_int,
    ceil_div,
    int_to_bytes,
    xor_bytes,
)


class TestCeilDiv:
    def test_exact(self):
        assert ceil_div(8, 4) == 2

    def test_remainder(self):
        assert ceil_div(9, 4) == 3

    def test_zero_numerator(self):
        assert ceil_div(0, 4) == 0

    def test_one(self):
        assert ceil_div(1, 4) == 1

    def test_invalid_divisor(self):
        with pytest.raises(ValueError):
            ceil_div(4, 0)

    @given(st.integers(min_value=0, max_value=10**9),
           st.integers(min_value=1, max_value=10**6))
    def test_matches_definition(self, a, b):
        assert ceil_div(a, b) == (a + b - 1) // b


class TestAlign:
    def test_align_down(self):
        assert align_down(100, 64) == 64

    def test_align_down_exact(self):
        assert align_down(128, 64) == 128

    def test_align_up(self):
        assert align_up(100, 64) == 128

    def test_align_up_exact(self):
        assert align_up(128, 64) == 128

    def test_invalid_alignment(self):
        with pytest.raises(ValueError):
            align_up(10, 0)
        with pytest.raises(ValueError):
            align_down(10, -4)

    @given(st.integers(min_value=0, max_value=10**12),
           st.integers(min_value=1, max_value=10**6))
    def test_bracketing(self, value, alignment):
        down = align_down(value, alignment)
        up = align_up(value, alignment)
        assert down <= value <= up
        assert down % alignment == 0
        assert up % alignment == 0
        assert up - down in (0, alignment)


class TestIntBytes:
    def test_roundtrip(self):
        assert bytes_to_int(int_to_bytes(0xDEADBEEF, 8)) == 0xDEADBEEF

    def test_truncation(self):
        assert int_to_bytes(0x1FF, 1) == b"\xff"

    def test_zero_length(self):
        assert int_to_bytes(0, 0) == b""

    def test_negative_length(self):
        with pytest.raises(ValueError):
            int_to_bytes(1, -1)

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_roundtrip_property(self, value):
        assert bytes_to_int(int_to_bytes(value, 8)) == value


class TestXorBytes:
    def test_basic(self):
        assert xor_bytes(b"\x0f\xf0", b"\xff\xff") == b"\xf0\x0f"

    def test_identity(self):
        data = bytes(range(16))
        assert xor_bytes(data, bytes(16)) == data

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            xor_bytes(b"ab", b"abc")

    @given(st.binary(min_size=0, max_size=64))
    def test_self_inverse(self, data):
        mask = bytes((i * 7 + 3) % 256 for i in range(len(data)))
        assert xor_bytes(xor_bytes(data, mask), mask) == data

    @given(st.binary(min_size=1, max_size=64))
    def test_commutative(self, data):
        other = bytes(reversed(data))
        assert xor_bytes(data, other) == xor_bytes(other, data)
