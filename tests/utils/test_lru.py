"""Unit and property tests for the LRU cache model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.lru import LruCache


class TestBasicBehaviour:
    def test_miss_then_hit(self):
        cache = LruCache(4)
        hit, _ = cache.access("a")
        assert not hit
        hit, _ = cache.access("a")
        assert hit

    def test_capacity_eviction(self):
        cache = LruCache(2)
        cache.access("a")
        cache.access("b")
        cache.access("c")  # evicts a
        hit, _ = cache.access("a")
        assert not hit

    def test_lru_order(self):
        cache = LruCache(2)
        cache.access("a")
        cache.access("b")
        cache.access("a")  # refresh a -> b is now LRU
        cache.access("c")  # evicts b
        assert cache.probe("a")
        assert not cache.probe("b")

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            LruCache(0)

    def test_len_and_contains(self):
        cache = LruCache(4)
        cache.access(1)
        cache.access(2)
        assert len(cache) == 2
        assert 1 in cache
        assert 3 not in cache


class TestWriteback:
    def test_clean_eviction_no_writeback(self):
        cache = LruCache(1)
        cache.access("a", write=False)
        _, writeback = cache.access("b")
        assert writeback is None

    def test_dirty_eviction_returns_tag(self):
        cache = LruCache(1)
        cache.access("a", write=True)
        _, writeback = cache.access("b")
        assert writeback == "a"

    def test_write_hit_marks_dirty(self):
        cache = LruCache(1)
        cache.access("a", write=False)
        cache.access("a", write=True)
        _, writeback = cache.access("b")
        assert writeback == "a"

    def test_flush_returns_dirty_only(self):
        cache = LruCache(4)
        cache.access("a", write=True)
        cache.access("b", write=False)
        cache.access("c", write=True)
        assert sorted(cache.flush()) == ["a", "c"]
        assert len(cache) == 0


class TestStats:
    def test_counts(self):
        cache = LruCache(2)
        cache.access("a")          # miss
        cache.access("a")          # hit
        cache.access("b")          # miss
        cache.access("c")          # miss + eviction
        assert cache.stats.hits == 1
        assert cache.stats.misses == 3
        assert cache.stats.evictions == 1
        assert cache.stats.accesses == 4
        assert cache.stats.hit_rate == pytest.approx(0.25)

    def test_empty_hit_rate(self):
        assert LruCache(2).stats.hit_rate == 0.0


class TestProperties:
    @given(st.lists(st.integers(min_value=0, max_value=10), max_size=200),
           st.integers(min_value=1, max_value=8))
    @settings(max_examples=50)
    def test_never_exceeds_capacity(self, accesses, capacity):
        cache = LruCache(capacity)
        for tag in accesses:
            cache.access(tag)
            assert len(cache) <= capacity

    @given(st.lists(st.integers(min_value=0, max_value=20), max_size=200))
    @settings(max_examples=50)
    def test_matches_reference_model(self, accesses):
        """Hits must agree with a straightforward reference LRU."""
        capacity = 4
        cache = LruCache(capacity)
        reference = []
        for tag in accesses:
            expected_hit = tag in reference
            if expected_hit:
                reference.remove(tag)
            elif len(reference) >= capacity:
                reference.pop(0)
            reference.append(tag)
            hit, _ = cache.access(tag)
            assert hit == expected_hit

    @given(st.lists(
        st.tuples(st.integers(min_value=0, max_value=6), st.booleans()),
        max_size=200))
    @settings(max_examples=50)
    def test_writeback_conservation(self, accesses):
        """Every dirty line is written back exactly once (evict or flush)."""
        cache = LruCache(2)
        writebacks = []
        writes = set()
        for tag, write in accesses:
            if write:
                writes.add(tag)
            _, wb = cache.access(tag, write=write)
            if wb is not None:
                writebacks.append(wb)
        writebacks.extend(cache.flush())
        # A tag written at least once produces at least one writeback;
        # a tag never written produces none.
        assert set(writebacks) <= writes
        for tag in writes:
            assert tag in writebacks


class TestFlushCountersSeparateFromEvictions:
    """End-of-model teardown must not masquerade as capacity pressure."""

    def test_flush_does_not_count_as_eviction(self):
        cache = LruCache(4)
        cache.access("a", write=True)
        cache.access("b")
        assert sorted(cache.flush()) == ["a"]
        assert cache.stats.evictions == 0
        assert cache.stats.dirty_evictions == 0
        assert cache.stats.flushed_lines == 2
        assert cache.stats.flush_writebacks == 1

    def test_capacity_evictions_still_counted(self):
        cache = LruCache(2)
        cache.access("a", write=True)
        cache.access("b")
        cache.access("c")  # capacity-evicts dirty a
        assert cache.stats.evictions == 1
        assert cache.stats.dirty_evictions == 1
        cache.flush()
        # Flush drains b and c; the capacity counters are untouched.
        assert cache.stats.evictions == 1
        assert cache.stats.dirty_evictions == 1
        assert cache.stats.flushed_lines == 2

    def test_eviction_free_model_reports_zero_evictions(self):
        """A working set that fits shows a 100% post-warmup hit picture:
        zero evictions even though the final flush drains every line."""
        cache = LruCache(8)
        for _ in range(3):
            for tag in range(8):
                cache.access(tag, write=True)
        cache.flush()
        assert cache.stats.evictions == 0
        assert cache.stats.hits == 16
        assert cache.stats.flushed_lines == 8
        assert cache.stats.flush_writebacks == 8

    def test_reset_clears_flush_counters(self):
        cache = LruCache(2)
        cache.access("a", write=True)
        cache.flush()
        cache.stats.reset()
        assert cache.stats.flushed_lines == 0
        assert cache.stats.flush_writebacks == 0

    def test_flush_still_returns_dirty_tags_for_writeback_traffic(self):
        """The traffic contract (dirty tags out) is unchanged — only the
        statistics bookkeeping moved."""
        cache = LruCache(4)
        cache.access("a", write=True)
        cache.access("b")
        cache.access("c", write=True)
        assert sorted(cache.flush()) == ["a", "c"]
        assert len(cache) == 0
