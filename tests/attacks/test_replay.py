"""Replay attack across the three freshness designs."""

import pytest

from repro.attacks.replay import (
    MacOnlyMemory,
    ReplayResult,
    replay_mac_only,
    replay_onchip_vn,
    replay_sgx_tree,
    run_all,
)

ENC = b"\x10" * 16
MAC = b"\x20" * 16


class TestStrawman:
    def test_mac_only_roundtrip(self):
        memory = MacOnlyMemory(ENC, MAC)
        memory.write(0x40, bytes(range(64)))
        assert memory.read(0x40) == bytes(range(64))

    def test_mac_only_still_catches_tampering(self):
        """MAC-only isn't useless — it catches modification, just not
        replay."""
        memory = MacOnlyMemory(ENC, MAC)
        memory.write(0x40, bytes(64))
        ct, tag, vn = memory.store[0x40]
        memory.store[0x40] = (bytes([ct[0] ^ 1]) + ct[1:], tag, vn)
        from repro.integrity.verifier import IntegrityError
        with pytest.raises(IntegrityError):
            memory.read(0x40)

    def test_replay_succeeds(self):
        result = replay_mac_only(ENC, MAC)
        assert result.succeeded
        assert not result.detected
        assert result.stale_plaintext_accepted

    def test_block_size_validation(self):
        with pytest.raises(ValueError):
            MacOnlyMemory(ENC, MAC).write(0, bytes(32))


class TestDefendedDesigns:
    def test_sgx_tree_detects(self):
        result = replay_sgx_tree(ENC, MAC)
        assert result.detected
        assert not result.succeeded

    def test_onchip_vn_detects(self):
        result = replay_onchip_vn(ENC, MAC)
        assert result.detected
        assert not result.succeeded


class TestSummary:
    def test_run_all_verdicts(self):
        results = run_all()
        assert set(results) == {"mac-only", "sgx-tree", "onchip-vn"}
        assert results["mac-only"].succeeded
        assert not results["sgx-tree"].succeeded
        assert not results["onchip-vn"].succeeded

    def test_result_semantics(self):
        detected = ReplayResult("x", detected=True,
                                stale_plaintext_accepted=False)
        assert not detected.succeeded
