"""SECA (Algorithm 1): succeeds on shared OTP, fails on B-AES."""

import pytest

from repro.attacks.seca import most_frequent_segment, run_seca
from repro.crypto.baes import BandwidthAwareAes
from repro.crypto.ctr import AesCtr

KEY = b"\x66" * 16


def _sparse_block(nbytes=512):
    """A DNN-like data block: mostly zeros with a few non-zero values."""
    data = bytearray(nbytes)
    for i in range(0, nbytes, 97):
        data[i] = (i * 7) % 255 + 1
    return bytes(data)


class TestAttackOnSharedOtp:
    def test_full_recovery(self):
        """Lines 1-4 of Algorithm 1 against the shared-OTP strawman."""
        plaintext = _sparse_block()
        ctr = AesCtr(KEY)
        ciphertext = ctr.encrypt_shared_otp(plaintext, pa=0x40, vn=1)
        result = run_seca(ciphertext, plaintext)
        assert result.succeeded
        assert result.recovered == plaintext

    def test_recovers_actual_otp(self):
        plaintext = bytes(64)  # all zero: OTP == ciphertext segment
        ctr = AesCtr(KEY)
        ciphertext = ctr.encrypt_shared_otp(plaintext, pa=0x40, vn=1)
        result = run_seca(ciphertext, plaintext)
        assert result.inferred_otp == ctr.otp(0x40, 1, 0)

    def test_works_for_any_dominant_value(self):
        """The attacker only needs to guess the most frequent plaintext."""
        dominant = b"\x80" * 16
        plaintext = dominant * 20 + bytes(range(16))
        ctr = AesCtr(KEY)
        ciphertext = ctr.encrypt_shared_otp(plaintext, pa=0, vn=7)
        result = run_seca(ciphertext, plaintext, most_value_p=dominant)
        assert result.succeeded


class TestDefense:
    def test_baes_defeats_seca(self):
        """Same attack against B-AES recovers almost nothing."""
        plaintext = _sparse_block()
        engine = BandwidthAwareAes(KEY)
        ciphertext = engine.encrypt(plaintext, pa=0x40, vn=1)
        result = run_seca(ciphertext, plaintext)
        assert not result.succeeded
        # At most the single segment whose OTP was guessed can match.
        assert result.recovered_fraction <= 1 / (len(plaintext) // 16)

    def test_standard_ctr_also_immune(self):
        plaintext = _sparse_block()
        ctr = AesCtr(KEY)
        ciphertext = ctr.encrypt(plaintext, pa=0x40, vn=1)
        result = run_seca(ciphertext, plaintext)
        assert not result.succeeded


class TestHelpers:
    def test_most_frequent_segment(self):
        block = b"\xaa" * 16 + b"\xbb" * 16 + b"\xaa" * 16
        assert most_frequent_segment(block) == b"\xaa" * 16

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            most_frequent_segment(b"\x00" * 15)

    def test_validation(self):
        with pytest.raises(ValueError):
            run_seca(b"", b"")
        with pytest.raises(ValueError):
            run_seca(bytes(16), bytes(32))
        with pytest.raises(ValueError):
            run_seca(bytes(16), bytes(16), most_value_p=bytes(8))
