"""RePA (Algorithm 2): succeeds on ciphertext-only XOR-MAC, fails on
location-bound MACs."""

import pytest

from repro.attacks.repa import layer_mac, run_repa, shuffle_order
from repro.crypto.mac import BlockMac

KEY = b"\x77" * 16


def _layer_blocks(n=16):
    return [bytes([i + 1]) * 64 for i in range(n)]


class TestAttackOnCiphertextOnlyMac:
    def test_shuffle_passes_verification(self):
        """Lines 1-6: the shuffled layer XOR-folds to the same MAC."""
        result = run_repa(KEY, _layer_blocks(), location_bound=False)
        assert result.blocks_displaced > 0
        assert result.verification_passed
        assert result.succeeded

    def test_attack_is_deterministic_per_seed(self):
        a = run_repa(KEY, _layer_blocks(), location_bound=False, seed=1)
        b = run_repa(KEY, _layer_blocks(), location_bound=False, seed=1)
        assert a.blocks_displaced == b.blocks_displaced


class TestDefense:
    def test_location_binding_defeats_repa(self):
        """Lines 7-8: the fold no longer matches after the shuffle."""
        result = run_repa(KEY, _layer_blocks(), location_bound=True)
        assert result.blocks_displaced > 0
        assert not result.verification_passed
        assert not result.succeeded

    def test_identity_permutation_still_verifies(self):
        """Defense must not break honest reads: unshuffled data passes."""
        blocks = _layer_blocks()
        mac = BlockMac(KEY)
        reference = layer_mac(mac, blocks, 0, location_bound=True)
        recomputed = layer_mac(mac, blocks, 0, location_bound=True)
        assert reference == recomputed

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_defense_robust_across_permutations(self, seed):
        result = run_repa(KEY, _layer_blocks(), location_bound=True, seed=seed)
        if result.blocks_displaced:
            assert not result.verification_passed


class TestHelpers:
    def test_shuffle_reports_displacement(self):
        blocks = _layer_blocks(8)
        shuffled, displaced = shuffle_order(blocks)
        assert sorted(shuffled) == sorted(blocks)
        assert displaced == sum(
            1 for a, b in zip(blocks, shuffled) if a != b)

    def test_layer_mac_modes_differ(self):
        blocks = _layer_blocks(4)
        mac = BlockMac(KEY)
        bound = layer_mac(mac, blocks, 0, location_bound=True)
        unbound = layer_mac(mac, blocks, 0, location_bound=False)
        assert bound != unbound

    def test_too_few_blocks(self):
        with pytest.raises(ValueError):
            run_repa(KEY, [bytes(64)])
