"""Multi-writer ResultStore: forced interleavings and crash injection.

Three layers of evidence that the store survives uncoordinated
concurrent writers (the DACFL-style many-writers-one-store shape the
sweep service needs):

1. **Forced schedules** (deterministic, in-process): the
   ``_before_publish`` seam puts one writer's publish on hold exactly
   between "body durable in the temp file" and "atomic link", and runs
   every other writer to completion inside that window.  240 distinct
   schedules vary the writer count, key sharing and which writer is
   preempted; every one must end with zero lost records, zero lost
   counters and zero leftover temp files.
2. **True races** (multi-process, ``fork``): N processes barrier-sync
   and put the same fingerprint simultaneously; exactly one ``put``
   and N-1 ``dedupe``s must be counted after all stats merge.
3. **Crash injection**: a writer is SIGKILLed inside the publish
   window.  No partial record may ever be visible; the orphaned
   ``.tmp`` must be treated as live until it ages past
   ``tmp_sweep_age`` and only then swept.
"""

import json
import multiprocessing
import os
import signal
import time
from pathlib import Path

import pytest

from repro.runner.store import ResultStore

#: Forced interleaving schedules (acceptance floor is 200).
N_SCHEDULES = 240

_KEY_A = "aa" * 32
_KEY_B = "bb" * 32


def _record_for(key):
    # Content-addressed invariant: every writer of a key carries an
    # identical body, so the record embeds its own key.
    return {"schema_version": 1, "key": key, "payload": [1, 2, 3]}


def _schedule(index):
    """Decode one schedule index into (writers, same_key, victim)."""
    writers = 2 + index % 3
    same_key = (index // 3) % 2 == 0
    victim = (index // 6) % writers
    return writers, same_key, victim


class TestForcedSchedules:
    def test_no_lost_records_or_counters(self, tmp_path):
        for index in range(N_SCHEDULES):
            self._run_schedule(tmp_path / f"s{index}", index)

    def _run_schedule(self, root, index):
        writers, same_key, victim_index = _schedule(index)
        stores = [ResultStore(root) for _ in range(writers)]
        keys = [_KEY_A if same_key or i % 2 == 0 else _KEY_B
                for i in range(writers)]
        others = [i for i in range(writers) if i != victim_index]
        # Rotate who wins the race inside the window.
        rotation = index % max(len(others), 1)
        others = others[rotation:] + others[:rotation]

        def preempt(key, tmp):
            # The victim's body is durable but unpublished; every other
            # writer runs to completion in this window.
            for i in others:
                stores[i].put(keys[i], _record_for(keys[i]))

        victim = stores[victim_index]
        victim._before_publish = preempt
        victim.put(keys[victim_index], _record_for(keys[victim_index]))

        distinct = len(set(keys))
        label = f"schedule {index}"
        # Zero lost records: every key readable, body intact.
        for key in set(keys):
            path = root / key[:2] / f"{key}.json"
            with open(path) as handle:
                assert json.load(handle) == _record_for(key), label
        # Zero lost counters: exactly one put per distinct key, every
        # raced publish accounted as a dedupe.
        total_puts = sum(s.stats.puts for s in stores)
        total_dedupes = sum(s.stats.dedupes for s in stores)
        assert total_puts == distinct, label
        assert total_dedupes == writers - distinct, label
        # Zero leftovers: winners and losers both reap their temp file.
        assert list(root.rglob("*.tmp")) == [], label
        # The counters survive the persistent merge too.
        for store in stores:
            store.flush_stats()
        lifetime = ResultStore(root).summary().lifetime
        assert lifetime["puts"] == distinct, label
        assert lifetime["dedupes"] == writers - distinct, label


def _race_writer(root, key, barrier):
    store = ResultStore(root)
    barrier.wait()
    store.put(key, _record_for(key))
    store.flush_stats()


class _StallingStore(ResultStore):
    """Writer that parks inside the publish window until killed."""

    def __init__(self, root, marker):
        super().__init__(root)
        self._marker = marker

    def _before_publish(self, key, tmp):
        Path(self._marker).write_text(tmp)
        time.sleep(60)      # parent SIGKILLs us long before this ends


def _stalling_writer(root, key, marker):
    _StallingStore(root, marker).put(key, _record_for(key))


@pytest.mark.skipif(not hasattr(os, "fork"),
                    reason="fork-based process races need POSIX")
class TestMultiProcess:
    def test_same_fingerprint_race_is_idempotent(self, tmp_path):
        ctx = multiprocessing.get_context("fork")
        root = tmp_path / "cache"
        n = 4
        barrier = ctx.Barrier(n)
        procs = [ctx.Process(target=_race_writer,
                             args=(root, _KEY_A, barrier))
                 for _ in range(n)]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=30)
            assert proc.exitcode == 0

        reader = ResultStore(root)
        assert reader.get(_KEY_A) == _record_for(_KEY_A)
        lifetime = reader.summary().lifetime
        assert lifetime["puts"] == 1
        assert lifetime["dedupes"] == n - 1
        assert list(root.rglob("*.tmp")) == []

    def test_kill_mid_publish_leaves_no_partial_record(self, tmp_path):
        ctx = multiprocessing.get_context("fork")
        root = tmp_path / "cache"
        marker = tmp_path / "in-window"
        proc = ctx.Process(target=_stalling_writer,
                           args=(root, _KEY_A, str(marker)))
        proc.start()
        # Wait for a *non-empty* marker: the file appears before the
        # temp path is written into it, and killing in that gap would
        # leave us without the orphan's address.
        deadline = time.time() + 30
        while time.time() < deadline:
            if marker.exists() and marker.read_text():
                break
            time.sleep(0.01)
        assert marker.exists() and marker.read_text(), \
            "writer never reached the publish window"
        os.kill(proc.pid, signal.SIGKILL)
        proc.join(timeout=30)

        # No partial record is ever visible: the key simply misses.
        reader = ResultStore(root)
        assert reader.get(_KEY_A) is None
        # The crash orphaned exactly the in-flight temp file...
        orphan = Path(marker.read_text())
        assert orphan.exists()
        summary = reader.summary()
        assert summary.orphan_tmp == 1
        assert summary.orphan_tmp_live == 1       # fresh: maybe live
        assert summary.orphan_tmp_sweepable == 0

        # ...which clear() must NOT collect while it could still be a
        # live writer's publish...
        reader.clear()
        assert orphan.exists()

        # ...and must collect once it ages past the threshold.
        stale = time.time() - reader.tmp_sweep_age - 60
        os.utime(orphan, (stale, stale))
        summary = reader.summary()
        assert summary.orphan_tmp_sweepable == 1
        reader.clear()
        assert not orphan.exists()


class TestDisciplineRules:
    def test_live_tree_is_clean_under_concurrency_rules(self):
        """The rules that encode this file's invariants stay green on
        the real tree (the harness and the lint agree)."""
        from repro.analysis.engine import render_text, run_check

        repo_root = Path(__file__).resolve().parents[2]
        result = run_check(repo_root, ["atomic-write-discipline",
                                       "lock-discipline",
                                       "effect-budget"])
        assert result.findings == [], "\n" + render_text(result)
