"""SweepJournal: append-only outcomes, last-wins replay, torn lines."""

import json

import pytest

from repro.runner.journal import JOURNAL_NAME, JournalEntry, SweepJournal


@pytest.fixture
def journal(tmp_path):
    return SweepJournal(tmp_path)


class TestRoundTrip:
    def test_done_and_failed_round_trip(self, journal):
        journal.record_done("aa" * 32, attempts=2, workload="lenet")
        journal.record_failed("bb" * 32, attempts=3, workload="dlrm",
                              kind="transient", error="CellError: boom")
        state = journal.replay()
        assert state["aa" * 32] == JournalEntry(
            key="aa" * 32, status="done", attempts=2, workload="lenet")
        assert state["bb" * 32] == JournalEntry(
            key="bb" * 32, status="failed", attempts=3, workload="dlrm",
            kind="transient", error="CellError: boom")

    def test_last_line_wins(self, journal):
        key = "cc" * 32
        journal.record_failed(key, attempts=1, kind="transient")
        journal.record_done(key, attempts=2)
        assert journal.replay()[key].status == "done"
        assert journal.counts() == {"done": 1, "failed": 0}

    def test_counts(self, journal):
        journal.record_done("aa" * 32)
        journal.record_done("bb" * 32)
        journal.record_failed("cc" * 32, attempts=1, kind="permanent")
        assert journal.counts() == {"done": 2, "failed": 1}

    def test_entries_sorted_by_fingerprint(self, journal):
        journal.record_done("ff" * 32)
        journal.record_done("aa" * 32)
        assert [e.key for e in journal.entries()] == ["aa" * 32, "ff" * 32]

    def test_empty_journal(self, journal):
        assert not journal.exists()
        assert journal.replay() == {}
        assert journal.counts() == {"done": 0, "failed": 0}

    def test_error_text_truncated(self, journal):
        journal.record_failed("aa" * 32, attempts=1, error="x" * 2000)
        assert len(journal.replay()["aa" * 32].error) == 500


class TestDurability:
    def test_one_json_line_per_outcome(self, journal):
        journal.record_done("aa" * 32)
        journal.record_failed("bb" * 32, attempts=1, kind="permanent")
        lines = journal.path.read_text().splitlines()
        assert len(lines) == 2
        for line in lines:
            json.loads(line)  # every line individually decodable
        assert journal.path.name == JOURNAL_NAME

    def test_torn_trailing_line_skipped_and_counted(self, journal):
        journal.record_done("aa" * 32)
        journal.record_done("bb" * 32)
        # Simulate a write torn mid-line by a SIGKILL.
        with open(journal.path, "a") as handle:
            handle.write('{"fp": "cc')
        state = journal.replay()
        assert set(state) == {"aa" * 32, "bb" * 32}
        assert journal.corrupt_lines == 1

    def test_non_object_lines_are_corrupt(self, journal):
        journal.path.write_text('[1, 2]\n"text"\n{"fp": "aa", '
                                '"status": "done"}\n')
        state = journal.replay()
        assert set(state) == {"aa"}
        assert journal.corrupt_lines == 2

    def test_clear_removes_file(self, journal):
        journal.record_done("aa" * 32)
        assert journal.exists()
        journal.clear()
        assert not journal.exists()
        journal.clear()  # idempotent
