"""GridExecutor: parallel == serial, ordering, callbacks, fallback."""

from concurrent.futures import Future

import pytest

from repro.core.config import npu_config
from repro.runner.executor import (
    CellError,
    EvalRequest,
    GridExecutor,
    run_cell,
)

SCHEMES = ("mgx-64b", "seda")


def grid():
    edge = npu_config("edge")
    return [EvalRequest(edge, "lenet", SCHEMES),
            EvalRequest(edge, "dlrm", SCHEMES),
            EvalRequest(edge, "ncf", SCHEMES)]


class TestRunCell:
    def test_returns_flat_record(self):
        record = run_cell(grid()[0].payload())
        assert record["workload"] == "lenet"
        assert set(record["runs"]) == set(SCHEMES)
        assert record["baseline"]["scheme_name"] == "baseline"


class TestSerial:
    def test_request_order(self):
        records = GridExecutor(jobs=1).run(grid())
        assert [r["workload"] for r in records] == ["lenet", "dlrm", "ncf"]

    def test_progress_and_on_result(self):
        seen, stored = [], []
        executor = GridExecutor(
            jobs=1, progress=lambda done, total, req: seen.append((done, total)))
        executor.run(grid(), on_result=lambda i, req, rec: stored.append(i))
        assert seen == [(1, 3), (2, 3), (3, 3)]
        assert stored == [0, 1, 2]

    def test_empty_grid(self):
        assert GridExecutor(jobs=4).run([]) == []


class TestParallel:
    def test_matches_serial(self):
        requests = grid()
        serial = GridExecutor(jobs=1).run(requests)
        parallel = GridExecutor(jobs=2).run(requests)
        assert parallel == serial  # full record equality, request order

    def test_on_result_covers_every_cell(self):
        stored = []
        GridExecutor(jobs=2).run(
            grid(), on_result=lambda i, req, rec: stored.append(i))
        assert sorted(stored) == [0, 1, 2]

    def test_single_request_stays_serial(self, monkeypatch):
        # A one-cell grid must not pay process-pool startup.
        executor = GridExecutor(jobs=8)
        monkeypatch.setattr(
            executor, "_run_pool",
            lambda *a, **k: pytest.fail("pool used for one cell"))
        records = executor.run(grid()[:1])
        assert records[0]["workload"] == "lenet"

    def test_on_result_error_propagates(self):
        # A failing persistence callback (e.g. disk full) must surface
        # as-is, not masquerade as a pool failure and trigger a serial
        # recompute of the whole batch.
        def explode(index, request, record):
            raise OSError("store is full")

        with pytest.raises(OSError, match="store is full"):
            GridExecutor(jobs=2).run(grid(), on_result=explode)

    def test_pool_failure_falls_back_to_serial(self, monkeypatch):
        executor = GridExecutor(jobs=2)

        def boom(requests, on_result, completed):
            raise OSError("no processes here")

        monkeypatch.setattr(executor, "_run_pool", boom)
        records = executor.run(grid())
        assert [r["workload"] for r in records] == ["lenet", "dlrm", "ncf"]

    def test_worker_failure_propagates(self):
        # Worker exceptions surface as CellError naming the cell (the
        # raw KeyError does not survive pickling with context intact).
        bad = grid() + [EvalRequest(npu_config("edge"), "nonexistent",
                                    SCHEMES)]
        with pytest.raises(CellError, match="nonexistent") as info:
            GridExecutor(jobs=2).run(bad)
        assert info.value.workload == "nonexistent"
        assert info.value.npu == "edge"
        assert info.value.attempt == 1
        assert not info.value.transient  # a KeyError is permanent


class TestPipelineMemoCap:
    """The per-worker pipeline memo is LRU-capped: a heterogeneous-NPU
    grid cycling through one worker must not grow it unboundedly."""

    @staticmethod
    def _payload_npu(name):
        from repro.runner.records import npu_to_dict
        config = npu_config("edge")
        payload = npu_to_dict(config)
        payload["name"] = name
        return payload

    @pytest.fixture(autouse=True)
    def _clean_memo(self):
        from repro.runner import executor
        saved = dict(executor._worker_pipelines)
        executor._worker_pipelines.clear()
        yield
        executor._worker_pipelines.clear()
        executor._worker_pipelines.update(saved)

    def test_size_never_exceeds_cap(self):
        from repro.runner import executor
        for i in range(executor.PIPELINE_MEMO_CAP + 3):
            executor._memoized_pipeline(self._payload_npu(f"npu-{i}"))
            assert len(executor._worker_pipelines) <= \
                executor.PIPELINE_MEMO_CAP

    def test_repeat_config_reuses_pipeline(self):
        from repro.runner import executor
        payload = self._payload_npu("npu-a")
        first = executor._memoized_pipeline(payload)
        assert executor._memoized_pipeline(payload) is first

    def test_recently_used_survives_eviction(self):
        from repro.runner import executor
        hot = self._payload_npu("hot")
        kept = executor._memoized_pipeline(hot)
        for i in range(executor.PIPELINE_MEMO_CAP - 1):
            executor._memoized_pipeline(self._payload_npu(f"cold-{i}"))
        # Touch the oldest entry, then overflow: the LRU victim must be
        # cold-0, not the freshly touched one.
        assert executor._memoized_pipeline(hot) is kept
        executor._memoized_pipeline(self._payload_npu("overflow"))
        assert executor._memoized_pipeline(hot) is kept

    def test_evictions_and_size_reported(self):
        from repro import obs
        from repro.runner import executor
        recorder = obs.install(obs.Recorder())
        try:
            for i in range(executor.PIPELINE_MEMO_CAP + 2):
                executor._memoized_pipeline(self._payload_npu(f"n-{i}"))
            active = obs.get()
            assert active.counters[
                "executor.pipeline_memo_evictions"] == 2
            assert active.gauges["executor.pipeline_memo_size"] == \
                float(executor.PIPELINE_MEMO_CAP)
        finally:
            obs.install(recorder)


class TestDrainFinished:
    """Regression: a mid-grid worker failure used to drop cells that had
    already finished but were not yet yielded by as_completed, so resume
    re-ran them."""

    @staticmethod
    def _future(result=None, exception=None, cancel=False):
        future = Future()
        if cancel:
            future.cancel()
            future.set_running_or_notify_cancel()
        elif exception is not None:
            future.set_exception(exception)
        elif result is not None:
            future.set_result(result)
        return future

    def _setup(self):
        requests = grid()
        done = self._future({"workload": "lenet"})
        failed = self._future(exception=ValueError("worker died"))
        pending = self._future(cancel=True)
        futures = {done: 0, failed: 1, pending: 2}
        records = [None] * len(requests)
        completed = {}
        return requests, futures, records, completed

    def test_finished_cells_recovered_and_persisted(self):
        requests, futures, records, completed = self._setup()
        persisted = []
        GridExecutor(jobs=2)._drain_finished(
            futures, requests, records, completed,
            lambda index, request, record: persisted.append(index))
        assert completed == {0: {"workload": "lenet"}}
        assert records[0] == {"workload": "lenet"}
        assert records[1] is None and records[2] is None
        assert persisted == [0]

    def test_already_recorded_cells_not_refired(self):
        requests, futures, records, completed = self._setup()
        completed[0] = records[0] = {"workload": "lenet"}
        persisted = []
        GridExecutor(jobs=2)._drain_finished(
            futures, requests, records, completed,
            lambda index, request, record: persisted.append(index))
        assert persisted == []

    def test_callback_errors_do_not_mask_original_failure(self):
        requests, futures, records, completed = self._setup()

        def explode(index, request, record):
            raise OSError("disk full during drain")

        GridExecutor(jobs=2)._drain_finished(futures, requests, records,
                                             completed, explode)
        assert completed == {0: {"workload": "lenet"}}  # still recovered

    def test_drain_fires_progress_with_updated_counts(self):
        """Regression: a worker failure mid-drain used to leave progress
        observers with stale ``completed`` counts — recovered cells were
        persisted but never announced."""
        requests, futures, records, completed = self._setup()
        seen = []
        executor = GridExecutor(
            jobs=2, progress=lambda done, total, req: seen.append((done,
                                                                   total)))
        executor._drain_finished(futures, requests, records, completed,
                                 None)
        assert seen == [(1, 3)]

    def test_drain_progress_errors_are_best_effort(self):
        requests, futures, records, completed = self._setup()

        def bad_progress(done, total, request):
            raise RuntimeError("progress pipe closed")

        executor = GridExecutor(jobs=2, progress=bad_progress)
        executor._drain_finished(futures, requests, records, completed,
                                 None)
        assert completed == {0: {"workload": "lenet"}}


class TestMonotoneProgress:
    """Progress counts never regress, even when a worker raises and the
    executor drains finished cells on the failure path."""

    def test_worker_failure_keeps_progress_monotone(self):
        seen = []
        requests = grid() + [EvalRequest(npu_config("edge"), "nonexistent",
                                         SCHEMES)]
        executor = GridExecutor(
            jobs=2, progress=lambda done, total, req: seen.append(done))
        with pytest.raises(CellError):
            executor.run(requests)
        assert seen == sorted(seen)
        assert len(seen) == len(set(seen))  # strictly increasing

    def test_serial_resume_continues_from_drained_counts(self):
        """A pool that dies after completing some cells resumes serially
        with progress continuing from the drained count."""
        seen = []
        executor = GridExecutor(
            jobs=2, progress=lambda done, total, req: seen.append(done))
        requests = grid()

        def dying_pool(reqs, on_result, completed):
            record = run_cell(reqs[0].payload())
            completed[0] = record
            executor._notify(len(completed), len(reqs), reqs[0])
            raise OSError("pool lost")

        executor._run_pool = dying_pool
        records = executor.run(requests, on_result=None)
        assert [r["workload"] for r in records] == ["lenet", "dlrm", "ncf"]
        assert seen == [1, 2, 3]
