"""ResultStore: hits, misses, fingerprints, atomicity, statistics."""

import json
import os
import time

import pytest

from repro.core.config import npu_config
from repro.runner.store import (
    CacheStats,
    DEFAULT_TMP_SWEEP_AGE,
    ResultStore,
    TMP_SWEEP_AGE_ENV,
    code_version,
    fingerprint,
)

RECORD = {"schema_version": 1, "payload": [1, 2, 3]}


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "cache")


class TestFingerprint:
    def test_deterministic(self):
        npu = npu_config("edge")
        assert fingerprint(npu, "lenet", ["seda"]) == \
            fingerprint(npu, "lenet", ["seda"])

    def test_sensitive_to_every_axis(self):
        edge, server = npu_config("edge"), npu_config("server")
        base = fingerprint(edge, "lenet", ["seda"])
        assert fingerprint(server, "lenet", ["seda"]) != base
        assert fingerprint(edge, "dlrm", ["seda"]) != base
        assert fingerprint(edge, "lenet", ["mgx-64b", "seda"]) != base

    def test_scheme_order_matters(self):
        # Order is part of the request contract (result ordering follows
        # it), so it participates in the address.
        edge = npu_config("edge")
        assert fingerprint(edge, "lenet", ["seda", "mgx-64b"]) != \
            fingerprint(edge, "lenet", ["mgx-64b", "seda"])

    def test_code_version_invalidates(self):
        edge = npu_config("edge")
        assert fingerprint(edge, "lenet", ["seda"], version="aaaa") != \
            fingerprint(edge, "lenet", ["seda"], version="bbbb")

    def test_code_version_is_stable(self):
        assert code_version() == code_version()


class TestGetPut:
    def test_miss_then_hit(self, store):
        key = "ab" * 32
        assert store.get(key) is None
        store.put(key, RECORD)
        assert store.get(key) == RECORD
        assert store.stats.hits == 1
        assert store.stats.misses == 1
        assert store.stats.puts == 1

    def test_contains_leaves_counters_alone(self, store):
        key = "cd" * 32
        assert not store.contains(key)
        store.put(key, RECORD)
        assert store.contains(key)
        assert store.stats.requests == 0

    def test_corrupt_record_is_quarantined(self, store):
        key = "ef" * 32
        store.put(key, RECORD)
        store._path(key).write_text("{not json")
        assert store.get(key) is None
        assert store.stats.quarantined == 1
        assert store.stats.misses == 1
        assert not store.contains(key)
        # The corrupt body is preserved for inspection, not destroyed.
        [quarantined] = store.quarantined_paths()
        assert quarantined.name == f"{key}.json"
        assert quarantined.read_text() == "{not json"

    def test_quarantined_record_recomputes_cleanly(self, store):
        # The normal lifecycle: corrupt hit -> miss -> recompute ->
        # republish -> clean hit, with the quarantined body retained.
        key = "ab" * 32
        store.put(key, RECORD)
        store._path(key).write_text("garbage")
        assert store.get(key) is None
        store.put(key, RECORD)
        assert store.get(key) == RECORD
        assert store.quarantined_count() == 1

    def test_clear_sweeps_quarantine(self, store):
        key = "cd" * 32
        store.put(key, RECORD)
        store._path(key).write_text("garbage")
        store.get(key)
        assert store.quarantined_count() == 1
        store.clear()
        assert store.quarantined_count() == 0
        assert not store.quarantine_dir().exists()

    def test_demote_hit(self, store):
        key = "12" * 32
        store.put(key, RECORD)
        assert store.get(key) == RECORD
        store.demote_hit(key)
        assert store.stats.hits == 0
        assert store.stats.misses == 1
        assert store.stats.evictions == 1
        assert not store.contains(key)

    def test_demote_without_hit_never_goes_negative(self, store):
        """Regression: spurious demote_hit used to drive hits to -1 and
        corrupt the lifetime hit-rate merged into stats.json."""
        store.demote_hit("ab" * 32)
        assert store.stats.hits == 0
        assert store.stats.misses == 0
        assert store.stats.evictions == 1
        assert store.stats.hit_rate == 0.0
        store.put("cd" * 32, RECORD)  # make flush non-idle
        store.flush_stats()
        lifetime = store.summary().lifetime
        assert lifetime["hits"] == 0
        assert lifetime["misses"] == 0

    def test_demote_after_hit_still_reclassifies(self, store):
        key = "34" * 32
        store.put(key, RECORD)
        store.get(key)
        store.demote_hit(key)
        assert (store.stats.hits, store.stats.misses) == (0, 1)

    def test_no_partial_files_after_put(self, store):
        store.put("01" * 32, RECORD)
        leftovers = list(store.root.rglob("*.tmp"))
        assert leftovers == []

    def test_sharded_layout(self, store):
        key = "9f" + "0" * 62
        store.put(key, RECORD)
        assert (store.root / "9f" / f"{key}.json").exists()


class TestMaintenance:
    def test_entries_and_size(self, store):
        assert store.entries() == 0
        store.put("aa" * 32, RECORD)
        store.put("bb" * 32, RECORD)
        assert store.entries() == 2
        assert store.size_bytes() > 0

    def test_clear(self, store):
        store.put("aa" * 32, RECORD)
        assert store.clear() == 1
        assert store.entries() == 0
        assert store.get("aa" * 32) is None  # miss again

    def test_orphan_tmp_files_reported_and_swept(self, store):
        """Regression: .tmp leftovers from crashed put()/flush_stats()
        were invisible to entries()/size_bytes() and survived clear().
        Aged orphans are swept; fresh ones may be a live writer's
        in-flight publish and must survive."""
        store.put("aa" * 32, RECORD)
        shard_orphan = store.root / "aa" / "deadbeef.tmp"
        shard_orphan.write_text("{trunc")
        root_orphan = store.root / "cafef00d.tmp"
        root_orphan.write_text("{trunc")
        live_orphan = store.root / "aa" / "inflight.tmp"
        live_orphan.write_text("{part")

        # Age two of the three past the sweep threshold.
        stale = time.time() - store.tmp_sweep_age - 60
        os.utime(shard_orphan, (stale, stale))
        os.utime(root_orphan, (stale, stale))

        assert store.entries() == 1          # records only
        summary = store.summary()
        assert summary.orphan_tmp == 3
        assert summary.orphan_tmp_sweepable == 2
        assert summary.orphan_tmp_live == 1

        removed = store.clear()
        assert removed == 1                  # return value counts records
        assert not shard_orphan.exists()
        assert not root_orphan.exists()
        assert live_orphan.exists()          # never sweep a live write
        summary = store.summary()
        assert summary.orphan_tmp == 1
        assert summary.orphan_tmp_sweepable == 0

    def test_zero_sweep_age_collects_everything(self, tmp_path):
        """tmp_sweep_age=0 restores the old eager behavior for tests
        and operators who know no writer is live."""
        store = ResultStore(tmp_path / "cache", tmp_sweep_age=0.0)
        orphan = store.root / "aa"
        orphan.mkdir(parents=True)
        orphan = orphan / "leftover.tmp"
        orphan.write_text("{trunc")
        store.clear()
        assert not orphan.exists()

    def test_sweep_age_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv(TMP_SWEEP_AGE_ENV, "42.5")
        assert ResultStore(tmp_path).tmp_sweep_age == 42.5
        monkeypatch.setenv(TMP_SWEEP_AGE_ENV, "not-a-number")
        assert ResultStore(tmp_path).tmp_sweep_age \
            == DEFAULT_TMP_SWEEP_AGE


class TestStats:
    def test_hit_rate(self):
        stats = CacheStats(hits=9, misses=1)
        assert stats.hit_rate == 0.9
        assert CacheStats().hit_rate == 0.0

    def test_flush_accumulates(self, store):
        store.put("aa" * 32, RECORD)
        store.get("aa" * 32)
        store.get("bb" * 32)
        store.flush_stats()
        store.get("aa" * 32)
        store.flush_stats()

        summary = store.summary()
        assert summary.lifetime["hits"] == 2
        assert summary.lifetime["misses"] == 1
        assert summary.last_run == {"hits": 1, "misses": 0,
                                    "puts": 0, "evictions": 0,
                                    "dedupes": 0, "quarantined": 0}
        assert store.stats.requests == 0  # reset after flush

    def test_flush_is_noop_when_idle(self, store):
        store.flush_stats()
        assert not (store.root / "stats.json").exists()

    def test_stats_file_is_valid_json(self, store):
        store.get("aa" * 32)
        store.flush_stats()
        with open(store.root / "stats.json") as handle:
            assert "lifetime" in json.load(handle)


class TestStatsLocking:
    """flush_stats merges under an inter-process flock; concurrent
    flushers must never lose counters to the read-modify-write race."""

    def test_lock_file_created_and_cleared(self, store):
        store.get("aa" * 32)
        store.flush_stats()
        assert (store.root / "stats.lock").exists()
        store.clear()
        assert not (store.root / "stats.lock").exists()
        assert not (store.root / "stats.json").exists()

    def test_concurrent_flushes_merge_every_counter(self, tmp_path):
        import threading

        root = tmp_path / "cache"
        flushers, per_flusher = 8, 25
        barrier = threading.Barrier(flushers)
        errors = []

        def flusher():
            # Each thread models an independent sweep process with its
            # own ResultStore over the same directory.
            local = ResultStore(root)
            try:
                barrier.wait()
                for _ in range(per_flusher):
                    local.stats.hits += 1
                    local.flush_stats()
            except Exception as exc:  # pragma: no cover - diagnostics
                errors.append(exc)

        threads = [threading.Thread(target=flusher)
                   for _ in range(flushers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        lifetime = ResultStore(root).summary().lifetime
        assert lifetime["hits"] == flushers * per_flusher

    def test_flush_works_without_fcntl(self, store, monkeypatch):
        from repro.runner import store as store_module

        monkeypatch.setattr(store_module, "fcntl", None)
        store.get("aa" * 32)
        store.flush_stats()
        assert store.summary().lifetime["misses"] == 1
        assert not (store.root / "stats.lock").exists()

    def test_fallback_spinlock_breaks_stale_lock(self, tmp_path,
                                                 monkeypatch):
        """A lock file leaked by a dead process must not wedge every
        future flush: past lock_stale_age the fallback breaks it."""
        from repro.runner import store as store_module

        monkeypatch.setattr(store_module, "fcntl", None)
        store = ResultStore(tmp_path / "cache")
        store.root.mkdir(parents=True, exist_ok=True)
        leaked = store.root / "stats.lock"
        leaked.write_text("99999")
        stale = time.time() - store.lock_stale_age - 5
        os.utime(leaked, (stale, stale))

        store.get("aa" * 32)
        store.flush_stats()              # would spin forever unbroken
        assert store.summary().lifetime["misses"] == 1
        assert not leaked.exists()

    def test_fallback_spinlock_waits_for_fresh_lock(self, tmp_path,
                                                    monkeypatch):
        """A *fresh* lock belongs to a live holder: the fallback spins
        until the holder releases instead of breaking it."""
        import threading

        from repro.runner import store as store_module

        monkeypatch.setattr(store_module, "fcntl", None)
        store = ResultStore(tmp_path / "cache")
        store.root.mkdir(parents=True, exist_ok=True)
        held = store.root / "stats.lock"
        held.write_text("1")             # fresh: mtime is now

        releaser = threading.Timer(0.1, held.unlink)
        releaser.start()
        try:
            store.get("aa" * 32)
            store.flush_stats()          # blocks until the release
        finally:
            releaser.cancel()
        assert store.summary().lifetime["misses"] == 1
