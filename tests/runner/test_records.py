"""Record round-trips: serialize -> deserialize -> identical metrics."""

import json

import pytest

from repro.core.config import npu_config
from repro.core.metrics import compare_schemes
from repro.core.pipeline import Pipeline
from repro.models.zoo import get_workload
from repro.runner.records import (
    RecordError,
    SCHEMA_VERSION,
    comparison_from_dict,
    comparison_to_dict,
    npu_from_dict,
    npu_to_dict,
    scheme_run_from_dict,
    scheme_run_to_dict,
)

SCHEMES = ["mgx-64b", "seda"]


@pytest.fixture(scope="module")
def comparison():
    pipeline = Pipeline(npu_config("edge"))
    return compare_schemes(pipeline, get_workload("lenet"), SCHEMES)


class TestNpuRoundTrip:
    def test_identity(self):
        npu = npu_config("edge")
        assert npu_from_dict(npu_to_dict(npu)) == npu

    def test_missing_field(self):
        with pytest.raises(RecordError):
            npu_from_dict({"name": "broken"})


class TestSchemeRunRoundTrip:
    def test_metrics_preserved(self, comparison):
        run = comparison.runs["seda"]
        restored = scheme_run_from_dict(scheme_run_to_dict(run))
        assert restored.workload == run.workload
        assert restored.scheme_name == run.scheme_name
        assert restored.total_cycles == run.total_cycles
        assert restored.total_bytes == run.total_bytes
        assert restored.data_bytes == run.data_bytes
        assert restored.metadata_bytes == run.metadata_bytes
        assert restored.total_time_ms == run.total_time_ms
        assert restored.bottleneck_histogram() == run.bottleneck_histogram()

    def test_trace_dropped(self, comparison):
        restored = scheme_run_from_dict(
            scheme_run_to_dict(comparison.runs["seda"]))
        assert restored.model_run is None

    def test_per_layer_fields(self, comparison):
        run = comparison.runs["mgx-64b"]
        restored = scheme_run_from_dict(scheme_run_to_dict(run))
        assert len(restored.layers) == len(run.layers)
        for original, copy in zip(run.layers, restored.layers):
            assert copy.layer_name == original.layer_name
            assert copy.total_cycles == original.total_cycles
            assert copy.bottleneck == original.bottleneck
            assert copy.row_hit_rate == original.row_hit_rate


class TestComparisonRoundTrip:
    def test_json_round_trip(self, comparison):
        wire = json.dumps(comparison_to_dict(comparison))
        restored = comparison_from_dict(json.loads(wire))
        assert restored.npu_name == comparison.npu_name
        assert restored.workload == comparison.workload
        assert restored.scheme_names == comparison.scheme_names
        for scheme in SCHEMES:
            assert restored.traffic(scheme) == comparison.traffic(scheme)
            assert restored.performance(scheme) == \
                comparison.performance(scheme)
            assert restored.slowdown_pct(scheme) == \
                comparison.slowdown_pct(scheme)

    def test_schema_version_stamped(self, comparison):
        assert comparison_to_dict(comparison)["schema_version"] == \
            SCHEMA_VERSION

    def test_wrong_schema_rejected(self, comparison):
        record = comparison_to_dict(comparison)
        record["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(RecordError):
            comparison_from_dict(record)

    def test_missing_schema_rejected(self, comparison):
        record = comparison_to_dict(comparison)
        del record["schema_version"]
        with pytest.raises(RecordError):
            comparison_from_dict(record)


class TestMalformedPayloads:
    """Corrupt container shapes must decode as RecordError (a store
    miss), never escape as AttributeError/TypeError."""

    def test_null_record_rejected(self):
        with pytest.raises(RecordError, match="expected an object"):
            comparison_from_dict(None)

    def test_null_runs_rejected(self, comparison):
        record = comparison_to_dict(comparison)
        record["runs"] = None
        with pytest.raises(RecordError, match="comparison runs"):
            comparison_from_dict(record)

    def test_list_runs_rejected(self, comparison):
        record = comparison_to_dict(comparison)
        record["runs"] = list(record["runs"].values())
        with pytest.raises(RecordError, match="expected an object"):
            comparison_from_dict(record)

    def test_null_layers_rejected(self, comparison):
        record = scheme_run_to_dict(comparison.baseline)
        record["layers"] = None
        with pytest.raises(RecordError, match="expected a list"):
            scheme_run_from_dict(record)

    def test_null_npu_rejected(self, comparison):
        record = scheme_run_to_dict(comparison.baseline)
        record["npu"] = None
        with pytest.raises(RecordError, match="NPU record"):
            scheme_run_from_dict(record)

    def test_string_layer_rejected(self, comparison):
        record = scheme_run_to_dict(comparison.baseline)
        record["layers"] = ["not-a-layer"]
        with pytest.raises(RecordError, match="layer-timing"):
            scheme_run_from_dict(record)
