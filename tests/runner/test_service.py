"""EvalService: dedupe, caching layers, resumable sweeps."""


from repro.core.metrics import ComparisonResult
from repro.runner.service import EvalService
from repro.runner.store import ResultStore

SCHEMES = ["mgx-64b", "seda"]


def counting_service(store=None, jobs=1):
    """A service whose executor counts the cells it actually computes."""
    service = EvalService(store=store, jobs=jobs)
    computed = []
    original = service.executor.run

    def wrapped(requests, on_result=None):
        computed.extend(r.workload for r in requests)
        return original(requests, on_result=on_result)

    service.executor.run = wrapped
    return service, computed


class TestEvaluate:
    def test_returns_comparisons_in_order(self):
        service = EvalService()
        results = service.evaluate([
            service.request("edge", "lenet", SCHEMES),
            service.request("edge", "dlrm", SCHEMES),
        ])
        assert [r.workload for r in results] == ["lenet", "dlrm"]
        assert all(isinstance(r, ComparisonResult) for r in results)

    def test_batch_dedupe(self):
        service, computed = counting_service()
        request = service.request("edge", "lenet", SCHEMES)
        results = service.evaluate([request, request, request])
        assert computed == ["lenet"]
        assert results[0] is results[1] is results[2]

    def test_memo_across_calls(self):
        service, computed = counting_service()
        first = service.compare("edge", "lenet", SCHEMES)
        second = service.compare("edge", "lenet", SCHEMES)
        assert first is second
        assert computed == ["lenet"]

    def test_sweep_shape(self):
        service = EvalService()
        results = service.sweep("edge", workloads=["lenet", "dlrm"],
                                scheme_names=SCHEMES)
        assert list(results) == ["lenet", "dlrm"]
        assert results["lenet"].npu_name == "edge"


class TestDiskCache:
    def test_second_service_hits_store(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        service, computed = counting_service(store=store)
        fresh = service.compare("edge", "lenet", SCHEMES)
        assert computed == ["lenet"]

        rehydrated_store = ResultStore(tmp_path / "cache")
        service2, computed2 = counting_service(store=rehydrated_store)
        cached = service2.compare("edge", "lenet", SCHEMES)
        assert computed2 == []  # served entirely from disk
        assert cached.traffic("seda") == fresh.traffic("seda")
        assert cached.performance("seda") == fresh.performance("seda")

    def test_parallel_results_equal_serial(self, tmp_path):
        serial = EvalService().sweep(
            "edge", workloads=["lenet", "dlrm", "ncf"], scheme_names=SCHEMES)
        parallel = EvalService(
            store=ResultStore(tmp_path / "cache"), jobs=2).sweep(
            "edge", workloads=["lenet", "dlrm", "ncf"], scheme_names=SCHEMES)
        for workload, expected in serial.items():
            got = parallel[workload]
            for scheme in SCHEMES:
                assert got.traffic(scheme) == expected.traffic(scheme)
                assert got.performance(scheme) == expected.performance(scheme)

    def test_resumable_sweep(self, tmp_path):
        # First run "dies" after completing one of three cells...
        store = ResultStore(tmp_path / "cache")
        EvalService(store=store).compare("edge", "lenet", SCHEMES)

        # ...the rerun computes only the two missing cells.
        resumed, computed = counting_service(
            store=ResultStore(tmp_path / "cache"))
        results = resumed.sweep("edge", workloads=["lenet", "dlrm", "ncf"],
                                scheme_names=SCHEMES)
        assert sorted(computed) == ["dlrm", "ncf"]
        assert set(results) == {"lenet", "dlrm", "ncf"}

    def test_results_persist_per_cell(self, tmp_path):
        # Each finished cell lands on disk even mid-batch: after a batch
        # of two, the store holds two records (not one blob).
        store = ResultStore(tmp_path / "cache")
        service = EvalService(store=store)
        service.sweep("edge", workloads=["lenet", "dlrm"],
                      scheme_names=SCHEMES)
        assert store.entries() == 2

    def test_stale_schema_recomputed(self, tmp_path):
        from repro.runner.store import fingerprint
        from repro.core.config import npu_config

        store = ResultStore(tmp_path / "cache")
        key = fingerprint(npu_config("edge"), "lenet", tuple(SCHEMES))
        store.put(key, {"schema_version": -1})

        service, computed = counting_service(store=store)
        result = service.compare("edge", "lenet", SCHEMES)
        assert computed == ["lenet"]  # stale record did not satisfy the get
        assert result.workload == "lenet"
        # The unusable record counts as a miss, not a hit.
        lifetime = store.summary().lifetime
        assert lifetime["hits"] == 0
        assert lifetime["misses"] == 1
        assert lifetime["evictions"] == 1
        # ...and the store now holds a fresh, readable record.
        service2, computed2 = counting_service(
            store=ResultStore(tmp_path / "cache"))
        service2.compare("edge", "lenet", SCHEMES)
        assert computed2 == []

    def test_stats_flushed_after_batch(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        service = EvalService(store=store)
        service.compare("edge", "lenet", SCHEMES)
        summary = store.summary()
        assert summary.lifetime.get("misses") == 1
        assert summary.lifetime.get("puts") == 1
