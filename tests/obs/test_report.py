"""Report aggregation: trace file -> tables behind ``repro report``."""

from repro import obs
from repro.obs import export, report


def loaded_trace(tmp_path):
    recorder = obs.Recorder()
    previous = obs.install(recorder)
    try:
        for workload, npu in (("lenet", "edge"), ("dlrm", "edge")):
            with obs.span("cell", workload=workload, npu=npu,
                          schemes="seda"), \
                    obs.span("protect", scheme="seda", workload=workload):
                pass
        obs.incr("executor.cells_serial", 2)
        obs.gauge("executor.pipeline_memo_size", 1)
    finally:
        obs.install(previous)
    path = tmp_path / "t.trace.json"
    export.write_chrome_trace(recorder, str(path))
    return export.load_chrome_trace(str(path))


class TestStageRows:
    def test_rollup_counts_and_sort(self, tmp_path):
        rows = report.stage_rows(loaded_trace(tmp_path))
        by_name = {row[0]: row for row in rows}
        assert by_name["cell"][1] == 2
        assert by_name["protect"][1] == 2
        totals = [row[2] for row in rows]
        assert totals == sorted(totals, reverse=True)
        for name, count, total, mean, peak in rows:
            assert mean <= total and peak <= total


class TestSlowestRows:
    def test_top_limit_and_descending(self, tmp_path):
        rows = report.slowest_rows(loaded_trace(tmp_path), top=3)
        assert len(rows) == 3
        durations = [row[1] for row in rows]
        assert durations == sorted(durations, reverse=True)

    def test_name_filter(self, tmp_path):
        rows = report.slowest_rows(loaded_trace(tmp_path),
                                   name="protect", top=10)
        assert len(rows) == 2
        assert all(row[0] == "protect" for row in rows)
        assert "scheme=seda" in rows[0][3]  # args rendered


class TestCellRows:
    def test_workload_npu_extracted(self, tmp_path):
        rows = report.cell_rows(loaded_trace(tmp_path), top=10)
        assert {(row[0], row[1]) for row in rows} == \
            {("lenet", "edge"), ("dlrm", "edge")}

    def test_top_truncates(self, tmp_path):
        assert len(report.cell_rows(loaded_trace(tmp_path), top=1)) == 1


class TestMetricRows:
    def test_counters_from_other_data(self, tmp_path):
        rows = report.counter_rows(loaded_trace(tmp_path))
        assert rows == [["executor.cells_serial", 2]]

    def test_gauges_from_other_data(self, tmp_path):
        rows = report.gauge_rows(loaded_trace(tmp_path))
        assert rows == [["executor.pipeline_memo_size", 1.0]]

    def test_bare_trace_yields_no_rows(self, tmp_path):
        trace = {"traceEvents": [], "otherData": {}}
        assert report.counter_rows(trace) == []
        assert report.gauge_rows(trace) == []
