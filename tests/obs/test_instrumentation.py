"""The instrumented stack records what it claims to record.

Pipeline stage spans, executor cell spans across the serial / pool /
fallback paths, worker-snapshot marshalling through ``_obs``, and the
service-level cache counters.
"""

import pytest

from repro import obs
from repro.core.config import npu_config
from repro.core.pipeline import Pipeline
from repro.models.layer import conv, gemm
from repro.models.topology import Topology
from repro.protection import make_scheme
from repro.runner.executor import EvalRequest, GridExecutor, run_cell
from repro.runner.service import EvalService

SCHEMES = ("mgx-64b", "seda")


@pytest.fixture
def topology():
    return Topology("obs-pipe", [
        conv("c1", 18, 18, 3, 3, 3, 8),
        gemm("fc", 1, 8 * 16 * 16, 10),
    ])


def grid():
    edge = npu_config("edge")
    return [EvalRequest(edge, "lenet", SCHEMES),
            EvalRequest(edge, "dlrm", SCHEMES),
            EvalRequest(edge, "ncf", SCHEMES)]


def span_names(recorder):
    return [event["name"] for event in recorder.spans]


class TestPipelineSpans:
    def test_stage_spans_per_scheme_and_layer(self, test_npu, topology):
        recorder = obs.enable()
        Pipeline(test_npu).run(topology, make_scheme("seda"))
        names = span_names(recorder)
        assert names.count("accel") == 1
        assert names.count("accel.layer") == len(topology)
        assert names.count("protect") == 1
        assert names.count("protect.layer") == len(topology)
        assert names.count("dram") == 1
        assert names.count("crypto") == 1

    def test_slow_dram_path_records_per_layer_spans(self, test_npu,
                                                    topology):
        recorder = obs.enable()
        pipeline = Pipeline(test_npu, use_fast_dram=False)
        run = pipeline.run(topology, make_scheme("sgx-64b"))
        names = span_names(recorder)
        # One dram.layer span per protection record (incl. flush tail).
        assert names.count("dram.layer") == len(run.layers)

    def test_untraced_run_records_nothing(self, test_npu, topology):
        Pipeline(test_npu).run(topology, make_scheme("seda"))
        assert obs.get() is None  # nothing installed, nothing leaked


class TestCellMarshalling:
    def test_traced_payload_ships_obs_snapshot(self):
        obs.enable()
        record = run_cell(grid()[0].payload())
        snapshot = record["_obs"]
        names = [event["name"] for event in snapshot["spans"]]
        cell, = [e for e in snapshot["spans"] if e["name"] == "cell"]
        assert cell["args"]["workload"] == "lenet"
        assert names.count("protect") == len(SCHEMES) + 1  # + baseline

    def test_cell_span_covers_its_stage_spans(self):
        obs.enable()
        snapshot = run_cell(grid()[0].payload())["_obs"]
        cell, = [e for e in snapshot["spans"] if e["name"] == "cell"]
        stage_total = sum(e["dur"] for e in snapshot["spans"]
                          if e["name"] in ("accel", "protect", "dram",
                                           "crypto"))
        # Stages are disjoint sub-intervals of the cell.
        assert cell["dur"] >= stage_total * 0.99

    def test_untraced_payload_ships_nothing(self):
        record = run_cell(grid()[0].payload())
        assert "_obs" not in record

    def test_parent_recorder_restored_after_cell(self):
        parent = obs.enable()
        run_cell(grid()[0].payload())
        assert obs.get() is parent
        # The cell recorded privately; the parent saw none of it.
        assert parent.spans == []


class TestExecutorIngestion:
    def test_serial_run_absorbs_every_cell(self):
        recorder = obs.enable()
        records = GridExecutor(jobs=1).run(grid())
        assert all("_obs" not in record for record in records)
        cells = [e for e in recorder.spans if e["name"] == "cell"]
        assert sorted(c["args"]["workload"] for c in cells) == \
            ["dlrm", "lenet", "ncf"]
        assert recorder.counters["executor.cells_serial"] == 3

    def test_pool_run_absorbs_every_cell(self):
        recorder = obs.enable()
        records = GridExecutor(jobs=2).run(grid())
        assert all("_obs" not in record for record in records)
        cells = [e for e in recorder.spans if e["name"] == "cell"]
        assert sorted(c["args"]["workload"] for c in cells) == \
            ["dlrm", "lenet", "ncf"]
        assert recorder.counters["executor.cells_pool"] == 3
        assert recorder.gauges["executor.pool_workers"] == 2.0

    def test_pool_fallback_neither_drops_nor_duplicates(self, monkeypatch):
        recorder = obs.enable()
        executor = GridExecutor(jobs=2)

        def boom(requests, on_result, completed):
            raise OSError("no processes here")

        monkeypatch.setattr(executor, "_run_pool", boom)
        executor.run(grid())
        cells = [e for e in recorder.spans if e["name"] == "cell"]
        assert sorted(c["args"]["workload"] for c in cells) == \
            ["dlrm", "lenet", "ncf"]
        assert recorder.counters["executor.pool_fallbacks"] == 1
        assert recorder.counters["executor.cells_serial"] == 3

    def test_partial_pool_then_serial_resume_keeps_spans_exact(self):
        """A pool that dies after finishing one cell: the resume must
        not re-record that cell's spans nor lose the others'."""
        from repro.runner.executor import _ingest

        recorder = obs.enable()
        executor = GridExecutor(jobs=2)
        requests = grid()

        def dying_pool(reqs, on_result, completed):
            completed[0] = _ingest(run_cell(reqs[0].payload()))
            raise OSError("pool lost")

        executor._run_pool = dying_pool
        records = executor.run(requests)
        assert [r["workload"] for r in records] == ["lenet", "dlrm",
                                                    "ncf"]
        cells = [e for e in recorder.spans if e["name"] == "cell"]
        workloads = [c["args"]["workload"] for c in cells]
        assert sorted(workloads) == ["dlrm", "lenet", "ncf"]
        assert len(workloads) == len(set(workloads))  # no duplicates

    def test_drain_finished_absorbs_worker_snapshots(self):
        """Cells recovered on the failure path keep their telemetry."""
        from concurrent.futures import Future

        recorder = obs.enable()
        worker = obs.Recorder()
        previous = obs.install(worker)
        try:
            with obs.span("cell", workload="lenet", npu="edge",
                          schemes="seda"):
                pass
        finally:
            obs.install(previous)
        future = Future()
        future.set_result({"workload": "lenet",
                           "_obs": worker.snapshot()})
        requests = grid()
        records = [None] * len(requests)
        completed = {}
        GridExecutor(jobs=2)._drain_finished(
            {future: 0}, requests, records, completed, None)
        assert "_obs" not in completed[0]
        cells = [e for e in recorder.spans if e["name"] == "cell"]
        assert len(cells) == 1
        assert recorder.counters["executor.cells_pool"] == 1


class TestServiceCounters:
    def test_memo_disk_and_compute_paths_counted(self, tmp_path):
        from repro.runner.store import ResultStore

        recorder = obs.enable()
        request = EvalService.request("edge", "lenet", SCHEMES)

        service = EvalService(store=ResultStore(tmp_path / "cache"))
        service.evaluate([request, request])  # compute + batch dedupe
        assert recorder.counters["service.computed"] == 1
        assert recorder.counters["service.batch_deduped"] == 1

        service.evaluate([request])  # in-memory memo
        assert recorder.counters["service.memo_hits"] == 1

        fresh = EvalService(store=ResultStore(tmp_path / "cache"))
        fresh.evaluate([request])  # same store, cold memo
        assert recorder.counters["service.disk_hits"] == 1
        assert recorder.counters["service.computed"] == 1  # unchanged

        evaluate_span, = [e for e in recorder.spans
                          if e["name"] == "service.evaluate"]
        assert evaluate_span["args"] == {"batch": 2, "computed": 1}
