"""Every obs test starts and ends with tracing disabled.

The module-level API routes through one process-global recorder; a test
that enables tracing and forgets to disable it would silently contaminate
every later test's counters.  This fixture makes the hygiene automatic.
"""

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _tracing_off():
    previous = obs.install(None)
    yield
    obs.install(previous)
