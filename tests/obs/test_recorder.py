"""Recorder unit behaviour: no-op discipline, recording, merging, env hook."""

import json
import os
import threading
import time

import pytest

from repro import obs
from repro.obs.recorder import NOOP_SPAN


class TestDisabled:
    def test_span_is_the_shared_noop_singleton(self):
        assert obs.span("anything", layer=1) is NOOP_SPAN
        with obs.span("anything"):
            pass  # enter/exit must be valid on the singleton

    def test_incr_gauge_absorb_are_noops(self):
        obs.incr("c", 5)
        obs.gauge("g", 1.0)
        obs.absorb({"counters": {"c": 5}, "spans": [{"name": "x"}]})
        assert obs.get() is None
        assert not obs.enabled()

    def test_disabled_overhead_is_negligible(self):
        # Loose sanity bound, not a benchmark: 50k disabled
        # span+incr+gauge round-trips must cost microseconds each at
        # most — each call is one None check.
        start = time.monotonic()
        for _ in range(50_000):
            with obs.span("hot", layer=1):
                pass
            obs.incr("hot")
            obs.gauge("level", 1)
        assert time.monotonic() - start < 2.0


class TestLifecycle:
    def test_enable_installs_and_is_idempotent(self):
        first = obs.enable()
        assert obs.enabled()
        assert obs.get() is first
        assert obs.enable() is first  # no silent recorder swap

    def test_install_returns_previous_for_restore(self):
        outer = obs.enable()
        inner = obs.Recorder()
        assert obs.install(inner) is outer
        assert obs.get() is inner
        assert obs.install(outer) is inner
        assert obs.get() is outer

    def test_disable_uninstalls_and_returns_recorder(self):
        recorder = obs.enable()
        assert obs.disable() is recorder
        assert not obs.enabled()
        assert obs.disable() is None


class TestRecording:
    def test_span_event_shape(self):
        recorder = obs.enable()
        with obs.span("stage", layer=3, scheme="seda"):
            pass
        (event,) = recorder.spans
        assert event["name"] == "stage"
        assert event["args"] == {"layer": 3, "scheme": "seda"}
        assert event["pid"] == os.getpid()
        assert event["tid"] == threading.get_ident()
        assert event["dur"] >= 0.0

    def test_nested_spans_both_recorded_child_first(self):
        recorder = obs.enable()
        with obs.span("outer"), obs.span("inner"):
            pass
        assert [e["name"] for e in recorder.spans] == ["inner", "outer"]
        inner, outer = recorder.spans
        assert outer["dur"] >= inner["dur"]
        assert outer["ts"] <= inner["ts"]

    def test_span_recorded_even_when_body_raises(self):
        recorder = obs.enable()
        with pytest.raises(ValueError), obs.span("failing"):
            raise ValueError("boom")
        assert [e["name"] for e in recorder.spans] == ["failing"]

    def test_counters_accumulate(self):
        recorder = obs.enable()
        obs.incr("hits")
        obs.incr("hits", 4)
        obs.incr("misses")
        assert recorder.counters == {"hits": 5, "misses": 1}

    def test_gauges_keep_latest_and_full_timeline(self):
        recorder = obs.enable()
        obs.gauge("memo", 1)
        obs.gauge("memo", 3)
        obs.gauge("workers", 8)
        assert recorder.gauges == {"memo": 3.0, "workers": 8.0}
        assert [s["value"] for s in recorder.gauge_samples
                if s["name"] == "memo"] == [1.0, 3.0]


class TestSnapshotAbsorb:
    def _populated(self):
        recorder = obs.Recorder()
        previous = obs.install(recorder)
        try:
            with obs.span("cell", workload="lenet"):
                pass
            obs.incr("store.hits", 2)
            obs.gauge("memo", 4)
        finally:
            obs.install(previous)
        return recorder

    def test_snapshot_is_json_safe(self):
        snapshot = self._populated().snapshot()
        json.dumps(snapshot)  # must not raise
        assert snapshot["origin_pid"] == os.getpid()
        assert len(snapshot["spans"]) == 1
        assert snapshot["counters"] == {"store.hits": 2}

    def test_snapshot_is_a_copy(self):
        recorder = self._populated()
        snapshot = recorder.snapshot()
        snapshot["spans"].append({"name": "bogus"})
        snapshot["counters"]["store.hits"] = 99
        assert len(recorder.spans) == 1
        assert recorder.counters["store.hits"] == 2

    def test_absorb_merges_worker_snapshot(self):
        parent = self._populated()
        worker = self._populated()
        parent.absorb(worker.snapshot())
        assert len(parent.spans) == 2            # appended
        assert parent.counters == {"store.hits": 4}  # summed
        assert parent.gauges == {"memo": 4.0}    # last write wins
        assert len(parent.gauge_samples) == 2    # timeline keeps both

    def test_module_absorb_routes_to_active_recorder(self):
        recorder = obs.enable()
        obs.absorb(self._populated().snapshot())
        assert recorder.counters == {"store.hits": 2}


class TestEnvHook:
    def test_no_env_var_means_no_recorder(self, monkeypatch):
        monkeypatch.delenv(obs.TRACE_ENV, raising=False)
        assert obs.init_from_env() is None
        assert not obs.enabled()

    def test_env_var_enables_and_registers_exporter(self, monkeypatch,
                                                    tmp_path):
        import atexit

        trace_path = tmp_path / "run.trace.json"
        monkeypatch.setenv(obs.TRACE_ENV, str(trace_path))
        registered = []
        monkeypatch.setattr(atexit, "register",
                            lambda fn, *a: registered.append((fn, a)))

        recorder = obs.init_from_env()
        assert obs.get() is recorder
        with obs.span("stage"):
            pass

        # Run the registered exporter as interpreter exit would.
        (fn, fn_args), = registered
        fn(*fn_args)
        trace = json.loads(trace_path.read_text())
        assert any(e.get("name") == "stage"
                   for e in trace["traceEvents"])
        metrics = json.loads(
            (tmp_path / "run.metrics.json").read_text())
        assert metrics["spans"]["stage"]["count"] == 1

    def test_idempotent_when_already_tracing(self, monkeypatch, tmp_path):
        import atexit

        monkeypatch.setenv(obs.TRACE_ENV, str(tmp_path / "t.json"))
        registered = []
        monkeypatch.setattr(atexit, "register",
                            lambda fn, *a: registered.append(fn))
        first = obs.init_from_env()
        assert obs.init_from_env() is first
        assert len(registered) == 1  # exporter not registered twice
