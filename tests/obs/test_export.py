"""Exporters: JSONL, metrics summary, Chrome trace round-trips."""

import json

import pytest

from repro import obs
from repro.obs import export


def populated_recorder():
    recorder = obs.Recorder()
    previous = obs.install(recorder)
    try:
        with obs.span("cell", workload="lenet", npu="edge"):
            with obs.span("protect.layer", layer=0):
                pass
            with obs.span("protect.layer", layer=1):
                pass
        obs.incr("store.hits", 3)
        obs.gauge("memo", 2)
        obs.gauge("memo", 4)
    finally:
        obs.install(previous)
    return recorder


class TestMetricsSummary:
    def test_structure(self):
        summary = export.metrics_summary(populated_recorder())
        assert summary["counters"] == {"store.hits": 3}
        assert summary["gauges"] == {"memo": 4.0}
        layer = summary["spans"]["protect.layer"]
        assert layer["count"] == 2
        assert layer["total_s"] == pytest.approx(
            layer["mean_s"] * 2)
        assert layer["max_s"] <= layer["total_s"]
        assert summary["spans"]["cell"]["count"] == 1

    def test_write_is_valid_json(self, tmp_path):
        path = tmp_path / "m.json"
        export.write_metrics_summary(populated_recorder(), str(path))
        assert json.loads(path.read_text())["counters"] == {"store.hits": 3}


class TestJsonl:
    def test_every_event_kind_present(self, tmp_path):
        path = tmp_path / "events.jsonl"
        export.write_jsonl(populated_recorder(), str(path))
        events = [json.loads(line)
                  for line in path.read_text().splitlines()]
        kinds = {event["kind"] for event in events}
        assert kinds == {"span", "gauge", "counter"}
        assert sum(e["kind"] == "span" for e in events) == 3
        assert sum(e["kind"] == "gauge" for e in events) == 2
        counter, = [e for e in events if e["kind"] == "counter"]
        assert counter == {"kind": "counter", "name": "store.hits",
                           "value": 3}


class TestMetricsPathFor:
    def test_trace_json_suffix(self):
        assert export.metrics_path_for("out.trace.json") == \
            "out.metrics.json"

    def test_plain_json_suffix(self):
        assert export.metrics_path_for("out.json") == "out.metrics.json"

    def test_other_suffix_appends(self):
        assert export.metrics_path_for("out.bin") == \
            "out.bin.metrics.json"


class TestChromeTrace:
    def test_event_kinds_and_units(self):
        trace = export.chrome_trace(populated_recorder())
        events = trace["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        counters = [e for e in events if e["ph"] == "C"]
        assert len(meta) == 1  # single-process recorder
        assert meta[0]["args"]["name"].startswith("repro main")
        assert len(spans) == 3
        assert len(counters) == 2  # one per gauge sample
        for event in spans:
            assert isinstance(event["ts"], int)  # microsecond integers
            assert isinstance(event["dur"], int)
        cell, = [e for e in spans if e["name"] == "cell"]
        assert cell["cat"] == "cell"
        layer = [e for e in spans if e["name"] == "protect.layer"][0]
        assert layer["cat"] == "protect"  # category = name prefix

    def test_absorbed_worker_pid_named_worker(self):
        parent = populated_recorder()
        worker_snapshot = populated_recorder().snapshot()
        for event in worker_snapshot["spans"]:
            event["pid"] = parent.origin_pid + 1
        parent.absorb(worker_snapshot)
        trace = export.chrome_trace(parent)
        names = {e["pid"]: e["args"]["name"]
                 for e in trace["traceEvents"] if e["ph"] == "M"}
        assert names[parent.origin_pid].startswith("repro main")
        assert names[parent.origin_pid + 1].startswith("repro worker")

    def test_metrics_ride_along_in_other_data(self):
        trace = export.chrome_trace(populated_recorder())
        metrics = trace["otherData"]["repro_metrics"]
        assert metrics["counters"] == {"store.hits": 3}

    def test_write_load_roundtrip(self, tmp_path):
        path = tmp_path / "t.trace.json"
        export.write_chrome_trace(populated_recorder(), str(path))
        trace = export.load_chrome_trace(str(path))
        assert len(export.span_events(trace)) == 3

    def test_load_accepts_bare_array_form(self, tmp_path):
        path = tmp_path / "array.json"
        path.write_text(json.dumps(
            [{"name": "s", "ph": "X", "ts": 0, "dur": 5,
              "pid": 1, "tid": 1}]))
        trace = export.load_chrome_trace(str(path))
        assert len(export.span_events(trace)) == 1
        assert trace["otherData"] == {}

    def test_load_rejects_non_trace_json(self, tmp_path):
        path = tmp_path / "not_a_trace.json"
        path.write_text(json.dumps({"counters": {}}))
        with pytest.raises(ValueError, match="trace-event"):
            export.load_chrome_trace(str(path))

    def test_span_events_filters_by_name(self, tmp_path):
        path = tmp_path / "t.trace.json"
        export.write_chrome_trace(populated_recorder(), str(path))
        trace = export.load_chrome_trace(str(path))
        assert len(export.span_events(trace, name="protect.layer")) == 2
        assert export.span_events(trace, name="missing") == []
