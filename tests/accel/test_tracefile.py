"""Trace file import/export."""

import io

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel.trace import BlockStream
from repro.accel.tracefile import (
    read_ramulator,
    read_scalesim,
    write_ramulator,
    write_scalesim,
)


def _stream(n=10, seed=3):
    rng = np.random.default_rng(seed)
    return BlockStream(
        np.sort(rng.integers(0, 1000, n)).astype(np.int64),
        (rng.integers(0, 1 << 20, n) * 64).astype(np.uint64),
        rng.integers(0, 2, n).astype(bool),
        np.zeros(n, np.int32),
    )


class TestScalesimFormat:
    def test_roundtrip(self):
        stream = _stream()
        sink = io.StringIO()
        assert write_scalesim(stream, sink) == len(stream)
        parsed = read_scalesim(sink.getvalue())
        assert list(parsed.cycles) == list(stream.cycles)
        assert list(parsed.addrs) == list(stream.addrs)
        assert list(parsed.writes) == list(stream.writes)

    def test_comments_and_blanks_skipped(self):
        text = "# header\n\n10,640,R\n20,128,W\n"
        parsed = read_scalesim(text)
        assert len(parsed) == 2
        assert parsed.writes[1]

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            read_scalesim("10,640\n")
        with pytest.raises(ValueError):
            read_scalesim("10,640,X\n")

    @given(st.integers(1, 60))
    @settings(max_examples=15, deadline=None)
    def test_roundtrip_property(self, n):
        stream = _stream(n, seed=n)
        sink = io.StringIO()
        write_scalesim(stream, sink)
        parsed = read_scalesim(sink.getvalue())
        assert parsed.total_bytes == stream.total_bytes
        assert parsed.write_blocks == stream.write_blocks


class TestRamulatorFormat:
    def test_roundtrip_addresses(self):
        stream = _stream()
        sink = io.StringIO()
        assert write_ramulator(stream, sink) == len(stream)
        parsed = read_ramulator(sink.getvalue())
        assert list(parsed.addrs) == list(stream.addrs)
        assert list(parsed.writes) == list(stream.writes)
        assert (parsed.cycles == 0).all()  # cycles dropped by design

    def test_hex_and_decimal_accepted(self):
        parsed = read_ramulator("0x40 R\n128 W\n")
        assert list(parsed.addrs) == [0x40, 128]

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            read_ramulator("0x40\n")
        with pytest.raises(ValueError):
            read_ramulator("0x40 Q\n")


class TestEndToEnd:
    def test_exported_trace_simulates_identically(self, test_npu):
        """A trace exported and re-imported yields the same DRAM result."""
        from repro.dram.simulator import DramSim
        from repro.models.layer import conv
        from repro.models.topology import Topology
        from repro.core.pipeline import Pipeline

        pipeline = Pipeline(test_npu)
        run = pipeline.simulate_model(
            Topology("t", [conv("c", 18, 18, 3, 3, 4, 8)]))
        stream = run.layers[0].trace.to_blocks().sorted_by_cycle()

        sink = io.StringIO()
        write_scalesim(stream, sink)
        parsed = read_scalesim(sink.getvalue())

        sim = DramSim(test_npu.dram_config(), test_npu.freq_ghz)
        original = sim.simulate_fast(stream)
        reloaded = sim.simulate_fast(parsed)
        assert original.busy_cycles == reloaded.busy_cycles
        assert original.row_misses == reloaded.row_misses


def _kinded_stream(n=12, seed=7):
    from repro.accel.trace import AccessKind
    rng = np.random.default_rng(seed)
    kinds = rng.integers(0, len(AccessKind), n).astype(np.int8)
    stream = _stream(n, seed)
    return BlockStream(stream.cycles, stream.addrs, stream.writes,
                       stream.layer_ids, kinds)


class TestKindPreservingRoundtrip:
    """The lossy-roundtrip fix: per-block kinds survive export/import."""

    def test_scalesim_roundtrips_kinds(self):
        stream = _kinded_stream()
        sink = io.StringIO()
        assert write_scalesim(stream, sink) == len(stream)
        parsed = read_scalesim(sink.getvalue())
        assert parsed.kinds is not None
        assert list(parsed.kinds) == list(stream.kinds)
        assert parsed.bytes_by_kind() == stream.bytes_by_kind()

    def test_scalesim_fourth_field_is_the_kind_name(self):
        from repro.accel.trace import AccessKind, kind_code
        stream = BlockStream(
            np.array([1, 2], np.int64), np.array([0, 64], np.uint64),
            np.array([False, True]), np.zeros(2, np.int32),
            np.array([kind_code(AccessKind.KVCACHE),
                      kind_code(AccessKind.OFMAP)], np.int8))
        sink = io.StringIO()
        write_scalesim(stream, sink)
        lines = sink.getvalue().splitlines()
        assert lines[0] == "1,0,R,kvcache"
        assert lines[1] == "2,64,W,ofmap"

    def test_plain_scalesim_files_still_load_without_kinds(self):
        parsed = read_scalesim("10,640,R\n20,128,W\n")
        assert parsed.kinds is None
        assert parsed.bytes_by_kind() == {}

    def test_kindless_stream_writes_three_fields(self):
        stream = _stream(4)
        sink = io.StringIO()
        write_scalesim(stream, sink)
        assert all(line.count(",") == 2
                   for line in sink.getvalue().splitlines())

    def test_mixed_arity_rejected(self):
        with pytest.raises(ValueError):
            read_scalesim("10,640,R,ifmap\n20,128,W\n")
        with pytest.raises(ValueError):
            read_scalesim("10,640,R\n20,128,W,ifmap\n")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            read_scalesim("10,640,R,sprocket\n")

    def test_ramulator_roundtrips_kinds_via_header_comment(self):
        stream = _kinded_stream()
        sink = io.StringIO()
        assert write_ramulator(stream, sink) == len(stream)
        text = sink.getvalue()
        assert text.startswith("#repro-kinds:")
        # Data lines stay plain Ramulator format (tool compatibility).
        for line in text.splitlines()[1:]:
            assert len(line.split()) == 2
        parsed = read_ramulator(text)
        assert list(parsed.kinds) == list(stream.kinds)

    def test_ramulator_without_header_is_documented_lossy(self):
        parsed = read_ramulator("0x40 R\n0x80 W\n")
        assert parsed.kinds is None

    def test_ramulator_header_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            read_ramulator("#repro-kinds: ifmap*3\n0x40 R\n")

    def test_ramulator_bad_header_item_rejected(self):
        with pytest.raises(ValueError):
            read_ramulator("#repro-kinds: ifmap*x\n0x40 R\n")

    def test_pipeline_stream_roundtrip_preserves_kv_accounting(self):
        """A real simulator stream keeps its per-kind byte split through
        a scalesim export/import (the docstring's lossless promise)."""
        from repro.accel.simulator import AcceleratorSim
        from repro.accel.systolic import SystolicArray
        from repro.accel.trace import AccessKind
        from repro.models.zoo import get_workload
        from repro.tiling.tile import SramBudget

        sim = AcceleratorSim(SystolicArray(16, 16), SramBudget.split(96 << 10))
        run = sim.run(get_workload("gpt2@s64").subset(6))
        stream = run.trace.to_blocks()
        assert AccessKind.KVCACHE in stream.bytes_by_kind()
        sink = io.StringIO()
        write_scalesim(stream, sink)
        parsed = read_scalesim(sink.getvalue())
        assert parsed.bytes_by_kind() == stream.bytes_by_kind()
