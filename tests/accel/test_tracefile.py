"""Trace file import/export."""

import io

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel.trace import BlockStream
from repro.accel.tracefile import (
    read_ramulator,
    read_scalesim,
    write_ramulator,
    write_scalesim,
)


def _stream(n=10, seed=3):
    rng = np.random.default_rng(seed)
    return BlockStream(
        np.sort(rng.integers(0, 1000, n)).astype(np.int64),
        (rng.integers(0, 1 << 20, n) * 64).astype(np.uint64),
        rng.integers(0, 2, n).astype(bool),
        np.zeros(n, np.int32),
    )


class TestScalesimFormat:
    def test_roundtrip(self):
        stream = _stream()
        sink = io.StringIO()
        assert write_scalesim(stream, sink) == len(stream)
        parsed = read_scalesim(sink.getvalue())
        assert list(parsed.cycles) == list(stream.cycles)
        assert list(parsed.addrs) == list(stream.addrs)
        assert list(parsed.writes) == list(stream.writes)

    def test_comments_and_blanks_skipped(self):
        text = "# header\n\n10,640,R\n20,128,W\n"
        parsed = read_scalesim(text)
        assert len(parsed) == 2
        assert parsed.writes[1]

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            read_scalesim("10,640\n")
        with pytest.raises(ValueError):
            read_scalesim("10,640,X\n")

    @given(st.integers(1, 60))
    @settings(max_examples=15, deadline=None)
    def test_roundtrip_property(self, n):
        stream = _stream(n, seed=n)
        sink = io.StringIO()
        write_scalesim(stream, sink)
        parsed = read_scalesim(sink.getvalue())
        assert parsed.total_bytes == stream.total_bytes
        assert parsed.write_blocks == stream.write_blocks


class TestRamulatorFormat:
    def test_roundtrip_addresses(self):
        stream = _stream()
        sink = io.StringIO()
        assert write_ramulator(stream, sink) == len(stream)
        parsed = read_ramulator(sink.getvalue())
        assert list(parsed.addrs) == list(stream.addrs)
        assert list(parsed.writes) == list(stream.writes)
        assert (parsed.cycles == 0).all()  # cycles dropped by design

    def test_hex_and_decimal_accepted(self):
        parsed = read_ramulator("0x40 R\n128 W\n")
        assert list(parsed.addrs) == [0x40, 128]

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            read_ramulator("0x40\n")
        with pytest.raises(ValueError):
            read_ramulator("0x40 Q\n")


class TestEndToEnd:
    def test_exported_trace_simulates_identically(self, test_npu):
        """A trace exported and re-imported yields the same DRAM result."""
        from repro.dram.simulator import DramSim
        from repro.models.layer import conv
        from repro.models.topology import Topology
        from repro.core.pipeline import Pipeline

        pipeline = Pipeline(test_npu)
        run = pipeline.simulate_model(
            Topology("t", [conv("c", 18, 18, 3, 3, 4, 8)]))
        stream = run.layers[0].trace.to_blocks().sorted_by_cycle()

        sink = io.StringIO()
        write_scalesim(stream, sink)
        parsed = read_scalesim(sink.getvalue())

        sim = DramSim(test_npu.dram_config(), test_npu.freq_ghz)
        original = sim.simulate_fast(stream)
        reloaded = sim.simulate_fast(parsed)
        assert original.busy_cycles == reloaded.busy_cycles
        assert original.row_misses == reloaded.row_misses
