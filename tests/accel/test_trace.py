"""DRAM trace representation: ranges, block expansion, streams."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel.trace import (
    BLOCK_BYTES,
    AccessKind,
    BlockStream,
    Trace,
    TraceRange,
)


def _range(cycle=0, addr=0, nbytes=64, write=False, layer_id=0, duration=0):
    return TraceRange(cycle, addr, nbytes, write,
                      AccessKind.IFMAP, layer_id, duration)


class TestTraceRange:
    def test_block_count_aligned(self):
        assert _range(addr=0, nbytes=128).num_blocks == 2

    def test_block_count_straddling(self):
        # [60, 70) touches blocks 0 and 1.
        assert _range(addr=60, nbytes=10).num_blocks == 2

    def test_single_byte(self):
        assert _range(addr=63, nbytes=1).num_blocks == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            _range(nbytes=0)
        with pytest.raises(ValueError):
            _range(addr=-1)
        with pytest.raises(ValueError):
            _range(cycle=-1)


class TestTraceAggregation:
    def test_byte_accounting(self):
        trace = Trace([_range(nbytes=100), _range(nbytes=50, write=True)])
        assert trace.read_bytes == 100
        assert trace.write_bytes == 50
        assert trace.total_bytes == 150

    def test_filter_by_kind(self):
        trace = Trace([
            TraceRange(0, 0, 64, False, AccessKind.WEIGHT, 0),
            TraceRange(0, 64, 64, False, AccessKind.IFMAP, 0),
        ])
        assert len(trace.filter(AccessKind.WEIGHT)) == 1

    def test_for_layer(self):
        trace = Trace([_range(layer_id=0), _range(layer_id=1)])
        assert len(trace.for_layer(1)) == 1

    def test_bytes_by_kind(self):
        trace = Trace([
            TraceRange(0, 0, 64, False, AccessKind.WEIGHT, 0),
            TraceRange(0, 64, 128, False, AccessKind.WEIGHT, 0),
        ])
        assert trace.bytes_by_kind()[AccessKind.WEIGHT] == 192

    def test_end_cycle(self):
        trace = Trace([_range(cycle=10, duration=5), _range(cycle=3)])
        assert trace.end_cycle() == 15

    def test_empty(self):
        trace = Trace()
        assert trace.total_bytes == 0
        assert trace.end_cycle() == 0
        assert len(trace.to_blocks()) == 0


class TestBlockExpansion:
    def test_counts(self):
        trace = Trace([_range(addr=0, nbytes=256)])
        stream = trace.to_blocks()
        assert len(stream) == 4
        assert stream.total_bytes == 256

    def test_addresses_aligned(self):
        trace = Trace([_range(addr=100, nbytes=100)])
        stream = trace.to_blocks()
        assert all(a % BLOCK_BYTES == 0 for a in stream.addrs)

    def test_cycles_spread_over_duration(self):
        trace = Trace([_range(addr=0, nbytes=64 * 10, cycle=100, duration=50)])
        stream = trace.to_blocks()
        assert stream.cycles.min() == 100
        assert stream.cycles.max() < 150
        assert len(np.unique(stream.cycles)) > 1

    def test_write_flags_propagate(self):
        trace = Trace([_range(write=True, nbytes=128)])
        stream = trace.to_blocks()
        assert stream.writes.all()
        assert stream.write_blocks == 2
        assert stream.read_blocks == 0

    @given(st.integers(0, 10**6), st.integers(1, 10**4))
    @settings(max_examples=50)
    def test_expansion_covers_range(self, addr, nbytes):
        trace = Trace([_range(addr=addr, nbytes=nbytes)])
        stream = trace.to_blocks()
        assert len(stream) == trace.ranges[0].num_blocks
        assert int(stream.addrs.min()) <= addr
        assert int(stream.addrs.max()) + BLOCK_BYTES >= addr + nbytes


class TestBlockStream:
    def test_parallel_validation(self):
        with pytest.raises(ValueError):
            BlockStream(np.zeros(2, np.int64), np.zeros(1, np.uint64),
                        np.zeros(2, bool), np.zeros(2, np.int32))

    def test_sort(self):
        stream = BlockStream(
            np.asarray([5, 1, 3], np.int64),
            np.asarray([0, 64, 128], np.uint64),
            np.zeros(3, bool), np.zeros(3, np.int32))
        ordered = stream.sorted_by_cycle()
        assert list(ordered.cycles) == [1, 3, 5]
        assert list(ordered.addrs) == [64, 128, 0]

    def test_concat(self):
        a = Trace([_range(nbytes=64)]).to_blocks()
        b = Trace([_range(addr=64, nbytes=64)]).to_blocks()
        merged = BlockStream.concat([a, b])
        assert len(merged) == 2

    def test_concat_empty(self):
        assert len(BlockStream.concat([])) == 0
