"""Chunked RangeBuffer: residency accounting, spill tier, peak budget."""

import gc

import numpy as np
import pytest

import repro.accel.trace
from repro.accel.trace import (
    CHUNK_ROWS,
    SPILL_DIR_ENV,
    AccessKind,
    Trace,
    peak_trace_bytes,
    reset_peak_trace_bytes,
    resident_trace_bytes,
    spilled_trace_bytes,
)
from repro import obs
from repro.core.config import npu_config
from repro.core.metrics import compare_schemes
from repro.core.pipeline import Pipeline
from repro.models.zoo import get_workload
from repro.protection import SCHEME_NAMES

#: Pinned peak for one full gpt2@s4096 sweep cell (every scheme) under
#: the chunked trace core: measured ~134 MiB; the pin leaves headroom
#: for numpy/platform jitter but catches any reintroduced whole-trace
#: copy (each would add tens of MiB).
GPT2_S4096_CELL_BUDGET = 192 << 20


def _bulk_columns(n, seed=0):
    rng = np.random.default_rng(seed)
    return dict(
        cycles=rng.integers(0, 10_000, n),
        addrs=rng.integers(0, 1 << 30, n),
        nbytes=rng.integers(1, 4096, n),
        writes=rng.integers(0, 2, n).astype(bool),
        kind_codes=rng.integers(0, 5, n).astype(np.int8),
        durations=rng.integers(0, 100, n),
    )


def _emit_bulk(trace, cols, layer_id=0):
    trace.emit_batch(cols["cycles"], cols["addrs"], cols["nbytes"],
                     writes=cols["writes"], kind_codes=cols["kind_codes"],
                     layer_id=layer_id, durations=cols["durations"])


class TestResidencyAccounting:
    def test_alloc_and_free_balance(self):
        before = resident_trace_bytes()
        trace = Trace()
        trace.emit(0, 0, 64, write=False, kind=AccessKind.IFMAP, layer_id=0)
        assert resident_trace_bytes() > before
        del trace
        gc.collect()
        assert resident_trace_bytes() == before

    def test_memoized_expansion_is_charged(self):
        trace = Trace()
        _emit_bulk(trace, _bulk_columns(10_000))
        columns_only = resident_trace_bytes()
        stream = trace.to_blocks()
        assert resident_trace_bytes() >= columns_only + stream.cycles.nbytes
        before = resident_trace_bytes()
        del trace, stream
        gc.collect()
        assert resident_trace_bytes() < before

    def test_peak_reset_scopes_the_watermark(self):
        trace = Trace()
        _emit_bulk(trace, _bulk_columns(5_000))
        del trace
        gc.collect()
        assert reset_peak_trace_bytes() == resident_trace_bytes()
        assert peak_trace_bytes() == resident_trace_bytes()

    def test_peak_gauge_published(self):
        recorder = obs.Recorder()
        previous = obs.install(recorder)
        try:
            reset_peak_trace_bytes()
            trace = Trace()
            _emit_bulk(trace, _bulk_columns(50_000))
            assert recorder.gauges["trace.peak_resident_bytes"] \
                == peak_trace_bytes()
        finally:
            obs.install(previous)


class TestSpillTier:
    def test_sealed_chunks_spill_and_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setenv(SPILL_DIR_ENV, str(tmp_path))
        n = 3 * CHUNK_ROWS + 17
        cols = _bulk_columns(n, seed=3)
        spilled_before = spilled_trace_bytes()
        trace = Trace()
        _emit_bulk(trace, cols, layer_id=5)
        assert spilled_trace_bytes() > spilled_before
        # Spill files are unlinked immediately: nothing litters the dir.
        assert list(tmp_path.iterdir()) == []
        cycles, addrs, nbytes, writes, kinds, layer_ids, durations = \
            trace.buf.arrays()
        np.testing.assert_array_equal(cycles, cols["cycles"])
        np.testing.assert_array_equal(addrs, cols["addrs"])
        np.testing.assert_array_equal(nbytes, cols["nbytes"])
        np.testing.assert_array_equal(writes, cols["writes"])
        np.testing.assert_array_equal(kinds, cols["kind_codes"])
        assert (layer_ids == 5).all()
        np.testing.assert_array_equal(durations, cols["durations"])

    def test_spilled_chunks_leave_residency(self, tmp_path, monkeypatch):
        n = 4 * CHUNK_ROWS
        cols = _bulk_columns(n, seed=4)

        resident = Trace()
        _emit_bulk(resident, cols)
        resident_cost = resident_trace_bytes()
        del resident
        gc.collect()

        monkeypatch.setenv(SPILL_DIR_ENV, str(tmp_path))
        spilled = Trace()
        _emit_bulk(spilled, cols)
        spilled_cost = resident_trace_bytes()
        # All full chunks live in the mmap tier; only the (empty-ish)
        # active chunk stays resident.
        assert spilled_cost < resident_cost / 2
        # The spilled trace still serves identical data.
        assert spilled.read_bytes == int(
            cols["nbytes"][~cols["writes"]].sum())

    def test_identical_blocks_with_and_without_spill(self, tmp_path,
                                                     monkeypatch):
        cols = _bulk_columns(2 * CHUNK_ROWS + 9, seed=5)
        plain = Trace()
        _emit_bulk(plain, cols)
        want = plain.to_blocks()
        monkeypatch.setenv(SPILL_DIR_ENV, str(tmp_path))
        spilly = Trace()
        _emit_bulk(spilly, cols)
        got = spilly.to_blocks()
        np.testing.assert_array_equal(got.cycles, want.cycles)
        np.testing.assert_array_equal(got.addrs, want.addrs)
        np.testing.assert_array_equal(got.writes, want.writes)
        np.testing.assert_array_equal(got.kinds, want.kinds)


class TestPeakMemoryRegression:
    @pytest.mark.slow
    def test_gpt2_s4096_cell_stays_under_budget(self, tmp_path, monkeypatch):
        """The long-sequence cell the tentpole targets: every scheme on
        gpt2@s4096 must fit the pinned trace-residency budget, with the
        spill tier active."""
        monkeypatch.setenv(SPILL_DIR_ENV, str(tmp_path))
        recorder = obs.Recorder()
        previous = obs.install(recorder)
        try:
            gc.collect()
            reset_peak_trace_bytes()
            pipeline = Pipeline(npu_config("server"))
            result = compare_schemes(pipeline, get_workload("gpt2@s4096"),
                                     SCHEME_NAMES)
            assert len(result.runs) == len(SCHEME_NAMES)
            peak = recorder.gauges["trace.peak_resident_bytes"]
            assert peak == peak_trace_bytes()
            assert peak < GPT2_S4096_CELL_BUDGET
        finally:
            obs.install(previous)
        del result, pipeline
        gc.collect()
