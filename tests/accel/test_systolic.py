"""Systolic-array analytical cycle model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel.systolic import Dataflow, SystolicArray


class TestFolds:
    def test_ws_single_fold(self):
        array = SystolicArray(8, 8, Dataflow.WS)
        assert array.folds(m=100, k=8, n=8) == 1

    def test_ws_fold_count(self):
        array = SystolicArray(8, 8, Dataflow.WS)
        assert array.folds(m=10, k=16, n=24) == 2 * 3

    def test_os_fold_count(self):
        array = SystolicArray(8, 8, Dataflow.OS)
        assert array.folds(m=16, k=100, n=8) == 2

    def test_is_fold_count(self):
        array = SystolicArray(8, 8, Dataflow.IS)
        assert array.folds(m=16, k=16, n=100) == 2 * 2


class TestCycles:
    def test_ws_per_fold(self):
        array = SystolicArray(8, 8, Dataflow.WS)
        # rows + m + cols - 1
        assert array.cycles_per_fold(m=10, k=8, n=8) == 8 + 10 + 8 - 1

    def test_os_per_fold(self):
        array = SystolicArray(8, 8, Dataflow.OS)
        assert array.cycles_per_fold(m=8, k=20, n=8) == 2 * 8 + 8 + 20 - 2

    def test_total(self):
        array = SystolicArray(8, 8, Dataflow.WS)
        assert array.compute_cycles(10, 16, 24) == 6 * (8 + 10 + 8 - 1)

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            SystolicArray(8, 8).compute_cycles(0, 1, 1)

    def test_invalid_array(self):
        with pytest.raises(ValueError):
            SystolicArray(0, 8)


class TestUtilization:
    def test_bounded(self):
        array = SystolicArray(16, 16)
        util = array.utilization(256, 256, 256)
        assert 0.0 < util <= 1.0

    def test_large_gemm_high_utilization(self):
        array = SystolicArray(16, 16)
        assert array.utilization(4096, 1024, 1024) > 0.9

    def test_tiny_gemm_low_utilization(self):
        array = SystolicArray(256, 256)
        assert array.utilization(1, 16, 16) < 0.01

    @given(st.integers(1, 512), st.integers(1, 512), st.integers(1, 512))
    @settings(max_examples=60)
    def test_utilization_never_exceeds_one(self, m, k, n):
        for dataflow in Dataflow:
            array = SystolicArray(8, 16, dataflow)
            assert array.utilization(m, k, n) <= 1.0


class TestDataflowComparison:
    def test_ws_prefers_large_m(self):
        """Weight-stationary amortizes fills over the streamed dimension."""
        array_ws = SystolicArray(16, 16, Dataflow.WS)
        array_os = SystolicArray(16, 16, Dataflow.OS)
        m, k, n = 4096, 16, 16
        assert array_ws.compute_cycles(m, k, n) <= array_os.compute_cycles(m, k, n)

    def test_monotone_in_problem_size(self):
        array = SystolicArray(8, 8)
        small = array.compute_cycles(16, 16, 16)
        large = array.compute_cycles(32, 32, 32)
        assert large > small
