"""Columnar trace core: RangeBuffer-backed Trace and vectorized expansion."""

import numpy as np
import pytest

from repro.accel.trace import (
    BLOCK_BYTES,
    AccessKind,
    BlockStream,
    Trace,
    TraceRange,
    expand_ranges,
)


def _range(cycle=0, addr=0, nbytes=64, write=False, layer_id=0, duration=0,
           kind=AccessKind.IFMAP):
    return TraceRange(cycle, addr, nbytes, write, kind, layer_id, duration)


def _reference_blocks(ranges):
    """The pre-columnar per-range expansion loop, kept as the oracle."""
    cycle_parts, addr_parts, write_parts, layer_parts = [], [], [], []
    for r in ranges:
        count = r.num_blocks
        first = r.addr - r.addr % BLOCK_BYTES
        addr_parts.append(first + BLOCK_BYTES * np.arange(count, dtype=np.uint64))
        if r.duration > 0 and count > 1:
            offsets = (np.arange(count, dtype=np.int64) * r.duration) // count
        else:
            offsets = np.zeros(count, dtype=np.int64)
        cycle_parts.append(r.cycle + offsets)
        write_parts.append(np.full(count, r.write, dtype=bool))
        layer_parts.append(np.full(count, r.layer_id, dtype=np.int32))
    return BlockStream(
        np.concatenate(cycle_parts),
        np.concatenate(addr_parts).astype(np.uint64),
        np.concatenate(write_parts),
        np.concatenate(layer_parts),
    )


def _random_ranges(rng, n=200):
    return [
        _range(cycle=int(rng.integers(0, 10_000)),
               addr=int(rng.integers(0, 1 << 20)),
               nbytes=int(rng.integers(1, 5_000)),
               write=bool(rng.integers(0, 2)),
               layer_id=int(rng.integers(0, 4)),
               duration=int(rng.integers(0, 500)))
        for _ in range(n)
    ]


class TestEmitApi:
    def test_emit_matches_add(self):
        a, b = Trace(), Trace()
        a.add(_range(cycle=3, addr=100, nbytes=200, write=True, duration=7))
        b.emit(3, 100, 200, write=True, kind=AccessKind.IFMAP, layer_id=0,
               duration=7)
        assert a.ranges == b.ranges

    def test_emit_validates(self):
        trace = Trace()
        with pytest.raises(ValueError):
            trace.emit(0, -1, 64, write=False, kind=AccessKind.IFMAP,
                       layer_id=0)
        with pytest.raises(ValueError):
            trace.emit(0, 0, 0, write=False, kind=AccessKind.IFMAP,
                       layer_id=0)
        with pytest.raises(ValueError):
            trace.emit(-1, 0, 64, write=False, kind=AccessKind.IFMAP,
                       layer_id=0)
        assert len(trace) == 0

    def test_ranges_materialize_roundtrip(self):
        ranges = [_range(cycle=1, addr=64), _range(cycle=2, addr=1000,
                                                   nbytes=17, write=True,
                                                   kind=AccessKind.OFMAP)]
        assert Trace(ranges).ranges == ranges


class TestColumnarAggregation:
    def test_byte_accounting_matches_reference(self):
        rng = np.random.default_rng(0)
        ranges = _random_ranges(rng)
        trace = Trace(ranges)
        assert trace.read_bytes == sum(r.nbytes for r in ranges if not r.write)
        assert trace.write_bytes == sum(r.nbytes for r in ranges if r.write)

    def test_filter_and_for_layer(self):
        trace = Trace([
            _range(addr=0, kind=AccessKind.WEIGHT, layer_id=0),
            _range(addr=64, kind=AccessKind.IFMAP, layer_id=1, write=True),
            _range(addr=128, kind=AccessKind.WEIGHT, layer_id=1),
        ])
        weights = trace.filter(AccessKind.WEIGHT)
        assert len(weights) == 2
        assert weights.bytes_by_kind() == {AccessKind.WEIGHT: 128}
        layer1 = trace.for_layer(1)
        assert len(layer1) == 2
        assert layer1.write_bytes == 64

    def test_concat(self):
        a = Trace([_range(addr=0)])
        b = Trace([_range(addr=64, write=True)])
        merged = Trace.concat([a, b])
        assert len(merged) == 2
        assert merged.read_bytes == 64
        assert merged.write_bytes == 64
        assert merged.ranges == a.ranges + b.ranges


class TestVectorizedExpansion:
    def test_matches_reference_loop(self):
        rng = np.random.default_rng(7)
        for seed in range(5):
            ranges = _random_ranges(np.random.default_rng(seed))
            got = Trace(ranges).to_blocks()
            want = _reference_blocks(ranges)
            np.testing.assert_array_equal(got.cycles, want.cycles)
            np.testing.assert_array_equal(got.addrs, want.addrs)
            np.testing.assert_array_equal(got.writes, want.writes)
            np.testing.assert_array_equal(got.layer_ids, want.layer_ids)
        del rng

    def test_expand_ranges_empty(self):
        empty = np.empty(0, dtype=np.int64)
        stream = expand_ranges(empty, empty, empty,
                               np.empty(0, bool), empty, empty)
        assert len(stream) == 0


class TestMemoization:
    def test_to_blocks_cached(self):
        trace = Trace([_range(addr=0, nbytes=256)])
        assert trace.to_blocks() is trace.to_blocks()
        assert trace.sorted_blocks() is trace.sorted_blocks()

    def test_mutation_invalidates(self):
        trace = Trace([_range(addr=0, nbytes=256)])
        first = trace.to_blocks()
        trace.add(_range(addr=4096))
        second = trace.to_blocks()
        assert second is not first
        assert len(second) == len(first) + 1

    def test_memo_keys_independent(self):
        trace = Trace([_range(addr=0)])
        a = trace.memo("a", lambda: object())
        b = trace.memo("b", lambda: object())
        assert a is not b
        assert trace.memo("a", lambda: object()) is a
