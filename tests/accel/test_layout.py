"""Protected-region address map."""

import pytest

from repro.accel.layout import (
    ACT_A_BASE,
    ACT_B_BASE,
    AddressMap,
    METADATA_BASE,
    PROTECTED_REGION_BYTES,
    WEIGHT_BASE,
)
from repro.models.layer import gemm
from repro.models.topology import Topology


@pytest.fixture
def amap(tiny_topology):
    return AddressMap(tiny_topology)


class TestWeightPacking:
    def test_first_layer_at_base(self, amap):
        assert amap.weight_addr(0) == WEIGHT_BASE

    def test_monotone_non_overlapping(self, amap, tiny_topology):
        prev_end = WEIGHT_BASE
        for i, layer in enumerate(tiny_topology):
            base = amap.weight_addr(i)
            assert base >= prev_end
            prev_end = base + layer.weight_bytes

    def test_weights_below_activations(self, amap):
        assert amap.weights_end <= ACT_A_BASE


class TestPingPong:
    def test_alternation(self, amap):
        assert amap.ifmap_addr(0) == ACT_A_BASE
        assert amap.ofmap_addr(0) == ACT_B_BASE
        assert amap.ifmap_addr(1) == ACT_B_BASE
        assert amap.ofmap_addr(1) == ACT_A_BASE

    def test_producer_consumer_same_buffer(self, amap, tiny_topology):
        """Layer i's ofmap address is layer i+1's ifmap address."""
        for i in range(len(tiny_topology) - 1):
            assert amap.ofmap_addr(i) == amap.ifmap_addr(i + 1)

    def test_out_of_range_layer(self, amap):
        with pytest.raises(IndexError):
            amap.ifmap_addr(99)


class TestRegions:
    def test_regions_disjoint(self, amap):
        regions = amap.data_regions() + [amap.metadata_region()]
        spans = sorted((r.base, r.end) for r in regions)
        for (_, end_a), (base_b, _) in zip(spans, spans[1:]):
            assert end_a <= base_b

    def test_within_protected_region(self, amap):
        for region in amap.data_regions():
            assert region.end <= PROTECTED_REGION_BYTES

    def test_contains(self, amap):
        region = amap.data_regions()[0]
        assert region.contains(region.base)
        assert not region.contains(region.end)

    def test_metadata_region_base(self):
        region = AddressMap.metadata_region()
        assert region.base == METADATA_BASE


class TestOverflowDetection:
    def test_giant_weights_rejected(self):
        # A single FC layer with > 4 GB of weights overflows the region.
        huge = Topology("huge", [gemm("fc", 1, 70000, 70000)])
        with pytest.raises(ValueError):
            AddressMap(huge)
