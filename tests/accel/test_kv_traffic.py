"""KV-cache traffic class: emission, addressing, batching, accounting."""

import pytest

from repro.accel.layout import AddressMap, KV_BASE, METADATA_BASE
from repro.accel.simulator import AcceleratorSim
from repro.accel.systolic import SystolicArray
from repro.accel.trace import AccessKind
from repro.models.layer import gemm
from repro.models.topology import Topology
from repro.models.zoo import get_workload
from repro.tiling.tile import SramBudget, plan_tiling


def _sim():
    return AcceleratorSim(SystolicArray(16, 16), SramBudget.split(96 << 10))


def _decode_topology(batch=1):
    """One decode-style attention pair: score GEMM (K cache) + context
    GEMM (V cache), both M=1, plus a plain projection."""
    seq, d = 64, 256
    return Topology("decode", [
        gemm("attn", 1, d, seq, kv=True, batch=batch),
        gemm("ctx", 1, seq, d, kv=True, batch=batch),
        gemm("proj", 1, d, d, batch=batch),
    ])


class TestKvEmission:
    def test_kv_layers_emit_kvcache_not_weight(self):
        run = _sim().run(_decode_topology())
        for result in run.layers[:2]:
            kinds = result.trace.bytes_by_kind()
            assert AccessKind.KVCACHE in kinds
            assert AccessKind.WEIGHT not in kinds
            assert kinds[AccessKind.KVCACHE] == result.layer.kv_bytes
        proj_kinds = run.layers[2].trace.bytes_by_kind()
        assert AccessKind.WEIGHT in proj_kinds
        assert AccessKind.KVCACHE not in proj_kinds

    def test_kv_addresses_live_in_the_kv_region(self):
        run = _sim().run(_decode_topology())
        for result in run.layers[:2]:
            for r in result.trace.ranges:
                if r.kind is AccessKind.KVCACHE:
                    assert KV_BASE <= r.addr < METADATA_BASE

    def test_kv_slabs_are_per_layer(self):
        topo = _decode_topology()
        amap = AddressMap(topo)
        assert amap.kv_addr(0) != amap.kv_addr(1)
        with pytest.raises(KeyError):
            amap.kv_addr(2)  # proj has parameters, not KV state
        assert amap.weight_addr(2) >= 0
        with pytest.raises(KeyError):
            amap.weight_addr(0)

    def test_kv_region_reported_when_present(self):
        names = [r.name for r in AddressMap(_decode_topology()).data_regions()]
        assert "kv" in names
        conv_names = [r.name for r in
                      AddressMap(get_workload("lenet")).data_regions()]
        assert "kv" not in conv_names

    def test_kv_carve_only_costs_kv_workloads_activation_space(self):
        """A KV-free model keeps the full pong extent (up to the
        metadata base); only topologies with KV layers give up the
        region above KV_BASE."""
        # Just over the 1 GiB ACT_B..KV_BASE gap: fits without the KV
        # carve (pong extends to the metadata base), not with it.
        big = (1 << 30) + 65536
        huge_act = Topology("huge", [gemm("fc", big // 256, 256, 1)])
        assert huge_act.max_activation_bytes == big
        AddressMap(huge_act)  # no KV layers: must still fit

        huge_act_kv = Topology("huge_kv", [
            gemm("fc", big // 256, 256, 1),
            gemm("attn", 1, 64, 64, kv=True),
        ])
        with pytest.raises(ValueError, match="activations overflow"):
            AddressMap(huge_act_kv)


class TestKvBatching:
    BATCH = 3

    def test_kv_streams_scale_exactly_with_batch(self):
        base = _sim().run(_decode_topology())
        batched = _sim().run(_decode_topology(batch=self.BATCH))
        for one, many in zip(base.layers[:2], batched.layers[:2]):
            kv_one = one.trace.bytes_by_kind()[AccessKind.KVCACHE]
            kv_many = many.trace.bytes_by_kind()[AccessKind.KVCACHE]
            # Never resident across images: every sequence re-streams
            # its own cache, even when one slab would fit in SRAM.
            assert kv_many == self.BATCH * kv_one

    def test_each_image_reads_its_own_slab(self):
        topo = _decode_topology(batch=self.BATCH)
        batched = _sim().run(topo)
        stride = batched.address_map.kv_image_stride
        result = batched.layers[0]
        per_image = result.layer.kv_bytes_per_image
        starts = sorted({r.addr for r in result.trace.ranges
                         if r.kind is AccessKind.KVCACHE})
        base = starts[0]
        # Image i's KV state is image 0's shifted by i whole slab
        # strides; within a slab, a layer touches only its own extent.
        images = {(addr - base) // stride for addr in starts}
        assert images == set(range(self.BATCH))
        for addr in starts:
            assert (addr - base) % stride < per_image

    def test_plan_weight_traffic_matches_kv_trace(self):
        batched = _sim().run(_decode_topology(batch=self.BATCH))
        for result in batched.layers[:2]:
            traced = result.trace.bytes_by_kind()[AccessKind.KVCACHE]
            assert traced == result.plan.weight_traffic


class TestTallSkinnyPlans:
    def test_m1_huge_n_gemm_plans_without_k_slivers(self):
        """A decode step against a vocabulary projection (M=1, K=768,
        N=50257) must fit and keep whole-K tiles available."""
        layer = gemm("lm_head", 1, 768, 50257)
        plan = plan_tiling(layer, SramBudget.split(480 << 10))
        assert plan.tile_out_rows == 1
        # Minimal traffic: the weight matrix streams exactly once.
        assert plan.weight_traffic == layer.weight_bytes
        assert plan.ifmap_traffic <= layer.ifmap_bytes * plan.num_n_tiles

    def test_tall_skinny_trace_agrees_with_plan(self):
        topo = Topology("skinny", [gemm("lm_head", 1, 768, 50257)])
        run = _sim().run(topo)
        result = run.layers[0]
        assert result.trace.total_bytes == pytest.approx(
            result.plan.total_traffic, rel=0.01)


class TestGpt2EndToEndTrace:
    def test_whole_model_kv_accounting(self):
        run = _sim().run(get_workload("gpt2@s64"))
        topo = run.topology
        kinds = run.trace.bytes_by_kind()
        assert kinds[AccessKind.KVCACHE] == topo.total_kv_bytes
        # Weights and KV never blur: weight traffic covers exactly the
        # parameter tensors (all streamed once at batch 1).
        assert kinds[AccessKind.WEIGHT] == topo.total_param_bytes
