"""Accelerator simulator: cycles, trace consistency, residency rules."""

import pytest

from repro.accel.simulator import AcceleratorSim
from repro.accel.systolic import SystolicArray
from repro.accel.trace import AccessKind
from repro.models.layer import conv, gemm
from repro.models.topology import Topology
from repro.models.zoo import get_workload
from repro.tiling.tile import SramBudget


@pytest.fixture
def sim(small_array, small_budget):
    return AcceleratorSim(small_array, small_budget)


class TestSingleLayer:
    def test_compute_cycles_match_analytical(self, sim, tiny_conv_layer):
        run = sim.run(Topology("one", [tiny_conv_layer]))
        result = run.layers[0]
        if result.plan.num_tiles == 1:
            expected = sim.array.compute_cycles(
                tiny_conv_layer.gemm_m, tiny_conv_layer.gemm_k,
                tiny_conv_layer.gemm_n)
            assert result.compute_cycles == expected

    def test_trace_contains_all_kinds(self, sim, tiny_conv_layer):
        run = sim.run(Topology("one", [tiny_conv_layer]))
        kinds = {r.kind for r in run.layers[0].trace}
        assert kinds == {AccessKind.IFMAP, AccessKind.WEIGHT, AccessKind.OFMAP}

    def test_write_bytes_equal_ofmap(self, sim, tiny_conv_layer):
        run = sim.run(Topology("one", [tiny_conv_layer]))
        assert run.layers[0].trace.write_bytes == tiny_conv_layer.ofmap_bytes

    def test_reads_cover_tensors(self, sim, tiny_conv_layer):
        run = sim.run(Topology("one", [tiny_conv_layer]))
        trace = run.layers[0].trace
        by_kind = trace.bytes_by_kind()
        assert by_kind[AccessKind.IFMAP] >= tiny_conv_layer.ifmap_bytes
        assert by_kind[AccessKind.WEIGHT] >= tiny_conv_layer.weight_bytes


class TestPlanTraceAgreement:
    @pytest.mark.parametrize("workload", ["lenet", "mobilenet", "dlrm",
                                          "lenet@b3", "dlrm@b2"])
    def test_traffic_matches_plan_estimate(self, workload):
        sim = AcceleratorSim(SystolicArray(32, 32), SramBudget.split(480 << 10))
        run = sim.run(get_workload(workload))
        for result in run.layers:
            estimate = result.plan.total_traffic
            actual = result.trace.total_bytes
            # The plan is an upper-bound estimate: it does not clamp halo
            # rows at tensor edges, so the emitted trace can be slightly
            # smaller but never larger.
            assert actual <= estimate
            assert actual > 0.9 * estimate, result.layer.name

    def test_k_tiled_walk_agrees(self):
        sim = AcceleratorSim(SystolicArray(32, 32), SramBudget.split(128 << 10))
        layer = gemm("fc", 256, 8192, 1024)
        run = sim.run(Topology("k", [layer]))
        plan = run.layers[0].plan
        assert plan.is_k_tiled
        assert run.layers[0].trace.total_bytes == plan.total_traffic


class TestMultiLayer:
    def test_cycles_accumulate(self, sim, tiny_topology):
        run = sim.run(tiny_topology)
        assert run.compute_cycles == sum(r.compute_cycles for r in run.layers)
        starts = [r.start_cycle for r in run.layers]
        assert starts == sorted(starts)

    def test_layer_starts_are_contiguous(self, sim, tiny_topology):
        run = sim.run(tiny_topology)
        for prev, cur in zip(run.layers, run.layers[1:]):
            assert cur.start_cycle == prev.start_cycle + prev.compute_cycles

    def test_activation_flows_through_pingpong(self, sim, tiny_topology):
        run = sim.run(tiny_topology)
        amap = run.address_map
        for i in range(len(tiny_topology) - 1):
            ofmap_ranges = run.layers[i].trace.filter(AccessKind.OFMAP)
            ifmap_ranges = run.layers[i + 1].trace.filter(AccessKind.IFMAP)
            ofmap_bases = {r.addr for r in ofmap_ranges}
            ifmap_bases = {r.addr for r in ifmap_ranges}
            assert min(ofmap_bases) == amap.ofmap_addr(i)
            assert min(ifmap_bases) == amap.ifmap_addr(i + 1)
            assert amap.ofmap_addr(i) == amap.ifmap_addr(i + 1)

    def test_demand_metric(self, sim, tiny_topology):
        run = sim.run(tiny_topology)
        assert run.peak_demand_bytes_per_cycle > 0
        for result in run.layers:
            assert result.demand_bytes_per_cycle == pytest.approx(
                result.dram_bytes / result.compute_cycles)


class TestBatchReplication:
    """The columnar batch expansion must equal an explicit per-image
    re-walk: image 0's ranges plus per-kind-shifted copies."""

    def _reference(self, base_result, layer, batch, weight_resident, amap):
        # Images are strided by the address map's aligned slab stride,
        # not the raw per-image footprint (see AddressMap.image_stride).
        shift_for = {
            AccessKind.IFMAP: amap.image_stride(layer.ifmap_bytes_per_image),
            AccessKind.OFMAP: amap.image_stride(layer.ofmap_bytes_per_image),
        }
        expected = []
        for image in range(batch):
            for r in base_result.trace.ranges:
                if r.kind is AccessKind.WEIGHT and weight_resident and image:
                    continue
                expected.append((
                    r.cycle + image * base_result.compute_cycles,
                    r.addr + image * shift_for.get(r.kind, 0),
                    r.nbytes, r.write, r.kind, r.duration))
        return expected

    @pytest.mark.parametrize("layer_args,budget", [
        # banded, weights fully resident (single filter group)
        (dict(ifmap=64, filt=3, channels=16, filters=8),
         SramBudget(16 << 10, 1 << 20, 1 << 20)),
        # banded, streamed filter groups (weights reload per image)
        (dict(ifmap=16, filt=3, channels=16, filters=512),
         SramBudget(1 << 20, 8 << 10, 1 << 20)),
    ])
    def test_banded_matches_looped_reference(self, layer_args, budget):
        from repro.models.layer import conv as mk_conv
        args = (layer_args["ifmap"], layer_args["ifmap"],
                layer_args["filt"], layer_args["filt"],
                layer_args["channels"], layer_args["filters"])
        sim = AcceleratorSim(SystolicArray(8, 8), budget)
        base = sim.run(Topology("t", [mk_conv("c", *args)])).layers[0]
        batched_run = sim.run(Topology("t", [mk_conv("c", *args, batch=3)]))
        got = batched_run.layers[0]
        resident = base.plan.num_n_tiles == 1
        expected = self._reference(base, got.layer, 3, resident,
                                   batched_run.address_map)
        got_ranges = [(r.cycle, r.addr, r.nbytes, r.write, r.kind, r.duration)
                      for r in got.trace.ranges]
        assert got_ranges == expected

    def test_k_tiled_matches_looped_reference(self):
        sim = AcceleratorSim(SystolicArray(32, 32), SramBudget.split(128 << 10))
        base = sim.run(Topology("k", [gemm("fc", 256, 8192, 1024)])).layers[0]
        batched_layer = gemm("fc", 256, 8192, 1024, batch=2)
        batched_run = sim.run(Topology("k", [batched_layer]))
        got = batched_run.layers[0]
        assert got.plan.is_k_tiled
        expected = self._reference(base, batched_layer, 2,
                                   weight_resident=False,
                                   amap=batched_run.address_map)
        got_ranges = [(r.cycle, r.addr, r.nbytes, r.write, r.kind, r.duration)
                      for r in got.trace.ranges]
        assert got_ranges == expected


class TestResidencyRules:
    def test_weight_resident_when_n_fits(self):
        """Weights that fit SRAM are fetched exactly once even when the
        ifmap is banded."""
        layer = conv("c", 64, 64, 3, 3, 16, 8)
        sim = AcceleratorSim(SystolicArray(8, 8),
                             SramBudget(16 << 10, 1 << 20, 1 << 20))
        run = sim.run(Topology("t", [layer]))
        weight_bytes = run.layers[0].trace.bytes_by_kind()[AccessKind.WEIGHT]
        assert weight_bytes == layer.weight_bytes

    def test_halo_refetch_present(self):
        layer = conv("c", 64, 64, 3, 3, 16, 8)
        sim = AcceleratorSim(SystolicArray(8, 8),
                             SramBudget(16 << 10, 1 << 20, 1 << 20))
        run = sim.run(Topology("t", [layer]))
        ifmap_bytes = run.layers[0].trace.bytes_by_kind()[AccessKind.IFMAP]
        assert ifmap_bytes > layer.ifmap_bytes


class TestBandedWalkPaths:
    """The batched column builder and the small-grid scalar walk emit
    byte-identical range sequences."""

    def test_batched_matches_scalar_on_large_grid(self):
        from repro.accel.layout import AddressMap
        from repro.accel.trace import Trace
        from repro.tiling.tile import SramBudget, plan_tiling

        sim = AcceleratorSim(SystolicArray(8, 8), SramBudget.split(24 << 10))
        topology = Topology("t", [conv("c1", 66, 66, 3, 3, 8, 48),
                                  conv("c2", 64, 64, 3, 3, 48, 64)])
        address_map = AddressMap(topology)
        checked = 0
        for layer_id, layer in enumerate(topology):
            plan = plan_tiling(layer, sim.budget)
            if plan.is_k_tiled:
                continue
            outer, inner = ((plan.num_n_tiles, plan.num_m_tiles)
                            if plan.n_outer
                            else (plan.num_m_tiles, plan.num_n_tiles))
            if outer * inner < 16:
                continue   # both names would take the same path
            batched, scalar = Trace(), Trace()
            c1 = sim._walk_banded(layer, layer_id, plan, address_map,
                                  1000, batched)
            c2 = sim._walk_banded_small(layer, layer_id, plan, address_map,
                                        1000, scalar)
            assert c1 == c2
            assert batched.ranges == scalar.ranges
            checked += 1
        assert checked  # the config must actually exercise a large grid
