"""Per-layer dataflow selection."""


from repro.accel.dataflow_select import (
    fixed_vs_best_cycles,
    select_dataflow,
    topology_dataflow_report,
)
from repro.accel.systolic import Dataflow
from repro.models.layer import conv, gemm
from repro.models.topology import Topology


class TestSelection:
    def test_best_is_minimum(self):
        layer = conv("c", 32, 32, 3, 3, 16, 64)
        choice = select_dataflow(16, 16, layer)
        assert choice.best_cycles == min(choice.cycles.values())

    def test_all_dataflows_evaluated(self):
        layer = gemm("fc", 64, 256, 64)
        choice = select_dataflow(8, 8, layer)
        assert set(choice.cycles) == set(Dataflow)

    def test_speedup_at_least_one(self):
        layer = conv("c", 32, 32, 3, 3, 16, 64)
        choice = select_dataflow(16, 16, layer)
        for dataflow in Dataflow:
            assert choice.speedup_over(dataflow) >= 1.0

    def test_large_m_prefers_streaming(self):
        """Huge M with small K, N: WS/IS stream M cheaply; OS must fold
        M across the array."""
        layer = gemm("fc", 100_000, 8, 8)
        choice = select_dataflow(8, 8, layer)
        assert choice.best is not Dataflow.OS


class TestTopologyReport:
    def test_report_covers_all_layers(self, tiny_topology):
        report = topology_dataflow_report(8, 8, tiny_topology)
        assert set(report) == {l.name for l in tiny_topology}

    def test_best_never_worse_than_fixed(self, tiny_topology):
        totals = fixed_vs_best_cycles(8, 8, tiny_topology)
        assert totals["best"] <= totals["fixed"]

    def test_mixed_workload_gains(self):
        """A topology mixing shapes benefits from per-layer choice."""
        topo = Topology("mix", [
            gemm("wide", 4, 4096, 4096),
            gemm("tall", 100_000, 8, 8),
        ])
        totals = fixed_vs_best_cycles(8, 8, topo, fixed=Dataflow.OS)
        assert totals["best"] < totals["fixed"]
