"""Bandwidth-aware AES (B-AES): OTP diversification and equivalence."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import Aes
from repro.crypto.baes import BandwidthAwareAes
from repro.crypto.ctr import make_counter
from repro.utils.bitops import xor_bytes

KEY = b"\x07" * 16


class TestOtpDerivation:
    def test_otps_distinct(self):
        engine = BandwidthAwareAes(KEY)
        otps = engine.otps(pa=0x40, vn=1, count=11)
        assert len(set(otps)) == 11

    def test_otps_beyond_round_keys(self):
        """Blocks larger than 11 segments extend the key schedule."""
        engine = BandwidthAwareAes(KEY)
        otps = engine.otps(pa=0x40, vn=1, count=40)
        assert len(set(otps)) == 40

    def test_otp_matches_algorithm1(self):
        """OTP_i == AES(PA||VN) xor key_i (Algorithm 1, defense line 7)."""
        engine = BandwidthAwareAes(KEY)
        base = Aes(KEY).encrypt_block(make_counter(0x40, 1, 0))
        round_keys = Aes(KEY).round_keys_bytes
        otps = engine.otps(pa=0x40, vn=1, count=4)
        for i in range(4):
            assert otps[i] == xor_bytes(base, round_keys[i])

    def test_mask_count_validation(self):
        engine = BandwidthAwareAes(KEY)
        with pytest.raises(ValueError):
            engine.segment_masks(0, 0, -1)
        assert engine.segment_masks(0, 0, 0) == []


class TestEncryption:
    def test_roundtrip(self):
        engine = BandwidthAwareAes(KEY)
        data = bytes(range(128))
        ct = engine.encrypt(data, pa=0x80, vn=5)
        assert ct != data
        assert engine.decrypt(ct, pa=0x80, vn=5) == data

    def test_non_multiple_length(self):
        engine = BandwidthAwareAes(KEY)
        data = b"x" * 50
        ct = engine.encrypt(data, pa=0, vn=1)
        assert len(ct) == 50
        assert engine.decrypt(ct, pa=0, vn=1) == data

    def test_identical_segments_encrypt_differently(self):
        """The SECA-defeating property: no shared OTP across segments."""
        engine = BandwidthAwareAes(KEY)
        data = bytes(512)  # 32 identical zero segments
        ct = engine.encrypt(data, pa=0, vn=1)
        segments = [ct[i:i + 16] for i in range(0, 512, 16)]
        assert len(set(segments)) == 32

    def test_vn_freshness(self):
        engine = BandwidthAwareAes(KEY)
        data = bytes(64)
        assert engine.encrypt(data, 0, 1) != engine.encrypt(data, 0, 2)

    @given(st.binary(min_size=1, max_size=600),
           st.integers(0, 2**30), st.integers(0, 2**30))
    @settings(max_examples=25)
    def test_roundtrip_property(self, data, pa, vn):
        engine = BandwidthAwareAes(KEY)
        assert engine.decrypt(engine.encrypt(data, pa, vn), pa, vn) == data


class TestHardwareAccounting:
    def test_single_invocation_small_block(self):
        engine = BandwidthAwareAes(KEY)
        # 64 B = 4 segments, well within the 11 round keys.
        assert engine.aes_invocations_per_block(64) == 1

    def test_schedule_extension_cost(self):
        engine = BandwidthAwareAes(KEY)
        # 512 B = 32 segments -> 2 extra schedules beyond the primary 11.
        assert engine.aes_invocations_per_block(512) == 3

    def test_invalid_block(self):
        engine = BandwidthAwareAes(KEY)
        with pytest.raises(ValueError):
            engine.aes_invocations_per_block(0)

    def test_far_fewer_invocations_than_ctr(self):
        """The hardware-efficiency claim: B-AES does ~1 AES per block
        where standard CTR does one per 16 B segment."""
        engine = BandwidthAwareAes(KEY)
        block = 128
        ctr_invocations = block // 16
        assert engine.aes_invocations_per_block(block) < ctr_invocations
