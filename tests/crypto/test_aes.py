"""FIPS-197 known-answer tests and structural properties of the AES core."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import (
    Aes,
    INV_SBOX,
    RCON,
    SBOX,
    gf_mul,
    key_expansion,
)


class TestGfMul:
    def test_identity(self):
        assert gf_mul(0x57, 1) == 0x57

    def test_fips_example(self):
        # FIPS-197 section 4.2: {57} x {13} = {fe}
        assert gf_mul(0x57, 0x13) == 0xFE

    def test_by_two(self):
        assert gf_mul(0x80, 2) == 0x1B  # wraps through the polynomial

    def test_zero(self):
        assert gf_mul(0, 0xAB) == 0

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_commutative(self, a, b):
        assert gf_mul(a, b) == gf_mul(b, a)

    @given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=50)
    def test_distributive(self, a, b, c):
        assert gf_mul(a, b ^ c) == gf_mul(a, b) ^ gf_mul(a, c)


class TestSbox:
    def test_known_entries(self):
        assert SBOX[0x00] == 0x63
        assert SBOX[0x01] == 0x7C
        assert SBOX[0x53] == 0xED
        assert SBOX[0xFF] == 0x16

    def test_is_permutation(self):
        assert sorted(SBOX) == list(range(256))

    def test_inverse_consistency(self):
        for x in range(256):
            assert INV_SBOX[SBOX[x]] == x

    def test_no_fixed_points(self):
        # The AES S-box has no fixed points and no anti-fixed points.
        for x in range(256):
            assert SBOX[x] != x
            assert SBOX[x] != x ^ 0xFF


class TestKeyExpansion:
    def test_rcon_values(self):
        assert RCON[:10] == [0x01, 0x02, 0x04, 0x08, 0x10,
                             0x20, 0x40, 0x80, 0x1B, 0x36]

    def test_aes128_first_words(self):
        # FIPS-197 Appendix A.1 key schedule for 2b7e1516...
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        words = key_expansion(key)
        assert words[4] == 0xA0FAFE17
        assert words[5] == 0x88542CB1
        assert words[43] == 0xB6630CA6

    def test_word_counts(self):
        assert len(key_expansion(bytes(16))) == 44
        assert len(key_expansion(bytes(24))) == 52
        assert len(key_expansion(bytes(32))) == 60

    def test_invalid_key_length(self):
        with pytest.raises(ValueError):
            key_expansion(bytes(15))


class TestFips197Vectors:
    PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")

    def test_aes128(self):
        cipher = Aes(bytes(range(16)))
        assert cipher.encrypt_block(self.PLAINTEXT).hex() == \
            "69c4e0d86a7b0430d8cdb78070b4c55a"

    def test_aes192(self):
        cipher = Aes(bytes(range(24)))
        assert cipher.encrypt_block(self.PLAINTEXT).hex() == \
            "dda97ca4864cdfe06eaf70a0ec0d7191"

    def test_aes256(self):
        cipher = Aes(bytes(range(32)))
        assert cipher.encrypt_block(self.PLAINTEXT).hex() == \
            "8ea2b7ca516745bfeafc49904b496089"

    def test_appendix_b(self):
        cipher = Aes(bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c"))
        ct = cipher.encrypt_block(
            bytes.fromhex("3243f6a8885a308d313198a2e0370734"))
        assert ct.hex() == "3925841d02dc09fbdc118597196a0b32"

    def test_decrypt_vectors(self):
        for key_len in (16, 24, 32):
            cipher = Aes(bytes(range(key_len)))
            ct = cipher.encrypt_block(self.PLAINTEXT)
            assert cipher.decrypt_block(ct) == self.PLAINTEXT


class TestBlockCipherProperties:
    @given(st.binary(min_size=16, max_size=16),
           st.binary(min_size=16, max_size=16))
    @settings(max_examples=30)
    def test_roundtrip(self, key, block):
        cipher = Aes(key)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    @given(st.binary(min_size=16, max_size=16))
    @settings(max_examples=20)
    def test_diffusion(self, block):
        """Flipping one plaintext bit changes many ciphertext bits."""
        cipher = Aes(b"k" * 16)
        base = cipher.encrypt_block(block)
        flipped = bytes([block[0] ^ 1]) + block[1:]
        other = cipher.encrypt_block(flipped)
        differing_bits = sum(
            bin(a ^ b).count("1") for a, b in zip(base, other))
        assert differing_bits >= 30  # avalanche: ~64 expected

    def test_wrong_block_size(self):
        cipher = Aes(bytes(16))
        with pytest.raises(ValueError):
            cipher.encrypt_block(bytes(15))
        with pytest.raises(ValueError):
            cipher.decrypt_block(bytes(17))

    def test_round_keys_exposed(self):
        cipher = Aes(bytes(16))
        round_keys = cipher.round_keys_bytes
        assert len(round_keys) == 11
        assert all(len(rk) == 16 for rk in round_keys)
        assert round_keys[0] == bytes(16)  # first round key is the key
