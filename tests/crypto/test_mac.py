"""Keyed MAC: binding, verification and XOR-fold algebra."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.mac import MAC_BYTES, BlockMac, MacContext, xor_fold

KEY = b"\x0c" * 16


class TestBlockMac:
    def test_deterministic(self):
        mac = BlockMac(KEY)
        ctx = MacContext(pa=64, vn=1)
        assert mac.mac(b"data" * 16, ctx) == mac.mac(b"data" * 16, ctx)

    def test_length(self):
        mac = BlockMac(KEY)
        assert len(mac.mac(bytes(64), MacContext(0, 0))) == MAC_BYTES

    def test_verify_accepts(self):
        mac = BlockMac(KEY)
        ctx = MacContext(pa=64, vn=1, layer_id=3, fmap_idx=1, blk_idx=9)
        tag = mac.mac(bytes(range(64)), ctx)
        assert mac.verify(bytes(range(64)), tag, ctx)

    def test_verify_rejects_modified_data(self):
        mac = BlockMac(KEY)
        ctx = MacContext(pa=64, vn=1)
        tag = mac.mac(bytes(64), ctx)
        tampered = b"\x01" + bytes(63)
        assert not mac.verify(tampered, tag, ctx)

    def test_key_separation(self):
        ctx = MacContext(pa=0, vn=0)
        assert BlockMac(KEY).mac(bytes(16), ctx) != \
            BlockMac(b"\x0d" * 16).mac(bytes(16), ctx)

    @pytest.mark.parametrize("field,value", [
        ("pa", 128), ("vn", 2), ("layer_id", 1),
        ("fmap_idx", 1), ("blk_idx", 1),
    ])
    def test_every_context_field_binds(self, field, value):
        """Changing any location field must change the MAC (RePA defense)."""
        mac = BlockMac(KEY)
        base_ctx = MacContext(pa=64, vn=1, layer_id=0, fmap_idx=0, blk_idx=0)
        changed = MacContext(**{**base_ctx.__dict__, field: value})
        data = bytes(range(32))
        assert mac.mac(data, base_ctx) != mac.mac(data, changed)

    def test_ciphertext_only_ignores_context(self):
        mac = BlockMac(KEY)
        data = bytes(range(32))
        assert mac.mac_ciphertext_only(data) == mac.mac(data, None)

    def test_length_extension_guard(self):
        """The length prefix distinguishes same-prefix messages."""
        mac = BlockMac(KEY)
        assert mac.mac_ciphertext_only(bytes(16)) != \
            mac.mac_ciphertext_only(bytes(32))

    @given(st.binary(min_size=0, max_size=128))
    @settings(max_examples=30)
    def test_distinct_data_distinct_macs(self, data):
        mac = BlockMac(KEY)
        base = mac.mac_ciphertext_only(bytes(len(data)))
        if data != bytes(len(data)):
            assert mac.mac_ciphertext_only(data) != base


class TestXorFold:
    def test_empty_is_zero(self):
        assert xor_fold([]) == bytes(MAC_BYTES)

    def test_self_cancel(self):
        tag = b"\xaa" * MAC_BYTES
        assert xor_fold([tag, tag]) == bytes(MAC_BYTES)

    def test_order_independent(self):
        """XOR commutes — exactly the property RePA exploits."""
        tags = [bytes([i] * MAC_BYTES) for i in range(5)]
        assert xor_fold(tags) == xor_fold(reversed(tags))

    def test_incremental_update(self):
        """fold(S \\ {a} + {b}) == fold(S) ^ a ^ b."""
        tags = [bytes([i + 1] * MAC_BYTES) for i in range(4)]
        folded = xor_fold(tags)
        replacement = b"\x99" * MAC_BYTES
        updated = xor_fold([folded, tags[2], replacement])
        direct = xor_fold(tags[:2] + [replacement] + tags[3:])
        assert updated == direct

    @given(st.lists(st.binary(min_size=MAC_BYTES, max_size=MAC_BYTES),
                    max_size=16))
    @settings(max_examples=50)
    def test_associative_property(self, tags):
        if len(tags) < 2:
            return
        left = xor_fold([xor_fold(tags[:2])] + tags[2:])
        assert left == xor_fold(tags)
