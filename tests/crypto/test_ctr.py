"""AES-CTR mode: counter construction and stream properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.ctr import (
    AesCtr,
    PA_BITS,
    SEGMENT_BITS,
    VN_BITS,
    make_counter,
    split_counter,
)

KEY = b"\x01" * 16


class TestCounter:
    def test_roundtrip(self):
        counter = make_counter(pa=0x1234, vn=42, segment=7)
        assert split_counter(counter) == (0x1234, 42, 7)

    def test_zero(self):
        assert split_counter(make_counter(0, 0, 0)) == (0, 0, 0)

    def test_max_values(self):
        pa = (1 << PA_BITS) - 1
        vn = (1 << VN_BITS) - 1
        seg = (1 << SEGMENT_BITS) - 1
        assert split_counter(make_counter(pa, vn, seg)) == (pa, vn, seg)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            make_counter(1 << PA_BITS, 0)
        with pytest.raises(ValueError):
            make_counter(0, 1 << VN_BITS)
        with pytest.raises(ValueError):
            make_counter(0, 0, 1 << SEGMENT_BITS)
        with pytest.raises(ValueError):
            make_counter(-1, 0)

    def test_distinct_fields_distinct_counters(self):
        base = make_counter(1, 1, 1)
        assert make_counter(2, 1, 1) != base
        assert make_counter(1, 2, 1) != base
        assert make_counter(1, 1, 2) != base

    @given(st.integers(0, (1 << PA_BITS) - 1),
           st.integers(0, (1 << VN_BITS) - 1),
           st.integers(0, (1 << SEGMENT_BITS) - 1))
    @settings(max_examples=50)
    def test_roundtrip_property(self, pa, vn, seg):
        assert split_counter(make_counter(pa, vn, seg)) == (pa, vn, seg)


class TestCtrMode:
    def test_roundtrip(self):
        ctr = AesCtr(KEY)
        data = bytes(range(64))
        ct = ctr.encrypt(data, pa=0x1000, vn=3)
        assert ct != data
        assert ctr.decrypt(ct, pa=0x1000, vn=3) == data

    def test_non_multiple_length(self):
        ctr = AesCtr(KEY)
        data = b"hello world"  # 11 bytes
        ct = ctr.encrypt(data, pa=0, vn=1)
        assert len(ct) == len(data)
        assert ctr.decrypt(ct, pa=0, vn=1) == data

    def test_vn_change_changes_ciphertext(self):
        ctr = AesCtr(KEY)
        data = bytes(64)
        assert ctr.encrypt(data, pa=0, vn=1) != ctr.encrypt(data, pa=0, vn=2)

    def test_pa_change_changes_ciphertext(self):
        ctr = AesCtr(KEY)
        data = bytes(64)
        assert ctr.encrypt(data, pa=0, vn=1) != ctr.encrypt(data, pa=64, vn=1)

    def test_wrong_vn_fails_decrypt(self):
        ctr = AesCtr(KEY)
        data = bytes(range(32))
        ct = ctr.encrypt(data, pa=0, vn=1)
        assert ctr.decrypt(ct, pa=0, vn=2) != data

    def test_segments_use_distinct_otps(self):
        """Standard CTR: equal plaintext segments encrypt differently."""
        ctr = AesCtr(KEY)
        data = bytes(64)  # four identical zero segments
        ct = ctr.encrypt(data, pa=0, vn=1)
        segments = [ct[i:i + 16] for i in range(0, 64, 16)]
        assert len(set(segments)) == 4

    @given(st.binary(min_size=1, max_size=256),
           st.integers(0, 2**32), st.integers(0, 2**32))
    @settings(max_examples=30)
    def test_roundtrip_property(self, data, pa, vn):
        ctr = AesCtr(KEY)
        assert ctr.decrypt(ctr.encrypt(data, pa, vn), pa, vn) == data


class TestSharedOtpVariant:
    def test_shared_otp_repeats(self):
        """The insecure variant visibly leaks segment equality."""
        ctr = AesCtr(KEY)
        data = bytes(64)
        ct = ctr.encrypt_shared_otp(data, pa=0, vn=1)
        segments = [ct[i:i + 16] for i in range(0, 64, 16)]
        assert len(set(segments)) == 1

    def test_shared_otp_roundtrip(self):
        ctr = AesCtr(KEY)
        data = bytes(range(48))
        ct = ctr.encrypt_shared_otp(data, pa=4, vn=9)
        assert ctr.decrypt_shared_otp(ct, pa=4, vn=9) == data
