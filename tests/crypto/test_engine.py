"""Crypto-engine timing models (Fig. 1(e) / Fig. 2(c) behaviour)."""

import pytest

from repro.crypto.engine import (
    AesEngineSpec,
    CryptoEngineModel,
    bandwidth_aware_engine,
    engines_needed,
    parallel_engines,
    serial_engine,
)


class TestEngineSpec:
    def test_latency(self):
        assert AesEngineSpec(rounds=10).latency_cycles == 11

    def test_pipelined_throughput(self):
        assert AesEngineSpec(pipelined=True).bytes_per_cycle == 16.0

    def test_serial_throughput(self):
        spec = AesEngineSpec(rounds=10, pipelined=False)
        assert spec.bytes_per_cycle == pytest.approx(16 / 11)


class TestOrganizations:
    def test_serial_cannot_meet_bandwidth(self):
        """Fig. 1(e): a serial engine misses accelerator bandwidth."""
        engine = serial_engine()
        # Server NPU: 20 GB/s at 1 GHz -> 20 B/cycle needed.
        assert not engine.meets_bandwidth(20.0, freq_ghz=1.0)

    def test_parallel_meets_bandwidth(self):
        assert parallel_engines(4).meets_bandwidth(20.0, freq_ghz=1.0)

    def test_baes_matches_parallel_throughput(self):
        """B-AES with N lanes sustains the same rate as N engines."""
        for n in (1, 2, 4, 8):
            assert bandwidth_aware_engine(n).bytes_per_cycle == \
                parallel_engines(n).bytes_per_cycle

    def test_validation(self):
        with pytest.raises(ValueError):
            CryptoEngineModel(AesEngineSpec(), engines=0)
        with pytest.raises(ValueError):
            CryptoEngineModel(AesEngineSpec(), xor_lanes=0)
        with pytest.raises(ValueError):
            parallel_engines(1).bandwidth_gbps(0)


class TestCycleAccounting:
    def test_zero_bytes(self):
        assert parallel_engines(1).cycles_for_bytes(0) == 0

    def test_single_block_is_latency(self):
        assert parallel_engines(1).cycles_for_bytes(16) == 11

    def test_throughput_limited(self):
        engine = parallel_engines(1)
        cycles = engine.cycles_for_bytes(16 * 1000)
        assert cycles == 11 + 999

    def test_negative_bytes(self):
        with pytest.raises(ValueError):
            parallel_engines(1).cycles_for_bytes(-1)

    def test_more_lanes_fewer_cycles(self):
        nbytes = 64 << 10
        slow = bandwidth_aware_engine(1).cycles_for_bytes(nbytes)
        fast = bandwidth_aware_engine(4).cycles_for_bytes(nbytes)
        assert fast < slow


class TestEnginesNeeded:
    def test_server_needs_two(self):
        # 20 GB/s at 1 GHz = 20 B/cyc; one engine gives 16 B/cyc.
        assert engines_needed(20.0, 1.0) == 2

    def test_edge_needs_one(self):
        # 10 GB/s at 2.75 GHz = 3.6 B/cyc.
        assert engines_needed(10.0, 2.75) == 1

    def test_exact_fit(self):
        assert engines_needed(16.0, 1.0) == 1
