"""Crypto-engine timing models (Fig. 1(e) / Fig. 2(c) behaviour)."""

import pytest

from repro.crypto.engine import (
    AesEngineSpec,
    CryptoEngineModel,
    bandwidth_aware_engine,
    engines_needed,
    parallel_engines,
    serial_engine,
)


class TestEngineSpec:
    def test_latency(self):
        assert AesEngineSpec(rounds=10).latency_cycles == 11

    def test_pipelined_throughput(self):
        assert AesEngineSpec(pipelined=True).bytes_per_cycle == 16.0

    def test_serial_throughput(self):
        spec = AesEngineSpec(rounds=10, pipelined=False)
        assert spec.bytes_per_cycle == pytest.approx(16 / 11)


class TestOrganizations:
    def test_serial_cannot_meet_bandwidth(self):
        """Fig. 1(e): a serial engine misses accelerator bandwidth."""
        engine = serial_engine()
        # Server NPU: 20 GB/s at 1 GHz -> 20 B/cycle needed.
        assert not engine.meets_bandwidth(20.0, freq_ghz=1.0)

    def test_parallel_meets_bandwidth(self):
        assert parallel_engines(4).meets_bandwidth(20.0, freq_ghz=1.0)

    def test_baes_matches_parallel_throughput(self):
        """B-AES with N lanes sustains the same rate as N engines."""
        for n in (1, 2, 4, 8):
            assert bandwidth_aware_engine(n).bytes_per_cycle == \
                parallel_engines(n).bytes_per_cycle

    def test_validation(self):
        with pytest.raises(ValueError):
            CryptoEngineModel(AesEngineSpec(), engines=0)
        with pytest.raises(ValueError):
            CryptoEngineModel(AesEngineSpec(), xor_lanes=0)
        with pytest.raises(ValueError):
            parallel_engines(1).bandwidth_gbps(0)


class TestCycleAccounting:
    def test_zero_bytes(self):
        assert parallel_engines(1).cycles_for_bytes(0) == 0

    def test_single_block_is_latency(self):
        assert parallel_engines(1).cycles_for_bytes(16) == 11

    def test_throughput_limited(self):
        engine = parallel_engines(1)
        cycles = engine.cycles_for_bytes(16 * 1000)
        assert cycles == 11 + 999

    def test_negative_bytes(self):
        with pytest.raises(ValueError):
            parallel_engines(1).cycles_for_bytes(-1)

    def test_more_lanes_fewer_cycles(self):
        nbytes = 64 << 10
        slow = bandwidth_aware_engine(1).cycles_for_bytes(nbytes)
        fast = bandwidth_aware_engine(4).cycles_for_bytes(nbytes)
        assert fast < slow


class TestEnginesNeeded:
    def test_server_needs_two(self):
        # 20 GB/s at 1 GHz = 20 B/cyc; one engine gives 16 B/cyc.
        assert engines_needed(20.0, 1.0) == 2

    def test_edge_needs_one(self):
        # 10 GB/s at 2.75 GHz = 3.6 B/cyc.
        assert engines_needed(10.0, 2.75) == 1

    def test_exact_fit(self):
        assert engines_needed(16.0, 1.0) == 1


class TestFractionalThroughputExact:
    """cycles_for_bytes honors fractional B/cyc exactly (no truncation
    to 1 B/cyc, no silent overcredit of sub-1 B/cyc organizations)."""

    def test_serial_engine_exact_rational(self):
        # 16 B / 11 cyc: 176 bytes = exactly 121 steady cycles + fill,
        # not ceil(176 / int(1.45)=1) = 176 + fill.
        engine = serial_engine()
        assert engine.cycles_for_bytes(16 * 11) == 121 + 11 - 1

    def test_serial_engine_rounds_partial_byte_up(self):
        engine = serial_engine()
        # One extra byte past a whole number of blocks: a single ceil on
        # the exact 16/11 B/cyc rate (ceil(177 * 11 / 16) = 122), never
        # a truncated-throughput blowup.
        assert engine.cycles_for_bytes(16 * 11 + 1) == 122 + 11 - 1

    def test_serial_single_block(self):
        assert serial_engine().cycles_for_bytes(16) == 11 + 11 - 1

    def test_sub_byte_per_cycle_not_overcredited(self):
        # rounds=31 -> 16/32 = 0.5 B/cyc; 16 bytes must take 32 steady
        # cycles, not 16.
        engine = serial_engine(rounds=31)
        assert engine.spec.bytes_per_cycle == pytest.approx(0.5)
        assert engine.cycles_for_bytes(16) == 32 + 32 - 1

    def test_matches_bytes_per_cycle_asymptotically(self):
        """Steady-state rate converges to the advertised bytes_per_cycle."""
        for engine in (serial_engine(), parallel_engines(3),
                       bandwidth_aware_engine(5)):
            nbytes = 1 << 20
            cycles = engine.cycles_for_bytes(nbytes)
            rate = nbytes / (cycles - engine.spec.latency_cycles + 1)
            assert rate == pytest.approx(engine.bytes_per_cycle, rel=1e-4)

    def test_pipelined_unchanged(self):
        assert parallel_engines(1).cycles_for_bytes(16 * 1000) == 11 + 999


class TestEnginesNeededBoundaries:
    def test_just_above_integer_multiple_provisions_extra_engine(self):
        # One engine at 1 GHz sustains 16 GB/s; 16.0001 GB/s needs two.
        # (The old milli-GB/s rounding quantized 16.0001 -> 16000 milli
        # and under-provisioned to one.)
        assert engines_needed(16.0001, 1.0) == 2
        assert engines_needed(32.00001, 1.0) == 3

    def test_just_below_integer_multiple(self):
        assert engines_needed(15.9999, 1.0) == 1
        assert engines_needed(31.9999, 1.0) == 2

    def test_exact_multiples_all_sizes(self):
        one = parallel_engines(1).bandwidth_gbps(1.0)
        for n in range(1, 20):
            assert engines_needed(n * one, 1.0) == n

    def test_non_positive_demand_needs_one_engine(self):
        assert engines_needed(0.0, 1.0) == 1
        assert engines_needed(-3.5, 1.0) == 1

    def test_fractional_frequency_boundary(self):
        # 16 B/cyc at 2.75 GHz = 44 GB/s per engine.
        one = parallel_engines(1).bandwidth_gbps(2.75)
        assert one == pytest.approx(44.0)
        assert engines_needed(44.0, 2.75) == 1
        assert engines_needed(44.0000001, 2.75) == 2
