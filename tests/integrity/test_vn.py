"""On-chip VN generation from DNN state."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.integrity.vn import (
    DnnStateVnGenerator,
    VnExhaustedError,
    vn_pairs_unique,
)


class TestWeightVns:
    def test_constant_per_load(self):
        gen = DnnStateVnGenerator(num_layers=10)
        assert gen.weight_vn() == gen.weight_vn()

    def test_reload_changes_epoch(self):
        gen = DnnStateVnGenerator(num_layers=10)
        before = gen.weight_vn()
        gen.reload_model()
        assert gen.weight_vn() != before

    def test_reload_resets_inference(self):
        gen = DnnStateVnGenerator(num_layers=4)
        gen.next_inference()
        gen.reload_model()
        assert gen.inference_index == 0

    def test_weight_tag_set(self):
        gen = DnnStateVnGenerator(num_layers=10)
        assert gen.weight_vn() >> 55 == 1


class TestActivationVns:
    def test_distinct_per_layer(self):
        gen = DnnStateVnGenerator(num_layers=8)
        vns = {gen.activation_vn(l) for l in range(8)}
        assert len(vns) == 8

    def test_distinct_across_inferences(self):
        gen = DnnStateVnGenerator(num_layers=8)
        first = gen.activation_vn(3)
        gen.next_inference()
        assert gen.activation_vn(3) != first

    def test_monotone_counter_semantics(self):
        """The derived VN equals the write count a stored VN would hold."""
        gen = DnnStateVnGenerator(num_layers=4)
        assert gen.activation_vn(0, inference=0) == 1
        assert gen.activation_vn(0, inference=1) == 5  # one rewrite per round

    def test_never_collides_with_weight_vn(self):
        gen = DnnStateVnGenerator(num_layers=16)
        for inference in range(10):
            for layer in range(16):
                assert gen.activation_vn(layer, inference) != gen.weight_vn()

    def test_layer_bounds(self):
        gen = DnnStateVnGenerator(num_layers=4)
        with pytest.raises(IndexError):
            gen.activation_vn(4)

    def test_exhaustion_detected(self):
        gen = DnnStateVnGenerator(num_layers=4)
        with pytest.raises(VnExhaustedError):
            gen.activation_vn(0, inference=1 << 54)


class TestInvariant:
    @given(st.integers(1, 12), st.integers(1, 20))
    @settings(max_examples=30, deadline=None)
    def test_no_pair_reuse(self, layers, inferences):
        gen = DnnStateVnGenerator(num_layers=layers)
        assert vn_pairs_unique(gen, inferences)


class TestValidation:
    def test_bad_layer_count(self):
        with pytest.raises(ValueError):
            DnnStateVnGenerator(num_layers=0)

    def test_bad_epoch(self):
        with pytest.raises(ValueError):
            DnnStateVnGenerator(num_layers=1, model_epoch=0)
