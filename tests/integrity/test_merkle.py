"""Merkle tree: construction, updates, tamper and replay detection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.integrity.merkle import MerkleTree

KEY = b"\x11" * 16


def _leaves(n, size=64):
    return [bytes([i % 256]) * size for i in range(n)]


class TestConstruction:
    def test_single_leaf(self):
        tree = MerkleTree(KEY, _leaves(1))
        assert tree.num_leaves == 1
        assert len(tree.root) == 8

    def test_level_count(self):
        tree = MerkleTree(KEY, _leaves(64), arity=8)
        # 64 leaves -> 64 digests -> 8 -> 1: leaf level + 2.
        assert tree.num_levels == 3

    def test_levels_for_matches(self):
        for n in (1, 7, 8, 9, 64, 65, 512):
            tree = MerkleTree(KEY, _leaves(n), arity=8)
            assert tree.num_levels == MerkleTree.levels_for(n, 8)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MerkleTree(KEY, [])

    def test_bad_arity(self):
        with pytest.raises(ValueError):
            MerkleTree(KEY, _leaves(4), arity=1)

    def test_root_depends_on_leaves(self):
        a = MerkleTree(KEY, _leaves(8))
        b = MerkleTree(KEY, [b"\xff" * 64] + _leaves(8)[1:])
        assert a.root != b.root

    def test_root_depends_on_key(self):
        a = MerkleTree(KEY, _leaves(8))
        b = MerkleTree(b"\x22" * 16, _leaves(8))
        assert a.root != b.root


class TestVerification:
    def test_honest_leaves_verify(self):
        leaves = _leaves(20)
        tree = MerkleTree(KEY, leaves)
        for i, leaf in enumerate(leaves):
            assert tree.verify_leaf(i, leaf)

    def test_tampered_leaf_fails(self):
        tree = MerkleTree(KEY, _leaves(20))
        assert not tree.verify_leaf(3, b"\xff" * 64)

    def test_replayed_stale_leaf_fails(self):
        """A replay attack: the old value no longer verifies after an
        update, because the on-chip root changed."""
        leaves = _leaves(20)
        tree = MerkleTree(KEY, leaves)
        stale = leaves[5]
        tree.update_leaf(5, b"\x99" * 64)
        assert not tree.verify_leaf(5, stale)
        assert tree.verify_leaf(5, b"\x99" * 64)

    def test_swapped_leaves_fail(self):
        """Leaf-position binding: transplanting leaves is detected."""
        leaves = _leaves(16)
        tree = MerkleTree(KEY, leaves)
        assert not tree.verify_leaf(0, leaves[1])
        assert not tree.verify_leaf(1, leaves[0])

    def test_out_of_range(self):
        tree = MerkleTree(KEY, _leaves(4))
        with pytest.raises(IndexError):
            tree.verify_leaf(4, bytes(64))
        with pytest.raises(IndexError):
            tree.update_leaf(-1, bytes(64))


class TestUpdates:
    def test_update_changes_root(self):
        tree = MerkleTree(KEY, _leaves(16))
        old_root = tree.root
        tree.update_leaf(7, b"\xab" * 64)
        assert tree.root != old_root

    def test_update_equals_rebuild(self):
        """Incremental path update must equal a full rebuild."""
        leaves = _leaves(30)
        tree = MerkleTree(KEY, leaves)
        tree.update_leaf(17, b"\xcd" * 64)
        rebuilt_leaves = leaves[:17] + [b"\xcd" * 64] + leaves[18:]
        rebuilt = MerkleTree(KEY, rebuilt_leaves)
        assert tree.root == rebuilt.root

    @given(st.integers(2, 40), st.integers(0, 39), st.binary(min_size=8, max_size=8))
    @settings(max_examples=25, deadline=None)
    def test_update_then_verify_property(self, n, index, payload):
        index = index % n
        tree = MerkleTree(KEY, _leaves(n))
        tree.update_leaf(index, payload * 8)
        assert tree.verify_leaf(index, payload * 8)


class TestLevelsFor:
    def test_values(self):
        assert MerkleTree.levels_for(1) == 1
        assert MerkleTree.levels_for(8) == 2
        assert MerkleTree.levels_for(9) == 3
        assert MerkleTree.levels_for(8**4) == 5

    def test_invalid(self):
        with pytest.raises(ValueError):
            MerkleTree.levels_for(0)
