"""SGX-style functional memory: tree-protected off-chip VNs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.integrity.sgx_memory import SgxSecureMemory
from repro.integrity.verifier import IntegrityError

ENC = b"\x88" * 16
MAC = b"\x99" * 16


@pytest.fixture
def memory():
    return SgxSecureMemory(ENC, MAC, num_blocks=32)


class TestHonestPath:
    def test_roundtrip(self, memory):
        data = bytes(range(64))
        memory.write(0, data)
        assert memory.read(0) == data

    def test_overwrite(self, memory):
        memory.write(64, b"\x01" * 64)
        memory.write(64, b"\x02" * 64)
        assert memory.read(64) == b"\x02" * 64
        assert memory.vns[1] == 2

    def test_many_blocks(self, memory):
        for i in range(32):
            memory.write(64 * i, bytes([i]) * 64)
        for i in range(32):
            assert memory.read(64 * i) == bytes([i]) * 64

    def test_alignment_enforced(self, memory):
        with pytest.raises(ValueError):
            memory.write(7, bytes(64))

    def test_region_bounds(self, memory):
        with pytest.raises(IndexError):
            memory.write(64 * 32, bytes(64))

    def test_missing_block(self, memory):
        with pytest.raises(KeyError):
            memory.read(64 * 5)

    def test_validation(self):
        with pytest.raises(ValueError):
            SgxSecureMemory(ENC, MAC, num_blocks=0)
        with pytest.raises(ValueError):
            SgxSecureMemory(ENC, MAC, num_blocks=4, block_bytes=60)


class TestTamperDetection:
    def test_ciphertext_tamper(self, memory):
        memory.write(0, bytes(64))
        ct = memory.data[0]
        memory.data[0] = bytes([ct[0] ^ 1]) + ct[1:]
        with pytest.raises(IntegrityError):
            memory.read(0)

    def test_mac_tamper(self, memory):
        memory.write(0, bytes(64))
        memory.macs[0] = bytes(8)
        with pytest.raises(IntegrityError):
            memory.read(0)

    def test_vn_tamper(self, memory):
        """Raising the stored VN without authority breaks the tree."""
        memory.write(0, bytes(64))
        memory.vns[0] += 1
        with pytest.raises(IntegrityError) as exc:
            memory.read(0)
        assert "integrity-tree" in str(exc.value)

    def test_full_replay_detected(self, memory):
        """Replay ciphertext + MAC + VN together: only the on-chip root
        can catch this, and it does."""
        memory.write(0, b"\x01" * 64)
        snapshot = (memory.data[0], memory.macs[0], memory.vns[0])
        memory.write(0, b"\x02" * 64)
        memory.data[0], memory.macs[0], memory.vns[0] = snapshot
        with pytest.raises(IntegrityError):
            memory.read(0)

    def test_transplant_detected(self, memory):
        memory.write(0, b"\x01" * 64)
        memory.write(64, b"\x02" * 64)
        memory.data[1] = memory.data[0]
        memory.macs[1] = memory.macs[0]
        memory.vns[1] = memory.vns[0]
        with pytest.raises(IntegrityError):
            memory.read(64)

    @given(st.integers(0, 31), st.integers(0, 63), st.integers(1, 255))
    @settings(max_examples=20, deadline=None)
    def test_any_flip_detected(self, block, byte, flip):
        """Fuzz: any single-byte corruption of any stored ciphertext is
        caught."""
        memory = SgxSecureMemory(ENC, MAC, num_blocks=32)
        memory.write(64 * block, bytes(64))
        ct = memory.data[block]
        memory.data[block] = ct[:byte] + bytes([ct[byte] ^ flip]) + ct[byte + 1:]
        with pytest.raises(IntegrityError):
            memory.read(64 * block)


class TestAccounting:
    def test_metadata_footprint(self, memory):
        memory.write(0, bytes(64))
        # 1 MAC (8 B) + 32 VN slots (8 B each).
        assert memory.metadata_bytes() == 8 + 32 * 8

    def test_tree_geometry(self, memory):
        # 32 leaves at arity 8 -> 32 digests, 4, 1 => 3 levels.
        assert memory.tree_levels() == 3

    def test_root_changes_on_write(self, memory):
        before = memory.onchip_root
        memory.write(0, bytes(64))
        assert memory.onchip_root != before
