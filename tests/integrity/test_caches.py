"""Metadata cache wrapper (VN cache / MAC cache)."""

import pytest

from repro.integrity.caches import (
    MAC_CACHE_BYTES,
    MetadataCache,
    VN_CACHE_BYTES,
)


class TestConfiguration:
    def test_paper_sizes(self):
        assert VN_CACHE_BYTES == 16 << 10
        assert MAC_CACHE_BYTES == 8 << 10

    def test_line_capacity(self):
        cache = MetadataCache(VN_CACHE_BYTES)
        assert cache.capacity_lines == 256

    def test_too_small(self):
        with pytest.raises(ValueError):
            MetadataCache(32)

    def test_bad_line_size(self):
        with pytest.raises(ValueError):
            MetadataCache(1024, line_bytes=0)


class TestLineAddressing:
    def test_same_line_hits(self):
        cache = MetadataCache(1024)
        cache.access(0)
        hit, _ = cache.access(63)   # same 64 B line
        assert hit

    def test_different_line_misses(self):
        cache = MetadataCache(1024)
        cache.access(0)
        hit, _ = cache.access(64)
        assert not hit

    def test_writeback_is_address(self):
        cache = MetadataCache(64)  # one line
        cache.access(0, write=True)
        _, writeback = cache.access(64)
        assert writeback == 0

    def test_flush_addresses(self):
        cache = MetadataCache(256)
        cache.access(0, write=True)
        cache.access(128, write=True)
        cache.access(64, write=False)
        assert sorted(cache.flush()) == [0, 128]

    def test_streaming_miss_rate(self):
        """A pure streaming pattern misses once per line."""
        cache = MetadataCache(8 << 10)
        for addr in range(0, 64 * 4096, 8):
            cache.access(addr)
        stats = cache.stats
        assert stats.misses == 4096
        assert stats.hit_rate == pytest.approx(7 / 8)
