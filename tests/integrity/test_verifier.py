"""Functional secure memory: end-to-end confidentiality + integrity."""

import pytest

from repro.integrity.verifier import IntegrityError, SecureMemory

ENC_KEY = b"\x44" * 16
MAC_KEY = b"\x55" * 16


@pytest.fixture
def memory():
    return SecureMemory(ENC_KEY, MAC_KEY, block_bytes=64)


class TestHonestPath:
    def test_write_read_roundtrip(self, memory):
        data = bytes(range(64))
        memory.write(0x1000, data)
        assert memory.read(0x1000) == data

    def test_overwrite_bumps_vn(self, memory):
        memory.write(0x1000, bytes(64))
        first_ct = memory.dram[0x1000].ciphertext
        memory.write(0x1000, bytes(64))
        second_ct = memory.dram[0x1000].ciphertext
        assert first_ct != second_ct  # fresh VN -> fresh OTP
        assert memory.dram[0x1000].vn == 2

    def test_multiple_addresses(self, memory):
        for i in range(8):
            memory.write(64 * i, bytes([i]) * 64, layer_id=1, blk_idx=i)
        for i in range(8):
            assert memory.read(64 * i, layer_id=1, blk_idx=i) == bytes([i]) * 64

    def test_missing_address(self, memory):
        with pytest.raises(KeyError):
            memory.read(0xDEAD)

    def test_wrong_block_size(self, memory):
        with pytest.raises(ValueError):
            memory.write(0, bytes(63))

    def test_invalid_block_bytes(self):
        with pytest.raises(ValueError):
            SecureMemory(ENC_KEY, MAC_KEY, block_bytes=60)


class TestConfidentiality:
    def test_ciphertext_differs_from_plaintext(self, memory):
        data = bytes(range(64))
        memory.write(0x2000, data)
        assert memory.dram[0x2000].ciphertext != data

    def test_zero_blocks_leak_nothing(self, memory):
        """Identical all-zero blocks at different addresses produce
        unrelated ciphertexts (PA in the counter)."""
        memory.write(0x0, bytes(64))
        memory.write(0x40, bytes(64))
        assert memory.dram[0x0].ciphertext != memory.dram[0x40].ciphertext

    def test_segments_within_block_differ(self, memory):
        """B-AES: equal 16 B segments of one block encrypt differently."""
        memory.write(0x3000, bytes(64))
        ct = memory.dram[0x3000].ciphertext
        segments = [ct[i:i + 16] for i in range(0, 64, 16)]
        assert len(set(segments)) == 4


class TestTamperDetection:
    def test_flipped_bit_detected(self, memory):
        memory.write(0x1000, bytes(64))
        stored = memory.dram[0x1000]
        stored.ciphertext = bytes([stored.ciphertext[0] ^ 1]) + stored.ciphertext[1:]
        with pytest.raises(IntegrityError):
            memory.read(0x1000)

    def test_mac_forgery_detected(self, memory):
        memory.write(0x1000, bytes(64))
        memory.dram[0x1000].mac = bytes(8)
        with pytest.raises(IntegrityError):
            memory.read(0x1000)

    def test_replay_detected(self, memory):
        """Restoring a stale (ciphertext, MAC, VN) snapshot is caught by
        the on-chip VN."""
        memory.write(0x1000, b"\x01" * 64)
        import copy
        snapshot = copy.deepcopy(memory.dram[0x1000])
        memory.write(0x1000, b"\x02" * 64)
        memory.dram[0x1000] = snapshot  # attacker replays old contents
        with pytest.raises(IntegrityError):
            memory.read(0x1000)

    def test_block_transplant_detected(self, memory):
        """Moving a valid block to another address fails (PA binding)."""
        memory.write(0x1000, b"\x01" * 64)
        memory.write(0x2000, b"\x02" * 64)
        memory.dram[0x2000] = memory.dram[0x1000]
        with pytest.raises(IntegrityError):
            memory.read(0x2000)

    def test_wrong_position_metadata_detected(self, memory):
        memory.write(0x1000, bytes(64), layer_id=1, blk_idx=5)
        with pytest.raises(IntegrityError):
            memory.read(0x1000, layer_id=1, blk_idx=6)


class TestLargeBlocks:
    def test_512_byte_unit(self):
        memory = SecureMemory(ENC_KEY, MAC_KEY, block_bytes=512)
        data = bytes(i % 256 for i in range(512))
        memory.write(0x8000, data)
        assert memory.read(0x8000) == data
