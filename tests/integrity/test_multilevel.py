"""SeDA's multi-level MAC hierarchy."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.mac import MAC_BYTES, MacContext
from repro.integrity.multilevel import LayerMacState, MultiLevelIntegrity

KEY = b"\x33" * 16


def _ctx(i, layer=0):
    return MacContext(pa=64 * i, vn=1, layer_id=layer, fmap_idx=0, blk_idx=i)


def _blocks(n):
    return [bytes([i + 1]) * 64 for i in range(n)]


class TestLayerMacState:
    def test_fold_accumulates(self):
        state = LayerMacState(0)
        state.fold(b"\x01" * MAC_BYTES)
        state.fold(b"\x02" * MAC_BYTES)
        assert state.value == b"\x03" * MAC_BYTES
        assert state.blocks_folded == 2

    def test_replace(self):
        state = LayerMacState(0)
        old = b"\x0f" * MAC_BYTES
        state.fold(old)
        new = b"\xf0" * MAC_BYTES
        state.replace(old, new)
        assert state.value == new

    def test_bad_length(self):
        with pytest.raises(ValueError):
            LayerMacState(0).fold(b"\x01" * 4)


class TestLayerVerification:
    def test_honest_layer_verifies(self):
        integ = MultiLevelIntegrity(KEY)
        blocks = _blocks(8)
        pairs = [(b, _ctx(i)) for i, b in enumerate(blocks)]
        for block, ctx in pairs:
            integ.record_block(0, block, ctx)
        assert integ.verify_layer(0, pairs)

    def test_tampered_block_fails(self):
        integ = MultiLevelIntegrity(KEY)
        blocks = _blocks(8)
        pairs = [(b, _ctx(i)) for i, b in enumerate(blocks)]
        for block, ctx in pairs:
            integ.record_block(0, block, ctx)
        tampered = list(pairs)
        tampered[3] = (b"\xff" * 64, tampered[3][1])
        assert not integ.verify_layer(0, tampered)

    def test_shuffled_blocks_fail_when_location_bound(self):
        """RePA defense at the hierarchy level."""
        integ = MultiLevelIntegrity(KEY, location_bound=True)
        blocks = _blocks(8)
        pairs = [(b, _ctx(i)) for i, b in enumerate(blocks)]
        for block, ctx in pairs:
            integ.record_block(0, block, ctx)
        # Swap two blocks but keep the position contexts.
        shuffled = list(pairs)
        shuffled[0] = (pairs[1][0], pairs[0][1])
        shuffled[1] = (pairs[0][0], pairs[1][1])
        assert not integ.verify_layer(0, shuffled)

    def test_shuffled_blocks_pass_without_binding(self):
        """The vulnerable mode: ciphertext-only MACs fold order-blind."""
        integ = MultiLevelIntegrity(KEY, location_bound=False)
        blocks = _blocks(8)
        pairs = [(b, _ctx(i)) for i, b in enumerate(blocks)]
        for block, ctx in pairs:
            integ.record_block(0, block, ctx)
        shuffled = list(reversed(pairs))
        assert integ.verify_layer(0, shuffled)

    def test_layers_independent(self):
        integ = MultiLevelIntegrity(KEY)
        integ.record_block(0, bytes(64), _ctx(0, layer=0))
        integ.record_block(1, bytes(64), _ctx(0, layer=1))
        assert integ.layer_mac(0) != bytes(MAC_BYTES)
        assert integ.layer_mac(0) != integ.layer_mac(1)


class TestModelMac:
    def test_honest_model_verifies(self):
        integ = MultiLevelIntegrity(KEY)
        blocks = _blocks(16)
        pairs = [(b, _ctx(i, layer=99)) for i, b in enumerate(blocks)]
        for block, ctx in pairs:
            integ.record_weight_block(block, ctx)
        assert integ.model_blocks == 16
        assert integ.verify_model(pairs)

    def test_tampered_weight_fails(self):
        integ = MultiLevelIntegrity(KEY)
        blocks = _blocks(16)
        pairs = [(b, _ctx(i, layer=99)) for i, b in enumerate(blocks)]
        for block, ctx in pairs:
            integ.record_weight_block(block, ctx)
        pairs[7] = (b"\x00" * 64, pairs[7][1])
        assert not integ.verify_model(pairs)

    @given(st.integers(2, 20))
    @settings(max_examples=20, deadline=None)
    def test_model_mac_order_insensitive_with_contexts(self, n):
        """Reading weights back in any order verifies, because contexts
        travel with the blocks (the fold itself is commutative)."""
        integ = MultiLevelIntegrity(KEY)
        pairs = [(bytes([i]) * 64, _ctx(i, layer=50)) for i in range(n)]
        for block, ctx in pairs:
            integ.record_weight_block(block, ctx)
        assert integ.verify_model(reversed(pairs))


class TestStorageAccounting:
    def test_onchip_bytes(self):
        integ = MultiLevelIntegrity(KEY)
        assert integ.onchip_mac_bytes(num_layers=58) == 58 * 8 + 8
        assert integ.onchip_mac_bytes(num_layers=58,
                                      store_layer_macs_onchip=False) == 8

    def test_tiny_vs_mac_table(self):
        """The hierarchy's on-chip cost is microscopic next to a per-64B
        MAC table for a 16 MB model."""
        integ = MultiLevelIntegrity(KEY)
        onchip = integ.onchip_mac_bytes(num_layers=100)
        mac_table = (16 << 20) // 64 * 8
        assert onchip < mac_table / 1000
