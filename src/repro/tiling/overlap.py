"""Intra-layer tile overlap analysis (paper Section III-C, Challenge 1).

Adjacent output-row tiles of a convolution share ``filt_h - stride`` input
rows (the halo). A protection scheme that verifies fixed-size blocks
re-verifies halo data once per tile that touches it; Securator's
layer-level MAC additionally *recomputes* MACs over those shared bytes.
SeDA picks an authentication block (optBlk) aligned to the tiling so each
byte is verified exactly once.

:func:`analyze_overlap` quantifies the redundancy for a layer + plan.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.layer import Layer
from repro.tiling.tile import TilingPlan


@dataclass(frozen=True)
class OverlapReport:
    """Redundant-verification accounting for one layer."""

    layer_name: str
    unique_ifmap_bytes: int
    fetched_ifmap_bytes: int
    overlap_bytes: int           # bytes fetched (and naively re-verified) > once
    overlap_fraction: float      # overlap / fetched
    redundant_mac_blocks: int    # extra block verifications at `block_bytes`
    block_bytes: int

    @property
    def has_overlap(self) -> bool:
        return self.overlap_bytes > 0


def analyze_overlap(layer: Layer, plan: TilingPlan, block_bytes: int = 64) -> OverlapReport:
    """Quantify halo-induced redundant verification for ``layer``.

    ``block_bytes`` is the verification granularity a naive scheme would
    use; redundant block count is the overlap expressed in such blocks
    (what Securator would re-hash).
    """
    if block_bytes <= 0:
        raise ValueError("block_bytes must be positive")
    if plan.layer_name != layer.name:
        raise ValueError(
            f"plan is for {plan.layer_name!r}, layer is {layer.name!r}"
        )
    passes = plan.ifmap_passes
    boundaries = max(0, plan.num_m_tiles - 1) * layer.batch
    overlap = plan.halo_bytes_per_boundary * boundaries * passes
    # Re-reading the whole ifmap per N-tile pass is also redundant
    # verification of already-checked data (ifmap_bytes is the
    # whole-batch footprint, matching the per-image passes repeating
    # for every image).
    if passes > 1:
        overlap += layer.ifmap_bytes * (passes - 1)
    fetched = plan.ifmap_traffic
    unique = layer.ifmap_bytes
    fraction = overlap / fetched if fetched else 0.0
    redundant_blocks = -(-overlap // block_bytes) if overlap else 0
    return OverlapReport(
        layer_name=layer.name,
        unique_ifmap_bytes=unique,
        fetched_ifmap_bytes=fetched,
        overlap_bytes=overlap,
        overlap_fraction=fraction,
        redundant_mac_blocks=redundant_blocks,
        block_bytes=block_bytes,
    )
