"""Tiling analysis: how layers are cut into SRAM-resident tiles.

This package answers the questions SeDA's software optimization depends
on (Section III-C):

- :mod:`repro.tiling.tile` — plan a layer's tiling given the SRAM budget
  (tile shape, pass counts, loop order, per-tensor DRAM traffic).
- :mod:`repro.tiling.overlap` — quantify intra-layer halo overlap between
  adjacent tiles (the redundant re-verification Securator pays for).
- :mod:`repro.tiling.patterns` — compare producer/consumer tiling patterns
  across layers (the false-negative hazard of layer-level MACs).
- :mod:`repro.tiling.optblk` — SecureLoop-style search for the optimal
  authentication block size per layer.
"""

from repro.tiling.tile import SramBudget, TilingPlan, plan_tiling
from repro.tiling.overlap import OverlapReport, analyze_overlap
from repro.tiling.patterns import TilingPattern, pattern_of, patterns_compatible
from repro.tiling.optblk import (
    OptBlockChoice,
    search_optblk,
    search_optblk_model,
)

__all__ = [
    "SramBudget",
    "TilingPlan",
    "plan_tiling",
    "OverlapReport",
    "analyze_overlap",
    "TilingPattern",
    "pattern_of",
    "patterns_compatible",
    "OptBlockChoice",
    "search_optblk",
    "search_optblk_model",
]
