"""Per-layer tiling plans under an SRAM budget.

The planner evaluates two schedule families and keeps the cheaper one:

**Banded schedule** (convolutions and small GEMMs): cut the output into
row bands (M) and filter groups (N); K stays whole so partial sums never
leave the array. The loop order (M-outer vs N-outer) is chosen to
minimize DRAM traffic — the inter-layer "tiling pattern" difference of
the paper's Fig. 3(b). Adjacent conv bands overlap by the halo rows,
which is the intra-layer redundancy SeDA's optBlk granularity targets.

**K-tiled output-stationary schedule** (GEMMs whose operands dwarf the
SRAM): keep an (Tm x Tn) partial-sum tile resident in the ofmap
partition and stream (Tm x Tk) / (Tk x Tn) operand chunks. This is what a
SecureLoop-style scheduler finds for fully connected layers with huge K,
where the banded schedule would re-read the ifmap hundreds of times.

Traffic accounting is exact for both families and is cross-checked by the
trace emitted in :mod:`repro.accel.simulator` (tests assert they agree).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import isqrt
from typing import Optional

from repro.models.layer import Layer, LayerKind, ELEMENT_BYTES
from repro.utils.bitops import ceil_div


@dataclass(frozen=True)
class SramBudget:
    """On-chip SRAM partition sizes in bytes (double-buffering included)."""

    ifmap_bytes: int
    weight_bytes: int
    ofmap_bytes: int

    def __post_init__(self) -> None:
        for name in ("ifmap_bytes", "weight_bytes", "ofmap_bytes"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    @property
    def total_bytes(self) -> int:
        return self.ifmap_bytes + self.weight_bytes + self.ofmap_bytes

    @classmethod
    def split(cls, total_bytes: int, ifmap_frac: float = 0.375,
              weight_frac: float = 0.375) -> "SramBudget":
        """Carve a total SRAM capacity into the three operand partitions."""
        if total_bytes <= 0:
            raise ValueError("total_bytes must be positive")
        if ifmap_frac <= 0 or weight_frac <= 0 or ifmap_frac + weight_frac >= 1:
            raise ValueError("fractions must be positive and sum below 1")
        ifmap = int(total_bytes * ifmap_frac)
        weight = int(total_bytes * weight_frac)
        return cls(ifmap, weight, total_bytes - ifmap - weight)


@dataclass(frozen=True)
class TilingPlan:
    """The planner's decision for one layer."""

    layer_name: str
    tile_out_rows: int      # output rows per M tile (GEMM rows for gemm kind)
    num_m_tiles: int        # M tiles per image
    tile_filters: int       # filters per N tile
    num_n_tiles: int
    tile_k: int             # inner-dimension chunk (== K for banded plans)
    num_k_tiles: int
    n_outer: bool           # banded plans: loop N outside M
    ifmap_passes: int       # per-image passes of the unique ifmap footprint
    weight_passes: int      # per-image weight passes (see weight_traffic for
                            # cross-image residency)
    ifmap_tile_bytes: int   # bytes fetched for one (non-boundary) ifmap tile
    weight_tile_bytes: int
    ofmap_tile_bytes: int
    ifmap_traffic: int      # total DRAM bytes over the whole layer (all images)
    weight_traffic: int
    ofmap_traffic: int
    halo_bytes_per_boundary: int
    batch: int = 1          # images the schedule repeats over

    @property
    def is_k_tiled(self) -> bool:
        return self.num_k_tiles > 1

    @property
    def num_tiles(self) -> int:
        return self.num_m_tiles * self.num_n_tiles

    @property
    def total_read_traffic(self) -> int:
        return self.ifmap_traffic + self.weight_traffic

    @property
    def total_traffic(self) -> int:
        return self.total_read_traffic + self.ofmap_traffic

    @property
    def halo_traffic(self) -> int:
        """Total re-read bytes caused by intra-layer tile overlap."""
        return (self.halo_bytes_per_boundary * max(0, self.num_m_tiles - 1)
                * self.ifmap_passes * self.batch)


def _input_rows_for(layer: Layer, out_rows: int) -> int:
    """SRAM rows one output band needs, padding rows included.

    Padding is synthesized on chip but still occupies the ifmap partition
    as zeros, so capacity math clamps at the *padded* extent; DRAM
    traffic math elsewhere only ever charges stored rows.
    """
    return min(layer.padded_h, out_rows * layer.stride_h + layer.filt_h - layer.stride_h)


def _banded_plan(layer: Layer, budget: SramBudget) -> Optional[TilingPlan]:
    """Row-band / filter-group schedule; None if it cannot fit."""
    ifmap_row_bytes = layer.ifmap_w * layer.channels * ELEMENT_BYTES
    out_w = layer.ofmap_w

    if _input_rows_for(layer, 1) * ifmap_row_bytes > budget.ifmap_bytes:
        return None

    # Largest output-row band whose input rows fit the ifmap partition
    # (binary search over out rows).
    low, high = 1, layer.ofmap_h
    while low < high:
        mid = (low + high + 1) // 2
        if _input_rows_for(layer, mid) * ifmap_row_bytes <= budget.ifmap_bytes:
            low = mid
        else:
            high = mid - 1
    tile_out_rows = low

    weight_per_filter = max(1, layer.weight_bytes // max(1, layer.gemm_n))
    tile_filters = min(layer.gemm_n,
                       max(1, budget.weight_bytes // weight_per_filter))

    # Ofmap tile must fit too; shrink filters first, then the band.
    def ofmap_tile(rows: int, filters: int) -> int:
        return rows * out_w * filters * ELEMENT_BYTES

    while tile_filters > 1 and \
            ofmap_tile(tile_out_rows, tile_filters) > budget.ofmap_bytes:
        tile_filters = max(1, budget.ofmap_bytes //
                           (tile_out_rows * out_w * ELEMENT_BYTES))
        if ofmap_tile(tile_out_rows, tile_filters) > budget.ofmap_bytes:
            tile_filters -= 1
    while tile_out_rows > 1 and \
            ofmap_tile(tile_out_rows, tile_filters) > budget.ofmap_bytes:
        tile_out_rows -= 1
    if ofmap_tile(tile_out_rows, tile_filters) > budget.ofmap_bytes:
        return None

    num_m_tiles = ceil_div(layer.ofmap_h, tile_out_rows)
    num_n_tiles = ceil_div(layer.gemm_n, tile_filters)

    halo_rows = layer.halo_rows() if layer.kind is not LayerKind.GEMM else 0
    halo_bytes = halo_rows * ifmap_row_bytes if num_m_tiles > 1 else 0
    one_pass_ifmap = (layer.ifmap_bytes_per_image
                      + halo_bytes * max(0, num_m_tiles - 1))

    # Loop-order choice (per image): M-outer streams weights per band;
    # N-outer re-reads the ifmap per filter group.
    if num_n_tiles == 1:
        n_outer = False
        ifmap_passes, weight_passes = 1, 1
    else:
        m_outer_cost = one_pass_ifmap + layer.weight_bytes * num_m_tiles
        n_outer_cost = (one_pass_ifmap * (num_n_tiles if num_m_tiles > 1 else 1)
                        + layer.weight_bytes)
        n_outer = n_outer_cost < m_outer_cost
        if n_outer:
            ifmap_passes = num_n_tiles if num_m_tiles > 1 else 1
            weight_passes = 1
        else:
            ifmap_passes = 1
            weight_passes = num_m_tiles

    # The per-image schedule repeats for every image of the batch.
    # Activations are per-image data, so their traffic scales with the
    # batch; weights stay resident across images only when the whole
    # weight tensor fits its partition at once (num_n_tiles == 1 —
    # streamed filter groups evict each other and must reload per image).
    # KV-state operands are per-sequence data: every image streams its
    # own slab, so they can never be resident across the batch.
    if num_n_tiles == 1 and not layer.kv:
        total_weight_passes = 1
    else:
        total_weight_passes = weight_passes * layer.batch

    return TilingPlan(
        layer_name=layer.name,
        tile_out_rows=tile_out_rows,
        num_m_tiles=num_m_tiles,
        tile_filters=tile_filters,
        num_n_tiles=num_n_tiles,
        tile_k=layer.gemm_k,
        num_k_tiles=1,
        n_outer=n_outer,
        ifmap_passes=ifmap_passes,
        weight_passes=weight_passes,
        ifmap_tile_bytes=_input_rows_for(layer, tile_out_rows) * ifmap_row_bytes,
        weight_tile_bytes=weight_per_filter * tile_filters,
        ofmap_tile_bytes=ofmap_tile(tile_out_rows, tile_filters),
        ifmap_traffic=one_pass_ifmap * ifmap_passes * layer.batch,
        weight_traffic=layer.weight_bytes * total_weight_passes,
        ofmap_traffic=layer.ofmap_bytes,
        halo_bytes_per_boundary=halo_bytes,
        batch=layer.batch,
    )


def _k_tiled_plan(layer: Layer, budget: SramBudget) -> Optional[TilingPlan]:
    """Output-stationary K-tiled schedule for GEMM layers."""
    if layer.kind is not LayerKind.GEMM:
        return None
    m, k, n = layer.gemm_m, layer.gemm_k, layer.gemm_n
    ofmap_cap = budget.ofmap_bytes // ELEMENT_BYTES

    best = None
    # Candidate Tm values: geometric sweep plus the extremes.
    candidates = {1, m, min(m, isqrt(ofmap_cap))}
    tm = 1
    while tm < m:
        candidates.add(min(m, tm))
        tm *= 4
    # Tall-skinny GEMMs (small M, huge N — a decode step against a
    # vocabulary projection) need no special candidate here: slicing K
    # moves no extra bytes (the cost key below is traffic), and the
    # whole-K schedule such layers actually want is the banded plan,
    # which wins the plan_tiling comparison on traffic for them.
    for tile_m in sorted(candidates):
        tile_n = min(n, max(1, ofmap_cap // tile_m))
        tile_k = min(k,
                     max(1, budget.ifmap_bytes // (tile_m * ELEMENT_BYTES)),
                     max(1, budget.weight_bytes // (tile_n * ELEMENT_BYTES)))
        num_m = ceil_div(m, tile_m)
        num_n = ceil_div(n, tile_n)
        num_k = ceil_div(k, tile_k)
        # ifmap_bytes is a whole-batch total; the weight stream repeats
        # per image (operands stream through SRAM tile by tile).
        ifmap_traffic = layer.ifmap_bytes * num_n
        weight_traffic = layer.weight_bytes * num_m * layer.batch
        cost = ifmap_traffic + weight_traffic
        key = (cost, num_m * num_n * num_k)
        if best is None or key < best[0]:
            best = (key, tile_m, tile_n, tile_k, num_m, num_n, num_k,
                    ifmap_traffic, weight_traffic)

    if best is None:
        return None
    (_, tile_m, tile_n, tile_k, num_m, num_n, num_k,
     ifmap_traffic, weight_traffic) = best
    return TilingPlan(
        layer_name=layer.name,
        tile_out_rows=tile_m,
        num_m_tiles=num_m,
        tile_filters=tile_n,
        num_n_tiles=num_n,
        tile_k=tile_k,
        num_k_tiles=num_k,
        n_outer=False,
        ifmap_passes=num_n,
        weight_passes=num_m,
        ifmap_tile_bytes=tile_m * tile_k * ELEMENT_BYTES,
        weight_tile_bytes=tile_k * tile_n * ELEMENT_BYTES,
        ofmap_tile_bytes=tile_m * tile_n * ELEMENT_BYTES,
        ifmap_traffic=ifmap_traffic,
        weight_traffic=weight_traffic,
        ofmap_traffic=layer.ofmap_bytes,
        halo_bytes_per_boundary=0,
        batch=layer.batch,
    )


def plan_tiling(layer: Layer, budget: SramBudget) -> TilingPlan:
    """Plan tiling for ``layer`` under ``budget``.

    Evaluates the banded schedule and (for GEMMs) the K-tiled schedule,
    returning whichever moves fewer DRAM bytes. Raises ``ValueError`` if
    neither fits — such a layer cannot run on the configured accelerator.
    """
    banded = _banded_plan(layer, budget)
    k_tiled = _k_tiled_plan(layer, budget)
    plans = [p for p in (banded, k_tiled) if p is not None]
    if not plans:
        raise ValueError(
            f"{layer.name}: no tiling fits SRAM budget "
            f"(ifmap={budget.ifmap_bytes}, weight={budget.weight_bytes}, "
            f"ofmap={budget.ofmap_bytes})"
        )
    return min(plans, key=lambda p: (p.total_traffic, p.num_tiles * p.num_k_tiles))
