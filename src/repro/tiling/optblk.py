"""SecureLoop-style search for the optimal authentication block (optBlk).

SeDA adopts SecureLoop's scheduling-search idea (paper Section III-C,
Solution): pick, per layer, the authentication-block size that

1. divides evenly into the tile access pattern, so no block straddles a
   tile boundary (a straddling block must be fetched and re-verified by
   both tiles);
2. respects the producer's and consumer's tiling patterns, so blocks
   written by layer ``i`` verify cleanly when read by layer ``i+1``;
3. is as large as possible, minimizing the MAC count that must later be
   folded into the layer MAC.

The search space is candidate block sizes (powers of two between the DRAM
burst and a cap); the cost model charges one MAC computation per block
fetched, counting straddle-induced re-verifications.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.models.layer import Layer, ELEMENT_BYTES
from repro.tiling.tile import TilingPlan
from repro.utils.bitops import ceil_div

DEFAULT_CANDIDATES = (64, 128, 256, 512, 1024, 2048, 4096)


@dataclass(frozen=True)
class OptBlockChoice:
    """Result of the optBlk search for one layer."""

    layer_name: str
    block_bytes: int
    blocks_per_layer: int        # optBlk MACs folded into the layer MAC
    mac_computations: int        # total verifications incl. straddle waste
    straddle_blocks: int         # blocks verified more than once
    candidates_evaluated: int

    @property
    def is_straddle_free(self) -> bool:
        return self.straddle_blocks == 0


def _tile_span_bytes(plan: TilingPlan, layer: Layer) -> int:
    """Contiguous bytes one ifmap tile occupies in the row-major tensor.

    Row-banded tiles cover whole rows, so the span equals the tile's
    input-row count times the row pitch. K-tiled GEMM plans stream
    (Tm x Tk) slivers, but authentication blocks must align to what the
    tile walk *revisits* — the full Tm x K band (tall-skinny tiles
    included) — so the span is the M-tile's whole row extent, not the
    K sliver.
    """
    row_bytes = layer.ifmap_w * layer.channels * ELEMENT_BYTES
    if plan.is_k_tiled:
        return plan.tile_out_rows * row_bytes
    rows = plan.ifmap_tile_bytes // max(1, row_bytes)
    return max(row_bytes, rows * row_bytes)


def _cost(block_bytes: int, tile_bytes: int, tensor_bytes: int,
          boundaries: int) -> tuple:
    """(mac_computations, straddles, blocks) for one candidate size.

    ``boundaries`` counts adjacent-tile boundaries over the whole layer
    (per-image boundaries times the batch — every image's band sequence
    re-crosses them).
    """
    blocks = ceil_div(tensor_bytes, block_bytes)
    if boundaries <= 0:
        return blocks, 0, blocks
    # A block straddles a tile boundary when the tile span is not a
    # multiple of the block size; each boundary then costs one extra
    # verification of the shared block.
    straddles = 0 if tile_bytes % block_bytes == 0 else boundaries
    return blocks + straddles, straddles, blocks


def search_optblk(layer: Layer, plan: TilingPlan,
                  candidates: Sequence[int] = DEFAULT_CANDIDATES) -> OptBlockChoice:
    """Pick the authentication block size minimizing MAC computations.

    Ties break toward the larger block (fewer MACs to fold and store).
    """
    if not candidates:
        raise ValueError("candidates must be non-empty")
    tile_bytes = _tile_span_bytes(plan, layer)
    # Whole-batch verified footprint: the ifmap plus, for attention
    # layers, the per-sequence KV stream (K^T/V operands are data that
    # must be authenticated exactly like the ifmap; they stream
    # sequentially, so they add blocks but no straddle boundaries).
    tensor_bytes = layer.ifmap_bytes + layer.kv_bytes
    boundaries = max(0, plan.num_m_tiles - 1) * layer.batch

    best = None
    for block_bytes in sorted(candidates):
        if block_bytes <= 0:
            raise ValueError("candidate block sizes must be positive")
        macs, straddles, blocks = _cost(block_bytes, tile_bytes,
                                        tensor_bytes, boundaries)
        key = (macs, -block_bytes)
        if best is None or key < best[0]:
            best = (key, block_bytes, macs, straddles, blocks)

    _, block_bytes, macs, straddles, blocks = best
    return OptBlockChoice(
        layer_name=layer.name,
        block_bytes=block_bytes,
        blocks_per_layer=blocks,
        mac_computations=macs,
        straddle_blocks=straddles,
        candidates_evaluated=len(candidates),
    )


def aligned_block_for_tiles(tile_bytes: int,
                            candidates: Sequence[int] = DEFAULT_CANDIDATES) -> int:
    """Largest candidate dividing ``tile_bytes`` (64 if none divides).

    Helper for tests and ablations: a block that divides the tile span
    exactly can never straddle.
    """
    best = min(candidates)
    for block_bytes in sorted(candidates):
        if tile_bytes % block_bytes == 0:
            best = block_bytes
    return best
