"""SecureLoop-style search for the optimal authentication block (optBlk).

SeDA adopts SecureLoop's scheduling-search idea (paper Section III-C,
Solution): pick, per layer, the authentication-block size that

1. divides evenly into the tile access pattern, so no block straddles a
   tile boundary (a straddling block must be fetched and re-verified by
   both tiles);
2. respects the producer's and consumer's tiling patterns, so blocks
   written by layer ``i`` verify cleanly when read by layer ``i+1``;
3. is as large as possible, minimizing the MAC count that must later be
   folded into the layer MAC.

The search space is candidate block sizes (powers of two between the DRAM
burst and a cap); the cost model charges one MAC computation per block
fetched, counting straddle-induced re-verifications.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Sequence, Tuple

import numpy as np

from repro.models.layer import Layer, ELEMENT_BYTES
from repro.tiling.tile import TilingPlan

DEFAULT_CANDIDATES = (64, 128, 256, 512, 1024, 2048, 4096)

#: One DRAM burst — the smallest addressable authentication granule.
BURST_BYTES = 64


@dataclass(frozen=True)
class OptBlockChoice:
    """Result of the optBlk search for one layer."""

    layer_name: str
    block_bytes: int
    blocks_per_layer: int        # optBlk MACs folded into the layer MAC
    mac_computations: int        # total verifications incl. straddle waste
    straddle_blocks: int         # blocks verified more than once
    candidates_evaluated: int

    @property
    def is_straddle_free(self) -> bool:
        return self.straddle_blocks == 0


@lru_cache(maxsize=4096)
def _tile_span_bytes(plan: TilingPlan, layer: Layer) -> int:
    """Contiguous bytes one ifmap tile occupies in the row-major tensor.

    Row-banded tiles cover whole rows, so the span equals the tile's
    input-row count times the row pitch. K-tiled GEMM plans stream
    (Tm x Tk) slivers, but authentication blocks must align to what the
    tile walk *revisits* — the full Tm x K band (tall-skinny tiles
    included) — so the span is the M-tile's whole row extent, not the
    K sliver.

    Memoized per (plan, layer): a sweep re-derives the same plans for
    every scheme and probe batch of a cell, and both are frozen
    dataclasses, so the span is computed once per distinct pair.
    """
    row_bytes = layer.ifmap_w * layer.channels * ELEMENT_BYTES
    if plan.is_k_tiled:
        return plan.tile_out_rows * row_bytes
    rows = plan.ifmap_tile_bytes // max(1, row_bytes)
    return max(row_bytes, rows * row_bytes)


def search_optblk_model(
        layers_plans: Sequence[Tuple[Layer, TilingPlan]],
        candidates: Sequence[int] = DEFAULT_CANDIDATES,
) -> List[OptBlockChoice]:
    """Search every layer of a topology in one vectorized pass.

    Evaluates the full ``candidates x layers`` cost matrix with numpy
    (block counts, straddle penalties, MAC totals) and picks each
    layer's argmin — identical choices to per-layer
    :func:`search_optblk`, including the tie-break toward the larger
    block, without the per-candidate Python loop.
    """
    if not candidates:
        raise ValueError("candidates must be non-empty")
    cand = np.sort(np.asarray(candidates, dtype=np.int64))
    if int(cand[0]) <= 0:
        raise ValueError("candidate block sizes must be positive")
    if not layers_plans:
        return []
    tile = np.array([_tile_span_bytes(plan, layer)
                     for layer, plan in layers_plans], np.int64)
    # Whole-batch verified footprint: the ifmap plus, for attention
    # layers, the per-sequence KV stream (K^T/V operands are data that
    # must be authenticated exactly like the ifmap; they stream
    # sequentially, so they add blocks but no straddle boundaries).
    tensor = np.array([layer.ifmap_bytes + layer.kv_bytes
                       for layer, _ in layers_plans], np.int64)
    # Adjacent-tile boundaries over the whole layer (per-image
    # boundaries times the batch — every image's band sequence
    # re-crosses them).
    boundaries = np.array([max(0, plan.num_m_tiles - 1) * layer.batch
                           for layer, plan in layers_plans], np.int64)

    blocks = -(-tensor[:, None] // cand[None, :])        # ceil-div
    # A block straddles a tile boundary when the tile span is not a
    # multiple of the block size; each boundary then costs one extra
    # verification of the shared block.
    straddles = np.where(
        (boundaries[:, None] > 0) & (tile[:, None] % cand[None, :] != 0),
        boundaries[:, None], 0)
    macs = blocks + straddles
    # Per-layer argmin with ties toward the larger block: argmin over
    # the candidate axis reversed returns the *last* (largest) minimum.
    pick = cand.size - 1 - np.argmin(macs[:, ::-1], axis=1)
    rows = np.arange(len(layers_plans))
    return [
        OptBlockChoice(
            layer_name=layer.name,
            block_bytes=int(cand[col]),
            blocks_per_layer=int(blocks[row, col]),
            mac_computations=int(macs[row, col]),
            straddle_blocks=int(straddles[row, col]),
            candidates_evaluated=len(candidates),
        )
        for (layer, _), row, col in zip(layers_plans, rows, pick)
    ]


def search_optblk(layer: Layer, plan: TilingPlan,
                  candidates: Sequence[int] = DEFAULT_CANDIDATES) -> OptBlockChoice:
    """Pick the authentication block size minimizing MAC computations.

    Ties break toward the larger block (fewer MACs to fold and store).
    Single-layer convenience wrapper over :func:`search_optblk_model`.
    """
    return search_optblk_model([(layer, plan)], candidates)[0]


def aligned_block_for_tiles(tile_bytes: int,
                            candidates: Sequence[int] = DEFAULT_CANDIDATES) -> int:
    """Largest straddle-free block for a tile span.

    Contract: returns the largest candidate that divides ``tile_bytes``
    exactly (such a block can never straddle a tile boundary).  When no
    candidate divides the span — non-power-of-two spans under a sparse
    candidate set — the result is the span's **burst-aligned floor**:
    the largest power of two dividing ``tile_bytes``, clamped to
    ``[BURST_BYTES, max(candidates)]``.  That is the finest granule
    DRAM can serve that still aligns with the span whenever its
    two-adic alignment allows; spans with alignment below one burst
    degenerate to ``BURST_BYTES`` itself, where straddling is
    unavoidable.  (The historical behaviour returned
    ``min(candidates)`` even when a smaller aligned power of two
    existed below the candidate set.)
    """
    if not candidates:
        raise ValueError("candidates must be non-empty")
    if tile_bytes <= 0:
        raise ValueError("tile_bytes must be positive")
    best = 0
    for block_bytes in candidates:
        if block_bytes <= 0:
            raise ValueError("candidate block sizes must be positive")
        if tile_bytes % block_bytes == 0 and block_bytes > best:
            best = block_bytes
    if best:
        return best
    lowbit = tile_bytes & -tile_bytes
    return max(BURST_BYTES, min(lowbit, max(candidates)))
