"""Inter-layer tiling pattern comparison (paper Fig. 3(b)).

The ofmap tiles a producer layer writes and the ifmap tiles its consumer
reads generally differ in size and direction: layer ``i`` may emit wide,
shallow bands while layer ``i+1`` reads tall, narrow ones. A layer-level
MAC computed over producer-order blocks then fails to match the
consumer-order verification stream — the "false negative" hazard the
paper attributes to Securator.

:func:`pattern_of` extracts the pattern a plan induces on a tensor and
:func:`patterns_compatible` decides whether a producer/consumer pair can
share authentication blocks without re-blocking.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.tiling.tile import TilingPlan


class TileWalk(enum.Enum):
    """Direction a tensor is walked tile-by-tile."""

    ROW_BANDS = "row_bands"          # full-width horizontal bands
    FILTER_GROUPS = "filter_groups"  # channel/filter-major groups
    SINGLE = "single"                # whole tensor in one tile


@dataclass(frozen=True)
class TilingPattern:
    """The tiling pattern applied to one tensor by one layer's schedule."""

    walk: TileWalk
    band_rows: int       # output rows per band (0 when not banded)
    group_channels: int  # channels per group (0 when not grouped)
    tiles: int

    @property
    def is_trivial(self) -> bool:
        return self.walk is TileWalk.SINGLE


def pattern_of(plan: TilingPlan, tensor: str) -> TilingPattern:
    """Pattern a plan applies to ``tensor`` ('ifmap', 'ofmap' or 'weight')."""
    if tensor not in ("ifmap", "ofmap", "weight"):
        raise ValueError(f"unknown tensor {tensor!r}")
    if tensor == "weight":
        if plan.num_n_tiles == 1:
            return TilingPattern(TileWalk.SINGLE, 0, 0, 1)
        return TilingPattern(TileWalk.FILTER_GROUPS, 0, plan.tile_filters,
                             plan.num_n_tiles)
    if tensor == "ifmap":
        if plan.num_m_tiles == 1:
            return TilingPattern(TileWalk.SINGLE, 0, 0, 1)
        return TilingPattern(TileWalk.ROW_BANDS, plan.tile_out_rows, 0,
                             plan.num_m_tiles)
    # ofmap: banded over rows and grouped over filters.
    if plan.num_m_tiles == 1 and plan.num_n_tiles == 1:
        return TilingPattern(TileWalk.SINGLE, 0, 0, 1)
    if plan.num_n_tiles == 1:
        return TilingPattern(TileWalk.ROW_BANDS, plan.tile_out_rows, 0,
                             plan.num_m_tiles)
    return TilingPattern(TileWalk.FILTER_GROUPS, plan.tile_out_rows,
                         plan.tile_filters, plan.num_tiles)


def patterns_compatible(producer: TilingPattern, consumer: TilingPattern) -> bool:
    """Whether producer-order MAC blocks can be verified in consumer order.

    Compatible cases: either side trivial (whole tensor at once), or both
    walk row bands where the producer band is a multiple of the consumer
    band (consumer tiles nest inside producer blocks).
    """
    if producer.is_trivial or consumer.is_trivial:
        return True
    if producer.walk is not consumer.walk:
        return False
    if producer.walk is TileWalk.ROW_BANDS:
        if consumer.band_rows == 0:
            return False
        return producer.band_rows % consumer.band_rows == 0
    if producer.walk is TileWalk.FILTER_GROUPS:
        if consumer.group_channels == 0:
            return False
        return producer.group_channels % consumer.group_channels == 0
    return False


def producer_consumer_mismatches(layers, plans) -> int:
    """Count adjacent layer pairs whose tiling patterns are incompatible.

    ``layers`` and ``plans`` are parallel sequences over one topology; the
    ofmap pattern of layer ``i`` is compared with the ifmap pattern of
    layer ``i+1``.
    """
    if len(layers) != len(plans):
        raise ValueError("layers and plans must be parallel sequences")
    mismatches = 0
    for i in range(len(layers) - 1):
        out_pattern = pattern_of(plans[i], "ofmap")
        in_pattern = pattern_of(plans[i + 1], "ifmap")
        if not patterns_compatible(out_pattern, in_pattern):
            mismatches += 1
    return mismatches
