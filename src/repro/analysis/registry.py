"""Rule registry: how lint rules declare themselves.

A rule subclasses :class:`FileRule` (checked per selected file) or
:class:`ProjectRule` (checked once per run against the whole tree) and
registers with the :func:`register` decorator.  Every rule carries a
kebab-case ``name`` (what pragmas and ``--rule`` refer to), a one-line
``description`` (what ``repro check --list-rules`` prints) and a
``seed_violation`` spec — the known-bad edit the CI smoke step injects
into a scratch tree to prove the rule still fires (a rule whose seed no
longer trips it has silently gone no-op).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Type

from repro.analysis.context import FileContext, Project
from repro.analysis.findings import Finding


@dataclass(frozen=True)
class SeedViolation:
    """One known-bad edit for the seed-violation smoke.

    ``append`` is source text appended to ``path`` in a scratch copy of
    the tree; ``replace``/``replacement`` instead rewrite one exact
    occurrence.  After the edit, the owning rule must report at least
    one finding in ``path``.
    """

    path: str
    append: str = ""
    replace: str = ""
    replacement: str = ""


class Rule:
    """Base interface; use :class:`FileRule` or :class:`ProjectRule`."""

    name: str = ""
    description: str = ""
    seed_violation: Optional[SeedViolation] = None

    def run(self, project: Project) -> List[Finding]:
        raise NotImplementedError


class FileRule(Rule):
    """A rule checked independently against each selected file."""

    def select(self, rel_path: str) -> bool:
        raise NotImplementedError

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        raise NotImplementedError

    def run(self, project: Project) -> List[Finding]:
        findings: List[Finding] = []
        for rel_path in project.python_files():
            if not self.select(rel_path):
                continue
            ctx = project.context(rel_path)
            if ctx.tree is None:     # syntax errors are reported once,
                continue             # by the engine, not per rule
            findings.extend(self.check(ctx))
        return findings


class ProjectRule(Rule):
    """A rule checked once against the whole tree (cross-file facts)."""

    def check_project(self, project: Project) -> Iterable[Finding]:
        raise NotImplementedError

    def run(self, project: Project) -> List[Finding]:
        return list(self.check_project(project))


#: name -> rule instance, in registration order.
RULES: Dict[str, Rule] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and register one rule."""
    rule = rule_cls()
    if not rule.name:
        raise ValueError(f"{rule_cls.__name__} has no name")
    if rule.name in RULES:
        raise ValueError(f"duplicate rule name {rule.name!r}")
    RULES[rule.name] = rule
    return rule_cls


def all_rules() -> List[Rule]:
    _load_builtin_rules()
    return list(RULES.values())


def get_rules(names: Optional[Sequence[str]] = None) -> List[Rule]:
    """Rules selected by ``names`` (all when ``None``); unknown names
    raise ``KeyError`` listing what exists."""
    _load_builtin_rules()
    if names is None:
        return list(RULES.values())
    selected = []
    for name in names:
        if name not in RULES:
            raise KeyError(
                f"unknown rule {name!r}; known: {sorted(RULES)}")
        selected.append(RULES[name])
    return selected


def _load_builtin_rules() -> None:
    # Importing the package registers every shipped rule exactly once.
    import repro.analysis.rules  # noqa: F401
