"""Direct-effect extraction and transitive (fixpoint) propagation.

Direct effects come from syntactic evidence alone: calls into the
well-known effectful corners of the standard library (``os``,
``tempfile``, ``shutil``, ``subprocess``, ``fcntl``, builtin ``open``),
duck-typed ``Path``/file method names, ``os.environ`` access and
``global`` declarations.  Calls the resolver can identify as
repro-internal become call-graph edges instead; the fixpoint then
propagates callee effects to callers until nothing changes, so a
function's ``transitive`` set answers "may this call chain touch the
filesystem / spawn a process / take a lock?" without any rule walking
the graph itself.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple
from weakref import WeakKeyDictionary

from repro.analysis.context import Project
from repro.analysis.effects.callgraph import (
    CallGraph,
    FunctionNode,
    ModuleInfo,
    reachable,
)
from repro.analysis.effects.model import (
    ENV_READ,
    FS_READ,
    FS_RENAME,
    FS_UNLINK,
    FS_WRITE,
    FunctionEffects,
    GLOBAL_WRITE,
    LOCK_ACQUIRE,
    LOCK_RELEASE,
    PROCESS_SPAWN,
)

#: Fully-qualified external callables with a known effect.
_EXTERNAL_EFFECTS: Dict[str, str] = {
    "os.replace": FS_RENAME, "os.rename": FS_RENAME,
    "os.renames": FS_RENAME,
    "os.link": FS_WRITE, "os.symlink": FS_WRITE,
    "os.unlink": FS_UNLINK, "os.remove": FS_UNLINK,
    "os.rmdir": FS_UNLINK, "os.removedirs": FS_UNLINK,
    "os.mkdir": FS_WRITE, "os.makedirs": FS_WRITE,
    "os.utime": FS_WRITE, "os.write": FS_WRITE,
    "os.truncate": FS_WRITE, "os.chmod": FS_WRITE,
    "os.listdir": FS_READ, "os.scandir": FS_READ,
    "os.stat": FS_READ, "os.lstat": FS_READ, "os.read": FS_READ,
    "os.path.exists": FS_READ, "os.path.isfile": FS_READ,
    "os.path.isdir": FS_READ, "os.path.getmtime": FS_READ,
    "os.path.getatime": FS_READ, "os.path.getsize": FS_READ,
    "os.getenv": ENV_READ,
    "os.fork": PROCESS_SPAWN, "os.system": PROCESS_SPAWN,
    "os.popen": PROCESS_SPAWN, "os.kill": PROCESS_SPAWN,
    "os.execv": PROCESS_SPAWN, "os.execvp": PROCESS_SPAWN,
    "os.spawnv": PROCESS_SPAWN,
    "tempfile.mkstemp": FS_WRITE, "tempfile.mkdtemp": FS_WRITE,
    "tempfile.NamedTemporaryFile": FS_WRITE,
    "tempfile.TemporaryFile": FS_WRITE,
    "tempfile.TemporaryDirectory": FS_WRITE,
    "shutil.rmtree": FS_UNLINK, "shutil.move": FS_RENAME,
    "shutil.copy": FS_WRITE, "shutil.copy2": FS_WRITE,
    "shutil.copyfile": FS_WRITE, "shutil.copytree": FS_WRITE,
    "concurrent.futures.ProcessPoolExecutor": PROCESS_SPAWN,
}

#: Any call into these modules spawns/controls processes.
_SPAWN_MODULES = {"subprocess", "multiprocessing"}

#: Duck-typed method names with an unambiguous filesystem meaning
#: (``Path`` and file objects).  Deliberately excludes names with
#: common non-filesystem homonyms (``replace`` and ``rename`` are
#: ``str`` methods; the ``os.*`` forms above cover the real ones).
_METHOD_EFFECTS: Dict[str, str] = {
    "read_text": FS_READ, "read_bytes": FS_READ,
    "write_text": FS_WRITE, "write_bytes": FS_WRITE,
    "touch": FS_WRITE, "mkdir": FS_WRITE,
    "hardlink_to": FS_WRITE, "symlink_to": FS_WRITE,
    "unlink": FS_UNLINK, "rmdir": FS_UNLINK,
    "glob": FS_READ, "rglob": FS_READ, "iterdir": FS_READ,
    "stat": FS_READ, "lstat": FS_READ, "exists": FS_READ,
    "is_file": FS_READ, "is_dir": FS_READ, "is_symlink": FS_READ,
}

#: ``os.open`` flag names implying a mutating open.
_WRITE_FLAGS = {"O_WRONLY", "O_RDWR", "O_CREAT", "O_APPEND",
                "O_TRUNC", "O_EXCL"}


def dotted_origin(info: ModuleInfo, node: ast.expr) -> Optional[str]:
    """External dotted path of an attribute chain (``os.path.exists``),
    or ``None`` when the root is not an external import binding."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    origin = info.external_origin(current.id)
    if origin is None:
        return None
    parts.reverse()
    return ".".join([origin, *parts]) if parts else origin


def _call_mode_argument(node: ast.Call, index: int) -> Optional[ast.expr]:
    if len(node.args) > index:
        return node.args[index]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            return keyword.value
    return None


def _open_effect(node: ast.Call, mode_index: int = 1) -> str:
    """``open``-family classification from the mode argument."""
    mode = _call_mode_argument(node, mode_index)
    if mode is None:
        return FS_READ
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return FS_WRITE if any(c in "wax+" for c in mode.value) \
            else FS_READ
    return FS_WRITE     # dynamic mode: assume the worst


def _os_open_effect(node: ast.Call) -> str:
    for arg in node.args[1:] + [kw.value for kw in node.keywords]:
        for sub in ast.walk(arg):
            if isinstance(sub, ast.Attribute) and sub.attr in _WRITE_FLAGS:
                return FS_WRITE
            if isinstance(sub, ast.Name) and sub.id in _WRITE_FLAGS:
                return FS_WRITE
    return FS_READ


def _flock_effect(node: ast.Call) -> Optional[str]:
    for arg in node.args + [kw.value for kw in node.keywords]:
        for sub in ast.walk(arg):
            name = sub.attr if isinstance(sub, ast.Attribute) \
                else sub.id if isinstance(sub, ast.Name) else ""
            if name in ("LOCK_EX", "LOCK_SH"):
                return LOCK_ACQUIRE
            if name == "LOCK_UN":
                return LOCK_RELEASE
    return LOCK_ACQUIRE     # flock with unrecognizable flags: assume acquire


def classify_call(info: ModuleInfo, node: ast.Call) -> List[str]:
    """Direct effects of one call expression (empty for pure/unknown).

    Shared with the lock-discipline rule, which needs per-site
    filesystem effect kinds rather than per-function sets.
    """
    func = node.func
    origin: Optional[str] = None
    if isinstance(func, ast.Name):
        if func.id == "open":
            return [_open_effect(node)]
        origin = info.external_origin(func.id)
    elif isinstance(func, ast.Attribute):
        origin = dotted_origin(info, func)
        if origin is None:
            if func.attr == "open":
                return [_open_effect(node)]
            effect = _METHOD_EFFECTS.get(func.attr)
            return [effect] if effect else []
    if origin is None:
        return []
    if origin == "os.open":
        return [_os_open_effect(node)]
    if origin in ("os.fdopen", "io.open"):
        return [_open_effect(node)]
    if origin in ("fcntl.flock", "fcntl.lockf"):
        effect = _flock_effect(node)
        return [effect] if effect else []
    known = _EXTERNAL_EFFECTS.get(origin)
    if known is not None:
        return [known]
    if origin.split(".")[0] in _SPAWN_MODULES:
        return [PROCESS_SPAWN]
    return []


def _extract(info: ModuleInfo, graph: CallGraph, qualname: str,
             class_name: Optional[str],
             body: Iterable[ast.stmt], lineno: int,
             rel_path: str) -> FunctionEffects:
    sites: Dict[str, List[int]] = {}
    calls: List[str] = []
    seen_calls: Set[str] = set()

    def note(effect: str, line: int) -> None:
        sites.setdefault(effect, []).append(line)

    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                for effect in classify_call(info, node):
                    note(effect, node.lineno)
                callee = graph.resolve_call(info.name, class_name, node)
                if callee is not None and callee not in seen_calls:
                    seen_calls.add(callee)
                    calls.append(callee)
            elif isinstance(node, ast.Attribute):
                if node.attr == "environ" \
                        and isinstance(node.value, ast.Name) \
                        and info.external_origin(node.value.id) == "os":
                    note(ENV_READ, node.lineno)
            elif isinstance(node, ast.Global):
                note(GLOBAL_WRITE, node.lineno)
    return FunctionEffects(
        qualname=qualname, rel_path=rel_path, lineno=lineno,
        direct=frozenset(sites), calls=tuple(calls), sites=sites)


@dataclass
class EffectAnalysis:
    """The whole-program result: call graph plus per-function effects."""

    graph: CallGraph
    functions: Dict[str, FunctionEffects]

    def module_functions(self, module: str) -> List[FunctionEffects]:
        return [fe for fe in self.functions.values()
                if fe.module == module]

    def module_summary(self, module: str,
                       ) -> Tuple[FrozenSet[str], FrozenSet[str]]:
        """``(direct, transitive)`` effect union over a module."""
        direct: Set[str] = set()
        transitive: Set[str] = set()
        for fe in self.module_functions(module):
            direct |= fe.direct
            transitive |= fe.transitive
        return frozenset(direct), frozenset(transitive)

    def reachable_from(self, roots: Iterable[str]) -> Set[str]:
        """Qualnames reachable from ``roots`` through resolved calls
        (roots included when they exist)."""
        adjacency = {q: fe.calls for q, fe in self.functions.items()}
        return reachable(adjacency, list(roots))


def analyze_project(project: Project) -> EffectAnalysis:
    """Run the whole-program effect inference over ``src/repro``."""
    graph = CallGraph.build(project)
    functions: Dict[str, FunctionEffects] = {}
    for info in graph.modules.values():
        for local_name, node in info.functions.items():
            class_name = local_name.split(".")[0] \
                if "." in local_name else None
            functions[f"{info.name}:{local_name}"] = _extract(
                info, graph, f"{info.name}:{local_name}", class_name,
                _function_body(node), node.lineno, info.rel_path)
        if info.toplevel:
            functions[f"{info.name}:<module>"] = _extract(
                info, graph, f"{info.name}:<module>", None,
                info.toplevel, 1, info.rel_path)

    # Fixpoint: transitive = direct ∪ callees' transitive.
    transitive: Dict[str, Set[str]] = {
        q: set(fe.direct) for q, fe in functions.items()}
    changed = True
    while changed:
        changed = False
        for qualname, fe in functions.items():
            current = transitive[qualname]
            before = len(current)
            for callee in fe.calls:
                callee_effects = transitive.get(callee)
                if callee_effects:
                    current |= callee_effects
            if len(current) != before:
                changed = True
    for qualname, fe in functions.items():
        fe.transitive = frozenset(transitive[qualname])
    return EffectAnalysis(graph=graph, functions=functions)


def _function_body(node: FunctionNode) -> List[ast.stmt]:
    return list(node.body)


_CACHE: "WeakKeyDictionary[Project, EffectAnalysis]" = WeakKeyDictionary()


def get_analysis(project: Project) -> EffectAnalysis:
    """Per-project memo: the three effect rules (and ``repro check
    --effects``) share one inference pass per run."""
    analysis = _CACHE.get(project)
    if analysis is None:
        analysis = _CACHE[project] = analyze_project(project)
    return analysis
