"""Module indexing and best-effort call resolution over ``src/repro``.

The graph is built purely from ASTs (no imports are executed), so it
works on any checkout — including the deliberately broken scratch trees
the seed-violation smoke mutates.  Resolution is *best-effort and
under-approximate*: an edge is only added when the callee can be
identified statically —

- bare names defined in the same module or bound by ``import`` /
  ``from ... import`` chains (re-exports are followed);
- ``self.method()`` / ``cls.method()`` within a class, walking base
  classes when those resolve;
- ``module.function()`` through module-object bindings;
- class constructions, resolved to ``Class.__init__`` when defined.

Calls through arbitrary objects (``store.put(...)`` where ``store`` is
a parameter) stay unresolved; effects that matter for the shipped rules
come either from ``self``/module-level calls (which do resolve) or from
*external* calls (``os``, ``tempfile``, ...), which the inference pass
turns into direct effects rather than edges.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple, Union

from repro.analysis.context import Project
from repro.analysis.effects.model import module_name_for

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@dataclass
class ModuleInfo:
    """One parsed module as the effect analysis sees it."""

    name: str
    rel_path: str
    #: ``"f"`` / ``"Class.method"`` -> definition node.
    functions: Dict[str, FunctionNode] = field(default_factory=dict)
    classes: Dict[str, ast.ClassDef] = field(default_factory=dict)
    #: binding name -> (module, symbol-or-None); collected from every
    #: import statement in the file, including function-local ones.
    imports: Dict[str, Tuple[str, Optional[str]]] = field(
        default_factory=dict)
    #: Module-level statements (defs excluded) for the ``<module>``
    #: pseudo-function.
    toplevel: List[ast.stmt] = field(default_factory=list)

    def external_origin(self, name: str) -> Optional[str]:
        """Dotted external origin of a binding (``"os"``,
        ``"os.replace"``), or ``None`` for unbound / repro-internal."""
        binding = self.imports.get(name)
        if binding is None:
            return None
        module, symbol = binding
        if module == "repro" or module.startswith("repro."):
            return None
        return module if symbol is None else f"{module}.{symbol}"


def _package_parts(name: str, rel_path: str) -> List[str]:
    parts = name.split(".")
    if rel_path.endswith("/__init__.py"):
        return parts
    return parts[:-1]


def _collect_imports(info: ModuleInfo, tree: ast.Module) -> None:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    info.imports[alias.asname] = (alias.name, None)
                else:
                    first = alias.name.split(".")[0]
                    info.imports[first] = (first, None)
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = _package_parts(info.name, info.rel_path)
                if node.level - 1:
                    base = base[:-(node.level - 1)]
                target = ".".join(base + (node.module.split(".")
                                          if node.module else []))
            else:
                target = node.module or ""
            if not target:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                info.imports[alias.asname or alias.name] = \
                    (target, alias.name)


def _collect_aliases(info: ModuleInfo, stmts: List[ast.stmt]) -> None:
    """Propagate import bindings through simple top-level aliases
    (``import fcntl as _mod`` … ``fcntl = _mod``, including inside
    ``try``/``if`` guards — the optional-dependency idiom)."""
    for node in stmts:
        if isinstance(node, ast.If):
            _collect_aliases(info, node.body)
            _collect_aliases(info, node.orelse)
        elif isinstance(node, ast.Try):
            _collect_aliases(info, node.body)
            for handler in node.handlers:
                _collect_aliases(info, handler.body)
            _collect_aliases(info, node.orelse)
            _collect_aliases(info, node.finalbody)
        elif isinstance(node, ast.Assign) \
                and isinstance(node.value, ast.Name):
            binding = info.imports.get(node.value.id)
            if binding is not None:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        info.imports[target.id] = binding
        elif isinstance(node, ast.AnnAssign) \
                and isinstance(node.value, ast.Name) \
                and isinstance(node.target, ast.Name):
            binding = info.imports.get(node.value.id)
            if binding is not None:
                info.imports[node.target.id] = binding


def _collect_definitions(info: ModuleInfo, tree: ast.Module) -> None:
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.functions[node.name] = node
        elif isinstance(node, ast.ClassDef):
            info.classes[node.name] = node
            for stmt in node.body:
                if isinstance(stmt, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    info.functions[f"{node.name}.{stmt.name}"] = stmt
        else:
            info.toplevel.append(node)


class CallGraph:
    """Indexed modules plus symbol/method/call resolution."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}

    # -- construction --

    @classmethod
    def build(cls, project: Project) -> "CallGraph":
        graph = cls()
        for rel_path in project.python_files():
            if not rel_path.startswith("src/repro/"):
                continue
            tree = project.context(rel_path).tree
            if tree is None:        # parse errors are the engine's job
                continue
            info = ModuleInfo(name=module_name_for(rel_path),
                              rel_path=rel_path)
            _collect_imports(info, tree)
            _collect_aliases(info, tree.body)
            _collect_definitions(info, tree)
            graph.modules[info.name] = info
        return graph

    # -- resolution --

    def resolve_symbol(self, module: str, name: str,
                       _seen: Optional[FrozenSet[Tuple[str, str]]] = None,
                       ) -> Optional[Tuple[str, str, str]]:
        """``(defining_module, local_name, kind)`` for ``name`` as seen
        from ``module``; ``kind`` is ``"function"``, ``"class"`` or
        ``"module"`` (``local_name`` empty).  Follows ``from``-import
        re-export chains with cycle protection."""
        seen = _seen or frozenset()
        if (module, name) in seen:
            return None
        info = self.modules.get(module)
        if info is None:
            return None
        if name in info.functions:
            return (module, name, "function")
        if name in info.classes:
            return (module, name, "class")
        binding = info.imports.get(name)
        if binding is None:
            return None
        target_module, symbol = binding
        if symbol is None:
            return (target_module, "", "module") \
                if target_module in self.modules else None
        submodule = f"{target_module}.{symbol}"
        if submodule in self.modules:
            return (submodule, "", "module")
        return self.resolve_symbol(target_module, symbol,
                                   seen | {(module, name)})

    def resolve_method(self, module: str, class_name: str, attr: str,
                       _seen: Optional[FrozenSet[Tuple[str, str]]] = None,
                       ) -> Optional[str]:
        """Qualname of ``class_name.attr`` in ``module``, walking base
        classes (when they resolve) like a static MRO."""
        seen = _seen or frozenset()
        if (module, class_name) in seen:
            return None
        info = self.modules.get(module)
        cls = info.classes.get(class_name) if info is not None else None
        if info is None or cls is None:
            return None
        local = f"{class_name}.{attr}"
        if local in info.functions:
            return f"{module}:{local}"
        for base in cls.bases:
            located = self._locate_class(module, base)
            if located is None:
                continue
            resolved = self.resolve_method(
                located[0], located[1], attr,
                seen | {(module, class_name)})
            if resolved is not None:
                return resolved
        return None

    def _locate_class(self, module: str,
                      base: ast.expr) -> Optional[Tuple[str, str]]:
        if isinstance(base, ast.Name):
            sym = self.resolve_symbol(module, base.id)
        elif isinstance(base, ast.Attribute) \
                and isinstance(base.value, ast.Name):
            holder = self.resolve_symbol(module, base.value.id)
            if holder is None or holder[2] != "module":
                return None
            sym = self.resolve_symbol(holder[0], base.attr)
        else:
            return None
        if sym is not None and sym[2] == "class":
            return (sym[0], sym[1])
        return None

    def resolve_call(self, module: str, class_name: Optional[str],
                     node: ast.Call) -> Optional[str]:
        """Qualname of the repro-internal callee, or ``None``."""
        func = node.func
        if isinstance(func, ast.Name):
            sym = self.resolve_symbol(module, func.id)
            if sym is None or sym[2] == "module":
                return None
            if sym[2] == "function":
                return f"{sym[0]}:{sym[1]}"
            return self.resolve_method(sym[0], sym[1], "__init__")
        if isinstance(func, ast.Attribute) \
                and isinstance(func.value, ast.Name):
            holder_name = func.value.id
            if holder_name in ("self", "cls") and class_name is not None:
                return self.resolve_method(module, class_name, func.attr)
            sym = self.resolve_symbol(module, holder_name)
            if sym is None:
                return None
            if sym[2] == "module":
                target = self.resolve_symbol(sym[0], func.attr)
                if target is None or target[2] == "module":
                    return None
                if target[2] == "function":
                    return f"{target[0]}:{target[1]}"
                return self.resolve_method(target[0], target[1],
                                           "__init__")
            if sym[2] == "class":
                return self.resolve_method(sym[0], sym[1], func.attr)
        return None

    # -- reachability --

    def owner_functions(self, module: str) -> List[str]:
        info = self.modules.get(module)
        if info is None:
            return []
        return [f"{module}:{name}" for name in info.functions]


def reachable(calls: Dict[str, Tuple[str, ...]],
              roots: List[str]) -> Set[str]:
    """Transitive closure of ``roots`` over a ``qualname -> callees``
    adjacency map (roots included)."""
    seen: Set[str] = set()
    stack = [root for root in roots if root in calls]
    seen.update(stack)
    while stack:
        current = stack.pop()
        for callee in calls.get(current, ()):
            if callee not in seen and callee in calls:
                seen.add(callee)
                stack.append(callee)
    return seen
