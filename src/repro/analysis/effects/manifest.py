"""Build, load and regenerate the pinned effects manifest.

``effects_manifest.json`` summarizes the whole-program effect inference
at module granularity: for every module under ``src/repro``, the union
of its functions' *direct* effects and the union of their *transitive*
effects (direct ∪ everything reachable through the resolved call
graph).  The ``effect-budget`` rule pins the pure packages'
(:data:`PURE_PACKAGES`) entries; CI regenerates the whole file and
fails on drift, so any new side effect anywhere in the tree is a
one-line reviewable diff.

Regenerate after an intentional effect change with::

    python -m repro.analysis.effects.manifest

Like the schema manifest, extraction is AST-only — no repro module is
imported — so it works on deliberately broken scratch checkouts.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Tuple

from repro.analysis.context import Project
from repro.analysis.effects.infer import EffectAnalysis, analyze_project

#: Packages that must stay free of filesystem and process effects.
#: These hold the paper's closed-form math (roofline analytics, tiling
#: search, protection/integrity models); a file or subprocess effect in
#: any of them is a layering bug by definition.
PURE_PACKAGES: Tuple[str, ...] = (
    "repro.analytic",
    "repro.integrity",
    "repro.protection",
    "repro.tiling",
)

#: Where the pinned manifest lives (shipped inside the package).
MANIFEST_PATH = Path(__file__).with_name("effects_manifest.json")

#: Manifest layout version (bump on structural changes).
MANIFEST_FORMAT = 1


def module_package(module: str) -> str:
    """Top two dotted components (``repro.runner.store`` ->
    ``repro.runner``; bare ``repro`` stays ``repro``)."""
    return ".".join(module.split(".")[:2])


def build_manifest(analysis: EffectAnalysis) -> Dict[str, Any]:
    modules: Dict[str, Dict[str, Any]] = {}
    for name in sorted(analysis.graph.modules):
        direct, transitive = analysis.module_summary(name)
        modules[name] = {
            "direct": sorted(direct),
            "transitive": sorted(transitive),
        }
    return {
        "format": MANIFEST_FORMAT,
        "pure_packages": list(PURE_PACKAGES),
        "modules": modules,
    }


def extract_from_root(root: Path) -> Dict[str, Any]:
    project = Project(Path(root))
    return build_manifest(analyze_project(project))


def load_manifest() -> Dict[str, Any]:
    with open(MANIFEST_PATH, encoding="utf-8") as handle:
        loaded: Dict[str, Any] = json.load(handle)
    return loaded


def write_manifest(manifest: Dict[str, Any]) -> None:
    MANIFEST_PATH.write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")


def main() -> int:
    root = Path(__file__).resolve().parents[4]
    manifest = extract_from_root(root)
    write_manifest(manifest)
    print(f"wrote {MANIFEST_PATH} "
          f"({len(manifest['modules'])} modules, "
          f"{len(manifest['pure_packages'])} pinned-pure packages)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
