"""Whole-program effect inference over ``src/repro``.

Public surface for the rules and the CLI:

- :func:`repro.analysis.effects.infer.get_analysis` — memoized
  whole-program pass for a :class:`~repro.analysis.context.Project`;
- :mod:`repro.analysis.effects.manifest` — pinned
  ``effects_manifest.json`` build/load/regenerate;
- :mod:`repro.analysis.effects.model` — effect vocabulary.
"""

from repro.analysis.effects.infer import (
    EffectAnalysis,
    analyze_project,
    classify_call,
    get_analysis,
)
from repro.analysis.effects.model import (
    ALL_EFFECTS,
    FILESYSTEM_EFFECTS,
    FS_MUTATION_EFFECTS,
    PROCESS_EFFECTS,
    FunctionEffects,
    module_name_for,
)

__all__ = [
    "ALL_EFFECTS",
    "EffectAnalysis",
    "FILESYSTEM_EFFECTS",
    "FS_MUTATION_EFFECTS",
    "FunctionEffects",
    "PROCESS_EFFECTS",
    "analyze_project",
    "classify_call",
    "get_analysis",
    "module_name_for",
]
