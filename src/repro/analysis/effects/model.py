"""Effect vocabulary and per-function effect records.

An *effect* is a coarse, named class of side effect a function may
perform — filesystem reads/writes/renames/unlinks, lock acquire and
release, environment reads, module-global mutation, and process
spawning.  The inference pass (:mod:`repro.analysis.effects.infer`)
extracts *direct* effects from each function's AST and propagates them
transitively through the call graph; rules then ask questions like
"does anything reachable from a store mutator open a file for write?"
without re-deriving the facts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Tuple

FS_READ = "fs_read"
FS_WRITE = "fs_write"
FS_RENAME = "fs_rename"
FS_UNLINK = "fs_unlink"
LOCK_ACQUIRE = "lock_acquire"
LOCK_RELEASE = "lock_release"
ENV_READ = "env_read"
GLOBAL_WRITE = "global_write"
PROCESS_SPAWN = "process_spawn"

#: Every effect the analysis tracks, in canonical order.
ALL_EFFECTS: Tuple[str, ...] = (
    FS_READ, FS_WRITE, FS_RENAME, FS_UNLINK,
    LOCK_ACQUIRE, LOCK_RELEASE,
    ENV_READ, GLOBAL_WRITE, PROCESS_SPAWN,
)

#: Effects that touch the filesystem in any way.
FILESYSTEM_EFFECTS: FrozenSet[str] = frozenset(
    {FS_READ, FS_WRITE, FS_RENAME, FS_UNLINK})

#: Effects that mutate the filesystem (everything but pure reads).
FS_MUTATION_EFFECTS: FrozenSet[str] = frozenset(
    {FS_WRITE, FS_RENAME, FS_UNLINK})

#: Effects that create or signal other processes.
PROCESS_EFFECTS: FrozenSet[str] = frozenset({PROCESS_SPAWN})


@dataclass
class FunctionEffects:
    """Inferred facts about one function (or one module's top level).

    ``qualname`` is ``"repro.pkg.module:Class.method"`` (methods),
    ``"repro.pkg.module:function"`` (module-level functions) or
    ``"repro.pkg.module:<module>"`` (top-level statements).  ``calls``
    lists the repro-internal callees the resolver identified; calls
    into external modules surface as direct effects instead of edges.
    ``sites`` maps each direct effect to the 1-based source lines that
    produce it, so rules can report findings at the offending line.
    """

    qualname: str
    rel_path: str
    lineno: int
    direct: FrozenSet[str] = frozenset()
    calls: Tuple[str, ...] = ()
    transitive: FrozenSet[str] = frozenset()
    sites: Dict[str, List[int]] = field(default_factory=dict)

    @property
    def module(self) -> str:
        return self.qualname.split(":", 1)[0]


def module_name_for(rel_path: str) -> str:
    """Dotted module name for a repo-relative source path.

    ``src/repro/runner/store.py`` -> ``repro.runner.store``;
    ``src/repro/obs/__init__.py`` -> ``repro.obs``.
    """
    parts = rel_path[len("src/"):-len(".py")].split("/")
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)
