"""Allowlist pragmas: ``# repro: allow(<rule>)``.

Two forms, both parsed from real comment tokens (``tokenize``), so the
same text inside a string literal never suppresses anything:

- **line pragma** — ``# repro: allow(rule-a, rule-b)`` trailing the
  violating line, or standing alone on the line directly above it
  (for lines too long to carry a trailing comment);
- **file pragma** — ``# repro: allow-file(rule)`` anywhere in the file
  suppresses that rule for the whole file (used sparingly: a module
  whose entire job is the sanctioned exception, e.g. a scalar oracle).

Unknown rule names inside a pragma are themselves reported by the
engine (``bad-pragma``): a typoed pragma must fail loudly, not silently
keep suppressing nothing while the violation it meant to cover ships.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

_ALLOW_RE = re.compile(
    r"#\s*repro:\s*allow(?P<scope>-file)?\(\s*(?P<rules>[^)]*?)\s*\)")


@dataclass
class PragmaIndex:
    """Parsed pragmas of one file."""

    #: rule -> physical lines (1-based) the rule is allowed on.  A line
    #: pragma covers its own line and the line below, so a standalone
    #: pragma comment suppresses the statement it precedes.
    line_allows: Dict[str, Set[int]] = field(default_factory=dict)
    #: Rules allowed for the whole file.
    file_allows: Set[str] = field(default_factory=set)
    #: Every (line, rule) pair seen, for unknown-rule validation.
    mentions: List[Tuple[int, str]] = field(default_factory=list)

    def allows(self, rule: str, line: int) -> bool:
        if rule in self.file_allows:
            return True
        return line in self.line_allows.get(rule, ())


def _split_rules(text: str) -> List[str]:
    return [part.strip() for part in text.split(",") if part.strip()]


def parse_pragmas(source: str) -> PragmaIndex:
    """Extract the pragma index from one file's source text."""
    index = PragmaIndex()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [(tok.start[0], tok.string) for tok in tokens
                    if tok.type == tokenize.COMMENT]
    except (tokenize.TokenError, SyntaxError, IndentationError):
        # The engine only reaches here for parseable files; a tokenizer
        # failure on exotic input just means no pragmas.
        return index
    for line, comment in comments:
        for match in _ALLOW_RE.finditer(comment):
            rules = _split_rules(match.group("rules"))
            for rule in rules:
                index.mentions.append((line, rule))
                if match.group("scope"):
                    index.file_allows.add(rule)
                else:
                    covered = index.line_allows.setdefault(rule, set())
                    covered.add(line)
                    covered.add(line + 1)
    return index
