"""Findings: what a lint rule reports.

A :class:`Finding` is one violation of one rule at one source location.
Findings are plain, ordered, JSON-friendly values — the engine sorts
them by ``(path, line, rule)`` so output is deterministic across runs
and machines, and ``repro check --json`` serializes them verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one ``file:line``.

    ``hint`` says how to fix it (or how to allowlist it when the code is
    intentional); it is rule-provided, never empty in shipped rules.
    """

    path: str      # repo-root-relative, POSIX separators
    line: int      # 1-based
    rule: str
    message: str
    hint: str = ""
    col: int = 0   # 0-based, matching ``ast`` column offsets

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}"

    def as_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
        }

    def render(self) -> str:
        """One human-readable line: ``path:line: [rule] message``."""
        text = f"{self.path}:{self.line}: [{self.rule}] {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text
