"""Seed-violation smoke: prove every rule still fires.

A lint rule that silently stops matching is worse than no rule — the
gate stays green while the invariant rots.  Each rule therefore ships a
``seed_violation``: one known-bad edit.  This module copies ``src/`` and
``tests/`` into a scratch tree, injects each seed in turn, runs the
checker, and fails loudly unless the owning rule reports a finding in
the seeded file.  CI runs it as ``python -m repro.analysis.smoke``.
"""

from __future__ import annotations

import shutil
import sys
import tempfile
from pathlib import Path
from typing import List, Optional, TextIO

from repro.analysis.engine import run_check
from repro.analysis.registry import Rule, all_rules


def _copy_tree(root: Path, scratch: Path) -> None:
    for top in ("src", "tests"):
        shutil.copytree(root / top, scratch / top,
                        ignore=shutil.ignore_patterns("__pycache__"))


def _apply_seed(scratch: Path, rule: Rule) -> Optional[str]:
    """Inject the rule's seed edit; returns an error string on failure."""
    seed = rule.seed_violation
    assert seed is not None
    target = scratch / seed.path
    if not target.is_file():
        return f"seed path {seed.path} does not exist"
    original = target.read_text(encoding="utf-8")
    if seed.append:
        mutated = original + seed.append
    elif seed.replace:
        if seed.replace not in original:
            return (f"seed replace text not found in {seed.path} "
                    f"(the source drifted; update the seed)")
        mutated = original.replace(seed.replace, seed.replacement, 1)
    else:
        return "seed violation specifies no edit"
    target.write_text(mutated, encoding="utf-8")
    return None


def run_smoke(root: Path, out: TextIO = sys.stdout) -> int:
    rules = [rule for rule in all_rules() if rule.seed_violation]
    missing = [rule.name for rule in all_rules()
               if not rule.seed_violation]
    if missing:
        print(f"FAIL: rules without a seed violation: {missing}", file=out)
        return 1

    failures: List[str] = []
    for rule in rules:
        with tempfile.TemporaryDirectory(prefix="repro-smoke-") as tmp:
            scratch = Path(tmp)
            _copy_tree(root, scratch)
            error = _apply_seed(scratch, rule)
            if error is not None:
                failures.append(f"{rule.name}: {error}")
                print(f"FAIL  {rule.name}: {error}", file=out)
                continue
            seed = rule.seed_violation
            assert seed is not None
            result = run_check(scratch, rule_names=[rule.name])
            hits = [f for f in result.findings
                    if f.rule == rule.name and f.path == seed.path]
            if hits:
                print(f"ok    {rule.name}: seeded violation in "
                      f"{seed.path} caught ({len(hits)} finding(s))",
                      file=out)
            else:
                failures.append(f"{rule.name}: seeded violation in "
                                f"{seed.path} was NOT caught")
                print(f"FAIL  {rule.name}: seeded violation in "
                      f"{seed.path} was NOT caught", file=out)
    if failures:
        print(f"seed-violation smoke: {len(failures)} of {len(rules)} "
              f"rules failed", file=out)
        return 1
    print(f"seed-violation smoke: all {len(rules)} rules fire", file=out)
    return 0


def main() -> int:
    root = Path(__file__).resolve().parents[3]
    return run_smoke(root)


if __name__ == "__main__":
    raise SystemExit(main())
