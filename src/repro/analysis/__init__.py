"""Static analysis over the repro tree: ``repro check``.

Repo-specific invariants that generic linters cannot see — fingerprint
purity, pinned record schemas, native/Python tier parity, recorder
discipline, hot-path hygiene — expressed as AST rules with allowlist
pragmas.  See :mod:`repro.analysis.engine` for the entry point and
``README.md`` ("Static analysis & correctness gates") for the catalog.
"""

from repro.analysis.engine import (  # noqa: F401
    JSON_SCHEMA_VERSION,
    CheckResult,
    list_rules,
    render_text,
    run_check,
)
from repro.analysis.findings import Finding  # noqa: F401
