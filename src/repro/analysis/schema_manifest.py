"""Extraction and regeneration of the serialized-record manifest.

``schema_manifest.json`` pins two facts about
``src/repro/runner/records.py``: the value of ``SCHEMA_VERSION`` and the
exact key set each ``*_to_dict`` serializer emits.  The ``schema-guard``
rule re-extracts both from the live tree on every ``repro check`` run
and compares; see :mod:`repro.analysis.rules.schema_guard` for the
verdict logic.

Regenerate after an *intentional* schema change (new field + version
bump) with::

    python -m repro.analysis.schema_manifest

The manifest is extracted from the AST, not by importing the module, so
it works on any checkout — including the scratch copies the CI
seed-violation smoke mutates into deliberately broken states.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path
from typing import Any, Dict, List, Optional

#: The module whose serializers are pinned.
RECORDS_PATH = "src/repro/runner/records.py"

#: Where the pinned manifest lives (shipped inside the package).
MANIFEST_PATH = Path(__file__).with_name("schema_manifest.json")


def _dict_literal_keys(node: ast.AST) -> Optional[List[str]]:
    """Constant string keys of a dict literal, or None if not one."""
    if not isinstance(node, ast.Dict):
        return None
    keys = []
    for key in node.keys:
        if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
            return None
        keys.append(key.value)
    return keys


def extract_manifest(tree: ast.Module) -> Dict[str, Any]:
    """Pull ``{"schema_version": ..., "records": {fn: [keys]}}`` from the
    parsed records module.

    Every top-level ``*_to_dict`` function is expected to serialize via a
    single ``return {literal}``; a function that stops doing so extracts
    as ``None``, which never equals a pinned key list — the guard then
    fails with a regenerate hint instead of silently losing coverage.
    """
    version: Optional[int] = None
    records: Dict[str, Optional[List[str]]] = {}
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) \
                        and target.id == "SCHEMA_VERSION" \
                        and isinstance(node.value, ast.Constant):
                    version = node.value.value
        elif isinstance(node, ast.FunctionDef) \
                and node.name.endswith("_to_dict"):
            keys: Optional[List[str]] = None
            returns = [n for n in ast.walk(node)
                       if isinstance(n, ast.Return) and n.value is not None]
            if len(returns) == 1:
                keys = _dict_literal_keys(returns[0].value)
            records[node.name] = keys
    return {"schema_version": version, "records": records}


def extract_from_root(root: Path) -> Dict[str, Any]:
    source = (Path(root) / RECORDS_PATH).read_text(encoding="utf-8")
    return extract_manifest(ast.parse(source, filename=RECORDS_PATH))


def load_manifest() -> Dict[str, Any]:
    with open(MANIFEST_PATH, encoding="utf-8") as handle:
        loaded: Dict[str, Any] = json.load(handle)
    return loaded


def write_manifest(manifest: Dict[str, Any]) -> None:
    MANIFEST_PATH.write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")


def main() -> int:
    root = Path(__file__).resolve().parents[3]
    manifest = extract_from_root(root)
    write_manifest(manifest)
    print(f"wrote {MANIFEST_PATH} "
          f"(schema_version={manifest['schema_version']}, "
          f"{len(manifest['records'])} serializers)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
