"""atomic-write-discipline: store files are published, never written.

A reader of the result store is lock-free; that only works if no code
path ever exposes a half-written file under the store root.  The
protocol is *write-aside, publish-atomically*: the body goes to a
``tempfile.mkstemp`` sibling, and the only way it becomes visible is
one atomic ``os.link`` / ``os.replace``.  This rule checks the protocol
statically over the effect analysis:

- no function defined in ``runner/store.py`` — and no function
  reachable from the store's mutators anywhere in the tree — may open a
  file for writing directly (builtin ``open`` with a mutating mode,
  ``.write_text`` / ``.write_bytes``);
- ``os.fdopen`` in write mode is allowed only in a function that also
  calls ``tempfile.mkstemp`` (writing the temp side is the protocol);
- a function that creates a temp file must also publish it: an
  ``os.replace`` / ``os.link`` in the same function, or a call to a
  store-internal helper whose transitive effects include a rename.

Functions whose name contains ``_lock`` are exempt: the sidecar lock
protocol (``open(lock_path, "a")`` for ``flock``; ``O_CREAT | O_EXCL``
for the fallback) touches lock files, not records, and is checked by
``lock-discipline`` instead.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Tuple

from repro.analysis.context import Project
from repro.analysis.effects.callgraph import FunctionNode
from repro.analysis.effects.infer import (
    EffectAnalysis,
    _open_effect,
    get_analysis,
)
from repro.analysis.effects.model import FS_RENAME, FS_WRITE
from repro.analysis.findings import Finding
from repro.analysis.registry import ProjectRule, SeedViolation, register

#: The module whose write discipline is enforced.
STORE_MODULE = "repro.runner.store"
STORE_PATH = "src/repro/runner/store.py"

#: Public entry points that mutate the store; everything reachable from
#: them inherits the discipline.
MUTATOR_ROOTS = (
    f"{STORE_MODULE}:ResultStore.put",
    f"{STORE_MODULE}:ResultStore.clear",
    f"{STORE_MODULE}:ResultStore.flush_stats",
    f"{STORE_MODULE}:ResultStore.demote_hit",
)

_HINT = ("write to a tempfile.mkstemp sibling and publish with one "
         "atomic os.replace/os.link; see README 'Concurrency model of "
         "the ResultStore'")


def _is_lock_function(qualname: str) -> bool:
    return "_lock" in qualname.rsplit(":", 1)[-1].rsplit(".", 1)[-1]


def _callee_attr(node: ast.Call) -> str:
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    if isinstance(node.func, ast.Name):
        return node.func.id
    return ""


def _scan_function(node: FunctionNode) -> Tuple[
        List[Tuple[int, str]], bool, bool, Optional[int]]:
    """``(direct_write_opens, has_mkstemp, has_publish, mkstemp_line)``
    for one function body."""
    write_opens: List[Tuple[int, str]] = []
    has_mkstemp = False
    has_publish = False
    mkstemp_line: Optional[int] = None
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Call):
            continue
        attr = _callee_attr(sub)
        if attr == "open" and _open_effect(sub) == FS_WRITE:
            write_opens.append((sub.lineno, "open() in write mode"))
        elif attr == "fdopen":
            if _open_effect(sub) == FS_WRITE:
                write_opens.append((sub.lineno,
                                    "os.fdopen() in write mode"))
        elif attr in ("write_text", "write_bytes"):
            write_opens.append((sub.lineno, f".{attr}()"))
        elif attr == "mkstemp":
            has_mkstemp = True
            mkstemp_line = mkstemp_line or sub.lineno
        elif attr in ("replace", "link", "rename"):
            has_publish = True
    return write_opens, has_mkstemp, has_publish, mkstemp_line


def _publishes_via_callee(analysis: EffectAnalysis,
                          qualname: str) -> bool:
    fe = analysis.functions.get(qualname)
    if fe is None:
        return False
    for callee in fe.calls:
        callee_fe = analysis.functions.get(callee)
        if callee_fe is not None and FS_RENAME in callee_fe.transitive:
            return True
    return False


@register
class AtomicWriteRule(ProjectRule):
    name = "atomic-write-discipline"
    description = ("store files are written via mkstemp + atomic "
                   "publish; no direct open-for-write in store.py or "
                   "reachable from store mutators")
    seed_violation = SeedViolation(
        path=STORE_PATH,
        append='\n\ndef _smoke_fast_put(store: "ResultStore", key: str,\n'
               '                    record: Dict[str, Any]) -> None:\n'
               '    path = store._path(key)\n'
               '    with open(path, "w") as handle:\n'
               '        json.dump(record, handle)\n')

    def check_project(self, project: Project) -> Iterable[Finding]:
        if not project.has_file(STORE_PATH):
            return [Finding(
                path=STORE_PATH, line=1, rule=self.name,
                message="result store module is missing entirely",
                hint="the runner cannot cache results without it")]
        analysis = get_analysis(project)
        store = analysis.graph.modules.get(STORE_MODULE)
        if store is None:
            return []     # parse-error is the engine's finding

        in_scope = set(analysis.graph.owner_functions(STORE_MODULE))
        in_scope |= analysis.reachable_from(MUTATOR_ROOTS)

        findings: List[Finding] = []
        for qualname in sorted(in_scope):
            fe = analysis.functions.get(qualname)
            if fe is None or _is_lock_function(qualname):
                continue
            info = analysis.graph.modules.get(fe.module)
            if info is None:
                continue
            local = qualname.split(":", 1)[1]
            node = info.functions.get(local)
            if node is None:
                continue
            write_opens, has_mkstemp, has_publish, mkstemp_line = \
                _scan_function(node)
            for lineno, what in write_opens:
                if what.startswith("os.fdopen") and has_mkstemp:
                    continue     # writing the temp side is the protocol
                findings.append(Finding(
                    path=fe.rel_path, line=lineno, rule=self.name,
                    message=f"{local} writes a file directly via {what}"
                            f"; a concurrent reader can observe the "
                            f"half-written state",
                    hint=_HINT))
            if has_mkstemp and not has_publish \
                    and not _publishes_via_callee(analysis, qualname):
                findings.append(Finding(
                    path=fe.rel_path, line=mkstemp_line or fe.lineno,
                    rule=self.name,
                    message=f"{local} creates a temp file but neither "
                            f"publishes it (os.replace/os.link) nor "
                            f"calls a publishing helper",
                    hint="an unpublished temp file is an orphan the "
                         "sweep must age out; " + _HINT))
        return findings
