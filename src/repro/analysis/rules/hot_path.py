"""hot-path-hygiene: no Python loops over trace columns in the
vectorized planes.

The whole performance story of the simulator is that traces live as
parallel numpy columns (``addrs`` / ``cycles`` / ``writes`` / ...) and
every per-access computation is a column operation.  A Python ``for``
over a column — usually via ``.tolist()`` — reintroduces the
interpreter into an O(accesses) path and silently undoes orders of
magnitude.  Where a scalar loop is *the point* (the reference scalar
oracle, an irreducible carry pinned by an equivalence suite, a
boundary materialization measured to be cheap), it carries a line
pragma saying so.

The rule looks only at the **iterable expression** of ``for`` loops and
comprehensions in the vectorized planes; loop bodies and ordinary
iteration (``for layer in layers``) are out of scope, keeping false
positives near zero.  It fires when the iterable:

- calls ``.tolist()`` anywhere (incl. inside ``zip(...)``), or
- is a bare trace column (a name or attribute ending in one of the
  known column names), or
- calls ``np.nditer`` / ``enumerate`` over such a column.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional

from repro.analysis.context import FileContext
from repro.analysis.findings import Finding
from repro.analysis.registry import FileRule, SeedViolation, register

_SCOPES = ("src/repro/accel/", "src/repro/dram/", "src/repro/protection/",
           "src/repro/analytic/")

#: The trace-column vocabulary of the vectorized planes.
_COLUMNS = {"addrs", "cycles", "writes", "kinds", "layer_ids", "durations",
            "arrivals", "banks", "service"}


def _terminal_name(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _column_iteration(iterable: ast.expr) -> Optional[str]:
    """Why this iterable is a hot-path violation, or None if it's fine."""
    for node in ast.walk(iterable):
        if isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr == "tolist":
            return "materializes a column with .tolist() for iteration"
    name = _terminal_name(iterable)
    if name in _COLUMNS:
        return f"iterates trace column {name!r} element-wise"
    if isinstance(iterable, ast.Call):
        func_name = _terminal_name(iterable.func)
        if func_name in ("enumerate", "nditer") and iterable.args:
            inner = _terminal_name(iterable.args[0])
            if inner in _COLUMNS:
                return (f"iterates trace column {inner!r} element-wise "
                        f"via {func_name}()")
    return None


@register
class HotPathRule(FileRule):
    name = "hot-path-hygiene"
    description = ("no Python-level for loops over trace columns "
                   "(.tolist() iteration) in the vectorized planes; "
                   "pragma the intentional scalar carries")
    seed_violation = SeedViolation(
        path="src/repro/accel/trace.py",
        append=("\n\ndef _smoke_scan(addrs):\n"
                "    peak = 0\n"
                "    for addr in addrs.tolist():\n"
                "        peak = max(peak, addr)\n"
                "    return peak\n"))

    def select(self, rel_path: str) -> bool:
        return rel_path.startswith(_SCOPES)

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        assert ctx.tree is not None
        for node in ast.walk(ctx.tree):
            iterables: List[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iterables.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iterables.extend(gen.iter for gen in node.generators)
            for iterable in iterables:
                why = _column_iteration(iterable)
                if why is not None:
                    findings.append(Finding(
                        path=ctx.rel_path, line=iterable.lineno,
                        col=iterable.col_offset, rule=self.name,
                        message=f"{why} in a vectorized plane",
                        hint="express it as a column operation, or mark "
                             "an intentional scalar carry with '# repro: "
                             "allow(hot-path-hygiene)'"))
        return findings
