"""fault-isolation: the fault plane stays out of result-bearing code.

``repro.faults`` exists to inject failures for testing, and it is
excluded from ``code_version()`` hashing so fault-plane edits never
invalidate the store.  That exclusion is only sound while no module the
hash *does* cover imports it: a hashed module calling into unhashed
code would let behavior change without the fingerprint changing.  So:
no ``code_version()``-hashed module may import ``repro.faults``.

The scope is derived from ``_NON_RESULT_DIRS`` by exclusion, which
makes the rule self-enforcing: if ``"faults"`` were ever dropped from
the exclusion set, the ``faults`` package itself would enter the hashed
scope and its own intra-package imports would trip this rule.

Allowlisted: ``src/repro/utils/native.py`` — it hosts the
``native.build``/``native.load`` fault sites, and its fault hooks only
choose between compute *tiers* that the equivalence suites pin
bit-identical, so results cannot depend on them (the same argument as
its ``fingerprint-purity`` allow).
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.analysis.context import FileContext
from repro.analysis.findings import Finding
from repro.analysis.registry import FileRule, SeedViolation, register

# Imported from the store so the scope can never drift from what
# code_version() actually hashes.
from repro.runner.store import _NON_RESULT_DIRS, _NON_RESULT_FILES

#: Hashed modules allowed to touch the fault plane (see module docs).
_ALLOWED = {"src/repro/utils/native.py"}

_HINT = ("fault injection must stay out of fingerprint-hashed code "
         "paths: hook the failure seam from an unhashed module "
         "(runner/, cli.py) or allowlist a tier-selection-only use "
         "with '# repro: allow(fault-isolation)'")


def in_hashed_scope(rel_path: str) -> bool:
    """Is ``rel_path`` hashed by ``code_version()``?"""
    prefix = "src/repro/"
    if not rel_path.startswith(prefix):
        return False
    relative = rel_path[len(prefix):]
    parts = relative.split("/")
    if parts[0] in _NON_RESULT_DIRS or relative in _NON_RESULT_FILES:
        return False
    # The analysis package is lint tooling over the tree, never part of
    # the pipeline (and predates nothing: code_version() ignores it).
    return parts[0] != "analysis"


class _ImportVisitor(ast.NodeVisitor):
    def __init__(self, ctx: FileContext, rule_name: str):
        self.ctx = ctx
        self.rule = rule_name
        self.findings: List[Finding] = []

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "repro.faults" \
                    or alias.name.startswith("repro.faults."):
                self._report(node, f"import {alias.name}")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        if module == "repro.faults" or module.startswith("repro.faults."):
            self._report(node, f"from {module} import "
                               f"{', '.join(a.name for a in node.names)}")
        elif module == "repro" and any(a.name == "faults"
                                       for a in node.names):
            self._report(node, "from repro import faults")
        self.generic_visit(node)

    def _report(self, node: ast.AST, what: str) -> None:
        self.findings.append(Finding(
            path=self.ctx.rel_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.rule,
            message=f"{what} in a code_version()-hashed module",
            hint=_HINT))


@register
class FaultIsolationRule(FileRule):
    name = "fault-isolation"
    description = ("code_version()-hashed modules must not import the "
                   "repro.faults injection plane")
    seed_violation = SeedViolation(
        path="src/repro/models/zoo.py",
        append=("\n\nfrom repro import faults as _faults\n\n"
                "_FAULT_HOOK = _faults.fire\n"))

    def select(self, rel_path: str) -> bool:
        return in_hashed_scope(rel_path) and rel_path not in _ALLOWED

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        visitor = _ImportVisitor(ctx, self.name)
        assert ctx.tree is not None
        visitor.visit(ctx.tree)
        return visitor.findings
