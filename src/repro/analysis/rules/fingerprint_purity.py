"""fingerprint-purity: result-affecting modules must be deterministic.

The content-addressed store trusts :func:`repro.runner.store.code_version`
completely: two processes with the same sources must compute the same
fingerprint for the same request, today and in five years.  Any module
that ``code_version()`` hashes (everything outside ``runner/``, ``obs/``
and ``cli.py``) therefore must not let wall-clock time, unseeded
randomness, environment variables or enumeration-order-dependent
iteration reach a result — and the fingerprinting/serialization code
itself (``runner/records.py``, ``runner/store.py``) is held to the same
standard.

What trips it:

- any attribute use of the ``time`` or ``datetime`` modules;
- ``random.*`` / ``np.random.*`` calls (a *seeded* generator is fine —
  allowlist the construction site with ``# repro: allow(fingerprint-purity)``);
- ``os.environ`` / ``os.getenv`` reads;
- directory enumeration (``glob`` / ``rglob`` / ``iterdir`` /
  ``os.listdir`` / ``os.scandir``) not immediately wrapped in
  ``sorted(...)`` — filesystem order is not deterministic;
- iterating a ``set`` value directly in a ``for`` / comprehension —
  set order depends on insertion history and, for strings, on the
  per-process hash seed.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set

from repro.analysis.context import FileContext
from repro.analysis.findings import Finding
from repro.analysis.registry import FileRule, SeedViolation, register

# The exclusion set is imported from the store so this rule's scope can
# never drift from what code_version() actually hashes.
from repro.runner.store import _NON_RESULT_DIRS, _NON_RESULT_FILES

#: Fingerprinting machinery held to purity rules even though
#: ``code_version()`` does not hash it.
_EXTRA_SCOPE = {
    "src/repro/runner/records.py",
    "src/repro/runner/store.py",
}

_UNSORTED_ENUMERATORS = {"glob", "rglob", "iterdir", "scandir", "listdir"}

_HINT = ("results must be reproducible from sources alone; derive the "
         "value deterministically, or allowlist a sanctioned use with "
         "'# repro: allow(fingerprint-purity)'")


def in_fingerprint_scope(rel_path: str) -> bool:
    """Is ``rel_path`` covered by ``code_version()`` or fingerprinting?"""
    if rel_path in _EXTRA_SCOPE:
        return True
    prefix = "src/repro/"
    if not rel_path.startswith(prefix):
        return False
    relative = rel_path[len(prefix):]
    parts = relative.split("/")
    if parts[0] in _NON_RESULT_DIRS:
        return False
    if relative in _NON_RESULT_FILES:
        return False
    # The analysis package never runs inside the pipeline; it is lint
    # tooling over the tree, excluded exactly like the runner would be
    # if it existed when code_version() was written.
    return parts[0] != "analysis"


class _PurityVisitor(ast.NodeVisitor):
    def __init__(self, ctx: FileContext, rule_name: str):
        self.ctx = ctx
        self.rule = rule_name
        self.findings: List[Finding] = []
        #: Local aliases of impure modules: {"time", "datetime", ...}
        self.time_aliases: Set[str] = set()
        self.random_aliases: Set[str] = set()
        self.numpy_aliases: Set[str] = set()
        self.os_aliases: Set[str] = set()

    # -- imports --------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            if alias.name in ("time", "datetime"):
                self.time_aliases.add(bound)
            elif alias.name == "random":
                self.random_aliases.add(bound)
            elif alias.name == "numpy":
                self.numpy_aliases.add(bound)
            elif alias.name == "os":
                self.os_aliases.add(bound)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module in ("time", "datetime", "random"):
            self._report(node, f"imports from {node.module!r}: "
                               f"{', '.join(a.name for a in node.names)}")
        elif node.module == "os":
            bad = [a.name for a in node.names
                   if a.name in ("environ", "getenv")]
            if bad:
                self._report(node, f"imports {', '.join(bad)} from os")
        elif node.module == "numpy" and any(a.name == "random"
                                            for a in node.names):
            self._report(node, "imports numpy.random")
        self.generic_visit(node)

    # -- uses -----------------------------------------------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        value = node.value
        if isinstance(value, ast.Name):
            if value.id in self.time_aliases:
                self._report(node, f"clock/date access "
                                   f"{value.id}.{node.attr}")
            elif value.id in self.random_aliases:
                self._report(node, f"randomness {value.id}.{node.attr}")
            elif value.id in self.os_aliases and node.attr == "environ":
                self._report(node, "environment read os.environ")
            elif value.id in self.os_aliases and node.attr == "getenv":
                self._report(node, "environment read os.getenv")
        elif isinstance(value, ast.Attribute) \
                and isinstance(value.value, ast.Name) \
                and value.value.id in self.numpy_aliases \
                and value.attr == "random":
            self._report(node, f"randomness "
                               f"{value.value.id}.random.{node.attr}")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) \
                and func.attr in _UNSORTED_ENUMERATORS \
                and not self._sorted_parent(node):
            self._report(node, f"directory enumeration .{func.attr}() "
                               f"without sorted(...)")
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        self._check_set_iteration(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_set_iteration(node.iter)
        self.generic_visit(node)

    # -- helpers --------------------------------------------------------

    def _check_set_iteration(self, iterable: ast.expr) -> None:
        if isinstance(iterable, (ast.Set, ast.SetComp)):
            self._report(iterable, "iterates a set literal "
                                   "(hash-order dependent)")
        elif isinstance(iterable, ast.Call) \
                and isinstance(iterable.func, ast.Name) \
                and iterable.func.id in ("set", "frozenset"):
            self._report(iterable, "iterates set(...) directly "
                                   "(hash-order dependent)")

    def _sorted_parent(self, node: ast.Call) -> bool:
        parent = self.ctx.parents.get(node)
        return (isinstance(parent, ast.Call)
                and isinstance(parent.func, ast.Name)
                and parent.func.id == "sorted")

    def _report(self, node: ast.AST, what: str) -> None:
        self.findings.append(Finding(
            path=self.ctx.rel_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.rule,
            message=f"{what} in a code_version()-covered module",
            hint=_HINT))


@register
class FingerprintPurityRule(FileRule):
    name = "fingerprint-purity"
    description = ("no time/randomness/env/enumeration-order dependence "
                   "in modules covered by code_version() or record "
                   "fingerprinting")
    seed_violation = SeedViolation(
        path="src/repro/models/zoo.py",
        append=("\n\nimport time\n\n"
                "_SMOKE_STAMP = time.time()\n"))

    def select(self, rel_path: str) -> bool:
        return in_fingerprint_scope(rel_path)

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        visitor = _PurityVisitor(ctx, self.name)
        assert ctx.tree is not None
        visitor.visit(ctx.tree)
        return visitor.findings
