"""lock-discipline: shared-file read-modify-writes hold their lock.

The store has exactly two cross-process read-modify-write resources,
each with a dedicated sidecar lock (see README "Concurrency model of
the ResultStore"):

- **stats** — the ``stats.json`` merge (load, add session counters,
  write back) must run under ``with self._stats_lock():``;
- **records-index** — enumerate-and-mass-delete maintenance (walking
  ``_record_paths()`` / the orphan-``.tmp`` lists and unlinking what
  was enumerated) must run under ``with self._writer_lock():``.

Per-record operations (``get``, ``put``, ``demote_hit``) are atomic on
a single file and deliberately lock-free; they carry neither marker and
are never flagged.

The rule tags each function in ``runner/store.py`` with resource
*read* and *write* markers — tracking simple taint through assignments
and ``for`` targets, so ``for p in self._record_paths(): p.unlink()``
is recognized as an index mutation — and flags any function holding
both markers for a resource when a marker site is not lexically inside
the matching ``with`` block.  A private helper whose every call site
(within the store) sits inside the right ``with`` block is discharged.

It also enforces the lock *protocol* itself: ``_stats_lock`` /
``_writer_lock`` / ``_sidecar_lock`` may only be entered via ``with``
(a bare call leaks the acquisition), and every ``fcntl.flock``
exclusive acquire must live in a ``*_lock*`` contextmanager with the
matching ``LOCK_UN`` in a ``finally``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set

from repro.analysis.context import FileContext, Project
from repro.analysis.effects.callgraph import FunctionNode, ModuleInfo
from repro.analysis.effects.infer import get_analysis
from repro.analysis.findings import Finding
from repro.analysis.registry import ProjectRule, SeedViolation, register
from repro.analysis.rules.atomic_write import STORE_MODULE, STORE_PATH

#: resource -> (lock contextmanager name, enumeration/read markers).
_STATS = "stats"
_INDEX = "records-index"
_LOCK_FOR = {_STATS: "_stats_lock", _INDEX: "_writer_lock"}

#: Calls that *read* each resource.
_STATS_READERS = {"_load_persistent"}
#: Calls that enumerate the record index (their results are tainted).
_INDEX_ENUMERATORS = {"_record_paths", "_orphan_tmp_paths",
                      "_split_orphan_tmp_paths"}
#: The stats file marker: any call producing its path.
_STATS_PATH = "_stats_path"

#: Lock contextmanagers that must only ever be entered via ``with``.
_LOCK_CMS = {"_stats_lock", "_writer_lock", "_sidecar_lock"}


def _attr_name(node: ast.expr) -> str:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _mentions_call(node: ast.AST, names: Set[str]) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call) and _attr_name(sub.func) in names:
            return True
    return False


class _FunctionTags:
    """Marker lines per resource for one function."""

    def __init__(self) -> None:
        self.reads: Dict[str, List[int]] = {_STATS: [], _INDEX: []}
        self.writes: Dict[str, List[int]] = {_STATS: [], _INDEX: []}

    def rmw_resources(self) -> List[str]:
        return [resource for resource in (_STATS, _INDEX)
                if self.reads[resource] and self.writes[resource]]


def _collect_names(target: ast.expr, into: Set[str]) -> None:
    for sub in ast.walk(target):
        if isinstance(sub, ast.Name):
            into.add(sub.id)


def _tag_function(node: FunctionNode) -> _FunctionTags:
    tags = _FunctionTags()
    index_tainted: Set[str] = set()

    # Pass 1: taint names bound (by assignment or ``for``) to record-
    # index enumerations, transitively through plain name copies.
    changed = True
    while changed:
        changed = False
        for sub in ast.walk(node):
            value: Optional[ast.expr] = None
            targets: List[ast.expr] = []
            if isinstance(sub, ast.Assign):
                value, targets = sub.value, list(sub.targets)
            elif isinstance(sub, ast.AnnAssign) and sub.value is not None:
                value, targets = sub.value, [sub.target]
            elif isinstance(sub, ast.For):
                value, targets = sub.iter, [sub.target]
            if value is None:
                continue
            tainted = _mentions_call(value, _INDEX_ENUMERATORS) or any(
                isinstance(s, ast.Name) and s.id in index_tainted
                for s in ast.walk(value))
            if not tainted:
                continue
            before = len(index_tainted)
            for target in targets:
                _collect_names(target, index_tainted)
            if len(index_tainted) != before:
                changed = True

    # Pass 2: classify call sites.
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Call):
            continue
        attr = _attr_name(sub.func)
        if attr in _STATS_READERS:
            tags.reads[_STATS].append(sub.lineno)
        elif attr in _INDEX_ENUMERATORS:
            tags.reads[_INDEX].append(sub.lineno)
        elif attr == "open" and _mentions_call(sub, {_STATS_PATH}):
            tags.reads[_STATS].append(sub.lineno)
        elif attr in ("replace", "rename") \
                and _mentions_call(sub, {_STATS_PATH}):
            tags.writes[_STATS].append(sub.lineno)
        elif attr in ("unlink", "remove"):
            if _mentions_call(sub, {_STATS_PATH}):
                tags.writes[_STATS].append(sub.lineno)
            elif any(isinstance(s, ast.Name) and s.id in index_tainted
                     for s in ast.walk(sub)):
                tags.writes[_INDEX].append(sub.lineno)
    return tags


def _with_locks(ctx: FileContext, node: ast.AST) -> Set[str]:
    """Names of store lock contextmanagers held (lexically) at ``node``."""
    held: Set[str] = set()
    for ancestor in ctx.ancestors(node):
        if isinstance(ancestor, ast.With):
            for item in ancestor.items:
                expr = item.context_expr
                if isinstance(expr, ast.Call):
                    held.add(_attr_name(expr.func))
    return held


def _is_contextmanager(node: FunctionNode) -> bool:
    for decorator in node.decorator_list:
        if _attr_name(decorator) == "contextmanager":
            return True
    return False


def _line_node(node: FunctionNode, lineno: int,
               names: Set[str]) -> Optional[ast.Call]:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call) and sub.lineno == lineno \
                and _attr_name(sub.func) in names:
            return sub
    return None


@register
class LockDisciplineRule(ProjectRule):
    name = "lock-discipline"
    description = ("stats.json merges run under _stats_lock and "
                   "record-index maintenance under _writer_lock; "
                   "locks are entered via with and never leaked")
    seed_violation = SeedViolation(
        path=STORE_PATH,
        replace="        with self._stats_lock():\n"
                "            data = self._load_persistent()",
        replacement="        if True:\n"
                    "            data = self._load_persistent()")

    def check_project(self, project: Project) -> Iterable[Finding]:
        analysis = get_analysis(project)
        store = analysis.graph.modules.get(STORE_MODULE)
        if store is None or not project.has_file(STORE_PATH):
            return []     # atomic-write already reports a missing store
        ctx = project.context(STORE_PATH)
        if ctx.tree is None:
            return []

        findings: List[Finding] = []
        tags_by_function: Dict[str, _FunctionTags] = {
            local: _tag_function(node)
            for local, node in store.functions.items()}

        for local, node in sorted(store.functions.items()):
            short = local.rsplit(".", 1)[-1]
            tags = tags_by_function[local]
            # The lock implementation itself is exempt from the RMW
            # check (it manages lock files, not protected resources)
            # but still subject to the protocol checks below.
            for resource in () if "_lock" in short \
                    else tags.rmw_resources():
                lock_name = _LOCK_FOR[resource]
                unprotected = self._unprotected_sites(
                    ctx, node, tags, resource, lock_name)
                if not unprotected:
                    continue
                if short.startswith("_") and self._discharged(
                        ctx, store, local, lock_name):
                    continue
                for lineno in unprotected:
                    findings.append(Finding(
                        path=STORE_PATH, line=lineno, rule=self.name,
                        message=f"{local} read-modify-writes the "
                                f"{resource} outside "
                                f"'with self.{lock_name}():'; "
                                f"concurrent writers lose updates",
                        hint=f"wrap the whole {resource} RMW in "
                             f"'with self.{lock_name}():' (see README "
                             f"lock hierarchy)"))
            findings.extend(self._bare_lock_calls(ctx, node, local))
            findings.extend(self._flock_protocol(ctx, node, local,
                                                 short))
        return findings

    def _unprotected_sites(self, ctx: FileContext, node: FunctionNode,
                           tags: _FunctionTags, resource: str,
                           lock_name: str) -> List[int]:
        unprotected: List[int] = []
        sites = tags.reads[resource] + tags.writes[resource]
        for lineno in sorted(set(sites)):
            call = _line_node(node, lineno, {"open", "replace",
                                             "rename", "unlink",
                                             "remove"}
                              | _STATS_READERS | _INDEX_ENUMERATORS)
            if call is None:
                continue
            if lock_name not in _with_locks(ctx, call):
                unprotected.append(lineno)
        return unprotected

    def _discharged(self, ctx: FileContext, store: ModuleInfo,
                    local: str, lock_name: str) -> bool:
        """A private helper is fine if every store-internal call site
        already holds the required lock."""
        short = local.rsplit(".", 1)[-1]
        call_sites: List[ast.Call] = []
        for other_local, other_node in store.functions.items():
            if other_local == local:
                continue
            for sub in ast.walk(other_node):
                if isinstance(sub, ast.Call) \
                        and _attr_name(sub.func) == short:
                    call_sites.append(sub)
        if not call_sites:
            return False
        return all(lock_name in _with_locks(ctx, call)
                   for call in call_sites)

    def _bare_lock_calls(self, ctx: FileContext, node: FunctionNode,
                         local: str) -> List[Finding]:
        findings: List[Finding] = []
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call) \
                    or _attr_name(sub.func) not in _LOCK_CMS:
                continue
            parent = ctx.parents.get(sub)
            entered_via_with = isinstance(parent, ast.withitem)
            if not entered_via_with:
                findings.append(Finding(
                    path=STORE_PATH, line=sub.lineno, rule=self.name,
                    message=f"{local} calls "
                            f"{_attr_name(sub.func)}() outside a "
                            f"'with' statement; the acquisition leaks "
                            f"on any exception",
                    hint="always 'with self.<lock>():' — never call "
                         "lock contextmanagers bare"))
        return findings

    def _flock_protocol(self, ctx: FileContext, node: FunctionNode,
                        local: str, short: str) -> List[Finding]:
        acquires: List[ast.Call] = []
        releases_in_finally = False
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call) \
                    or _attr_name(sub.func) not in ("flock", "lockf"):
                continue
            flags = {_attr_name(s) for arg in sub.args
                     for s in ast.walk(arg)}
            if flags & {"LOCK_EX", "LOCK_SH"}:
                acquires.append(sub)
            elif "LOCK_UN" in flags:
                for ancestor in ctx.ancestors(sub):
                    if isinstance(ancestor, ast.Try) \
                            and any(sub in ast.walk(stmt)
                                    for stmt in ancestor.finalbody):
                        releases_in_finally = True
        findings: List[Finding] = []
        for call in acquires:
            if "_lock" not in short or not _is_contextmanager(node):
                findings.append(Finding(
                    path=STORE_PATH, line=call.lineno, rule=self.name,
                    message=f"{local} takes an flock outside a "
                            f"*_lock contextmanager",
                    hint="centralize inter-process locking in the "
                         "_sidecar_lock contextmanager"))
            elif not releases_in_finally:
                findings.append(Finding(
                    path=STORE_PATH, line=call.lineno, rule=self.name,
                    message=f"{local} acquires an flock without a "
                            f"matching LOCK_UN in a finally block; "
                            f"an exception leaks the lock",
                    hint="release in 'finally:' so every exit path "
                         "unlocks"))
        return findings
