"""schema-guard: serialized record layout is pinned; changes must bump.

The result store keys cached comparisons by fingerprint and trusts
``SCHEMA_VERSION`` to reject stale layouts.  History shows the failure
mode this rule exists for (see the v2/v3/v4 notes in
``runner/records.py``): a serializer gains or loses a field, the version
stays put, and old records deserialize into silently wrong objects.

The guard re-extracts ``SCHEMA_VERSION`` and every ``*_to_dict`` key set
from the live AST and compares against the pinned
``analysis/schema_manifest.json``:

- fields changed, version unchanged → **bump SCHEMA_VERSION** (the real
  bug this rule is for);
- version changed, or fields changed alongside a bump → the manifest is
  stale: regenerate it (``python -m repro.analysis.schema_manifest``)
  so the new layout becomes the pinned one.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.analysis import schema_manifest
from repro.analysis.findings import Finding
from repro.analysis.registry import ProjectRule, SeedViolation, register
from repro.analysis.context import Project

_REGEN_HINT = ("regenerate the pinned manifest: "
               "python -m repro.analysis.schema_manifest")


def _def_line(project: Project, func_name: str) -> int:
    """Line of ``def func_name`` in records.py (1 if it vanished)."""
    ctx = project.context(schema_manifest.RECORDS_PATH)
    source = ctx.source
    for lineno, text in enumerate(source.splitlines(), start=1):
        if text.lstrip().startswith(f"def {func_name}("):
            return lineno
    return 1


@register
class SchemaGuardRule(ProjectRule):
    name = "schema-guard"
    description = ("serialized record field sets are pinned in "
                   "analysis/schema_manifest.json; changing them "
                   "without bumping SCHEMA_VERSION fails")
    seed_violation = SeedViolation(
        path="src/repro/runner/records.py",
        replace='        "layers": [layer_timing_to_dict(t) '
                'for t in run.layers],',
        replacement='        "layers": [layer_timing_to_dict(t) '
                    'for t in run.layers],\n        "smoke": 0,')

    def check_project(self, project: Project) -> Iterable[Finding]:
        path = schema_manifest.RECORDS_PATH
        if not project.has_file(path):
            return [Finding(
                path=path, line=1, rule=self.name,
                message="records module is missing entirely",
                hint="the store cannot round-trip results without it")]
        ctx = project.context(path)
        if ctx.tree is None:
            return []     # parse-error is the engine's finding
        live = schema_manifest.extract_manifest(ctx.tree)
        pinned = schema_manifest.load_manifest()

        findings: List[Finding] = []
        live_version = live["schema_version"]
        pinned_version = pinned["schema_version"]
        version_bumped = live_version != pinned_version

        live_records = live["records"]
        pinned_records = pinned["records"]
        for func_name in sorted(set(live_records) | set(pinned_records)):
            live_keys = live_records.get(func_name)
            pinned_keys = pinned_records.get(func_name)
            if live_keys == pinned_keys:
                continue
            line = _def_line(project, func_name)
            if version_bumped:
                findings.append(Finding(
                    path=path, line=line, rule=self.name,
                    message=f"{func_name} fields changed and "
                            f"SCHEMA_VERSION was bumped, but the pinned "
                            f"manifest still records the old layout",
                    hint=_REGEN_HINT))
            else:
                findings.append(Finding(
                    path=path, line=line, rule=self.name,
                    message=f"{func_name} serialized fields changed "
                            f"(pinned {pinned_keys!r}, live {live_keys!r}) "
                            f"without bumping SCHEMA_VERSION",
                    hint="old stored records would decode into wrong "
                         "objects; bump SCHEMA_VERSION, then " + _REGEN_HINT))
        if version_bumped and not findings:
            findings.append(Finding(
                path=path, line=1, rule=self.name,
                message=f"SCHEMA_VERSION is {live_version!r} but the "
                        f"pinned manifest records {pinned_version!r}",
                hint=_REGEN_HINT))
        return findings
