"""tier-parity: every native kernel entry point keeps its slow twins.

The native kernels are *optional accelerators*: correctness is owned by
the pure-Python/numpy tiers, and the equivalence suites pin all tiers
bit-identical.  That contract only holds if it is closed — a new kernel
entry point shipped without a registered fallback (or without an
equivalence test exercising its name) is a silent fork of the model.

Concretely, for every public function in ``repro/utils/native.py`` that
takes arguments and calls ``_load()``:

- it must be a key in the module's ``FALLBACKS`` manifest;
- every fallback target (``"pkg.module:QualName"``) must resolve to a
  real function or method in the live tree;
- its name must appear in at least one file under ``tests/`` (the
  equivalence suite that pins the tiers together).
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, Optional, Set

from repro.analysis.context import Project
from repro.analysis.findings import Finding
from repro.analysis.registry import ProjectRule, SeedViolation, register

NATIVE_PATH = "src/repro/utils/native.py"


def _entry_points(tree: ast.Module) -> Dict[str, int]:
    """Public arg-taking top-level functions that call ``_load()``."""
    entries: Dict[str, int] = {}
    for node in tree.body:
        if not isinstance(node, ast.FunctionDef):
            continue
        if node.name.startswith("_"):
            continue
        if not (node.args.args or node.args.posonlyargs
                or node.args.kwonlyargs or node.args.vararg):
            continue     # available() probes; it accelerates nothing
        calls_load = any(
            isinstance(sub, ast.Call) and isinstance(sub.func, ast.Name)
            and sub.func.id == "_load"
            for sub in ast.walk(node))
        if calls_load:
            entries[node.name] = node.lineno
    return entries


def _fallback_manifest(tree: ast.Module) -> Optional[Dict[str, List[str]]]:
    """The literal ``FALLBACKS`` dict, or None if absent/non-literal."""
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        if not any(isinstance(t, ast.Name) and t.id == "FALLBACKS"
                   for t in node.targets):
            continue
        try:
            value = ast.literal_eval(node.value)
        except ValueError:
            return None
        if isinstance(value, dict):
            return {str(k): [str(v) for v in targets]
                    for k, targets in value.items()}
        return None
    return None


def _resolve_target(project: Project, target: str) -> bool:
    """Does ``pkg.module:Qual.name`` name a real function/method?"""
    if ":" not in target:
        return False
    module, qualname = target.split(":", 1)
    rel_path = "src/" + module.replace(".", "/") + ".py"
    if not project.has_file(rel_path):
        return False
    tree = project.context(rel_path).tree
    if tree is None:
        return False
    scope: Iterable[ast.stmt] = tree.body
    parts = qualname.split(".")
    for i, part in enumerate(parts):
        found = None
        for node in scope:
            if isinstance(node, (ast.FunctionDef, ast.ClassDef)) \
                    and node.name == part:
                found = node
                break
        if found is None:
            return False
        if i == len(parts) - 1:
            return isinstance(found, ast.FunctionDef)
        if not isinstance(found, ast.ClassDef):
            return False
        scope = found.body
    return False


def _tested_names(project: Project) -> Set[str]:
    names: Set[str] = set()
    for rel_path in project.python_files():
        if not rel_path.startswith("tests/"):
            continue
        for match in re.finditer(r"[A-Za-z_][A-Za-z0-9_]*",
                                 project.context(rel_path).source):
            names.add(match.group(0))
    return names


@register
class TierParityRule(ProjectRule):
    name = "tier-parity"
    description = ("every native kernel entry point has registered "
                   "pure-Python fallbacks and an equivalence test "
                   "naming it in tests/")
    seed_violation = SeedViolation(
        path=NATIVE_PATH,
        append=("\n\ndef smoke_kernel(x: int) -> Optional[int]:\n"
                "    lib = _load()\n"
                "    return None if lib is None else x\n"))

    def check_project(self, project: Project) -> Iterable[Finding]:
        if not project.has_file(NATIVE_PATH):
            return []
        tree = project.context(NATIVE_PATH).tree
        if tree is None:
            return []
        entries = _entry_points(tree)
        manifest = _fallback_manifest(tree)
        findings: List[Finding] = []
        if manifest is None:
            findings.append(Finding(
                path=NATIVE_PATH, line=1, rule=self.name,
                message="no literal FALLBACKS manifest mapping each "
                        "kernel entry point to its pure-Python tiers",
                hint="add FALLBACKS = {entry: ['pkg.module:Qual.name', "
                     "...]} near the top of native.py"))
            manifest = {}

        tested = _tested_names(project)
        for entry, lineno in sorted(entries.items()):
            targets = manifest.get(entry)
            if targets is None:
                if manifest:
                    findings.append(Finding(
                        path=NATIVE_PATH, line=lineno, rule=self.name,
                        message=f"kernel entry point {entry}() is not in "
                                f"the FALLBACKS manifest",
                        hint="register its pure-Python/numpy fallback "
                             "tier(s) so the slow path stays owned"))
            else:
                if not targets:
                    findings.append(Finding(
                        path=NATIVE_PATH, line=lineno, rule=self.name,
                        message=f"kernel entry point {entry}() registers "
                                f"an empty fallback list",
                        hint="a kernel with no slow tier cannot be "
                             "equivalence-checked"))
                for target in targets:
                    if not _resolve_target(project, target):
                        findings.append(Finding(
                            path=NATIVE_PATH, line=lineno, rule=self.name,
                            message=f"fallback {target!r} for {entry}() "
                                    f"does not resolve to a function",
                            hint="fix the 'pkg.module:Qual.name' path in "
                                 "FALLBACKS"))
            if entry not in tested:
                findings.append(Finding(
                    path=NATIVE_PATH, line=lineno, rule=self.name,
                    message=f"kernel entry point {entry}() is never "
                            f"named under tests/",
                    hint="add an equivalence test pinning the kernel "
                         "against its fallback tier"))
        # Manifest entries for kernels that no longer exist rot too.
        for entry in sorted(set(manifest) - set(entries)):
            findings.append(Finding(
                path=NATIVE_PATH, line=1, rule=self.name,
                message=f"FALLBACKS registers {entry!r} but no such "
                        f"kernel entry point exists",
                hint="remove the stale manifest entry"))
        return findings
