"""obs-noop-discipline: no recorder calls inside per-access hot loops.

The flight recorder's module API (``obs.span`` / ``obs.incr`` /
``obs.gauge`` / ``obs.absorb``) is a strict no-op while disabled, but a
no-op *call* still costs a global load, an attribute lookup and a frame
— per access, that is exactly the Python-level overhead the vectorized
planes exist to remove, and with recording enabled a per-access counter
floods the trace beyond use.  The discipline: instrument at stage
granularity (per layer, per batch, per drive), never per element.

The rule scopes to the simulation planes (``accel/``, ``dram/``,
``protection/``) and flags any recorder call — an attribute chain rooted
at ``obs`` or a ``recorder``-named object — lexically inside a ``for`` /
``while`` / comprehension within the same function.  Sanctioned
stage-granularity loops (one span per *layer*) carry a line pragma.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.analysis.context import FileContext
from repro.analysis.findings import Finding
from repro.analysis.registry import FileRule, SeedViolation, register

_SCOPES = ("src/repro/accel/", "src/repro/dram/", "src/repro/protection/")
_ROOTS = {"obs", "recorder", "_recorder", "rec"}
_LOOP_NODES = (ast.For, ast.AsyncFor, ast.While, ast.ListComp, ast.SetComp,
               ast.DictComp, ast.GeneratorExp)
_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def _recorder_chain(func: ast.expr) -> str:
    """Dotted text of an attribute chain rooted in a recorder name,
    or '' when the call is not a recorder call."""
    parts: List[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name) and node.id in _ROOTS and parts:
        return ".".join([node.id, *reversed(parts)])
    return ""


@register
class ObsDisciplineRule(FileRule):
    name = "obs-noop-discipline"
    description = ("no recorder calls inside loops in the simulation "
                   "planes (accel/, dram/, protection/); spans only at "
                   "stage granularity")
    seed_violation = SeedViolation(
        path="src/repro/dram/simulator.py",
        append=("\n\ndef _smoke_counted_scan(addrs):\n"
                "    total = 0\n"
                "    for addr in addrs:\n"
                "        obs.incr(\"dram.smoke_scan\")\n"
                "        total += addr\n"
                "    return total\n"))

    def select(self, rel_path: str) -> bool:
        return rel_path.startswith(_SCOPES)

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        assert ctx.tree is not None
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _recorder_chain(node.func)
            if not chain:
                continue
            for ancestor in ctx.ancestors(node):
                if isinstance(ancestor, _FUNC_NODES):
                    break     # loops outside our function don't count
                if isinstance(ancestor, _LOOP_NODES):
                    findings.append(Finding(
                        path=ctx.rel_path, line=node.lineno,
                        col=node.col_offset, rule=self.name,
                        message=f"recorder call {chain}(...) inside a "
                                f"loop in a simulation plane",
                        hint="hoist to stage granularity (count once "
                             "after the loop), or allowlist a sanctioned "
                             "per-stage loop with '# repro: "
                             "allow(obs-noop-discipline)'"))
                    break
        return findings
