"""Built-in ``repro check`` rules.

Importing this package registers every shipped rule (each module's
``@register`` decorator runs at import).  Add a new rule by dropping a
module here and importing it below; ``repro check --list-rules`` and the
CI seed-violation smoke pick it up automatically.
"""

from repro.analysis.rules import (  # noqa: F401
    atomic_write,
    effect_budget,
    fault_isolation,
    fingerprint_purity,
    hot_path,
    lock_discipline,
    obs_discipline,
    schema_guard,
    tier_parity,
)
