"""effect-budget: the paper's math packages stay effect-free.

``analytic``, ``integrity``, ``protection`` and ``tiling`` hold the
closed-form models the reproduction is built on (rooflines, MAC/DRAM
analytics, protection-overhead math, tiling search).  They are pure by
design: every result they produce is a function of their arguments, so
the store's fingerprints stay honest and any function can run under the
evaluation service with no sandboxing questions.  A filesystem or
subprocess effect creeping into one of them is a layering bug by
definition — caching, persistence and process fan-out belong to
``runner/``.

The rule checks the *direct* (module-local) effects of every function
in the pinned-pure packages against the banned set, and pins those
packages' manifest entries so a regression is a reviewable one-line
diff: a pure-package entry in ``effects_manifest.json`` that no longer
matches the live tree is reported with a regenerate hint.  (Transitive
effects are deliberately out of scope here: ``protection`` may call the
optional native-kernel loader, whose compilation effects live — and are
budgeted — in ``utils``.)
"""

from __future__ import annotations

from typing import Iterable, List

from repro.analysis.context import Project
from repro.analysis.effects import manifest as effects_manifest
from repro.analysis.effects.infer import get_analysis
from repro.analysis.effects.model import (
    FILESYSTEM_EFFECTS,
    PROCESS_EFFECTS,
)
from repro.analysis.findings import Finding
from repro.analysis.registry import ProjectRule, SeedViolation, register

#: Effects a pinned-pure package may never perform directly.
BANNED_EFFECTS = frozenset(FILESYSTEM_EFFECTS | PROCESS_EFFECTS)

_MANIFEST_REL = "src/repro/analysis/effects/effects_manifest.json"

_REGEN_HINT = ("regenerate the pinned manifest: "
               "python -m repro.analysis.effects.manifest")


def _in_pure_package(module: str) -> bool:
    return effects_manifest.module_package(module) \
        in effects_manifest.PURE_PACKAGES


@register
class EffectBudgetRule(ProjectRule):
    name = "effect-budget"
    description = ("pure packages (analytic/integrity/protection/"
                   "tiling) perform no filesystem or process effects; "
                   "their manifest entries are pinned")
    seed_violation = SeedViolation(
        path="src/repro/tiling/optblk.py",
        append='\n\ndef _smoke_dump_plan(plan, path):\n'
               '    with open(path, "w") as handle:\n'
               '        handle.write(repr(plan))\n')

    def check_project(self, project: Project) -> Iterable[Finding]:
        analysis = get_analysis(project)
        findings: List[Finding] = []

        # 1. The budget itself: no banned direct effect in any function
        #    of a pinned-pure package, reported at the offending line.
        for qualname in sorted(analysis.functions):
            fe = analysis.functions[qualname]
            if not _in_pure_package(fe.module):
                continue
            banned = fe.direct & BANNED_EFFECTS
            for effect in sorted(banned):
                lines = fe.sites.get(effect, [fe.lineno])
                for lineno in lines:
                    findings.append(Finding(
                        path=fe.rel_path, line=lineno, rule=self.name,
                        message=f"{qualname.split(':', 1)[1]} performs "
                                f"a {effect} effect inside pure "
                                f"package "
                                f"{effects_manifest.module_package(fe.module)}",
                        hint="pure packages compute; persistence and "
                             "process fan-out belong to runner/ — "
                             "move the effect behind an injected "
                             "callback or into the runner layer"))

        # 2. Manifest pinning for the pure packages: drift between the
        #    live inference and the committed manifest must be explicit.
        try:
            pinned = effects_manifest.load_manifest()
        except (FileNotFoundError, ValueError):
            findings.append(Finding(
                path=_MANIFEST_REL, line=1, rule=self.name,
                message="pinned effects manifest is missing or "
                        "unreadable",
                hint=_REGEN_HINT))
            return findings
        pinned_modules = pinned.get("modules", {})
        live_modules = {name for name in analysis.graph.modules
                        if _in_pure_package(name)}
        pinned_pure = {name for name in pinned_modules
                       if _in_pure_package(name)}
        for name in sorted(live_modules | pinned_pure):
            if name not in live_modules:
                findings.append(Finding(
                    path=_MANIFEST_REL, line=1, rule=self.name,
                    message=f"manifest pins pure module {name} which "
                            f"no longer exists",
                    hint=_REGEN_HINT))
                continue
            live_direct, _ = analysis.module_summary(name)
            entry = pinned_modules.get(name)
            if entry is None:
                findings.append(Finding(
                    path=_MANIFEST_REL, line=1, rule=self.name,
                    message=f"pure module {name} is missing from the "
                            f"pinned manifest",
                    hint=_REGEN_HINT))
            elif sorted(live_direct) != entry.get("direct"):
                info = analysis.graph.modules[name]
                findings.append(Finding(
                    path=info.rel_path, line=1, rule=self.name,
                    message=f"direct effects of pure module {name} "
                            f"drifted from the pinned manifest "
                            f"(pinned {entry.get('direct')!r}, live "
                            f"{sorted(live_direct)!r})",
                    hint="if the change is intentional and still "
                         "within budget, " + _REGEN_HINT))
        return findings
