"""Project and per-file context handed to lint rules.

One :class:`Project` wraps a repository root; rules pull parsed
:class:`FileContext` objects from it.  Parsing is cached per file, so a
rule set touching the same module many times (the common case — most
rules scope to ``src/repro``) parses each file exactly once per run.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterator, List, Optional

from repro.analysis.pragmas import PragmaIndex, parse_pragmas

#: Directory names never walked for source files.
_SKIP_DIRS = {"__pycache__", ".git", ".ruff_cache", ".mypy_cache",
              ".pytest_cache", "build", "dist"}


class FileContext:
    """One parsed source file: text, AST, parent links, pragmas.

    ``parents`` maps every AST node to its parent, so rules can ask
    structural questions ("is this call wrapped in ``sorted()``?", "is
    this statement inside a loop?") without re-walking the tree.
    """

    def __init__(self, project: "Project", rel_path: str):
        self.project = project
        self.rel_path = rel_path
        self.abs_path = project.root / rel_path
        self._source: Optional[str] = None
        self._tree: Optional[ast.Module] = None
        self._parents: Optional[Dict[ast.AST, ast.AST]] = None
        self._pragmas: Optional[PragmaIndex] = None
        self.parse_error: Optional[SyntaxError] = None

    @property
    def source(self) -> str:
        if self._source is None:
            self._source = self.abs_path.read_text(encoding="utf-8")
        return self._source

    @property
    def tree(self) -> Optional[ast.Module]:
        """The parsed module, or ``None`` on a syntax error (recorded in
        ``parse_error``; the engine reports it as a finding)."""
        if self._tree is None and self.parse_error is None:
            try:
                self._tree = ast.parse(self.source, filename=self.rel_path)
            except SyntaxError as exc:
                self.parse_error = exc
        return self._tree

    @property
    def parents(self) -> Dict[ast.AST, ast.AST]:
        if self._parents is None:
            parents: Dict[ast.AST, ast.AST] = {}
            tree = self.tree
            if tree is not None:
                for node in ast.walk(tree):
                    for child in ast.iter_child_nodes(node):
                        parents[child] = node
            self._parents = parents
        return self._parents

    @property
    def pragmas(self) -> PragmaIndex:
        if self._pragmas is None:
            self._pragmas = parse_pragmas(self.source)
        return self._pragmas

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Walk ``node``'s parent chain up to the module."""
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)


class Project:
    """A checked-out repository as the rules see it."""

    def __init__(self, root: Path):
        self.root = Path(root).resolve()
        self._contexts: Dict[str, FileContext] = {}
        self._files: Optional[List[str]] = None

    def validate(self) -> None:
        if not (self.root / "src" / "repro").is_dir():
            raise FileNotFoundError(
                f"{self.root} does not look like a repro checkout "
                f"(no src/repro/); pass --root")

    def python_files(self) -> List[str]:
        """Every ``.py`` file under ``src/`` and ``tests/``, sorted
        (deterministic order — the walk itself must not depend on
        directory enumeration order)."""
        if self._files is None:
            files: List[str] = []
            for top in ("src", "tests"):
                base = self.root / top
                if not base.is_dir():
                    continue
                for path in sorted(base.rglob("*.py")):
                    if _SKIP_DIRS.intersection(path.parts):
                        continue
                    files.append(path.relative_to(self.root).as_posix())
            self._files = sorted(files)
        return self._files

    def context(self, rel_path: str) -> FileContext:
        ctx = self._contexts.get(rel_path)
        if ctx is None:
            ctx = self._contexts[rel_path] = FileContext(self, rel_path)
        return ctx

    def has_file(self, rel_path: str) -> bool:
        return (self.root / rel_path).is_file()
