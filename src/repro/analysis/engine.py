"""The ``repro check`` engine: run rules, apply pragmas, render output.

Orchestration only — the interesting logic lives in the rules.  The
engine walks the tree once, runs each selected rule, drops findings the
file's pragmas allowlist, reports syntax errors and typoed pragmas as
findings of their own (``parse-error`` / ``bad-pragma``), and renders
text or the stable JSON document ``--json`` promises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.context import Project
from repro.analysis.findings import Finding
from repro.analysis.registry import RULES, Rule, get_rules

#: Schema version of the ``repro check --json`` document.
JSON_SCHEMA_VERSION = 1

#: Pseudo-rule names the engine itself reports under.  They are valid
#: pragma targets like any rule (``# repro: allow(bad-pragma)`` is how
#: a fixture carrying a deliberately unknown pragma stays clean).
ENGINE_RULES = ("parse-error", "bad-pragma")


@dataclass
class CheckResult:
    """Everything one ``repro check`` run produced."""

    root: str
    rules: List[str]
    findings: List[Finding] = field(default_factory=list)

    @property
    def counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts

    def as_dict(self) -> Dict[str, Any]:
        return {
            "schema": JSON_SCHEMA_VERSION,
            "root": self.root,
            "rules": list(self.rules),
            "findings": [f.as_dict() for f in self.findings],
            "counts": self.counts,
        }


def _pragma_findings(project: Project, known: Sequence[str]) -> List[Finding]:
    """A typoed pragma is a finding: it suppresses nothing and hides
    the intent to suppress something."""
    known_set = set(known) | set(ENGINE_RULES)
    findings = []
    for rel_path in project.python_files():
        pragmas = project.context(rel_path).pragmas
        for line, rule in pragmas.mentions:
            if rule not in known_set:
                findings.append(Finding(
                    path=rel_path, line=line, rule="bad-pragma",
                    message=f"pragma names unknown rule {rule!r}",
                    hint=f"known rules: {', '.join(sorted(known_set))}"))
    return findings


def _parse_error_findings(project: Project,
                          touched: Sequence[str]) -> List[Finding]:
    findings = []
    for rel_path in touched:
        ctx = project.context(rel_path)
        if ctx.tree is None and ctx.parse_error is not None:
            findings.append(Finding(
                path=rel_path, line=ctx.parse_error.lineno or 1,
                rule="parse-error",
                message=f"file does not parse: {ctx.parse_error.msg}",
                hint="repro check needs a syntactically valid tree"))
    return findings


def run_check(root: Path, rule_names: Optional[Sequence[str]] = None,
              ) -> CheckResult:
    """Run the selected rules (all by default) against ``root``.

    Returns every surviving finding, sorted by ``(path, line, rule)``.
    Pragma suppression is applied here, centrally, so no rule needs to
    know pragmas exist.
    """
    rules = get_rules(rule_names)
    project = Project(Path(root))
    project.validate()

    findings: List[Finding] = []
    for rule in rules:
        for finding in rule.run(project):
            pragmas = project.context(finding.path).pragmas \
                if project.has_file(finding.path) else None
            if pragmas is not None and pragmas.allows(rule.name,
                                                      finding.line):
                continue
            findings.append(finding)

    # Engine findings: files that do not parse, pragmas naming rules
    # that do not exist.  Both validated against the full registry even
    # under --rule, so a subset run never mislabels a good pragma.
    touched = project.python_files()
    for finding in _parse_error_findings(project, touched) \
            + _pragma_findings(project, list(RULES)):
        pragmas = project.context(finding.path).pragmas
        if not pragmas.allows(finding.rule, finding.line):
            findings.append(finding)

    findings.sort()
    return CheckResult(root=str(project.root),
                       rules=[r.name for r in rules],
                       findings=findings)


def render_text(result: CheckResult) -> str:
    """Human-readable report (what ``repro check`` prints)."""
    if not result.findings:
        return (f"repro check: clean "
                f"({len(result.rules)} rules, root {result.root})")
    lines = [finding.render() for finding in result.findings]
    counts = ", ".join(f"{name}: {count}"
                       for name, count in sorted(result.counts.items()))
    lines.append(f"repro check: {len(result.findings)} finding(s) "
                 f"({counts})")
    return "\n".join(lines)


def list_rules() -> List[Rule]:
    """Registered rules in registration order (``--list-rules``)."""
    return get_rules(None)
