"""Physical address -> (channel, bank, row) mapping.

Block-interleaved channel mapping (consecutive 64 B blocks round-robin
across channels) with row-major bank filling inside each channel:
a channel-local row fills ``row_bytes`` before moving to the next bank —
the RoBaCoCh-style mapping DRAM simulators default to for streaming
accelerators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.dram.timing import DramConfig


@dataclass(frozen=True)
class AddressMapping:
    """Vectorized address decomposition for one :class:`DramConfig`."""

    config: DramConfig

    def decompose(self, addrs: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(channel, bank, row) arrays for block-aligned byte addresses."""
        cfg = self.config
        block_idx = addrs // cfg.block_bytes
        channel = (block_idx % cfg.channels).astype(np.int64)
        local = block_idx // cfg.channels          # channel-local block index
        col_blocks = cfg.blocks_per_row
        bank = ((local // col_blocks) % cfg.banks_per_channel).astype(np.int64)
        row = (local // (col_blocks * cfg.banks_per_channel)).astype(np.int64)
        return channel, bank, row

    def decompose_one(self, addr: int) -> Tuple[int, int, int]:
        channel, bank, row = self.decompose(np.asarray([addr], dtype=np.uint64))
        return int(channel[0]), int(bank[0]), int(row[0])
