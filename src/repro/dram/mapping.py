"""Physical address -> (channel, bank, row) mapping.

Block-interleaved channel mapping (consecutive 64 B blocks round-robin
across channels) with row-major bank filling inside each channel:
a channel-local row fills ``row_bytes`` before moving to the next bank —
the RoBaCoCh-style mapping DRAM simulators default to for streaming
accelerators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.dram.timing import DramConfig


def _shift_of(value: int) -> int:
    """log2 of a power of two, or -1 when ``value`` is not one."""
    return value.bit_length() - 1 if value & (value - 1) == 0 else -1


@dataclass(frozen=True)
class AddressMapping:
    """Vectorized address decomposition for one :class:`DramConfig`."""

    config: DramConfig

    def decompose(self, addrs: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(channel, bank, row) arrays for block-aligned byte addresses."""
        cfg = self.config
        col_blocks = cfg.blocks_per_row
        block_shift = _shift_of(cfg.block_bytes)
        channel_shift = _shift_of(cfg.channels)
        col_shift = _shift_of(col_blocks)
        bank_shift = _shift_of(cfg.banks_per_channel)
        if min(block_shift, channel_shift, col_shift, bank_shift) >= 0:
            # All divisors are powers of two (the common configs):
            # shifts and masks vectorize far better than 64-bit divides.
            block_idx = addrs.astype(np.int64) >> block_shift
            channel = block_idx & (cfg.channels - 1)
            local = block_idx >> channel_shift
            bank = (local >> col_shift) & (cfg.banks_per_channel - 1)
            row = local >> (col_shift + bank_shift)
            return channel, bank, row
        block_idx = addrs // cfg.block_bytes
        channel = (block_idx % cfg.channels).astype(np.int64)
        local = block_idx // cfg.channels          # channel-local block index
        bank = ((local // col_blocks) % cfg.banks_per_channel).astype(np.int64)
        row = (local // (col_blocks * cfg.banks_per_channel)).astype(np.int64)
        return channel, bank, row

    def decompose_one(self, addr: int) -> Tuple[int, int, int]:
        channel, bank, row = self.decompose(np.asarray([addr], dtype=np.uint64))
        return int(channel[0]), int(bank[0]), int(row[0])
