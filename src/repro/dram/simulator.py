"""Trace-driven DRAM simulation.

Both engines consume a :class:`repro.accel.trace.BlockStream` (64-byte
block accesses with issue cycles) and report how long the memory system
is busy serving it, in accelerator cycles.

The **reference model** (:meth:`DramSim.simulate`) walks requests in issue
order, tracking per-bank open rows and ready times plus per-channel data
bus occupancy; it reports both busy time and completion time.

The **fast model** (:meth:`DramSim.simulate_fast`) computes the same
busy-time quantity with numpy: per channel, data-bus occupancy is
``requests * burst``, and row-buffer conflicts (counted exactly, in issue
order, per bank) add an activation penalty discounted by bank-level
overlap. Tests validate it against the reference model on a range of
synthetic and real traces.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.accel.trace import BlockStream
from repro.dram.mapping import AddressMapping, _shift_of
from repro.dram.timing import DramConfig
from repro.utils import native
from repro.utils.sorting import stable_order

#: Fixed cycle span for composite (bank, cycle) sort keys, so a stream's
#: sorted geometry can be memoized and merged against other streams.
_KEY_SPAN = 1 << 41


@dataclass
class DramResult:
    """Outcome of serving one block stream."""

    requests: int
    row_hits: int
    row_misses: int
    busy_cycles: float           # max per-channel busy time (the bottleneck)
    completion_cycle: Optional[float]  # reference model only
    per_channel_requests: List[int]
    per_channel_busy: List[float]
    #: Row-conflict counts per channel — the integer inputs the analytic
    #: ``@bN`` derivation extrapolates before recomputing busy time.
    per_channel_row_misses: Optional[List[int]] = None

    @property
    def row_hit_rate(self) -> float:
        if self.requests == 0:
            return 0.0
        return self.row_hits / self.requests

    @property
    def total_bytes(self) -> int:
        return self.requests * 64


class DramSim:
    """DRAM timing simulator for one configuration and NPU clock."""

    def __init__(self, config: DramConfig, freq_ghz: float):
        if freq_ghz <= 0:
            raise ValueError("freq_ghz must be positive")
        self.config = config
        self.freq_ghz = freq_ghz
        self.mapping = AddressMapping(config)
        self._burst_cyc = config.to_cycles(config.burst_ns, freq_ghz)
        self._miss_cyc = config.to_cycles(
            config.timing.row_miss_penalty_ns, freq_ghz)
        shifts = (_shift_of(config.block_bytes), _shift_of(config.channels),
                  _shift_of(config.blocks_per_row),
                  _shift_of(config.banks_per_channel))
        #: Power-of-two mapping shifts for the fused native geometry
        #: kernel; None disables it (exotic non-power-of-two configs).
        self._geom_shifts = shifts if min(shifts) >= 0 else None

    @staticmethod
    def _conflict_mask(sorted_bank: np.ndarray,
                       sorted_row: np.ndarray) -> np.ndarray:
        """Row-conflict flags over bank-sorted arrays.

        Within each bank the input preserves issue order, so the first
        access of a bank and every row change between neighbours is a
        conflict — identical to walking the stream with per-bank
        open-row registers. Shared by the reference, fast, and batched
        models so conflict semantics live in exactly one place.
        """
        n = len(sorted_bank)
        new_bank = np.empty(n, dtype=bool)
        new_bank[0] = True
        np.not_equal(sorted_bank[1:], sorted_bank[:-1], out=new_bank[1:])
        row_change = np.empty(n, dtype=bool)
        row_change[0] = True
        np.not_equal(sorted_row[1:], sorted_row[:-1], out=row_change[1:])
        return new_bank | row_change

    def _issue_order_misses(self, channels: np.ndarray, banks: np.ndarray,
                            rows: np.ndarray):
        """Exact row-conflict flags in issue order, vectorized.

        Returns ``(miss_mask_issue_order, miss_counts_per_channel)``.
        """
        cfg = self.config
        n = len(channels)
        global_bank = channels * cfg.banks_per_channel + banks
        order = stable_order(global_bank,
                              max(1, int(global_bank.max()).bit_length()))
        sorted_bank = global_bank[order]
        miss_sorted = self._conflict_mask(sorted_bank, rows[order])
        miss_channel = sorted_bank[miss_sorted] // cfg.banks_per_channel
        miss_counts = np.bincount(miss_channel, minlength=cfg.channels)
        miss_mask = np.empty(n, dtype=bool)
        miss_mask[order] = miss_sorted
        return miss_mask, miss_counts

    # -- reference event-driven model --

    def simulate(self, stream: BlockStream) -> DramResult:
        """Event-driven service of ``stream`` in issue order.

        Row hit/miss classification, per-channel busy time, and every
        per-request quantity the completion recurrence consumes are
        computed vectorized (per-bank segmentation via packed value
        sorts); only the irreducible scalar carry — the bus/bank
        ready-time coupling in :meth:`_channel_completion` — remains
        sequential, and it runs natively when a kernel is available.
        """
        cfg = self.config
        n = len(stream)
        if n == 0:
            return DramResult(0, 0, 0, 0.0, 0.0,
                              [0] * cfg.channels, [0.0] * cfg.channels,
                              [0] * cfg.channels)
        cyc_bits = max(1, int(stream.cycles.max()).bit_length())
        order = stable_order(stream.cycles, cyc_bits)
        cycles = stream.cycles[order]
        channels, banks, rows = self.mapping.decompose(stream.addrs[order])

        miss_mask, miss_counts = self._issue_order_misses(channels, banks,
                                                          rows)
        misses = int(miss_counts.sum())
        counts = np.bincount(channels, minlength=cfg.channels)
        # The data bus is held only for the burst; the activate phase of
        # a miss overlaps with other banks' transfers — with B banks,
        # 1/B of each penalty surfaces as channel busy time.
        busy = (counts * self._burst_cyc
                + miss_counts * (self._miss_cyc / cfg.banks_per_channel))

        burst = self._burst_cyc
        miss_service = self._miss_cyc + burst
        completion = 0.0
        channel_order = stable_order(
            channels, max(1, int(channels.max()).bit_length()))
        boundaries = np.searchsorted(channels[channel_order],
                                     np.arange(cfg.channels + 1))
        for ch in range(cfg.channels):
            idx = channel_order[boundaries[ch]:boundaries[ch + 1]]
            if not len(idx):
                continue
            service = np.where(miss_mask[idx], miss_service, burst)
            completion = max(completion, self._channel_completion(
                cycles[idx].astype(np.float64), banks[idx], service, burst))

        return DramResult(
            requests=n,
            row_hits=n - misses,
            row_misses=misses,
            busy_cycles=float(busy.max()),
            completion_cycle=completion,
            per_channel_requests=counts.tolist(),
            per_channel_busy=busy.tolist(),
            per_channel_row_misses=miss_counts.tolist(),
        )

    def _channel_completion(self, arrivals: np.ndarray, banks: np.ndarray,
                            service: np.ndarray, burst: float) -> float:
        """Completion time of one channel's request sequence.

        The carry is the least fixpoint of

            ready[i] = max(arrival[i], ready[i-1] + burst,
                           ready[prev_same_bank(i)] + service[prev])

        Arrivals, bank ids and per-request service times are prepared
        vectorized; only this recurrence remains sequential (bank-chain
        critical paths defeat batched relaxation on row-interleaved
        mappings), and it runs in the native kernel when one is
        available — float64-identical to the Python carry below.
        """
        nbanks = self.config.banks_per_channel
        done = native.dram_completion(arrivals, banks, service, burst,
                                      nbanks)
        if done is not None:
            return done
        bank_ready = [0.0] * nbanks
        bus_free = 0.0
        completion = 0.0
        # Reference scalar carry (the bus/bank recurrence is inherently
        # sequential); the native kernel above is the fast tier and the
        # equivalence suite pins both bit-identical.
        # repro: allow(hot-path-hygiene)
        for arrival, bank, sv in zip(arrivals.tolist(), banks.tolist(),
                                     service.tolist()):
            ready = arrival
            if bank_ready[bank] > ready:
                ready = bank_ready[bank]
            if bus_free > ready:
                ready = bus_free
            finish = ready + sv
            bus_free = ready + burst
            bank_ready[bank] = finish
            if finish > completion:
                completion = finish
        return completion

    # -- vectorized fast model --

    @staticmethod
    def _bank_miss_counts(global_bank: np.ndarray, cycles: np.ndarray,
                          rows: np.ndarray, banks_per_channel: int,
                          minlength: int) -> np.ndarray:
        """Row-conflict counts per channel (or per segment-channel).

        Issue order within a bank is ``(cycle, arrival position)``;
        sorting once by the composite ``(bank, cycle)`` key — stable, so
        arrival position breaks ties — yields exactly the per-bank
        sequences the event model walks, and a row change between
        neighbours of the same bank is a conflict.
        """
        cyc_bits = max(1, int(cycles.max()).bit_length())
        gb_bits = max(1, int(global_bank.max()).bit_length())
        if gb_bits + cyc_bits <= 62:
            order = stable_order((global_bank << cyc_bits) | cycles,
                                  gb_bits + cyc_bits)
        else:  # composite key would overflow; two stable passes instead
            order = np.lexsort((cycles, global_bank))
        sorted_bank = global_bank[order]
        miss_mask = DramSim._conflict_mask(sorted_bank, rows[order])
        return np.bincount(sorted_bank[miss_mask] // banks_per_channel,
                           minlength=minlength)

    def simulate_fast(self, stream: BlockStream) -> DramResult:
        """Busy-time estimate of serving ``stream`` (numpy, no event loop)."""
        cfg = self.config
        n = len(stream)
        if n == 0:
            return DramResult(0, 0, 0, 0.0, None,
                              [0] * cfg.channels, [0.0] * cfg.channels,
                              [0] * cfg.channels)
        channels, banks, rows = self.mapping.decompose(stream.addrs)
        global_bank = channels * cfg.banks_per_channel + banks
        miss_counts = self._bank_miss_counts(
            global_bank, stream.cycles, rows, cfg.banks_per_channel,
            cfg.channels)
        misses = int(miss_counts.sum())

        # Per-channel accounting. Activation penalties overlap with other
        # banks' bursts; with B banks, roughly (B-1)/B of each penalty
        # hides under concurrent transfers.
        counts = np.bincount(channels, minlength=cfg.channels)
        overlap = 1.0 / cfg.banks_per_channel
        busy = counts * self._burst_cyc + miss_counts * self._miss_cyc * overlap

        return DramResult(
            requests=n,
            row_hits=n - misses,
            row_misses=misses,
            busy_cycles=float(busy.max()),
            completion_cycle=None,
            per_channel_requests=counts.tolist(),
            per_channel_busy=busy.tolist(),
            per_channel_row_misses=miss_counts.tolist(),
        )

    def simulate_fast_batch(self, streams: List[BlockStream]) -> List[DramResult]:
        """Fast-model service of many independent streams in one pass.

        Each stream is served by a cold memory system, exactly like
        calling :meth:`simulate_fast` per stream.
        """
        return self.simulate_fast_batch_parts([(s,) for s in streams])

    def _sorted_geom(self, stream: BlockStream):
        """Per-stream (channels, bank-sorted gb/rows/keys), memoized.

        The sort key is the composite ``(channel-local bank, cycle)``
        with a fixed cycle span, so the result is independent of which
        batch the stream appears in — layer data streams are shared
        across every scheme in a sweep cell, and their geometry is
        computed once. Relies on streams being immutable once built.
        """
        cfg = self.config
        key = (cfg.channels, cfg.banks_per_channel, cfg.row_bytes,
               cfg.block_bytes)
        cached = getattr(stream, "_dram_geom", None)
        if cached is not None and cached[0] == key:
            return cached[1]
        if len(stream) and int(stream.cycles.max()) >= _KEY_SPAN:
            return None  # composite key would collide; caller falls back
        n = len(stream)
        if n and self._geom_shifts is not None \
                and bool(np.all(stream.cycles[1:] >= stream.cycles[:-1])):
            # Cycle-sorted stream under power-of-two mapping: one fused
            # native pass yields the bank-sorted geometry (stable
            # counting sort by bank preserves issue order) plus the
            # per-channel counts _stream_counts would re-derive.
            got = native.geom_counts(stream.addrs, stream.cycles,
                                     self._geom_shifts, _KEY_SPAN,
                                     cfg.channels)
            if got is not None:
                channel, gb_s, rows_s, key_s, req, con = got
                geom = (channel, gb_s, rows_s, key_s)
                stream._dram_geom = (key, geom)
                stream._dram_counts = (geom, req, con)
                return geom
        channels, banks, rows = self.mapping.decompose(stream.addrs)
        gb = channels * cfg.banks_per_channel + banks
        cyc_bits = max(1, int(stream.cycles.max()).bit_length()) if n else 1
        gb_bits = max(1, int(gb.max()).bit_length()) if n else 1
        idx_bits = max(1, int(n - 1).bit_length()) if n else 1
        if n and gb_bits + cyc_bits + idx_bits <= 62:
            packed = ((((gb << cyc_bits) | stream.cycles) << idx_bits)
                      | np.arange(n, dtype=np.int64))
            packed.sort()
            order = packed & ((1 << idx_bits) - 1)
            gb_sorted = packed >> (cyc_bits + idx_bits)
            cyc_sorted = (packed >> idx_bits) & ((1 << cyc_bits) - 1)
            geom = (channels, gb_sorted, rows[order],
                    gb_sorted * _KEY_SPAN + cyc_sorted)
        else:
            sort_key = gb * _KEY_SPAN + stream.cycles
            order = np.argsort(sort_key, kind="stable")
            geom = (channels, gb[order], rows[order], sort_key[order])
        stream._dram_geom = (key, geom)
        return geom

    def _stream_counts(self, stream: BlockStream, geom):
        """Per-channel (requests, row-conflicts) of one stream, memoized.

        A layer's data stream is served (virtually concatenated with a
        scheme's metadata) by every scheme in a sweep cell; its internal
        conflict structure never changes, so it is computed once and the
        batched model only accounts the metadata *insertions*.
        """
        if stream is not None:
            cached = getattr(stream, "_dram_counts", None)
            if cached is not None and cached[0] is geom:
                return cached[1], cached[2]
        cfg = self.config
        _, gb, rows, _ = geom
        flags = self._conflict_mask(gb, rows)
        conflicts = np.bincount(gb[flags] // cfg.banks_per_channel,
                                minlength=cfg.channels)
        requests = np.bincount(gb // cfg.banks_per_channel,
                               minlength=cfg.channels)
        if stream is not None:
            stream._dram_counts = (geom, requests, conflicts)
        return requests, conflicts

    @staticmethod
    def _drop_lead_cache(sim_ref, generation) -> None:
        sim = sim_ref()
        if sim is not None:
            cached = getattr(sim, "_lead_cache", None)
            if cached is not None and cached[0] is generation:
                sim._lead_cache = None

    def _insertion_counts(self, entries):
        """Exact per-(entry, channel) request/conflict counts for
        ``(data, metadata)`` stream pairs without materializing merges.

        Each metadata access lands inside a bank's data sequence; its
        own conflict flag depends on its in-bank predecessor, and the
        data element that now follows an insertion run re-evaluates its
        flag against the run's last row.  Those corrections are the only
        thing the merge changes, so the batched model adds them to the
        memoized per-stream counts.  Returns ``(requests, conflicts)``
        flattened over ``len(entries) * channels``, or ``None`` when the
        segment-offset keys would overflow (caller merges instead).
        """
        cfg = self.config
        nch = cfg.channels
        bpc = cfg.banks_per_channel
        nbanks = nch * bpc
        nseg = len(entries)
        requests = np.zeros(nseg * nch, np.int64)
        conflicts = np.zeros(nseg * nch, np.int64)
        pair_rows = [k for k, e in enumerate(entries) if len(e) == 2]
        for k, pairs in enumerate(entries):
            stream, geom = pairs[0]
            req, con = self._stream_counts(stream, geom)
            requests[k * nch:(k + 1) * nch] += req
            conflicts[k * nch:(k + 1) * nch] += con
        if not pair_rows:
            return requests, conflicts

        # Native path: one merge scan per (data, metadata) entry, in
        # place over the memoized geometry arrays — no concatenated
        # copies, no composite-key packing, no overflow fallback.
        if native.available():
            req_ins = np.zeros(nseg * nch, np.int64)
            con_ins = np.zeros(nseg * nch, np.int64)
            for k in pair_rows:
                geom_a = entries[k][0][1]
                geom_b = entries[k][1][1]
                sl = slice(k * nch, (k + 1) * nch)
                if not native.insertion_scan(
                        geom_a[3], None, geom_a[1], geom_a[2],
                        geom_b[3], None, geom_b[1], geom_b[2],
                        nbanks, bpc, req_ins[sl], con_ins[sl]):
                    break
            else:
                return requests + req_ins, conflicts + con_ins

        # The first (data) part of every entry is shared by each scheme
        # in a sweep cell; cache its concatenated side keyed on the geom
        # object identities.  The cache holds only weak references to
        # the keying arrays, and a finalizer drops the slot when the
        # cell's streams are garbage collected, so the concatenated
        # copies never outlive the sweep cell they serve.
        lead_keys = [entries[k][0][1][3] for k in range(nseg)]
        cached = getattr(self, "_lead_cache", None)
        if (cached is not None and len(cached[0]) == nseg
                and all(ref() is arr for ref, arr in zip(cached[0],
                                                         lead_keys))):
            key_a, gb_a, rows_a, seg_a = cached[1]
        else:
            lead_geoms = [entries[k][0][1] for k in range(nseg)]
            key_a = np.concatenate([g[3] for g in lead_geoms])
            gb_a = np.concatenate([g[1] for g in lead_geoms])
            rows_a = np.concatenate([g[2] for g in lead_geoms])
            sizes_a = np.array([len(g[3]) for g in lead_geoms], np.int64)
            seg_a = np.repeat(np.arange(nseg, dtype=np.int64), sizes_a)
            refs = [weakref.ref(a) for a in lead_keys]
            self._lead_cache = (refs, (key_a, gb_a, rows_a, seg_a))
            # Generation-guarded: a stale finalizer from an earlier cell
            # must not drop a newer cache (and holding `self` weakly
            # keeps the finalizer from pinning the simulator alive).
            weakref.finalize(lead_keys[0], DramSim._drop_lead_cache,
                             weakref.ref(self), refs)
        key_b = np.concatenate([entries[k][1][1][3] for k in pair_rows])
        gb_b = np.concatenate([entries[k][1][1][1] for k in pair_rows])
        rows_b = np.concatenate([entries[k][1][1][2] for k in pair_rows])
        sizes_b = np.array([len(entries[k][1][1][3]) for k in pair_rows],
                           np.int64)
        seg_b = np.repeat(np.asarray(pair_rows, np.int64), sizes_b)
        key_bits = max(1, int(max(int(key_a.max()), int(key_b.max())))
                       .bit_length())
        if key_bits + max(1, int(nseg).bit_length()) > 62:
            return None
        off = np.int64(1) << key_bits
        gbo_a = gb_a + seg_a * nbanks
        gbo_b = gb_b + seg_b * nbanks
        nb = len(key_b)

        # metadata request counts
        requests += np.bincount(gbo_b // bpc, minlength=nseg * nch)

        ins = np.searchsorted(key_a + seg_a * off, key_b + seg_b * off,
                              side="right")
        p = ins - 1
        same_prev = (p >= 0) & (gbo_a[np.maximum(p, 0)] == gbo_b)
        run_first = np.empty(nb, dtype=bool)
        run_first[0] = True
        run_first[1:] = (ins[1:] != ins[:-1]) | (gbo_b[1:] != gbo_b[:-1])

        # metadata elements' own conflict flags
        flag_b = np.empty(nb, dtype=bool)
        chain = ~run_first
        flag_b[chain] = rows_b[np.flatnonzero(chain)] \
            != rows_b[np.flatnonzero(chain) - 1]
        fi = np.flatnonzero(run_first)
        with_prev = same_prev[fi]
        flag_b[fi[with_prev]] = rows_b[fi[with_prev]] \
            != rows_a[p[fi[with_prev]]]
        flag_b[fi[~with_prev]] = True
        conflicts += np.bincount(gbo_b[flag_b] // bpc,
                                 minlength=nseg * nch)

        # the data element following each insertion run re-evaluates
        last = np.append(fi[1:], nb) - 1
        f = ins[last]
        valid = (f < len(key_a)) & (gbo_a[np.minimum(f, len(key_a) - 1)]
                                    == gbo_b[last])
        fv = f[valid]
        lv = last[valid]
        pv = p[lv]
        had_prev = same_prev[lv]
        old_flag = np.where(had_prev, rows_a[fv] != rows_a[np.maximum(pv, 0)],
                            True)
        new_flag = rows_a[fv] != rows_b[lv]
        delta = new_flag.astype(np.int64) - old_flag.astype(np.int64)
        nz = delta != 0
        np.add.at(conflicts, gbo_b[lv[nz]] // bpc, delta[nz])
        return requests, conflicts

    @staticmethod
    def _merge_entries(entry_geoms, nbanks: int):
        """Merge every entry's (one or two) bank-sorted geometries in one
        batched pass.

        Entries stay disjoint through a per-entry bank offset (exactly
        the segmentation the conflict scan needs); the pairwise merges
        collapse into a single offset-keyed ``searchsorted`` instead of
        one Python round per entry.  Returns the concatenated
        ``(sorted_bank, sorted_rows)`` arrays in entry order.
        """
        nseg = len(entry_geoms)
        a_gb = [g[0][1] for g in entry_geoms]
        a_rows = [g[0][2] for g in entry_geoms]
        pairs = [k for k, g in enumerate(entry_geoms) if len(g) == 2]
        seg_a = np.repeat(np.arange(nseg, dtype=np.int64),
                          [len(x) for x in a_gb])
        gb_a = np.concatenate(a_gb) + seg_a * nbanks
        rows_a = np.concatenate(a_rows)
        if not pairs:
            return gb_a, rows_a

        key_a = np.concatenate([entry_geoms[k][0][3] for k in range(nseg)])
        key_b = np.concatenate([entry_geoms[k][1][3] for k in pairs])
        seg_b = np.repeat(np.asarray(pairs, dtype=np.int64),
                          [len(entry_geoms[k][1][3]) for k in pairs])
        key_bits = max(1, int(max(int(key_a.max()),
                                  int(key_b.max() if len(key_b) else 0))
                              ).bit_length())
        if key_bits + max(1, int(nseg).bit_length()) > 62:
            # Segment-offset keys would overflow: per-entry merges.
            parts_bank, parts_rows = [], []
            for k, geoms in enumerate(entry_geoms):
                merged = geoms[0]
                for extra in geoms[1:]:
                    merged = DramSim._merge_sorted(merged, extra)
                parts_bank.append(merged[1] + k * nbanks)
                parts_rows.append(merged[2])
            return np.concatenate(parts_bank), np.concatenate(parts_rows)
        off = np.int64(1) << key_bits
        gb_b = np.concatenate([entry_geoms[k][1][1] for k in pairs]) \
            + seg_b * nbanks
        rows_b = np.concatenate([entry_geoms[k][1][2] for k in pairs])
        slots = (np.searchsorted(key_a + seg_a * off, key_b + seg_b * off,
                                 side="right")
                 + np.arange(len(key_b)))
        total = len(key_a) + len(key_b)
        mask = np.ones(total, dtype=bool)
        mask[slots] = False
        out_gb = np.empty(total, dtype=np.int64)
        out_rows = np.empty(total, dtype=np.int64)
        out_gb[mask] = gb_a
        out_gb[slots] = gb_b
        out_rows[mask] = rows_a
        out_rows[slots] = rows_b
        return out_gb, out_rows

    @staticmethod
    def _merge_sorted(geom_a, geom_b):
        """Merge two bank-sorted geometries; A wins ties (it precedes B
        in the virtual concatenation, matching a stable sort)."""
        _, gb_a, row_a, key_a = geom_a
        _, gb_b, row_b, key_b = geom_b
        slots = (np.searchsorted(key_a, key_b, side="right")
                 + np.arange(len(key_b)))
        total = len(key_a) + len(key_b)
        mask = np.ones(total, dtype=bool)
        mask[slots] = False
        gb = np.empty(total, dtype=np.int64)
        rows = np.empty(total, dtype=np.int64)
        keys = np.empty(total, dtype=np.int64)
        gb[mask] = gb_a
        gb[slots] = gb_b
        rows[mask] = row_a
        rows[slots] = row_b
        keys[mask] = key_a
        keys[slots] = key_b
        return None, gb, rows, keys

    def simulate_fast_batch_parts(
            self, part_lists: List[Sequence[BlockStream]]) -> List[DramResult]:
        """Fast-model service of many independent streams in one pass.

        Each entry of ``part_lists`` is a sequence of stream parts
        treated as one concatenated stream (the pipeline passes each
        layer's data and metadata streams without materializing the
        combined stream). Results are identical to per-stream
        :meth:`simulate_fast` calls — same ordering, same accounting,
        float-identical — but the heavy work is shared and batched: each
        part's bank-sorted geometry is memoized on the stream
        (:meth:`_sorted_geom`), parts merge in O(n), and conflict
        detection plus busy accounting run once over the concatenation,
        segmented by stream id.
        """
        cfg = self.config
        sizes = [sum(len(p) for p in parts) for parts in part_lists]
        live = [i for i, size in enumerate(sizes) if size]
        results: List[Optional[DramResult]] = [
            None if size else DramResult(0, 0, 0, 0.0, None,
                                         [0] * cfg.channels,
                                         [0.0] * cfg.channels,
                                         [0] * cfg.channels)
            for size in sizes
        ]
        if not live:
            return results  # type: ignore[return-value]

        nbanks = cfg.channels * cfg.banks_per_channel
        entries: List[List[Tuple]] = []
        batched: List[int] = []
        for i in live:
            parts = [p for p in part_lists[i] if len(p)]
            geoms = [self._sorted_geom(p) for p in parts]
            if any(g is None for g in geoms):
                # Cycle values too large for the shared composite key;
                # serve this stream through the standalone fast model.
                results[i] = self.simulate_fast(BlockStream.concat(parts))
                continue
            pairs = list(zip(parts, geoms))
            while len(pairs) > 2:
                # >2 parts (not a pipeline shape): pre-merge the extras
                # into one unmemoized pseudo-part.
                merged = self._merge_sorted(pairs[1][1], pairs[2][1])
                pairs = [pairs[0], (None, merged)] + pairs[3:]
            entries.append(pairs)
            batched.append(i)
        if not batched:
            return results  # type: ignore[return-value]
        live = batched

        got = self._insertion_counts(entries)
        if got is not None:
            counts, miss_counts = got
        else:
            # Segment-offset keys would overflow: materialize merges.
            entry_geoms = [[g for _, g in pairs] for pairs in entries]
            sorted_bank, sorted_rows = self._merge_entries(entry_geoms,
                                                           nbanks)
            miss_mask = self._conflict_mask(sorted_bank, sorted_rows)
            miss_counts = np.bincount(
                sorted_bank[miss_mask] // cfg.banks_per_channel,
                minlength=len(live) * cfg.channels)
            seg = np.repeat(np.arange(len(live), dtype=np.int64),
                            [sizes[i] for i in live])
            counts = np.bincount(
                seg * cfg.channels
                + np.concatenate([g[0] for pairs in entries
                                  for _, g in pairs]),
                minlength=len(live) * cfg.channels)
        overlap = 1.0 / cfg.banks_per_channel
        busy = counts * self._burst_cyc + miss_counts * self._miss_cyc * overlap

        counts = counts.reshape(len(live), cfg.channels)
        miss_counts = miss_counts.reshape(len(live), cfg.channels)
        busy = busy.reshape(len(live), cfg.channels)
        for pos, i in enumerate(live):
            misses = int(miss_counts[pos].sum())
            results[i] = DramResult(
                requests=sizes[i],
                row_hits=sizes[i] - misses,
                row_misses=misses,
                busy_cycles=float(busy[pos].max()),
                completion_cycle=None,
                per_channel_requests=counts[pos].tolist(),
                per_channel_busy=busy[pos].tolist(),
                per_channel_row_misses=miss_counts[pos].tolist(),
            )
        return results  # type: ignore[return-value]
