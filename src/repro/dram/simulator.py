"""Trace-driven DRAM simulation.

Both engines consume a :class:`repro.accel.trace.BlockStream` (64-byte
block accesses with issue cycles) and report how long the memory system
is busy serving it, in accelerator cycles.

The **reference model** (:meth:`DramSim.simulate`) walks requests in issue
order, tracking per-bank open rows and ready times plus per-channel data
bus occupancy; it reports both busy time and completion time.

The **fast model** (:meth:`DramSim.simulate_fast`) computes the same
busy-time quantity with numpy: per channel, data-bus occupancy is
``requests * burst``, and row-buffer conflicts (counted exactly, in issue
order, per bank) add an activation penalty discounted by bank-level
overlap. Tests validate it against the reference model on a range of
synthetic and real traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.accel.trace import BlockStream
from repro.dram.mapping import AddressMapping
from repro.dram.timing import DramConfig

#: Fixed cycle span for composite (bank, cycle) sort keys, so a stream's
#: sorted geometry can be memoized and merged against other streams.
_KEY_SPAN = 1 << 41


@dataclass
class DramResult:
    """Outcome of serving one block stream."""

    requests: int
    row_hits: int
    row_misses: int
    busy_cycles: float           # max per-channel busy time (the bottleneck)
    completion_cycle: Optional[float]  # reference model only
    per_channel_requests: List[int]
    per_channel_busy: List[float]

    @property
    def row_hit_rate(self) -> float:
        if self.requests == 0:
            return 0.0
        return self.row_hits / self.requests

    @property
    def total_bytes(self) -> int:
        return self.requests * 64


class DramSim:
    """DRAM timing simulator for one configuration and NPU clock."""

    def __init__(self, config: DramConfig, freq_ghz: float):
        if freq_ghz <= 0:
            raise ValueError("freq_ghz must be positive")
        self.config = config
        self.freq_ghz = freq_ghz
        self.mapping = AddressMapping(config)
        self._burst_cyc = config.to_cycles(config.burst_ns, freq_ghz)
        self._miss_cyc = config.to_cycles(
            config.timing.row_miss_penalty_ns, freq_ghz)

    @staticmethod
    def _conflict_mask(sorted_bank: np.ndarray,
                       sorted_row: np.ndarray) -> np.ndarray:
        """Row-conflict flags over bank-sorted arrays.

        Within each bank the input preserves issue order, so the first
        access of a bank and every row change between neighbours is a
        conflict — identical to walking the stream with per-bank
        open-row registers. Shared by the reference, fast, and batched
        models so conflict semantics live in exactly one place.
        """
        n = len(sorted_bank)
        new_bank = np.empty(n, dtype=bool)
        new_bank[0] = True
        np.not_equal(sorted_bank[1:], sorted_bank[:-1], out=new_bank[1:])
        row_change = np.empty(n, dtype=bool)
        row_change[0] = True
        np.not_equal(sorted_row[1:], sorted_row[:-1], out=row_change[1:])
        return new_bank | row_change

    def _issue_order_misses(self, channels: np.ndarray, banks: np.ndarray,
                            rows: np.ndarray):
        """Exact row-conflict flags in issue order, vectorized.

        Returns ``(miss_mask_issue_order, miss_counts_per_channel)``.
        """
        cfg = self.config
        n = len(channels)
        global_bank = channels * cfg.banks_per_channel + banks
        order = np.argsort(global_bank, kind="stable")
        sorted_bank = global_bank[order]
        miss_sorted = self._conflict_mask(sorted_bank, rows[order])
        miss_channel = sorted_bank[miss_sorted] // cfg.banks_per_channel
        miss_counts = np.bincount(miss_channel, minlength=cfg.channels)
        miss_mask = np.empty(n, dtype=bool)
        miss_mask[order] = miss_sorted
        return miss_mask, miss_counts

    # -- reference event-driven model --

    def simulate(self, stream: BlockStream) -> DramResult:
        """Event-driven service of ``stream`` in issue order.

        Row hit/miss classification and per-channel busy time are
        order-independent given the per-bank access sequences, so they
        are computed vectorized (per-bank segmentation via stable sort).
        Only the completion-time recurrence — the bus/bank ready-time
        coupling — is inherently sequential; it runs per channel over
        plain Python scalars.
        """
        cfg = self.config
        n = len(stream)
        if n == 0:
            return DramResult(0, 0, 0, 0.0, 0.0,
                              [0] * cfg.channels, [0.0] * cfg.channels)
        order = np.argsort(stream.cycles, kind="stable")
        cycles = stream.cycles[order]
        channels, banks, rows = self.mapping.decompose(stream.addrs[order])

        miss_mask, miss_counts = self._issue_order_misses(channels, banks,
                                                          rows)
        misses = int(miss_counts.sum())
        counts = np.bincount(channels, minlength=cfg.channels)
        # The data bus is held only for the burst; the activate phase of
        # a miss overlaps with other banks' transfers — with B banks,
        # 1/B of each penalty surfaces as channel busy time.
        busy = (counts * self._burst_cyc
                + miss_counts * (self._miss_cyc / cfg.banks_per_channel))

        # Remaining sequential state: per-channel bus/bank recurrence
        # for the completion time, batched to plain Python scalars.
        burst = self._burst_cyc
        miss_service = self._miss_cyc + burst
        completion = 0.0
        channel_order = np.argsort(channels, kind="stable")
        boundaries = np.searchsorted(channels[channel_order],
                                     np.arange(cfg.channels + 1))
        for ch in range(cfg.channels):
            idx = channel_order[boundaries[ch]:boundaries[ch + 1]]
            if not len(idx):
                continue
            arrivals = cycles[idx].tolist()
            ch_banks = banks[idx].tolist()
            ch_miss = miss_mask[idx].tolist()
            bank_ready = [0.0] * cfg.banks_per_channel
            bus_free = 0.0
            for arrival, bank, miss in zip(arrivals, ch_banks, ch_miss):
                ready = max(float(arrival), bank_ready[bank], bus_free)
                service = miss_service if miss else burst
                finish = ready + service
                bus_free = max(bus_free, finish - service) + burst
                bank_ready[bank] = finish
                if finish > completion:
                    completion = finish

        return DramResult(
            requests=n,
            row_hits=n - misses,
            row_misses=misses,
            busy_cycles=float(busy.max()),
            completion_cycle=completion,
            per_channel_requests=counts.tolist(),
            per_channel_busy=busy.tolist(),
        )

    # -- vectorized fast model --

    @staticmethod
    def _bank_miss_counts(global_bank: np.ndarray, cycles: np.ndarray,
                          rows: np.ndarray, banks_per_channel: int,
                          minlength: int) -> np.ndarray:
        """Row-conflict counts per channel (or per segment-channel).

        Issue order within a bank is ``(cycle, arrival position)``;
        sorting once by the composite ``(bank, cycle)`` key — stable, so
        arrival position breaks ties — yields exactly the per-bank
        sequences the event model walks, and a row change between
        neighbours of the same bank is a conflict.
        """
        span = int(cycles.max()) + 1
        if (int(global_bank.max()) + 1) * span < 2 ** 63:
            order = np.argsort(global_bank * span + cycles, kind="stable")
        else:  # composite key would overflow; two stable passes instead
            order = np.lexsort((cycles, global_bank))
        sorted_bank = global_bank[order]
        miss_mask = DramSim._conflict_mask(sorted_bank, rows[order])
        return np.bincount(sorted_bank[miss_mask] // banks_per_channel,
                           minlength=minlength)

    def simulate_fast(self, stream: BlockStream) -> DramResult:
        """Busy-time estimate of serving ``stream`` (numpy, no event loop)."""
        cfg = self.config
        n = len(stream)
        if n == 0:
            return DramResult(0, 0, 0, 0.0, None,
                              [0] * cfg.channels, [0.0] * cfg.channels)
        channels, banks, rows = self.mapping.decompose(stream.addrs)
        global_bank = channels * cfg.banks_per_channel + banks
        miss_counts = self._bank_miss_counts(
            global_bank, stream.cycles, rows, cfg.banks_per_channel,
            cfg.channels)
        misses = int(miss_counts.sum())

        # Per-channel accounting. Activation penalties overlap with other
        # banks' bursts; with B banks, roughly (B-1)/B of each penalty
        # hides under concurrent transfers.
        counts = np.bincount(channels, minlength=cfg.channels)
        overlap = 1.0 / cfg.banks_per_channel
        busy = counts * self._burst_cyc + miss_counts * self._miss_cyc * overlap

        return DramResult(
            requests=n,
            row_hits=n - misses,
            row_misses=misses,
            busy_cycles=float(busy.max()),
            completion_cycle=None,
            per_channel_requests=counts.tolist(),
            per_channel_busy=busy.tolist(),
        )

    def simulate_fast_batch(self, streams: List[BlockStream]) -> List[DramResult]:
        """Fast-model service of many independent streams in one pass.

        Each stream is served by a cold memory system, exactly like
        calling :meth:`simulate_fast` per stream.
        """
        return self.simulate_fast_batch_parts([(s,) for s in streams])

    def _sorted_geom(self, stream: BlockStream):
        """Per-stream (channels, bank-sorted gb/rows/keys), memoized.

        The sort key is the composite ``(channel-local bank, cycle)``
        with a fixed cycle span, so the result is independent of which
        batch the stream appears in — layer data streams are shared
        across every scheme in a sweep cell, and their geometry is
        computed once. Relies on streams being immutable once built.
        """
        cfg = self.config
        key = (cfg.channels, cfg.banks_per_channel, cfg.row_bytes,
               cfg.block_bytes)
        cached = getattr(stream, "_dram_geom", None)
        if cached is not None and cached[0] == key:
            return cached[1]
        if len(stream) and int(stream.cycles.max()) >= _KEY_SPAN:
            return None  # composite key would collide; caller falls back
        channels, banks, rows = self.mapping.decompose(stream.addrs)
        gb = channels * cfg.banks_per_channel + banks
        sort_key = gb * _KEY_SPAN + stream.cycles
        order = np.argsort(sort_key, kind="stable")
        geom = (channels, gb[order], rows[order], sort_key[order])
        stream._dram_geom = (key, geom)
        return geom

    @staticmethod
    def _merge_sorted(geom_a, geom_b):
        """Merge two bank-sorted geometries; A wins ties (it precedes B
        in the virtual concatenation, matching a stable sort)."""
        _, gb_a, row_a, key_a = geom_a
        _, gb_b, row_b, key_b = geom_b
        slots = (np.searchsorted(key_a, key_b, side="right")
                 + np.arange(len(key_b)))
        total = len(key_a) + len(key_b)
        mask = np.ones(total, dtype=bool)
        mask[slots] = False
        gb = np.empty(total, dtype=np.int64)
        rows = np.empty(total, dtype=np.int64)
        keys = np.empty(total, dtype=np.int64)
        gb[mask] = gb_a
        gb[slots] = gb_b
        rows[mask] = row_a
        rows[slots] = row_b
        keys[mask] = key_a
        keys[slots] = key_b
        return None, gb, rows, keys

    def simulate_fast_batch_parts(
            self, part_lists: List[Sequence[BlockStream]]) -> List[DramResult]:
        """Fast-model service of many independent streams in one pass.

        Each entry of ``part_lists`` is a sequence of stream parts
        treated as one concatenated stream (the pipeline passes each
        layer's data and metadata streams without materializing the
        combined stream). Results are identical to per-stream
        :meth:`simulate_fast` calls — same ordering, same accounting,
        float-identical — but the heavy work is shared and batched: each
        part's bank-sorted geometry is memoized on the stream
        (:meth:`_sorted_geom`), parts merge in O(n), and conflict
        detection plus busy accounting run once over the concatenation,
        segmented by stream id.
        """
        cfg = self.config
        sizes = [sum(len(p) for p in parts) for parts in part_lists]
        live = [i for i, size in enumerate(sizes) if size]
        results: List[Optional[DramResult]] = [
            None if size else DramResult(0, 0, 0, 0.0, None,
                                         [0] * cfg.channels,
                                         [0.0] * cfg.channels)
            for size in sizes
        ]
        if not live:
            return results  # type: ignore[return-value]

        nbanks = cfg.channels * cfg.banks_per_channel
        gb_parts: List[np.ndarray] = []
        row_parts: List[np.ndarray] = []
        channel_parts: List[np.ndarray] = []
        batched: List[int] = []
        for i in live:
            parts = [p for p in part_lists[i] if len(p)]
            geoms = [self._sorted_geom(p) for p in parts]
            if any(g is None for g in geoms):
                # Cycle values too large for the shared composite key;
                # serve this stream through the standalone fast model.
                results[i] = self.simulate_fast(BlockStream.concat(parts))
                continue
            merged = geoms[0]
            for extra in geoms[1:]:
                merged = self._merge_sorted(merged, extra)
            _, gb, rows, _ = merged
            gb_parts.append(gb + len(batched) * nbanks)
            row_parts.append(rows)
            channel_parts.extend(g[0] for g in geoms)
            batched.append(i)
        if not batched:
            return results  # type: ignore[return-value]
        live = batched

        sorted_bank = np.concatenate(gb_parts)
        miss_mask = self._conflict_mask(sorted_bank,
                                        np.concatenate(row_parts))
        miss_counts = np.bincount(
            sorted_bank[miss_mask] // cfg.banks_per_channel,
            minlength=len(live) * cfg.channels)

        # Per (segment, channel) accounting, identical formula to the
        # single-stream fast model.
        seg = np.repeat(np.arange(len(live), dtype=np.int64),
                        [sizes[i] for i in live])
        counts = np.bincount(seg * cfg.channels
                             + np.concatenate(channel_parts),
                             minlength=len(live) * cfg.channels)
        overlap = 1.0 / cfg.banks_per_channel
        busy = counts * self._burst_cyc + miss_counts * self._miss_cyc * overlap

        counts = counts.reshape(len(live), cfg.channels)
        miss_counts = miss_counts.reshape(len(live), cfg.channels)
        busy = busy.reshape(len(live), cfg.channels)
        for pos, i in enumerate(live):
            misses = int(miss_counts[pos].sum())
            results[i] = DramResult(
                requests=sizes[i],
                row_hits=sizes[i] - misses,
                row_misses=misses,
                busy_cycles=float(busy[pos].max()),
                completion_cycle=None,
                per_channel_requests=counts[pos].tolist(),
                per_channel_busy=busy[pos].tolist(),
            )
        return results  # type: ignore[return-value]
