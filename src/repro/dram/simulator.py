"""Trace-driven DRAM simulation.

Both engines consume a :class:`repro.accel.trace.BlockStream` (64-byte
block accesses with issue cycles) and report how long the memory system
is busy serving it, in accelerator cycles.

The **reference model** (:meth:`DramSim.simulate`) walks requests in issue
order, tracking per-bank open rows and ready times plus per-channel data
bus occupancy; it reports both busy time and completion time.

The **fast model** (:meth:`DramSim.simulate_fast`) computes the same
busy-time quantity with numpy: per channel, data-bus occupancy is
``requests * burst``, and row-buffer conflicts (counted exactly, in issue
order, per bank) add an activation penalty discounted by bank-level
overlap. Tests validate it against the reference model on a range of
synthetic and real traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.accel.trace import BlockStream
from repro.dram.mapping import AddressMapping
from repro.dram.timing import DramConfig


@dataclass
class DramResult:
    """Outcome of serving one block stream."""

    requests: int
    row_hits: int
    row_misses: int
    busy_cycles: float           # max per-channel busy time (the bottleneck)
    completion_cycle: Optional[float]  # reference model only
    per_channel_requests: List[int]
    per_channel_busy: List[float]

    @property
    def row_hit_rate(self) -> float:
        if self.requests == 0:
            return 0.0
        return self.row_hits / self.requests

    @property
    def total_bytes(self) -> int:
        return self.requests * 64


class DramSim:
    """DRAM timing simulator for one configuration and NPU clock."""

    def __init__(self, config: DramConfig, freq_ghz: float):
        if freq_ghz <= 0:
            raise ValueError("freq_ghz must be positive")
        self.config = config
        self.freq_ghz = freq_ghz
        self.mapping = AddressMapping(config)
        self._burst_cyc = config.to_cycles(config.burst_ns, freq_ghz)
        self._miss_cyc = config.to_cycles(
            config.timing.row_miss_penalty_ns, freq_ghz)

    # -- reference event-driven model --

    def simulate(self, stream: BlockStream) -> DramResult:
        """Event-driven service of ``stream`` in issue order."""
        cfg = self.config
        n = len(stream)
        if n == 0:
            return DramResult(0, 0, 0, 0.0, 0.0,
                              [0] * cfg.channels, [0.0] * cfg.channels)
        ordered = stream.sorted_by_cycle()
        channels, banks, rows = self.mapping.decompose(ordered.addrs)

        bus_free = [0.0] * cfg.channels
        busy = [0.0] * cfg.channels
        counts = [0] * cfg.channels
        bank_ready = np.zeros((cfg.channels, cfg.banks_per_channel))
        open_row = np.full((cfg.channels, cfg.banks_per_channel), -1,
                           dtype=np.int64)
        hits = 0
        completion = 0.0

        cycles = ordered.cycles
        for i in range(n):
            ch = int(channels[i])
            bank = int(banks[i])
            row = int(rows[i])
            arrival = float(cycles[i])
            hit = open_row[ch, bank] == row
            if hit:
                hits += 1
                ready = max(arrival, bank_ready[ch, bank], bus_free[ch])
                service = self._burst_cyc
            else:
                ready = max(arrival, bank_ready[ch, bank], bus_free[ch])
                service = self._miss_cyc + self._burst_cyc
                open_row[ch, bank] = row
            finish = ready + service
            # The data bus is held only for the burst; the activate phase
            # of a miss overlaps with other banks' transfers.
            bus_free[ch] = max(bus_free[ch], finish - service) + self._burst_cyc
            bank_ready[ch, bank] = finish
            busy[ch] += self._burst_cyc + (0.0 if hit else
                                           self._miss_cyc / cfg.banks_per_channel)
            counts[ch] += 1
            completion = max(completion, finish)

        return DramResult(
            requests=n,
            row_hits=hits,
            row_misses=n - hits,
            busy_cycles=max(busy),
            completion_cycle=completion,
            per_channel_requests=counts,
            per_channel_busy=busy,
        )

    # -- vectorized fast model --

    def simulate_fast(self, stream: BlockStream) -> DramResult:
        """Busy-time estimate of serving ``stream`` (numpy, no event loop)."""
        cfg = self.config
        n = len(stream)
        if n == 0:
            return DramResult(0, 0, 0, 0.0, None,
                              [0] * cfg.channels, [0.0] * cfg.channels)
        ordered = stream.sorted_by_cycle()
        channels, banks, rows = self.mapping.decompose(ordered.addrs)

        # Exact row-conflict count in issue order: stable-sort by global
        # bank id; within each bank the original order is preserved, so a
        # row change between neighbours is a conflict.
        global_bank = channels * cfg.banks_per_channel + banks
        order = np.argsort(global_bank, kind="stable")
        sorted_bank = global_bank[order]
        sorted_row = rows[order]
        new_bank = np.empty(n, dtype=bool)
        new_bank[0] = True
        np.not_equal(sorted_bank[1:], sorted_bank[:-1], out=new_bank[1:])
        row_change = np.empty(n, dtype=bool)
        row_change[0] = True
        np.not_equal(sorted_row[1:], sorted_row[:-1], out=row_change[1:])
        miss_mask = new_bank | row_change
        misses = int(miss_mask.sum())
        hits = n - misses

        # Per-channel accounting. Activation penalties overlap with other
        # banks' bursts; with B banks, roughly (B-1)/B of each penalty
        # hides under concurrent transfers.
        counts = np.bincount(channels, minlength=cfg.channels)
        miss_channel = (sorted_bank[miss_mask] // cfg.banks_per_channel)
        miss_counts = np.bincount(miss_channel, minlength=cfg.channels)
        overlap = 1.0 / cfg.banks_per_channel
        busy = counts * self._burst_cyc + miss_counts * self._miss_cyc * overlap

        return DramResult(
            requests=n,
            row_hits=hits,
            row_misses=misses,
            busy_cycles=float(busy.max()),
            completion_cycle=None,
            per_channel_requests=counts.tolist(),
            per_channel_busy=busy.tolist(),
        )
