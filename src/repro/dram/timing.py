"""DRAM organization and timing parameters.

The paper simulates four 64-bit DDR channels for both NPUs (Table II:
20 GB/s total for the server, 10 GB/s for the edge device). Timing is
kept in nanoseconds internally and converted to accelerator cycles at the
NPU clock, so one config serves both devices.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DramTiming:
    """Core DDR timing in nanoseconds (DDR4-flavoured defaults)."""

    t_rcd_ns: float = 14.0   # activate -> column access
    t_rp_ns: float = 14.0    # precharge
    t_cas_ns: float = 14.0   # column access latency

    @property
    def row_miss_penalty_ns(self) -> float:
        """Extra latency a row-buffer conflict adds over a row hit."""
        return self.t_rp_ns + self.t_rcd_ns


@dataclass(frozen=True)
class DramConfig:
    """Organization plus bandwidth of the off-chip memory system."""

    total_bandwidth_gbps: float
    channels: int = 4
    banks_per_channel: int = 16
    row_bytes: int = 2048
    block_bytes: int = 64
    timing: DramTiming = DramTiming()

    def __post_init__(self) -> None:
        if self.total_bandwidth_gbps <= 0:
            raise ValueError("total_bandwidth_gbps must be positive")
        if self.channels <= 0 or self.banks_per_channel <= 0:
            raise ValueError("channels and banks must be positive")
        if self.row_bytes % self.block_bytes != 0:
            raise ValueError("row_bytes must be a multiple of block_bytes")

    @property
    def channel_bandwidth_gbps(self) -> float:
        return self.total_bandwidth_gbps / self.channels

    @property
    def burst_ns(self) -> float:
        """Data-bus time one 64 B block occupies a channel."""
        return self.block_bytes / self.channel_bandwidth_gbps

    @property
    def blocks_per_row(self) -> int:
        return self.row_bytes // self.block_bytes

    def to_cycles(self, ns: float, freq_ghz: float) -> float:
        """Convert nanoseconds to accelerator cycles at ``freq_ghz``."""
        if freq_ghz <= 0:
            raise ValueError("freq_ghz must be positive")
        return ns * freq_ghz


SERVER_DRAM = DramConfig(total_bandwidth_gbps=20.0)
EDGE_DRAM = DramConfig(total_bandwidth_gbps=10.0)
