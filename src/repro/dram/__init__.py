"""Trace-driven DRAM timing model (Ramulator substrate).

Models a multi-channel DDR memory at the granularity the evaluation
needs: per-channel data-bus occupancy plus row-buffer hit/miss behaviour
per bank. Two engines share one address mapping and timing model:

- :class:`repro.dram.simulator.DramSim.simulate` — event-driven reference
  model (bank ready times, bus serialization, completion times);
- :class:`repro.dram.simulator.DramSim.simulate_fast` — vectorized
  numpy path used for full workload sweeps (validated against the
  reference model in tests).
"""

from repro.dram.timing import DramConfig, DramTiming
from repro.dram.mapping import AddressMapping
from repro.dram.simulator import DramSim, DramResult

__all__ = [
    "DramConfig",
    "DramTiming",
    "AddressMapping",
    "DramSim",
    "DramResult",
]
