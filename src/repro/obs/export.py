"""Exporters for the flight recorder: JSONL, metrics JSON, Chrome trace.

Three formats, one :class:`~repro.obs.recorder.Recorder` source:

- :func:`write_jsonl` — one JSON object per line, every span / counter /
  gauge sample in recording order; greppable, streamable, diff-able.
- :func:`write_metrics_summary` — one aggregated JSON document: final
  counter totals, final gauge values, and per-span-name aggregates
  (count, total/mean/max duration).
- :func:`write_chrome_trace` — the Chrome trace-event format (JSON
  object form), so a whole sweep opens in Perfetto / ``chrome://tracing``
  as one file: spans become complete (``"ph": "X"``) events, gauge
  samples become counter (``"ph": "C"``) tracks, and the metrics
  summary rides along under ``otherData`` where trace viewers ignore it
  but ``repro report`` finds it.

Timestamps are monotonic-clock seconds in the recorder and microsecond
integers in the trace file, per the trace-event spec.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterator, List, Optional

from repro.obs.recorder import Recorder


def _span_aggregates(spans: List[Dict[str, Any]]) -> Dict[str, Dict[str, Any]]:
    """Per-span-name aggregates over raw span events."""
    stats: Dict[str, Dict[str, Any]] = {}
    for event in spans:
        entry = stats.setdefault(event["name"], {
            "count": 0, "total_s": 0.0, "max_s": 0.0})
        entry["count"] += 1
        entry["total_s"] += event["dur"]
        entry["max_s"] = max(entry["max_s"], event["dur"])
    for entry in stats.values():
        entry["mean_s"] = entry["total_s"] / entry["count"]
    return stats


def metrics_summary(recorder: Recorder) -> Dict[str, Any]:
    """Aggregated metrics document: counters, gauges, span rollups."""
    snapshot = recorder.snapshot()
    return {
        "counters": dict(sorted(snapshot["counters"].items())),
        "gauges": dict(sorted(snapshot["gauges"].items())),
        "spans": _span_aggregates(snapshot["spans"]),
    }


def iter_jsonl_events(recorder: Recorder) -> Iterator[Dict[str, Any]]:
    """Every recorded event as a flat dict with a ``kind`` discriminator."""
    snapshot = recorder.snapshot()
    for event in snapshot["spans"]:
        yield {"kind": "span", **event}
    for sample in snapshot["gauge_samples"]:
        yield {"kind": "gauge", **sample}
    for name, value in sorted(snapshot["counters"].items()):
        yield {"kind": "counter", "name": name, "value": value}


def write_jsonl(recorder: Recorder, path: str) -> None:
    """Write the JSONL event log (one JSON object per line)."""
    with open(path, "w") as handle:
        for event in iter_jsonl_events(recorder):
            handle.write(json.dumps(event, sort_keys=True))
            handle.write("\n")


def write_metrics_summary(recorder: Recorder, path: str) -> None:
    """Write the aggregated metrics-summary JSON."""
    with open(path, "w") as handle:
        json.dump(metrics_summary(recorder), handle, indent=2, sort_keys=True)
        handle.write("\n")


def metrics_path_for(trace_path: str) -> str:
    """Conventional metrics-summary path next to a trace file:
    ``out.trace.json -> out.metrics.json``, ``out.json ->
    out.metrics.json``, anything else gets ``.metrics.json`` appended."""
    for suffix in (".trace.json", ".json"):
        if trace_path.endswith(suffix):
            return trace_path[: -len(suffix)] + ".metrics.json"
    return trace_path + ".metrics.json"


# ---------------------------------------------------------------------------
# Chrome trace-event format


def chrome_trace(recorder: Recorder) -> Dict[str, Any]:
    """The recorder as a Chrome trace-event JSON object.

    ``traceEvents`` carries metadata (process names), complete spans and
    counter tracks; ``otherData`` carries the metrics summary (ignored
    by viewers, consumed by ``repro report``).
    """
    snapshot = recorder.snapshot()
    events: List[Dict[str, Any]] = []
    origin = snapshot["origin_pid"]
    pids = {origin}
    for event in snapshot["spans"]:
        pids.add(event["pid"])
    for sample in snapshot["gauge_samples"]:
        pids.add(sample["pid"])
    for pid in sorted(pids):
        role = "main" if pid == origin else "worker"
        events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": f"repro {role} (pid {pid})"},
        })
    for event in snapshot["spans"]:
        events.append({
            "name": event["name"],
            "cat": event["name"].split(".", 1)[0],
            "ph": "X",
            "ts": int(event["ts"] * 1e6),
            "dur": int(event["dur"] * 1e6),
            "pid": event["pid"],
            "tid": event["tid"],
            "args": event["args"],
        })
    for sample in snapshot["gauge_samples"]:
        events.append({
            "name": sample["name"],
            "ph": "C",
            "ts": int(sample["ts"] * 1e6),
            "pid": sample["pid"],
            "tid": 0,
            "args": {"value": sample["value"]},
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"repro_metrics": metrics_summary(recorder)},
    }


def write_chrome_trace(recorder: Recorder, path: str) -> None:
    """Write the Chrome trace-event file (open it in Perfetto)."""
    with open(path, "w") as handle:
        json.dump(chrome_trace(recorder), handle, separators=(",", ":"))
        handle.write("\n")


def load_chrome_trace(path: str) -> Dict[str, Any]:
    """Read back a trace written by :func:`write_chrome_trace` (also
    accepts the bare JSON-array form of the trace-event format)."""
    with open(path) as handle:
        data = json.load(handle)
    if isinstance(data, list):
        data = {"traceEvents": data, "otherData": {}}
    if "traceEvents" not in data:
        raise ValueError(f"{path} is not a Chrome trace-event file")
    return data


def span_events(trace: Dict[str, Any],
                name: Optional[str] = None) -> List[Dict[str, Any]]:
    """Complete (``"ph": "X"``) events from a loaded trace, optionally
    filtered by span name."""
    return [event for event in trace["traceEvents"]
            if event.get("ph") == "X"
            and (name is None or event.get("name") == name)]
