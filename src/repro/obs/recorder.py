"""In-process flight recorder: spans, counters and gauges.

One :class:`Recorder` collects three kinds of telemetry:

- **spans** — named wall-clock intervals (``time.monotonic``) with
  arbitrary key/value arguments, opened with :func:`span` as a context
  manager;
- **counters** — monotonically increasing totals (:func:`incr`), e.g.
  cache hits or kernel selections;
- **gauges** — last-value-wins level samples (:func:`gauge`), e.g. the
  current size of a memo; every sample is also kept with its timestamp
  so exporters can render the gauge as a timeline.

The module-level API (:func:`span` / :func:`incr` / :func:`gauge`)
routes to one process-global recorder installed with :func:`enable` (or
:func:`install`).  With no recorder installed every call is **strictly
a no-op**: :func:`span` returns a shared singleton whose
``__enter__``/``__exit__`` do nothing, and :func:`incr`/:func:`gauge`
return after a single ``None`` check — the instrumented hot paths pay
one attribute load when tracing is off.

Recorders cross process boundaries as plain dicts: a worker records
into a private recorder, ships :meth:`Recorder.snapshot` back inside
its result payload, and the parent merges it with :func:`absorb`.  On
Linux ``CLOCK_MONOTONIC`` is machine-wide, so worker span timestamps
land on the same timeline as the parent's.

Setting ``$REPRO_TRACE=<path>`` and calling :func:`init_from_env`
(the CLI and the benchmark harness both do) enables tracing for the
whole process and writes a Chrome trace-event file plus a metrics
summary at interpreter exit — profiles without code changes.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Dict, List, Optional, Union

#: Environment variable naming the Chrome-trace output path for
#: :func:`init_from_env`.
TRACE_ENV = "REPRO_TRACE"


class _NoopSpan:
    """Shared do-nothing context manager returned while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


NOOP_SPAN = _NoopSpan()


class _Span:
    """An open span; records itself into the recorder on ``__exit__``."""

    __slots__ = ("_recorder", "name", "args", "_start")

    def __init__(self, recorder: "Recorder", name: str,
                 args: Dict[str, Any]):
        self._recorder = recorder
        self.name = name
        self.args = args
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = time.monotonic()
        return self

    def __exit__(self, *exc: object) -> bool:
        end = time.monotonic()
        self._recorder._add_span(self.name, self._start, end, self.args)
        return False


class Recorder:
    """Collects spans, counters and gauges for one process (or worker).

    Thread-safe: the serial executor path and worker processes are
    single-threaded, but callbacks and future consumers may not be, so
    every mutation takes a (cheap, uncontended) lock.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self.origin_pid = os.getpid()
        #: Each span: ``{"name", "ts", "dur", "pid", "tid", "args"}``
        #: with ``ts``/``dur`` in seconds on the monotonic clock.
        self.spans: List[Dict[str, Any]] = []
        self.counters: Dict[str, int] = {}
        #: Latest value per gauge name.
        self.gauges: Dict[str, float] = {}
        #: Every gauge sample: ``{"name", "ts", "value", "pid"}``.
        self.gauge_samples: List[Dict[str, Any]] = []

    # -- recording --

    def span(self, name: str, **args: Any) -> _Span:
        return _Span(self, name, args)

    def _add_span(self, name: str, start: float, end: float,
                  args: Dict[str, Any]) -> None:
        event = {
            "name": name,
            "ts": start,
            "dur": end - start,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "args": args,
        }
        with self._lock:
            self.spans.append(event)

    def incr(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + int(amount)

    def gauge(self, name: str, value: float) -> None:
        sample = {"name": name, "ts": time.monotonic(),
                  "value": float(value), "pid": os.getpid()}
        with self._lock:
            self.gauges[name] = float(value)
            self.gauge_samples.append(sample)

    # -- marshalling across process boundaries --

    def snapshot(self) -> Dict[str, Any]:
        """Plain-dict view, picklable and JSON-safe, for :func:`absorb`."""
        with self._lock:
            return {
                "origin_pid": self.origin_pid,
                "spans": list(self.spans),
                "counters": dict(self.counters),
                "gauges": dict(self.gauges),
                "gauge_samples": list(self.gauge_samples),
            }

    def absorb(self, snapshot: Dict[str, Any]) -> None:
        """Merge a worker's :meth:`snapshot`: spans and gauge samples are
        appended (they carry their own pid), counters are summed, and
        gauge latest-values are taken per (pid-agnostic) name with
        last-write-wins — the timeline in ``gauge_samples`` keeps the
        full history."""
        with self._lock:
            self.spans.extend(snapshot.get("spans", ()))
            for name, value in snapshot.get("counters", {}).items():
                self.counters[name] = self.counters.get(name, 0) + int(value)
            self.gauges.update(snapshot.get("gauges", {}))
            self.gauge_samples.extend(snapshot.get("gauge_samples", ()))


# ---------------------------------------------------------------------------
# process-global recorder

_active: Optional[Recorder] = None


def enabled() -> bool:
    """True when a recorder is installed (module API records into it)."""
    return _active is not None


def get() -> Optional[Recorder]:
    return _active


def install(recorder: Optional[Recorder]) -> Optional[Recorder]:
    """Install ``recorder`` as the process-global target (``None``
    disables tracing); returns the previously installed recorder so
    callers can restore it."""
    global _active
    previous = _active
    _active = recorder
    return previous


def enable() -> Recorder:
    """Install (and return) a fresh recorder unless one is active."""
    global _active
    if _active is None:
        _active = Recorder()
    return _active


def disable() -> Optional[Recorder]:
    """Uninstall and return the active recorder (``None`` if none)."""
    return install(None)


def span(name: str, **args: Any) -> Union[_NoopSpan, _Span]:
    """Open a span on the active recorder; a shared no-op when disabled."""
    recorder = _active
    if recorder is None:
        return NOOP_SPAN
    return _Span(recorder, name, args)


def incr(name: str, amount: int = 1) -> None:
    """Add ``amount`` to a counter on the active recorder (no-op when
    disabled)."""
    recorder = _active
    if recorder is not None:
        recorder.incr(name, amount)


def gauge(name: str, value: float) -> None:
    """Sample a gauge on the active recorder (no-op when disabled)."""
    recorder = _active
    if recorder is not None:
        recorder.gauge(name, value)


def absorb(snapshot: Dict[str, Any]) -> None:
    """Merge a worker snapshot into the active recorder (no-op when
    disabled — the worker traced, the parent does not care)."""
    recorder = _active
    if recorder is not None:
        recorder.absorb(snapshot)


# ---------------------------------------------------------------------------
# environment hook


def init_from_env() -> Optional[Recorder]:
    """Enable tracing when ``$REPRO_TRACE`` names an output path.

    Registers an ``atexit`` exporter that writes the Chrome trace to
    that path and the aggregated metrics summary next to it (see
    :func:`repro.obs.export.metrics_path_for`), so any entry point —
    CLI, benchmarks, CI — captures a profile without code changes.
    Idempotent: an already-active recorder is returned untouched.
    """
    path = os.environ.get(TRACE_ENV)
    if not path:
        return _active
    if _active is not None:
        return _active
    recorder = enable()
    import atexit

    atexit.register(_export_env_trace, recorder, path)
    return recorder


def _export_env_trace(recorder: Recorder, path: str) -> None:
    from repro.obs import export

    export.write_chrome_trace(recorder, path)
    export.write_metrics_summary(recorder, export.metrics_path_for(path))
