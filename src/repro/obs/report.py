"""Aggregation behind ``repro report``: tables from a trace file.

Consumes the Chrome trace-event file written by
:func:`repro.obs.export.write_chrome_trace` and produces plain rows for
:func:`repro.utils.report.format_table` — stage rollups, the top-N
slowest grid cells, the top-N slowest individual spans, and the final
counter totals embedded in the trace's ``otherData`` block.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.obs.export import span_events

#: Span name the grid executor wraps one whole cell evaluation in.
CELL_SPAN = "cell"


def _ms(event: Dict[str, Any]) -> float:
    return event.get("dur", 0) / 1000.0


def stage_rows(trace: Dict[str, Any]) -> List[Sequence]:
    """Per-span-name rollup: count, total/mean/max milliseconds.

    Sorted by total time descending — the first row is where the sweep
    spent its wall clock.
    """
    stats: Dict[str, List[float]] = {}
    for event in span_events(trace):
        entry = stats.setdefault(event["name"], [0, 0.0, 0.0])
        entry[0] += 1
        entry[1] += _ms(event)
        entry[2] = max(entry[2], _ms(event))
    rows = [[name, count, total, total / count, peak]
            for name, (count, total, peak) in stats.items()]
    rows.sort(key=lambda row: row[2], reverse=True)
    return rows


def _arg_string(event: Dict[str, Any]) -> str:
    args = event.get("args") or {}
    return " ".join(f"{key}={value}" for key, value in sorted(args.items()))


def slowest_rows(trace: Dict[str, Any], name: Optional[str] = None,
                 top: int = 10) -> List[Sequence]:
    """The ``top`` slowest spans (optionally restricted to one name):
    name, duration ms, pid, and the span's arguments."""
    events = sorted(span_events(trace, name=name),
                    key=lambda event: event.get("dur", 0), reverse=True)
    return [[event["name"], _ms(event), event.get("pid", 0),
             _arg_string(event)] for event in events[:top]]


def cell_rows(trace: Dict[str, Any], top: int = 10) -> List[Sequence]:
    """The ``top`` slowest grid cells: workload, npu, duration ms, pid."""
    events = sorted(span_events(trace, name=CELL_SPAN),
                    key=lambda event: event.get("dur", 0), reverse=True)
    rows = []
    for event in events[:top]:
        args = event.get("args") or {}
        rows.append([args.get("workload", "?"), args.get("npu", "?"),
                     _ms(event), event.get("pid", 0)])
    return rows


def counter_rows(trace: Dict[str, Any]) -> List[Sequence]:
    """Final counter totals from the embedded metrics summary."""
    metrics = (trace.get("otherData") or {}).get("repro_metrics") or {}
    return [[name, value]
            for name, value in sorted(metrics.get("counters", {}).items())]


def gauge_rows(trace: Dict[str, Any]) -> List[Sequence]:
    """Final gauge values from the embedded metrics summary."""
    metrics = (trace.get("otherData") or {}).get("repro_metrics") or {}
    return [[name, value]
            for name, value in sorted(metrics.get("gauges", {}).items())]
