"""repro.obs — the flight recorder: structured tracing and metrics.

Zero-dependency observability for the whole runner stack.  The span API
instruments the four pipeline stages (accelerator simulate / protect /
DRAM / crypto) per layer and per cell; counters and gauges expose the
load-bearing internals (result-store hits, eval-service memo tiers,
reuse-engine resolution tiers, native-kernel selection, executor pool
state); exporters render a whole sweep as a JSONL event log, an
aggregated metrics summary, or a Chrome trace-event file that opens in
Perfetto.

Typical use::

    from repro import obs

    recorder = obs.enable()            # or: REPRO_TRACE=out.trace.json
    with obs.span("protect", scheme="seda", layer=3):
        ...
    obs.incr("store.hits")
    obs.gauge("executor.pipeline_memo_size", 2)

    from repro.obs import export
    export.write_chrome_trace(recorder, "out.trace.json")

When no recorder is enabled every call is strictly a no-op (a single
``None`` check), so instrumented hot paths cost nothing in production
runs; see :mod:`repro.obs.recorder`.
"""

from repro.obs.recorder import (
    NOOP_SPAN,
    Recorder,
    TRACE_ENV,
    absorb,
    disable,
    enable,
    enabled,
    gauge,
    get,
    incr,
    init_from_env,
    install,
    span,
)

__all__ = [
    "NOOP_SPAN",
    "Recorder",
    "TRACE_ENV",
    "absorb",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "get",
    "incr",
    "init_from_env",
    "install",
    "span",
]
