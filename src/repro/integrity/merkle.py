"""Merkle integrity tree with on-chip root.

An arity-``A`` hash tree over a sequence of leaf blocks (for SGX-style
protection the leaves are version-number blocks, per the Bonsai Merkle
Tree construction: data blocks are covered by MACs, only the VNs need the
tree). The root digest is held on-chip, so an attacker who replays stale
off-chip leaves or internal nodes is always caught.

Hashing is the keyed MAC from :mod:`repro.crypto.mac`, with each node's
index bound into the hash so subtree transplants are detected.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.crypto.mac import BlockMac, MacContext
from repro.utils.bitops import ceil_div


class MerkleTree:
    """Hash tree over leaf blocks with configurable arity."""

    def __init__(self, key: bytes, leaves: Sequence[bytes], arity: int = 8):
        if arity < 2:
            raise ValueError("arity must be at least 2")
        if not leaves:
            raise ValueError("tree needs at least one leaf")
        self._mac = BlockMac(key)
        self.arity = arity
        self._leaves: List[bytes] = [bytes(leaf) for leaf in leaves]
        self._levels: List[List[bytes]] = []
        self._rebuild()

    @property
    def num_leaves(self) -> int:
        return len(self._leaves)

    @property
    def num_levels(self) -> int:
        """Internal levels above the leaves (including the root level)."""
        return len(self._levels)

    @property
    def root(self) -> bytes:
        """The on-chip root digest."""
        return self._levels[-1][0]

    def leaf(self, index: int) -> bytes:
        return self._leaves[index]

    def _node_hash(self, level: int, index: int, children: Sequence[bytes]) -> bytes:
        payload = b"".join(children)
        context = MacContext(pa=index, vn=0, layer_id=level)
        return self._mac.mac(payload, context)

    def _rebuild(self) -> None:
        self._levels = []
        current = [
            self._node_hash(0, i, [leaf]) for i, leaf in enumerate(self._leaves)
        ]
        level = 1
        self._levels.append(current)
        while len(current) > 1:
            parents = []
            for i in range(ceil_div(len(current), self.arity)):
                children = current[i * self.arity:(i + 1) * self.arity]
                parents.append(self._node_hash(level, i, children))
            self._levels.append(parents)
            current = parents
            level += 1

    def update_leaf(self, index: int, value: bytes) -> None:
        """Write a leaf and re-hash its path to the root."""
        if not 0 <= index < len(self._leaves):
            raise IndexError(f"leaf index {index} out of range")
        self._leaves[index] = bytes(value)
        node = self._node_hash(0, index, [self._leaves[index]])
        self._levels[0][index] = node
        child_index = index
        for level in range(1, len(self._levels)):
            parent_index = child_index // self.arity
            children = self._levels[level - 1][
                parent_index * self.arity:(parent_index + 1) * self.arity]
            self._levels[level][parent_index] = self._node_hash(
                level, parent_index, children)
            child_index = parent_index

    def verify_leaf(self, index: int, value: bytes) -> bool:
        """Check ``value`` against the path to the on-chip root.

        Recomputes the leaf's path using the stored sibling digests; a
        tampered or replayed leaf fails unless the attacker can forge
        every ancestor up to the root — which lives on-chip.
        """
        if not 0 <= index < len(self._leaves):
            raise IndexError(f"leaf index {index} out of range")
        node = self._node_hash(0, index, [bytes(value)])
        child_index = index
        for level in range(1, len(self._levels)):
            parent_index = child_index // self.arity
            children = list(self._levels[level - 1][
                parent_index * self.arity:(parent_index + 1) * self.arity])
            children[child_index - parent_index * self.arity] = node
            node = self._node_hash(level, parent_index, children)
            child_index = parent_index
        return node == self.root

    @staticmethod
    def levels_for(num_leaves: int, arity: int = 8) -> int:
        """Tree levels above the leaves for a given leaf count.

        Used by the timing model: a VN-cache miss walks at most this many
        nodes before hitting the on-chip root.
        """
        if num_leaves <= 0:
            raise ValueError("num_leaves must be positive")
        levels = 1
        count = num_leaves
        while count > 1:
            count = ceil_div(count, arity)
            levels += 1
        return levels
