"""Functional secure-memory model: encryption + integrity, end to end.

:class:`SecureMemory` models the protection unit's data path bit-true:
writes encrypt with SeDA's bandwidth-aware AES and record a
location-bound MAC; reads decrypt and verify. The backing store is an
ordinary dict standing in for untrusted DRAM — tests tamper with it
directly to prove detection (and the attack demos drive it).

This is the *functional* counterpart of the timing-only models in
:mod:`repro.protection`; it exists so the security claims are demonstrated
on real ciphertext, not just asserted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.crypto.baes import BandwidthAwareAes
from repro.crypto.mac import MacContext
from repro.integrity.multilevel import MultiLevelIntegrity


class IntegrityError(Exception):
    """Raised when a read fails MAC verification."""


@dataclass
class _StoredBlock:
    ciphertext: bytes
    mac: bytes
    vn: int


class SecureMemory:
    """Encrypt-and-MAC memory with per-block version numbers.

    Parameters
    ----------
    enc_key, mac_key:
        Independent session keys for confidentiality and integrity.
    block_bytes:
        Protection-unit size (the optBlk granularity).
    location_bound:
        When False, MACs cover ciphertext only — the RePA-vulnerable
        configuration used by the attack demonstrations.
    """

    def __init__(self, enc_key: bytes, mac_key: bytes, block_bytes: int = 64,
                 location_bound: bool = True):
        if block_bytes <= 0 or block_bytes % 16 != 0:
            raise ValueError("block_bytes must be a positive multiple of 16")
        self.block_bytes = block_bytes
        self._engine = BandwidthAwareAes(enc_key)
        self._integrity = MultiLevelIntegrity(mac_key, location_bound=location_bound)
        self._dram: Dict[int, _StoredBlock] = {}   # untrusted store, addr -> block
        self._vns: Dict[int, int] = {}             # on-chip VN state

    @property
    def integrity(self) -> MultiLevelIntegrity:
        return self._integrity

    @property
    def dram(self) -> Dict[int, _StoredBlock]:
        """The untrusted backing store — exposed for tamper experiments."""
        return self._dram

    def _context(self, addr: int, vn: int, layer_id: int, blk_idx: int) -> MacContext:
        return MacContext(pa=addr, vn=vn, layer_id=layer_id,
                          fmap_idx=0, blk_idx=blk_idx)

    def write(self, addr: int, plaintext: bytes, layer_id: int = 0,
              blk_idx: int = 0) -> None:
        """Encrypt ``plaintext`` and store it with a fresh VN and MAC."""
        if len(plaintext) != self.block_bytes:
            raise ValueError(
                f"block must be {self.block_bytes} bytes, got {len(plaintext)}")
        vn = self._vns.get(addr, 0) + 1
        self._vns[addr] = vn
        ciphertext = self._engine.encrypt(plaintext, pa=addr, vn=vn)
        context = self._context(addr, vn, layer_id, blk_idx)
        mac = self._integrity.record_block(layer_id, ciphertext, context)
        self._dram[addr] = _StoredBlock(ciphertext, mac, vn)

    def read(self, addr: int, layer_id: int = 0, blk_idx: int = 0) -> bytes:
        """Fetch, verify and decrypt the block at ``addr``.

        Raises :class:`IntegrityError` on MAC mismatch (tampering) or VN
        mismatch (replay).
        """
        stored = self._dram.get(addr)
        if stored is None:
            raise KeyError(f"no block at address {addr:#x}")
        vn = self._vns.get(addr)
        if vn is None or vn != stored.vn:
            raise IntegrityError(f"replay detected at {addr:#x}: stale VN")
        context = self._context(addr, vn, layer_id, blk_idx)
        if not self._integrity.verify_optblk(stored.ciphertext, stored.mac, context):
            raise IntegrityError(f"MAC mismatch at {addr:#x}: tampering detected")
        return self._engine.decrypt(stored.ciphertext, pa=addr, vn=vn)
