"""On-chip metadata caches in the paper's evaluated configuration.

The SGX-style schemes use a 16 KB version-number cache and an 8 KB MAC
cache, both LRU with write-back and write-allocate (Section IV-A). Lines
are 64-byte metadata blocks.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.utils.lru import CacheStats, LruCache

VN_CACHE_BYTES = 16 << 10
MAC_CACHE_BYTES = 8 << 10
LINE_BYTES = 64


class MetadataCache:
    """A byte-capacity view over :class:`repro.utils.lru.LruCache`.

    Batch drivers (the compiled kernel and the reuse-distance engine)
    replace the whole contents per drive; the new state is kept as flat
    arrays and folded into the ``OrderedDict`` lazily — the dict is only
    needed when something observes it (``raw_lines``, ``access``,
    ``probe``, ``flush``), not between back-to-back drives.
    """

    def __init__(self, capacity_bytes: int, line_bytes: int = LINE_BYTES):
        if capacity_bytes < line_bytes:
            raise ValueError("capacity smaller than one line")
        if line_bytes <= 0:
            raise ValueError("line_bytes must be positive")
        self.line_bytes = line_bytes
        self._cache = LruCache(capacity_bytes // line_bytes)
        #: (tags, dirty) arrays from the latest batch drive, not yet
        #: folded into the OrderedDict (LRU order, least recent first).
        self._pending_state = None

    @property
    def stats(self) -> CacheStats:
        return self._cache.stats

    @property
    def capacity_lines(self) -> int:
        return self._cache.capacity_lines

    def _sync(self) -> None:
        if self._pending_state is not None:
            tags, dirty = self._pending_state
            self._pending_state = None
            lines = self._cache.raw_lines
            lines.clear()
            lines.update(zip(tags.tolist(), (dirty != 0).tolist()))

    def set_state_arrays(self, tags, dirty) -> None:
        """Replace the contents with a batch drive's final state
        (``tags``/``dirty`` parallel arrays in LRU order)."""
        self._pending_state = (tags, dirty)

    def drive_state(self):
        """Current contents for the next batch drive: the pending
        ``(tags, dirty)`` arrays, or the live tag map."""
        if self._pending_state is not None:
            return self._pending_state
        return self._cache.raw_lines

    @property
    def raw_lines(self):
        """Underlying LRU tag map for batch drivers (tags are
        ``line_addr // line_bytes``); see :meth:`LruCache.raw_lines`."""
        self._sync()
        return self._cache.raw_lines

    def note(self, hits: int, misses: int, evictions: int,
             dirty_evictions: int) -> None:
        """Fold a batch driver's counters into the cache statistics."""
        self._cache.stats.note(hits, misses, evictions, dirty_evictions)

    def access(self, line_addr: int, write: bool = False) -> Tuple[bool, Optional[int]]:
        """Access the line containing ``line_addr``.

        Returns ``(hit, writeback_addr)``; a dirty eviction surfaces the
        evicted line's address so the caller can emit the DRAM write.
        """
        self._sync()
        tag = line_addr // self.line_bytes
        hit, writeback = self._cache.access(tag, write=write)
        writeback_addr = None if writeback is None else writeback * self.line_bytes
        return hit, writeback_addr

    def flush(self):
        """Evict all lines; returns addresses of dirty lines."""
        self._sync()
        return [tag * self.line_bytes for tag in self._cache.flush()]
