"""Integrity-verification substrate.

Functional (bit-true) building blocks for memory integrity:

- :mod:`repro.integrity.merkle` — hash trees over version-number blocks
  (classic Merkle tree and the Bonsai variant's counter tree), with the
  root held on-chip; detects tampering and replay.
- :mod:`repro.integrity.caches` — on-chip metadata caches (VN cache, MAC
  cache) in the paper's evaluated configuration.
- :mod:`repro.integrity.multilevel` — SeDA's optBlk / layer / model MAC
  hierarchy with location-bound MACs and incremental XOR folding.
- :mod:`repro.integrity.verifier` — a functional secure-memory model
  combining encryption and integrity for end-to-end property tests.
"""

from repro.integrity.merkle import MerkleTree
from repro.integrity.caches import MetadataCache, VN_CACHE_BYTES, MAC_CACHE_BYTES
from repro.integrity.multilevel import LayerMacState, MultiLevelIntegrity
from repro.integrity.verifier import SecureMemory, IntegrityError
from repro.integrity.vn import DnnStateVnGenerator, VnExhaustedError

__all__ = [
    "DnnStateVnGenerator",
    "VnExhaustedError",
    "MerkleTree",
    "MetadataCache",
    "VN_CACHE_BYTES",
    "MAC_CACHE_BYTES",
    "LayerMacState",
    "MultiLevelIntegrity",
    "SecureMemory",
    "IntegrityError",
]
