"""SeDA's multi-level integrity verification (paper Section III-C).

Three MAC granularities (Table I):

- **optBlk MAC** — per authentication block, sized by the SecureLoop-style
  search to match the layer's tiling; computed on the fly, *not* stored.
- **layer MAC** — XOR fold of all optBlk MACs of one layer; small enough
  for on-chip SRAM (or one off-chip block, the paper's fairness setting).
- **model MAC** — a single MAC folding every weight block of the model;
  lives on-chip, verified once at the end of inference.

Each optBlk MAC binds the block's location — ``(PA, VN, layer_id,
fmap_idx, blk_idx)`` — which is what defeats the Re-Permutation Attack:
shuffled blocks produce different per-block MACs, so the XOR fold no
longer matches even though XOR itself is commutative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Tuple

from repro.crypto.mac import BlockMac, MacContext, MAC_BYTES, xor_fold
from repro.utils.bitops import xor_bytes


@dataclass
class LayerMacState:
    """Running XOR fold of one layer's optBlk MACs."""

    layer_id: int
    value: bytes = bytes(MAC_BYTES)
    blocks_folded: int = 0

    def fold(self, mac: bytes) -> None:
        if len(mac) != MAC_BYTES:
            raise ValueError(f"MAC must be {MAC_BYTES} bytes")
        self.value = xor_bytes(self.value, mac)
        self.blocks_folded += 1

    def replace(self, old_mac: bytes, new_mac: bytes) -> None:
        """Incremental update when a block is rewritten (XOR-MAC property)."""
        self.value = xor_bytes(xor_bytes(self.value, old_mac), new_mac)


class MultiLevelIntegrity:
    """Produce and verify optBlk / layer / model MACs for one session key."""

    def __init__(self, key: bytes, location_bound: bool = True):
        self._mac = BlockMac(key)
        self.location_bound = location_bound
        self._layers: Dict[int, LayerMacState] = {}
        self._model_mac = bytes(MAC_BYTES)
        self._model_blocks = 0

    # -- optBlk level --

    def optblk_mac(self, block: bytes, context: MacContext) -> bytes:
        """MAC of one authentication block (Algorithm 2, defense line 8).

        With ``location_bound=False`` the MAC covers only the ciphertext —
        the RePA-vulnerable mode, retained for the attack demonstration.
        """
        if self.location_bound:
            return self._mac.mac(block, context)
        return self._mac.mac_ciphertext_only(block)

    def verify_optblk(self, block: bytes, tag: bytes, context: MacContext) -> bool:
        return self.optblk_mac(block, context) == tag

    # -- layer level --

    def layer_state(self, layer_id: int) -> LayerMacState:
        return self._layers.setdefault(layer_id, LayerMacState(layer_id))

    def record_block(self, layer_id: int, block: bytes,
                     context: MacContext) -> bytes:
        """MAC a freshly written block and fold it into its layer MAC."""
        tag = self.optblk_mac(block, context)
        self.layer_state(layer_id).fold(tag)
        return tag

    def layer_mac(self, layer_id: int) -> bytes:
        return self.layer_state(layer_id).value

    def reset_layer(self, layer_id: int) -> None:
        """Start a fresh fold for a layer (new inference rewrites its
        ofmap buffer; the stale fold no longer describes live data)."""
        self._layers[layer_id] = LayerMacState(layer_id)

    def verify_layer(self, layer_id: int,
                     blocks_with_context: Iterable[Tuple[bytes, MacContext]]) -> bool:
        """Recompute the fold over the blocks read back; compare layer MACs."""
        recomputed = xor_fold(
            self.optblk_mac(block, ctx) for block, ctx in blocks_with_context
        )
        return recomputed == self.layer_mac(layer_id)

    # -- model level --

    def record_weight_block(self, block: bytes, context: MacContext) -> bytes:
        """Fold one weight block into the model MAC."""
        tag = self.optblk_mac(block, context)
        self._model_mac = xor_bytes(self._model_mac, tag)
        self._model_blocks += 1
        return tag

    @property
    def model_mac(self) -> bytes:
        return self._model_mac

    @property
    def model_blocks(self) -> int:
        return self._model_blocks

    def verify_model(self,
                     blocks_with_context: Iterable[Tuple[bytes, MacContext]]) -> bool:
        """End-of-inference model check (result available only at the end)."""
        recomputed = xor_fold(
            self.optblk_mac(block, ctx) for block, ctx in blocks_with_context
        )
        return recomputed == self._model_mac

    # -- storage accounting (Table I) --

    def onchip_mac_bytes(self, num_layers: int, store_layer_macs_onchip: bool = True) -> int:
        """On-chip SRAM the MAC hierarchy occupies."""
        layer_bytes = num_layers * MAC_BYTES if store_layer_macs_onchip else 0
        return layer_bytes + MAC_BYTES  # + model MAC
