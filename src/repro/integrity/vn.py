"""On-chip version-number generation from DNN state (MGX/TNPU style).

MGX's observation, which SeDA inherits: a DNN's memory-access schedule is
deterministic, so version numbers need not be stored off-chip — they can
be *derived* from on-chip execution state. Weights are written once per
model load; an activation buffer is rewritten once per producing layer
per inference.

The generator guarantees the CTR-security invariant: for a fixed key,
the same ``(PA, VN)`` pair is never used to encrypt two different
writes. Weights get the model-load epoch; activations get a counter that
advances with every (inference, layer) production step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.crypto.ctr import VN_BITS


class VnExhaustedError(Exception):
    """The 56-bit VN space would wrap — the session key must rotate."""


@dataclass
class DnnStateVnGenerator:
    """Derive VNs from (tensor kind, layer, inference) execution state.

    VN layout (56 bits): the top bit selects weights vs activations;
    weights use the model-load epoch, activations use a monotone counter
    ``inference * num_layers + layer`` so every buffer rewrite gets a
    fresh value.
    """

    num_layers: int
    model_epoch: int = 1
    _inference: int = 0

    _WEIGHT_TAG = 1 << (VN_BITS - 1)

    def __post_init__(self) -> None:
        if self.num_layers <= 0:
            raise ValueError("num_layers must be positive")
        if not 1 <= self.model_epoch < self._WEIGHT_TAG:
            raise ValueError("model_epoch out of range")

    @property
    def inference_index(self) -> int:
        return self._inference

    def next_inference(self) -> int:
        """Advance to the next inference; returns its index."""
        self._inference += 1
        return self._inference

    def weight_vn(self) -> int:
        """VN for every weight block: constant per model load."""
        return self._WEIGHT_TAG | self.model_epoch

    def activation_vn(self, layer_id: int, inference: int = None) -> int:
        """VN for the activation buffer layer ``layer_id`` writes.

        Fresh per (inference, producing layer): the buffer is rewritten
        exactly once per production, so this is the write counter a
        stored VN would hold — derived instead of fetched.
        """
        if not 0 <= layer_id < self.num_layers:
            raise IndexError(f"layer_id {layer_id} out of range")
        idx = self._inference if inference is None else inference
        vn = idx * self.num_layers + layer_id + 1
        if vn >= self._WEIGHT_TAG:
            raise VnExhaustedError(
                "activation VN space exhausted; rotate the session key")
        return vn

    def reload_model(self) -> int:
        """A new model load bumps the weight epoch (fresh weight OTPs)."""
        self.model_epoch += 1
        if self.model_epoch >= self._WEIGHT_TAG:
            raise VnExhaustedError(
                "weight epoch space exhausted; rotate the session key")
        self._inference = 0
        return self.model_epoch


def vn_pairs_unique(generator: DnnStateVnGenerator,
                    inferences: int) -> bool:
    """Check the no-reuse invariant over a window of inferences.

    Exists mostly for tests and documentation: enumerates every
    (kind, layer, inference) VN the generator would emit and verifies
    they are pairwise distinct where they must be.
    """
    seen: Dict[int, Tuple[int, int]] = {}
    for inference in range(inferences):
        for layer in range(generator.num_layers):
            vn = generator.activation_vn(layer, inference)
            if vn in seen and seen[vn] != (inference, layer):
                return False
            seen[vn] = (inference, layer)
    return generator.weight_vn() not in seen
