"""Functional SGX-style secure memory: off-chip VNs under a Merkle tree.

The functional counterpart of :class:`repro.protection.sgx.SgxScheme`'s
timing model, and the contrast to :class:`repro.integrity.verifier.
SecureMemory` (which keeps VNs on-chip, MGX/SeDA style):

- data blocks are AES-CTR encrypted with ``PA || VN`` counters;
- each block's 8 B MAC binds ciphertext, PA and VN;
- version numbers live in *untrusted* storage, so freshness comes from a
  Merkle tree over the VN table (Bonsai construction) whose root — and
  only the root — is on-chip.

An attacker controls ``data``, ``macs`` and ``vns``; tests drive replay
attacks that a MAC-only design would miss and show the tree catching
them.
"""

from __future__ import annotations

from typing import Dict, List

from repro.crypto.ctr import AesCtr
from repro.crypto.mac import BlockMac, MacContext
from repro.integrity.merkle import MerkleTree
from repro.integrity.verifier import IntegrityError

VN_LEAF_BYTES = 8


class SgxSecureMemory:
    """Encrypt-and-MAC memory with an integrity tree over off-chip VNs.

    Parameters
    ----------
    num_blocks:
        Size of the protected region in blocks; fixes the VN-table and
        tree geometry up front, as hardware does.
    """

    def __init__(self, enc_key: bytes, mac_key: bytes, num_blocks: int,
                 block_bytes: int = 64, tree_arity: int = 8):
        if num_blocks <= 0:
            raise ValueError("num_blocks must be positive")
        if block_bytes <= 0 or block_bytes % 16:
            raise ValueError("block_bytes must be a positive multiple of 16")
        self.block_bytes = block_bytes
        self.num_blocks = num_blocks
        self._ctr = AesCtr(enc_key)
        self._mac = BlockMac(mac_key)

        # Untrusted stores (the attacker's playground).
        self.data: Dict[int, bytes] = {}
        self.macs: Dict[int, bytes] = {}
        self.vns: List[int] = [0] * num_blocks

        # Trusted state: only the tree root (held inside MerkleTree).
        self._tree = MerkleTree(
            mac_key, [self._leaf(0)] * num_blocks, arity=tree_arity)
        for i in range(num_blocks):
            self._tree.update_leaf(i, self._leaf(0))

    @staticmethod
    def _leaf(vn: int) -> bytes:
        return vn.to_bytes(VN_LEAF_BYTES, "big")

    def _index(self, addr: int) -> int:
        if addr % self.block_bytes:
            raise ValueError(f"address {addr:#x} not block aligned")
        index = addr // self.block_bytes
        if not 0 <= index < self.num_blocks:
            raise IndexError(f"address {addr:#x} outside the protected region")
        return index

    @property
    def onchip_root(self) -> bytes:
        return self._tree.root

    # -- data path --

    def write(self, addr: int, plaintext: bytes) -> None:
        """Encrypt, MAC, bump the off-chip VN, re-hash the tree path."""
        if len(plaintext) != self.block_bytes:
            raise ValueError(
                f"block must be {self.block_bytes} bytes, got {len(plaintext)}")
        index = self._index(addr)
        vn = self.vns[index] + 1
        self.vns[index] = vn
        ciphertext = self._ctr.encrypt(plaintext, pa=addr, vn=vn)
        self.data[index] = ciphertext
        self.macs[index] = self._mac.mac(
            ciphertext, MacContext(pa=addr, vn=vn))
        self._tree.update_leaf(index, self._leaf(vn))

    def read(self, addr: int) -> bytes:
        """Verify the VN against the tree, then the MAC, then decrypt."""
        index = self._index(addr)
        if index not in self.data:
            raise KeyError(f"no block at address {addr:#x}")
        vn = self.vns[index]                       # fetched from untrusted DRAM
        if not self._tree.verify_leaf(index, self._leaf(vn)):
            raise IntegrityError(
                f"VN for {addr:#x} fails integrity-tree verification "
                f"(replayed or tampered counter)")
        ciphertext = self.data[index]
        if not self._mac.verify(ciphertext, self.macs[index],
                                MacContext(pa=addr, vn=vn)):
            raise IntegrityError(f"MAC mismatch at {addr:#x}")
        return self._ctr.decrypt(ciphertext, pa=addr, vn=vn)

    # -- accounting (ties back to the timing model) --

    def metadata_bytes(self) -> int:
        """Off-chip metadata footprint: MACs + VN table (tree excluded)."""
        return len(self.macs) * 8 + self.num_blocks * VN_LEAF_BYTES

    def tree_levels(self) -> int:
        return self._tree.num_levels
