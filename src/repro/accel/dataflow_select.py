"""Per-layer dataflow selection.

SCALE-Sim fixes one dataflow per run; real compilers pick per layer. The
selector evaluates WS/OS/IS analytically for a layer's (M, K, N) and
returns the cheapest — used by the dataflow ablation to quantify how
much the fixed-WS assumption costs each workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.accel.systolic import Dataflow, SystolicArray
from repro.models.layer import Layer
from repro.models.topology import Topology


@dataclass(frozen=True)
class DataflowChoice:
    """Best dataflow for one layer plus the full per-dataflow costs."""

    layer_name: str
    best: Dataflow
    cycles: Dict[Dataflow, int]

    @property
    def best_cycles(self) -> int:
        return self.cycles[self.best]

    def speedup_over(self, dataflow: Dataflow) -> float:
        return self.cycles[dataflow] / self.best_cycles


def select_dataflow(rows: int, cols: int, layer: Layer) -> DataflowChoice:
    """Evaluate all dataflows for ``layer`` on a rows x cols array."""
    m, k, n = layer.gemm_m, layer.gemm_k, layer.gemm_n
    cycles = {
        dataflow: SystolicArray(rows, cols, dataflow).compute_cycles(m, k, n)
        for dataflow in Dataflow
    }
    best = min(cycles, key=lambda d: (cycles[d], d.value))
    return DataflowChoice(layer_name=layer.name, best=best, cycles=cycles)


def topology_dataflow_report(rows: int, cols: int,
                             topology: Topology) -> Dict[str, DataflowChoice]:
    """Per-layer selection over a whole topology."""
    return {
        layer.name: select_dataflow(rows, cols, layer) for layer in topology
    }


def fixed_vs_best_cycles(rows: int, cols: int, topology: Topology,
                         fixed: Dataflow = Dataflow.WS) -> Dict[str, int]:
    """Total compute cycles: one fixed dataflow vs per-layer selection."""
    report = topology_dataflow_report(rows, cols, topology)
    return {
        "fixed": sum(c.cycles[fixed] for c in report.values()),
        "best": sum(c.best_cycles for c in report.values()),
    }
