"""DRAM trace file I/O.

Two interchange formats:

- **scalesim** — SCALE-Sim-style CSV: ``cycle, address, R/W[, kind]``
  per block request (what the paper's flow passes from the DNN simulator
  to the security simulator). The optional fourth field carries the
  :class:`~repro.accel.trace.AccessKind` name, so per-kind byte
  accounting survives a write/read round trip; plain three-field
  SCALE-Sim files stay loadable (and import with no kind column).
- **ramulator** — Ramulator 2.0 load trace: ``address R/W`` per line
  (what the paper feeds the DRAM simulator). The line format is fixed by
  the external tool, so kinds ride in a ``#repro-kinds:`` header comment
  (run-length encoded in line order) that Ramulator ignores; readers
  restore the column when the header is present. Without it the format
  is lossy for kinds, exactly as it is for cycles.

Both operate on :class:`repro.accel.trace.BlockStream`. Cycles, block
addresses, read/write flags and (when the stream carries them) access
kinds round-trip losslessly through scalesim; ramulator drops cycles by
design and keeps kinds only via the header comment. Per-block layer ids
are not represented in either format and re-import as zero.
"""

from __future__ import annotations

import io
from typing import List, Optional, TextIO, Tuple, Union

import numpy as np

from repro.accel.trace import AccessKind, BlockStream, kind_code

_KIND_BY_NAME = {kind.value: kind_code(kind) for kind in AccessKind}

_RAMULATOR_KINDS_HEADER = "#repro-kinds:"


def _kind_names(stream: BlockStream) -> List[str]:
    codes = stream.kinds
    names = [kind.value for kind in AccessKind]
    return [names[code] for code in codes]


def write_scalesim(stream: BlockStream, sink: TextIO) -> int:
    """Write ``cycle, address, R/W[, kind]`` lines; returns the line count.

    The kind column is emitted whenever the stream carries one, keeping
    the export lossless for re-import here while staying a superset of
    the plain SCALE-Sim format.
    """
    count = 0
    if stream.kinds is None:
        for cycle, addr, write in zip(stream.cycles, stream.addrs,
                                      stream.writes):
            sink.write(f"{int(cycle)},{int(addr)},{'W' if write else 'R'}\n")
            count += 1
        return count
    for cycle, addr, write, kind in zip(stream.cycles, stream.addrs,
                                        stream.writes, _kind_names(stream)):
        sink.write(
            f"{int(cycle)},{int(addr)},{'W' if write else 'R'},{kind}\n")
        count += 1
    return count


def read_scalesim(source: Union[TextIO, str]) -> BlockStream:
    """Parse a scalesim-format trace back into a block stream.

    Three-field lines (plain SCALE-Sim) yield a stream without a kind
    column; four-field lines restore the per-block kinds. Mixing the two
    arities in one file is malformed.
    """
    if isinstance(source, str):
        source = io.StringIO(source)
    cycles, addrs, writes = [], [], []
    kinds: Optional[List[int]] = None
    first = True
    for line_number, line in enumerate(source, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = [p.strip() for p in line.split(",")]
        if len(parts) not in (3, 4) or parts[2].upper() not in ("R", "W"):
            raise ValueError(f"malformed trace line {line_number}: {line!r}")
        if first:
            kinds = [] if len(parts) == 4 else None
            first = False
        if (kinds is None) != (len(parts) == 3):
            raise ValueError(
                f"malformed trace line {line_number}: {line!r} "
                f"(mixed 3- and 4-field lines)")
        if kinds is not None:
            code = _KIND_BY_NAME.get(parts[3].lower())
            if code is None:
                raise ValueError(
                    f"malformed trace line {line_number}: unknown access "
                    f"kind {parts[3]!r}")
            kinds.append(code)
        cycles.append(int(parts[0]))
        addrs.append(int(parts[1]))
        writes.append(parts[2].upper() == "W")
    return BlockStream(
        np.asarray(cycles, dtype=np.int64),
        np.asarray(addrs, dtype=np.uint64),
        np.asarray(writes, dtype=bool),
        np.zeros(len(addrs), dtype=np.int32),
        None if kinds is None else np.asarray(kinds, dtype=np.int8),
    )


def _encode_kind_runs(stream: BlockStream) -> str:
    """Run-length encode the kind column as ``name*count`` items."""
    runs: List[Tuple[str, int]] = []
    for name in _kind_names(stream):
        if runs and runs[-1][0] == name:
            runs[-1] = (name, runs[-1][1] + 1)
        else:
            runs.append((name, 1))
    return ",".join(f"{name}*{count}" for name, count in runs)


def write_ramulator(stream: BlockStream, sink: TextIO) -> int:
    """Write Ramulator-style ``0xADDR R|W`` lines; returns line count.

    When the stream carries kinds, a ``#repro-kinds:`` header comment
    (run-length encoded, line order) precedes the accesses; Ramulator
    skips comments, and :func:`read_ramulator` uses it to restore the
    column. The header does not count toward the returned line count.
    """
    if stream.kinds is not None and len(stream):
        sink.write(f"{_RAMULATOR_KINDS_HEADER} {_encode_kind_runs(stream)}\n")
    count = 0
    for addr, write in zip(stream.addrs, stream.writes):
        sink.write(f"0x{int(addr):x} {'W' if write else 'R'}\n")
        count += 1
    return count


def _decode_kind_runs(payload: str, line_number: int) -> List[int]:
    codes: List[int] = []
    for item in payload.split(","):
        item = item.strip()
        if not item:
            continue
        name, star, count = item.partition("*")
        if not star or not count.isdigit() or name not in _KIND_BY_NAME:
            raise ValueError(
                f"malformed trace line {line_number}: bad kinds header "
                f"item {item!r}")
        codes.extend([_KIND_BY_NAME[name]] * int(count))
    return codes


def read_ramulator(source: Union[TextIO, str]) -> BlockStream:
    """Parse a Ramulator load trace (cycles are not represented).

    A ``#repro-kinds:`` header comment, when present, restores the
    per-block kind column; it must cover exactly the access lines that
    follow. Plain Ramulator traces import without a kind column.
    """
    if isinstance(source, str):
        source = io.StringIO(source)
    addrs, writes = [], []
    kinds: Optional[List[int]] = None
    for line_number, line in enumerate(source, start=1):
        line = line.strip()
        if line.startswith(_RAMULATOR_KINDS_HEADER):
            kinds = _decode_kind_runs(
                line[len(_RAMULATOR_KINDS_HEADER):], line_number)
            continue
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 2 or parts[1].upper() not in ("R", "W"):
            raise ValueError(f"malformed trace line {line_number}: {line!r}")
        addrs.append(int(parts[0], 0))
        writes.append(parts[1].upper() == "W")
    n = len(addrs)
    if kinds is not None and len(kinds) != n:
        raise ValueError(
            f"kinds header covers {len(kinds)} accesses, trace has {n}")
    return BlockStream(
        np.zeros(n, dtype=np.int64),
        np.asarray(addrs, dtype=np.uint64),
        np.asarray(writes, dtype=bool),
        np.zeros(n, dtype=np.int32),
        None if kinds is None else np.asarray(kinds, dtype=np.int8),
    )
