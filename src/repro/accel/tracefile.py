"""DRAM trace file I/O.

Two interchange formats:

- **scalesim** — SCALE-Sim-style CSV: ``cycle, address, R/W`` per block
  request (what the paper's flow passes from the DNN simulator to the
  security simulator);
- **ramulator** — Ramulator 2.0 load trace: ``address R/W`` per line
  (what the paper feeds the DRAM simulator).

Both operate on :class:`repro.accel.trace.BlockStream`, so a trace can
be simulated here, exported, inspected, and re-imported losslessly
(scalesim keeps cycles; ramulator drops them by design).
"""

from __future__ import annotations

import io
from typing import TextIO, Union

import numpy as np

from repro.accel.trace import BlockStream


def write_scalesim(stream: BlockStream, sink: TextIO) -> int:
    """Write ``cycle, address, R/W`` lines; returns the line count."""
    count = 0
    for cycle, addr, write in zip(stream.cycles, stream.addrs, stream.writes):
        sink.write(f"{int(cycle)},{int(addr)},{'W' if write else 'R'}\n")
        count += 1
    return count


def read_scalesim(source: Union[TextIO, str]) -> BlockStream:
    """Parse a scalesim-format trace back into a block stream."""
    if isinstance(source, str):
        source = io.StringIO(source)
    cycles, addrs, writes = [], [], []
    for line_number, line in enumerate(source, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = [p.strip() for p in line.split(",")]
        if len(parts) != 3 or parts[2].upper() not in ("R", "W"):
            raise ValueError(f"malformed trace line {line_number}: {line!r}")
        cycles.append(int(parts[0]))
        addrs.append(int(parts[1]))
        writes.append(parts[2].upper() == "W")
    return BlockStream(
        np.asarray(cycles, dtype=np.int64),
        np.asarray(addrs, dtype=np.uint64),
        np.asarray(writes, dtype=bool),
        np.zeros(len(addrs), dtype=np.int32),
    )


def write_ramulator(stream: BlockStream, sink: TextIO) -> int:
    """Write Ramulator-style ``0xADDR R|W`` lines; returns line count."""
    count = 0
    for addr, write in zip(stream.addrs, stream.writes):
        sink.write(f"0x{int(addr):x} {'W' if write else 'R'}\n")
        count += 1
    return count


def read_ramulator(source: Union[TextIO, str]) -> BlockStream:
    """Parse a Ramulator load trace (cycles are not represented)."""
    if isinstance(source, str):
        source = io.StringIO(source)
    addrs, writes = [], []
    for line_number, line in enumerate(source, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 2 or parts[1].upper() not in ("R", "W"):
            raise ValueError(f"malformed trace line {line_number}: {line!r}")
        addrs.append(int(parts[0], 0))
        writes.append(parts[1].upper() == "W")
    n = len(addrs)
    return BlockStream(
        np.zeros(n, dtype=np.int64),
        np.asarray(addrs, dtype=np.uint64),
        np.asarray(writes, dtype=bool),
        np.zeros(n, dtype=np.int32),
    )
