"""DRAM access traces — the columnar stream core.

The accelerator emits accesses as compact ranges (contiguous byte spans
with an issue window); the DRAM simulator consumes them expanded to
64-byte block streams (:class:`BlockStream`, numpy arrays). Ranges are
stored columnar (structure-of-arrays, :class:`RangeBuffer`) rather than
as per-range Python objects: a ResNet-scale model touches megabytes per
layer, and object-per-range bookkeeping would dominate runtime.

:class:`TraceRange` remains the public per-range record — construction,
iteration and ``trace.ranges`` materialize it on demand — but the hot
paths (byte accounting, filtering, block expansion) run on the columns.
Block expansion is fully vectorized (repeat + cumsum, no per-range
loop) and memoized per trace revision, so every consumer of one layer's
expanded stream in a scheme sweep shares a single expansion.

Columns grow in fixed-size **chunks** (:data:`CHUNK_ROWS` rows once a
buffer outgrows its small-trace tier): appends never reallocate the
whole column, and sealed chunks are immutable. With
``$REPRO_TRACE_SPILL_DIR`` set, sealed chunks are rewritten to
memory-mapped scratch files in that directory (unlinked immediately, so
nothing litters on a crash) and their RAM is released back to the OS —
long-sequence transformer cells (gpt2@s4096+) stay RAM-bounded while
the trace remains fully addressable. Module-level accounting tracks the
resident column bytes of every live buffer; new highs are published as
the ``trace.peak_resident_bytes`` gauge in :mod:`repro.obs` (see
:func:`resident_trace_bytes` / :func:`peak_trace_bytes`).

BlockStreams are treated as immutable once built: transformations
(:meth:`BlockStream.sorted_by_cycle`, :meth:`BlockStream.concat`)
return new streams, which is what makes the memoized sharing safe.
"""

from __future__ import annotations

import enum
import os
import tempfile
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.utils.bitops import align_down
from repro.utils.sorting import stable_order

BLOCK_BYTES = 64


class AccessKind(enum.Enum):
    """What a range carries — used by protection schemes to bind metadata."""

    IFMAP = "ifmap"
    WEIGHT = "weight"
    OFMAP = "ofmap"
    METADATA = "metadata"
    #: Per-sequence attention K/V state (KV-cache reads in decode, K^T/V
    #: operand streams in encoders) — kept distinct from WEIGHT so
    #: protection overhead on KV-cache traffic is measurable.
    KVCACHE = "kvcache"


#: Stable integer codes for the columnar ``kinds`` column.
_KIND_LIST: Tuple[AccessKind, ...] = tuple(AccessKind)
_KIND_CODE: Dict[AccessKind, int] = {k: i for i, k in enumerate(_KIND_LIST)}


def kind_code(kind: AccessKind) -> int:
    """Stable integer code of ``kind`` in the columnar ``kinds`` column
    (for consumers working directly on :meth:`RangeBuffer.arrays`)."""
    return _KIND_CODE[kind]


@dataclass(frozen=True)
class TraceRange:
    """A contiguous DRAM access: ``nbytes`` at ``addr``, issued over
    ``[cycle, cycle + duration)`` accelerator cycles."""

    cycle: int
    addr: int
    nbytes: int
    write: bool
    kind: AccessKind
    layer_id: int
    duration: int = 0

    def __post_init__(self) -> None:
        if self.addr < 0:
            raise ValueError("addr must be non-negative")
        if self.nbytes <= 0:
            raise ValueError("nbytes must be positive")
        if self.cycle < 0 or self.duration < 0:
            raise ValueError("cycle and duration must be non-negative")

    @property
    def num_blocks(self) -> int:
        first = align_down(self.addr, BLOCK_BYTES)
        last = align_down(self.addr + self.nbytes - 1, BLOCK_BYTES)
        return (last - first) // BLOCK_BYTES + 1


@dataclass
class BlockStream:
    """Expanded per-block access stream (parallel numpy arrays).

    ``kinds`` is the optional per-block :class:`AccessKind` code column
    (see :func:`kind_code`). Streams expanded from a :class:`Trace`
    carry it; ad-hoc streams may omit it (``None``), in which case
    per-kind accounting is unavailable and concatenation drops the
    column rather than inventing codes.
    """

    cycles: np.ndarray      # int64 issue cycle per block
    addrs: np.ndarray       # uint64 block-aligned byte address
    writes: np.ndarray      # bool
    layer_ids: np.ndarray   # int32
    kinds: Optional[np.ndarray] = None  # int8 AccessKind codes

    def __post_init__(self) -> None:
        lengths = {len(self.cycles), len(self.addrs), len(self.writes),
                   len(self.layer_ids)}
        if self.kinds is not None:
            lengths.add(len(self.kinds))
        if len(lengths) != 1:
            raise ValueError("BlockStream arrays must be parallel")

    def __len__(self) -> int:
        return len(self.addrs)

    @property
    def total_bytes(self) -> int:
        return len(self) * BLOCK_BYTES

    @property
    def read_blocks(self) -> int:
        return int((~self.writes).sum())

    @property
    def write_blocks(self) -> int:
        return int(self.writes.sum())

    def bytes_by_kind(self) -> Dict[AccessKind, int]:
        """Per-kind block bytes; empty when the stream has no kind column."""
        if self.kinds is None or not len(self):
            return {}
        counts = np.bincount(self.kinds, minlength=len(_KIND_LIST))
        return {kind: int(counts[code]) * BLOCK_BYTES
                for code, kind in enumerate(_KIND_LIST) if counts[code]}

    def sorted_by_cycle(self) -> "BlockStream":
        if len(self.cycles) and self.cycles.min() >= 0:
            order = stable_order(self.cycles)
        else:
            order = np.argsort(self.cycles, kind="stable")
        return BlockStream(self.cycles[order], self.addrs[order],
                           self.writes[order], self.layer_ids[order],
                           None if self.kinds is None else self.kinds[order])

    @staticmethod
    def concat(streams: Iterable["BlockStream"]) -> "BlockStream":
        streams = [s for s in streams if len(s)]
        if not streams:
            return empty_block_stream()
        kinds = None
        if all(s.kinds is not None for s in streams):
            kinds = np.concatenate([s.kinds for s in streams])
        return BlockStream(
            np.concatenate([s.cycles for s in streams]),
            np.concatenate([s.addrs for s in streams]),
            np.concatenate([s.writes for s in streams]),
            np.concatenate([s.layer_ids for s in streams]),
            kinds,
        )


def empty_block_stream() -> BlockStream:
    return BlockStream(
        np.empty(0, np.int64), np.empty(0, np.uint64),
        np.empty(0, bool), np.empty(0, np.int32), np.empty(0, np.int8),
    )


def expand_ranges(cycles: np.ndarray, addrs: np.ndarray, nbytes: np.ndarray,
                  writes: np.ndarray, layer_ids: np.ndarray,
                  durations: np.ndarray,
                  kinds: Optional[np.ndarray] = None) -> BlockStream:
    """Vectorized block expansion of columnar ranges (repeat + cumsum).

    Blocks within a range are issued uniformly across its duration,
    modelling a streaming DMA engine. Output order is range order, with
    each range's blocks ascending by address — identical to expanding
    range by range.
    """
    n = len(addrs)
    if n == 0:
        return empty_block_stream()
    first = addrs - addrs % BLOCK_BYTES
    last = addrs + nbytes - 1
    last -= last % BLOCK_BYTES
    counts = (last - first) // BLOCK_BYTES + 1
    total = int(counts.sum())
    starts = np.cumsum(counts) - counts
    within = np.arange(total, dtype=np.int64)
    within -= np.repeat(starts, counts)
    out_addrs = within * BLOCK_BYTES
    out_addrs += np.repeat(first, counts)
    # (j * duration) // count spreads blocks over the issue window; it
    # degenerates to 0 for zero duration or single-block ranges.
    # ``within`` is consumed in place as the offset scratch buffer.
    within *= np.repeat(durations, counts)
    within //= np.repeat(counts, counts)
    out_cycles = np.repeat(cycles, counts)
    out_cycles += within
    return BlockStream(
        out_cycles,
        out_addrs.astype(np.uint64),
        np.repeat(writes, counts),
        np.repeat(layer_ids, counts).astype(np.int32),
        None if kinds is None else np.repeat(kinds, counts).astype(np.int8),
    )


#: Rows per sealed column chunk.  42 bytes/row across the seven columns
#: puts one sealed chunk at ~2.7 MiB — big enough that chunk bookkeeping
#: is noise, small enough that the spill tier keeps residency flat.
CHUNK_ROWS = 1 << 16

#: First allocation of a buffer's active chunk.  Most traces (per-layer
#: selections, unit-test fixtures) never leave this tier; the active
#: chunk grows geometrically up to :data:`CHUNK_ROWS` before sealing.
_MIN_CHUNK_ROWS = 1 << 10

#: Environment variable naming the spill directory for sealed chunks.
SPILL_DIR_ENV = "REPRO_TRACE_SPILL_DIR"

#: (dtype per column) — cycles, addrs, nbytes, writes, kinds,
#: layer_ids, durations.  ``writes`` is stored as int8 and exposed as
#: bool by :meth:`RangeBuffer.arrays` (a free ``view``, not a copy).
_COLUMN_DTYPES = (np.int64, np.int64, np.int64, np.int8, np.int8,
                  np.int64, np.int64)

# -- module-level residency accounting --------------------------------------
# One process-wide tally of the column bytes held in RAM by every live
# RangeBuffer.  Spilled chunks leave the tally (their pages are
# file-backed and reclaimable); buffer destruction returns the rest.
_TOTALS = {"resident": 0, "peak": 0, "spilled": 0}


def _account(delta: int) -> None:
    _TOTALS["resident"] += delta
    if _TOTALS["resident"] > _TOTALS["peak"]:
        _TOTALS["peak"] = _TOTALS["resident"]
        obs.gauge("trace.peak_resident_bytes", _TOTALS["peak"])


def resident_trace_bytes() -> int:
    """Column bytes currently held in RAM across all live traces."""
    return _TOTALS["resident"]


def peak_trace_bytes() -> int:
    """High-water mark of :func:`resident_trace_bytes` (also published
    as the ``trace.peak_resident_bytes`` gauge on every new high)."""
    return _TOTALS["peak"]


def spilled_trace_bytes() -> int:
    """Cumulative column bytes rewritten to spill files this process."""
    return _TOTALS["spilled"]


def reset_peak_trace_bytes() -> int:
    """Restart the peak at the current residency; returns the new peak.

    Lets a caller scope the high-water mark to one region of interest
    (the peak-memory regression test brackets a single sweep cell)."""
    _TOTALS["peak"] = _TOTALS["resident"]
    obs.gauge("trace.peak_resident_bytes", _TOTALS["peak"])
    return _TOTALS["peak"]


def _spill_chunk(cols: Tuple[np.ndarray, ...]) -> Optional[Tuple[np.ndarray, ...]]:
    """Rewrite one sealed chunk to an anonymous memory-mapped file.

    Returns read-only mmap-backed views, or ``None`` when no spill
    directory is configured.  The scratch file is unlinked immediately
    after mapping, so spills never outlive the process even on a crash.
    """
    # Spill location changes where scratch bytes live, never a result.
    # repro: allow(fingerprint-purity)
    spill_dir = os.environ.get(SPILL_DIR_ENV)
    if not spill_dir:
        return None
    os.makedirs(spill_dir, exist_ok=True)
    fd, path = tempfile.mkstemp(prefix="repro-trace-", suffix=".chunk",
                                dir=spill_dir)
    try:
        with os.fdopen(fd, "wb") as handle:
            for col in cols:
                handle.write(np.ascontiguousarray(col).tobytes())
        raw = np.memmap(path, dtype=np.uint8, mode="r")
    finally:
        os.unlink(path)
    views = []
    offset = 0
    for col in cols:
        views.append(raw[offset:offset + col.nbytes].view(col.dtype))
        offset += col.nbytes
    return tuple(views)


class RangeBuffer:
    """Columnar (structure-of-arrays) store of trace ranges, chunked.

    Appends land in a per-buffer *active* chunk (numpy, geometric growth
    up to :data:`CHUNK_ROWS` rows); full chunks are sealed immutable and
    — when ``$REPRO_TRACE_SPILL_DIR`` is set — rewritten to unlinked
    memory-mapped scratch files so their RAM is reclaimable.  Numpy
    snapshots are assembled lazily and cached until the next append.
    Byte totals are maintained incrementally so accounting is O(1)
    regardless of trace length.
    """

    __slots__ = ("_chunks", "_active", "_fill", "_cap", "_owned",
                 "read_bytes", "write_bytes", "kind_bytes", "version",
                 "_arrays", "_arrays_version", "__weakref__")

    def __init__(self) -> None:
        #: Sealed, immutable chunks (tuples of 7 parallel arrays, each
        #: exactly CHUNK_ROWS rows; possibly mmap-backed when spilled).
        self._chunks: List[Tuple[np.ndarray, ...]] = []
        self._active: Optional[Tuple[np.ndarray, ...]] = None
        self._fill = 0
        self._cap = 0
        #: RAM bytes this buffer has charged to the module tally.
        self._owned = 0
        self.read_bytes = 0
        self.write_bytes = 0
        self.kind_bytes = [0] * len(_KIND_LIST)
        self.version = 0
        self._arrays: Optional[Tuple[np.ndarray, ...]] = None
        self._arrays_version = -1

    def __len__(self) -> int:
        return len(self._chunks) * CHUNK_ROWS + self._fill

    def __del__(self) -> None:
        try:
            _account(-self._owned)
        except Exception:
            pass  # interpreter teardown: module globals may be gone

    # -- chunk management --

    def _charge(self, delta: int) -> None:
        self._owned += delta
        _account(delta)

    def _alloc_active(self, rows: int) -> None:
        self._active = tuple(np.empty(rows, dtype)
                             for dtype in _COLUMN_DTYPES)
        self._cap = rows
        self._charge(sum(col.nbytes for col in self._active))

    def _seal_active(self) -> None:
        """Move the (full, CHUNK_ROWS-sized) active chunk to the sealed
        list, spilling it if a spill directory is configured."""
        chunk = self._active
        self._active = None
        self._fill = 0
        self._cap = 0
        spilled = _spill_chunk(chunk)
        if spilled is not None:
            chunk_bytes = sum(col.nbytes for col in chunk)
            self._charge(-chunk_bytes)
            _TOTALS["spilled"] += chunk_bytes
            obs.incr("trace.spilled_chunks")
            obs.gauge("trace.spilled_bytes", _TOTALS["spilled"])
            chunk = spilled
        self._chunks.append(chunk)

    def _make_room(self) -> None:
        """Ensure the active chunk has at least one free row."""
        if self._cap == 0:
            self._alloc_active(_MIN_CHUNK_ROWS)
            return
        if self._cap < CHUNK_ROWS:
            # Small-trace tier: grow geometrically in place.
            grown_rows = min(self._cap * 4, CHUNK_ROWS)
            old = self._active
            old_bytes = sum(col.nbytes for col in old)
            self._alloc_active(grown_rows)
            for dst, src in zip(self._active, old):
                dst[:self._fill] = src[:self._fill]
            self._charge(-old_bytes)
        else:
            self._seal_active()
            self._alloc_active(CHUNK_ROWS)

    # -- appends --

    def append(self, cycle: int, addr: int, nbytes: int, write: bool,
               kind_code: int, layer_id: int, duration: int) -> None:
        if self._fill == self._cap:
            self._make_room()
        row = self._fill
        cols = self._active
        cols[0][row] = cycle
        cols[1][row] = addr
        cols[2][row] = nbytes
        cols[3][row] = 1 if write else 0
        cols[4][row] = kind_code
        cols[5][row] = layer_id
        cols[6][row] = duration
        self._fill = row + 1
        if write:
            self.write_bytes += nbytes
        else:
            self.read_bytes += nbytes
        self.kind_bytes[kind_code] += nbytes
        self.version += 1

    def extend_columns(self, cycles: np.ndarray, addrs: np.ndarray,
                       nbytes: np.ndarray, writes: np.ndarray,
                       kind_codes: np.ndarray, layer_ids: np.ndarray,
                       durations: np.ndarray) -> None:
        """Bulk append of parallel columns (chunk-sized C-level copies)."""
        nbytes = np.ascontiguousarray(nbytes, np.int64)
        total = len(nbytes)
        if total == 0:
            return
        wr = np.asarray(writes)
        if wr.dtype != np.int8:
            wr = wr.astype(bool).astype(np.int8)
        kc = np.ascontiguousarray(kind_codes, np.int8)
        src = (np.ascontiguousarray(cycles, np.int64),
               np.ascontiguousarray(addrs, np.int64),
               nbytes, wr, kc,
               np.ascontiguousarray(layer_ids, np.int64),
               np.ascontiguousarray(durations, np.int64))
        pos = 0
        while pos < total:
            if self._fill == self._cap:
                self._make_room()
            take = min(self._cap - self._fill, total - pos)
            row = self._fill
            for dst, col in zip(self._active, src):
                dst[row:row + take] = col[pos:pos + take]
            self._fill = row + take
            pos += take
        total_write = int(nbytes[wr != 0].sum())
        self.write_bytes += total_write
        self.read_bytes += int(nbytes.sum()) - total_write
        for code in np.unique(kc):
            self.kind_bytes[code] += int(nbytes[kc == code].sum())
        self.version += 1

    # -- snapshots --

    def iter_parts(self):
        """Yield the column tuples of every sealed chunk, then the live
        rows of the active chunk — zero-copy views, append-ordered."""
        for chunk in self._chunks:
            yield chunk
        if self._fill:
            yield tuple(col[:self._fill] for col in self._active)

    def arrays(self) -> Tuple[np.ndarray, ...]:
        """Numpy snapshot ``(cycles, addrs, nbytes, writes, kinds,
        layer_ids, durations)``, cached per revision.  ``writes`` comes
        back as bool.  With a single resident part the columns are
        zero-copy views of the store; multi-chunk (or spilled) buffers
        concatenate — consumers must treat the snapshot as read-only.
        """
        if self._arrays_version != self.version:
            parts = list(self.iter_parts())
            if not parts:
                cols = tuple(np.empty(0, dtype)
                             for dtype in _COLUMN_DTYPES)
            elif len(parts) == 1:
                cols = parts[0]
            else:
                cols = tuple(np.concatenate([part[i] for part in parts])
                             for i in range(len(_COLUMN_DTYPES)))
            self._arrays = (cols[0], cols[1], cols[2], cols[3].view(bool),
                            cols[4], cols[5], cols[6])
            self._arrays_version = self.version
        return self._arrays


def _stream_bytes(value: object) -> int:
    """Resident bytes of a memoized value, when it is a block stream.

    Expanded block streams — not the compact range columns — dominate a
    long-sequence cell's footprint, so the residency gauge charges them
    for as long as a trace's memo keeps them alive.
    """
    if not isinstance(value, BlockStream):
        return 0
    total = (value.cycles.nbytes + value.addrs.nbytes
             + value.writes.nbytes + value.layer_ids.nbytes)
    if value.kinds is not None:
        total += value.kinds.nbytes
    return total


class Trace:
    """An ordered collection of trace ranges, stored columnar.

    The per-range object API (:meth:`add`, iteration, :attr:`ranges`)
    is preserved for construction and inspection; aggregation, filtering
    and block expansion all run vectorized on the underlying
    :class:`RangeBuffer` columns.
    """

    __slots__ = ("buf", "_memo", "_memo_owned", "__weakref__")

    def __init__(self, ranges: Optional[Iterable[TraceRange]] = None):
        self.buf = RangeBuffer()
        self._memo: Dict[object, object] = {}
        #: Resident bytes of memoized block streams charged to the
        #: module tally (returned when the trace is collected).
        self._memo_owned = 0
        if ranges:
            self.extend(ranges)

    def __del__(self) -> None:
        try:
            _account(-self._memo_owned)
        except Exception:
            pass  # interpreter teardown: module globals may be gone

    def __len__(self) -> int:
        return len(self.buf)

    def __iter__(self):
        return iter(self.ranges)

    # -- construction --

    def emit(self, cycle: int, addr: int, nbytes: int, *, write: bool,
             kind: AccessKind, layer_id: int, duration: int = 0) -> None:
        """Append one range from scalars (no :class:`TraceRange` object).

        This is the accelerator walks' fast path; it applies the same
        validation as :class:`TraceRange`.
        """
        if addr < 0:
            raise ValueError("addr must be non-negative")
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        if cycle < 0 or duration < 0:
            raise ValueError("cycle and duration must be non-negative")
        self.buf.append(cycle, addr, nbytes, write, _KIND_CODE[kind],
                        layer_id, duration)

    def emit_batch(self, cycles, addrs, nbytes, *, writes, kind_codes,
                   layer_id: int, durations) -> None:
        """Append many ranges from parallel columns (the tile walks'
        fast path).  Applies the same validation as :class:`TraceRange`,
        vectorized."""
        cycles = np.asarray(cycles, dtype=np.int64)
        addrs = np.asarray(addrs, dtype=np.int64)
        nbytes = np.asarray(nbytes, dtype=np.int64)
        durations = np.asarray(durations, dtype=np.int64)
        n = len(addrs)
        if n == 0:
            return
        if int(addrs.min()) < 0:
            raise ValueError("addr must be non-negative")
        if int(nbytes.min()) <= 0:
            raise ValueError("nbytes must be positive")
        if int(cycles.min()) < 0 or int(durations.min()) < 0:
            raise ValueError("cycle and duration must be non-negative")
        self.buf.extend_columns(
            cycles, addrs, nbytes, writes, kind_codes,
            np.full(n, layer_id, dtype=np.int64), durations)

    def add(self, trace_range: TraceRange) -> None:
        # TraceRange already validated in __post_init__.
        self.buf.append(trace_range.cycle, trace_range.addr,
                        trace_range.nbytes, trace_range.write,
                        _KIND_CODE[trace_range.kind], trace_range.layer_id,
                        trace_range.duration)

    def extend(self, ranges: Iterable[TraceRange]) -> None:
        for r in ranges:
            self.add(r)

    @staticmethod
    def concat(traces: Iterable["Trace"]) -> "Trace":
        """Columnar concatenation — no per-range objects materialized."""
        merged = Trace()
        buf = merged.buf
        for trace in traces:
            for part in trace.buf.iter_parts():
                buf.extend_columns(*part)
        return merged

    @classmethod
    def _from_arrays(cls, cycles, addrs, nbytes, writes, kinds, layer_ids,
                     durations) -> "Trace":
        trace = cls()
        trace.buf.extend_columns(cycles, addrs, nbytes, writes, kinds,
                                 layer_ids, durations)
        return trace

    # -- per-range view (compatibility) --

    @property
    def ranges(self) -> List[TraceRange]:
        """Materialized :class:`TraceRange` list (cached per revision).

        A fresh list is returned each time: mutating it cannot touch the
        columnar store — append through :meth:`add`/:meth:`emit`.
        """
        def build() -> List[TraceRange]:
            cycles, addrs, nbytes, writes, kinds, layer_ids, durations = \
                self.buf.arrays()
            return [
                TraceRange(cycle, addr, count, write,
                           _KIND_LIST[kind], layer_id, duration)
                for cycle, addr, count, write, kind, layer_id, duration
                # Deliberate boundary materialization: the compatibility
                # view is built once per revision and memoized.
                # repro: allow(hot-path-hygiene)
                in zip(cycles.tolist(), addrs.tolist(), nbytes.tolist(),
                       writes.tolist(), kinds.tolist(), layer_ids.tolist(),
                       durations.tolist())
            ]
        return list(self.memo("ranges", build))

    # -- memoization --

    def memo(self, key: object, build: Callable[[], object]):
        """Cache ``build()`` under ``key`` until the trace next mutates.

        Consumers (block expansion, protection-scheme overfetch) use this
        to share derived streams across every scheme in a sweep cell.
        """
        entry = self._memo.get(key)
        if entry is not None and entry[0] == self.buf.version:
            return entry[1]
        value = build()
        delta = _stream_bytes(value)
        if entry is not None:
            delta -= _stream_bytes(entry[1])
        if delta:
            self._memo_owned += delta
            _account(delta)
        self._memo[key] = (self.buf.version, value)
        return value

    # -- aggregation (O(1) from running totals) --

    @property
    def read_bytes(self) -> int:
        return self.buf.read_bytes

    @property
    def write_bytes(self) -> int:
        return self.buf.write_bytes

    @property
    def total_bytes(self) -> int:
        return self.buf.read_bytes + self.buf.write_bytes

    def bytes_by_kind(self) -> dict:
        return {kind: self.buf.kind_bytes[code]
                for code, kind in enumerate(_KIND_LIST)
                if self.buf.kind_bytes[code]}

    # -- vectorized selection --

    def filter(self, kind: AccessKind) -> "Trace":
        return self._select(self.buf.arrays()[4] == _KIND_CODE[kind])

    def for_layer(self, layer_id: int) -> "Trace":
        return self._select(self.buf.arrays()[5] == layer_id)

    def _select(self, mask: np.ndarray) -> "Trace":
        cols = self.buf.arrays()
        return Trace._from_arrays(*(c[mask] for c in cols))

    def end_cycle(self) -> int:
        if not len(self.buf):
            return 0
        cycles, _, _, _, _, _, durations = self.buf.arrays()
        return int((cycles + np.maximum(durations, 1)).max())

    # -- block expansion --

    def to_blocks(self) -> BlockStream:
        """Expand every range to block-granular accesses (memoized)."""
        def build() -> BlockStream:
            cycles, addrs, nbytes, writes, kinds, layer_ids, durations = \
                self.buf.arrays()
            return expand_ranges(cycles, addrs, nbytes, writes, layer_ids,
                                 durations, kinds)
        return self.memo("blocks", build)

    def sorted_blocks(self) -> BlockStream:
        """Cycle-sorted expansion (memoized) — the per-layer base stream
        every protection scheme consumes."""
        return self.memo("sorted_blocks",
                         lambda: self.to_blocks().sorted_by_cycle())
