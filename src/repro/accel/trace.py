"""DRAM access traces — the columnar stream core.

The accelerator emits accesses as compact ranges (contiguous byte spans
with an issue window); the DRAM simulator consumes them expanded to
64-byte block streams (:class:`BlockStream`, numpy arrays). Ranges are
stored columnar (structure-of-arrays, :class:`RangeBuffer`) rather than
as per-range Python objects: a ResNet-scale model touches megabytes per
layer, and object-per-range bookkeeping would dominate runtime.

:class:`TraceRange` remains the public per-range record — construction,
iteration and ``trace.ranges`` materialize it on demand — but the hot
paths (byte accounting, filtering, block expansion) run on the columns.
Block expansion is fully vectorized (repeat + cumsum, no per-range
loop) and memoized per trace revision, so every consumer of one layer's
expanded stream in a scheme sweep shares a single expansion.

BlockStreams are treated as immutable once built: transformations
(:meth:`BlockStream.sorted_by_cycle`, :meth:`BlockStream.concat`)
return new streams, which is what makes the memoized sharing safe.
"""

from __future__ import annotations

import enum
from array import array
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.utils.bitops import align_down
from repro.utils.sorting import stable_order

BLOCK_BYTES = 64


class AccessKind(enum.Enum):
    """What a range carries — used by protection schemes to bind metadata."""

    IFMAP = "ifmap"
    WEIGHT = "weight"
    OFMAP = "ofmap"
    METADATA = "metadata"
    #: Per-sequence attention K/V state (KV-cache reads in decode, K^T/V
    #: operand streams in encoders) — kept distinct from WEIGHT so
    #: protection overhead on KV-cache traffic is measurable.
    KVCACHE = "kvcache"


#: Stable integer codes for the columnar ``kinds`` column.
_KIND_LIST: Tuple[AccessKind, ...] = tuple(AccessKind)
_KIND_CODE: Dict[AccessKind, int] = {k: i for i, k in enumerate(_KIND_LIST)}


def kind_code(kind: AccessKind) -> int:
    """Stable integer code of ``kind`` in the columnar ``kinds`` column
    (for consumers working directly on :meth:`RangeBuffer.arrays`)."""
    return _KIND_CODE[kind]


@dataclass(frozen=True)
class TraceRange:
    """A contiguous DRAM access: ``nbytes`` at ``addr``, issued over
    ``[cycle, cycle + duration)`` accelerator cycles."""

    cycle: int
    addr: int
    nbytes: int
    write: bool
    kind: AccessKind
    layer_id: int
    duration: int = 0

    def __post_init__(self) -> None:
        if self.addr < 0:
            raise ValueError("addr must be non-negative")
        if self.nbytes <= 0:
            raise ValueError("nbytes must be positive")
        if self.cycle < 0 or self.duration < 0:
            raise ValueError("cycle and duration must be non-negative")

    @property
    def num_blocks(self) -> int:
        first = align_down(self.addr, BLOCK_BYTES)
        last = align_down(self.addr + self.nbytes - 1, BLOCK_BYTES)
        return (last - first) // BLOCK_BYTES + 1


@dataclass
class BlockStream:
    """Expanded per-block access stream (parallel numpy arrays).

    ``kinds`` is the optional per-block :class:`AccessKind` code column
    (see :func:`kind_code`). Streams expanded from a :class:`Trace`
    carry it; ad-hoc streams may omit it (``None``), in which case
    per-kind accounting is unavailable and concatenation drops the
    column rather than inventing codes.
    """

    cycles: np.ndarray      # int64 issue cycle per block
    addrs: np.ndarray       # uint64 block-aligned byte address
    writes: np.ndarray      # bool
    layer_ids: np.ndarray   # int32
    kinds: Optional[np.ndarray] = None  # int8 AccessKind codes

    def __post_init__(self) -> None:
        lengths = {len(self.cycles), len(self.addrs), len(self.writes),
                   len(self.layer_ids)}
        if self.kinds is not None:
            lengths.add(len(self.kinds))
        if len(lengths) != 1:
            raise ValueError("BlockStream arrays must be parallel")

    def __len__(self) -> int:
        return len(self.addrs)

    @property
    def total_bytes(self) -> int:
        return len(self) * BLOCK_BYTES

    @property
    def read_blocks(self) -> int:
        return int((~self.writes).sum())

    @property
    def write_blocks(self) -> int:
        return int(self.writes.sum())

    def bytes_by_kind(self) -> Dict[AccessKind, int]:
        """Per-kind block bytes; empty when the stream has no kind column."""
        if self.kinds is None or not len(self):
            return {}
        counts = np.bincount(self.kinds, minlength=len(_KIND_LIST))
        return {kind: int(counts[code]) * BLOCK_BYTES
                for code, kind in enumerate(_KIND_LIST) if counts[code]}

    def sorted_by_cycle(self) -> "BlockStream":
        if len(self.cycles) and self.cycles.min() >= 0:
            order = stable_order(self.cycles)
        else:
            order = np.argsort(self.cycles, kind="stable")
        return BlockStream(self.cycles[order], self.addrs[order],
                           self.writes[order], self.layer_ids[order],
                           None if self.kinds is None else self.kinds[order])

    @staticmethod
    def concat(streams: Iterable["BlockStream"]) -> "BlockStream":
        streams = [s for s in streams if len(s)]
        if not streams:
            return empty_block_stream()
        kinds = None
        if all(s.kinds is not None for s in streams):
            kinds = np.concatenate([s.kinds for s in streams])
        return BlockStream(
            np.concatenate([s.cycles for s in streams]),
            np.concatenate([s.addrs for s in streams]),
            np.concatenate([s.writes for s in streams]),
            np.concatenate([s.layer_ids for s in streams]),
            kinds,
        )


def empty_block_stream() -> BlockStream:
    return BlockStream(
        np.empty(0, np.int64), np.empty(0, np.uint64),
        np.empty(0, bool), np.empty(0, np.int32), np.empty(0, np.int8),
    )


def expand_ranges(cycles: np.ndarray, addrs: np.ndarray, nbytes: np.ndarray,
                  writes: np.ndarray, layer_ids: np.ndarray,
                  durations: np.ndarray,
                  kinds: Optional[np.ndarray] = None) -> BlockStream:
    """Vectorized block expansion of columnar ranges (repeat + cumsum).

    Blocks within a range are issued uniformly across its duration,
    modelling a streaming DMA engine. Output order is range order, with
    each range's blocks ascending by address — identical to expanding
    range by range.
    """
    n = len(addrs)
    if n == 0:
        return empty_block_stream()
    first = addrs - addrs % BLOCK_BYTES
    last = addrs + nbytes - 1
    last -= last % BLOCK_BYTES
    counts = (last - first) // BLOCK_BYTES + 1
    total = int(counts.sum())
    starts = np.cumsum(counts) - counts
    within = np.arange(total, dtype=np.int64)
    within -= np.repeat(starts, counts)
    out_addrs = within * BLOCK_BYTES
    out_addrs += np.repeat(first, counts)
    # (j * duration) // count spreads blocks over the issue window; it
    # degenerates to 0 for zero duration or single-block ranges.
    # ``within`` is consumed in place as the offset scratch buffer.
    within *= np.repeat(durations, counts)
    within //= np.repeat(counts, counts)
    out_cycles = np.repeat(cycles, counts)
    out_cycles += within
    return BlockStream(
        out_cycles,
        out_addrs.astype(np.uint64),
        np.repeat(writes, counts),
        np.repeat(layer_ids, counts).astype(np.int32),
        None if kinds is None else np.repeat(kinds, counts).astype(np.int8),
    )


class RangeBuffer:
    """Columnar (structure-of-arrays) store of trace ranges.

    Appends go to compact ``array`` columns; numpy views are snapshotted
    lazily and cached until the next append. Byte totals are maintained
    incrementally so accounting is O(1) regardless of trace length.
    """

    __slots__ = ("cycles", "addrs", "nbytes", "writes", "kinds",
                 "layer_ids", "durations", "read_bytes", "write_bytes",
                 "kind_bytes", "version", "_arrays", "_arrays_version")

    def __init__(self) -> None:
        self.cycles = array("q")
        self.addrs = array("q")
        self.nbytes = array("q")
        self.writes = array("b")
        self.kinds = array("b")
        self.layer_ids = array("q")
        self.durations = array("q")
        self.read_bytes = 0
        self.write_bytes = 0
        self.kind_bytes = [0] * len(_KIND_LIST)
        self.version = 0
        self._arrays: Optional[Tuple[np.ndarray, ...]] = None
        self._arrays_version = -1

    def __len__(self) -> int:
        return len(self.addrs)

    def append(self, cycle: int, addr: int, nbytes: int, write: bool,
               kind_code: int, layer_id: int, duration: int) -> None:
        self.cycles.append(cycle)
        self.addrs.append(addr)
        self.nbytes.append(nbytes)
        self.writes.append(1 if write else 0)
        self.kinds.append(kind_code)
        self.layer_ids.append(layer_id)
        self.durations.append(duration)
        if write:
            self.write_bytes += nbytes
        else:
            self.read_bytes += nbytes
        self.kind_bytes[kind_code] += nbytes
        self.version += 1

    def extend_columns(self, cycles: np.ndarray, addrs: np.ndarray,
                       nbytes: np.ndarray, writes: np.ndarray,
                       kind_codes: np.ndarray, layer_ids: np.ndarray,
                       durations: np.ndarray) -> None:
        """Bulk append of parallel columns (one C-level copy each)."""
        self.cycles.frombytes(
            np.ascontiguousarray(cycles, np.int64).tobytes())
        self.addrs.frombytes(np.ascontiguousarray(addrs, np.int64).tobytes())
        self.nbytes.frombytes(
            np.ascontiguousarray(nbytes, np.int64).tobytes())
        wr = np.ascontiguousarray(writes)
        if wr.dtype != np.int8:
            wr = wr.astype(bool).astype(np.int8)
        self.writes.frombytes(wr.tobytes())
        kc = np.ascontiguousarray(kind_codes, np.int8)
        self.kinds.frombytes(kc.tobytes())
        self.layer_ids.frombytes(
            np.ascontiguousarray(layer_ids, np.int64).tobytes())
        self.durations.frombytes(
            np.ascontiguousarray(durations, np.int64).tobytes())
        wmask = wr != 0
        total_write = int(nbytes[wmask].sum())
        self.write_bytes += total_write
        self.read_bytes += int(nbytes.sum()) - total_write
        for code in np.unique(kc):
            self.kind_bytes[code] += int(nbytes[kc == code].sum())
        self.version += 1

    def arrays(self) -> Tuple[np.ndarray, ...]:
        """Numpy snapshot ``(cycles, addrs, nbytes, writes, kinds,
        layer_ids, durations)``, cached per revision."""
        if self._arrays_version != self.version:
            self._arrays = (
                np.array(self.cycles, dtype=np.int64),
                np.array(self.addrs, dtype=np.int64),
                np.array(self.nbytes, dtype=np.int64),
                np.array(self.writes, dtype=bool),
                np.array(self.kinds, dtype=np.int8),
                np.array(self.layer_ids, dtype=np.int64),
                np.array(self.durations, dtype=np.int64),
            )
            self._arrays_version = self.version
        return self._arrays


class Trace:
    """An ordered collection of trace ranges, stored columnar.

    The per-range object API (:meth:`add`, iteration, :attr:`ranges`)
    is preserved for construction and inspection; aggregation, filtering
    and block expansion all run vectorized on the underlying
    :class:`RangeBuffer` columns.
    """

    __slots__ = ("buf", "_memo")

    def __init__(self, ranges: Optional[Iterable[TraceRange]] = None):
        self.buf = RangeBuffer()
        self._memo: Dict[object, object] = {}
        if ranges:
            self.extend(ranges)

    def __len__(self) -> int:
        return len(self.buf)

    def __iter__(self):
        return iter(self.ranges)

    # -- construction --

    def emit(self, cycle: int, addr: int, nbytes: int, *, write: bool,
             kind: AccessKind, layer_id: int, duration: int = 0) -> None:
        """Append one range from scalars (no :class:`TraceRange` object).

        This is the accelerator walks' fast path; it applies the same
        validation as :class:`TraceRange`.
        """
        if addr < 0:
            raise ValueError("addr must be non-negative")
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        if cycle < 0 or duration < 0:
            raise ValueError("cycle and duration must be non-negative")
        self.buf.append(cycle, addr, nbytes, write, _KIND_CODE[kind],
                        layer_id, duration)

    def emit_batch(self, cycles, addrs, nbytes, *, writes, kind_codes,
                   layer_id: int, durations) -> None:
        """Append many ranges from parallel columns (the tile walks'
        fast path).  Applies the same validation as :class:`TraceRange`,
        vectorized."""
        cycles = np.asarray(cycles, dtype=np.int64)
        addrs = np.asarray(addrs, dtype=np.int64)
        nbytes = np.asarray(nbytes, dtype=np.int64)
        durations = np.asarray(durations, dtype=np.int64)
        n = len(addrs)
        if n == 0:
            return
        if int(addrs.min()) < 0:
            raise ValueError("addr must be non-negative")
        if int(nbytes.min()) <= 0:
            raise ValueError("nbytes must be positive")
        if int(cycles.min()) < 0 or int(durations.min()) < 0:
            raise ValueError("cycle and duration must be non-negative")
        self.buf.extend_columns(
            cycles, addrs, nbytes, writes, kind_codes,
            np.full(n, layer_id, dtype=np.int64), durations)

    def add(self, trace_range: TraceRange) -> None:
        # TraceRange already validated in __post_init__.
        self.buf.append(trace_range.cycle, trace_range.addr,
                        trace_range.nbytes, trace_range.write,
                        _KIND_CODE[trace_range.kind], trace_range.layer_id,
                        trace_range.duration)

    def extend(self, ranges: Iterable[TraceRange]) -> None:
        for r in ranges:
            self.add(r)

    @staticmethod
    def concat(traces: Iterable["Trace"]) -> "Trace":
        """Columnar concatenation — no per-range objects materialized."""
        merged = Trace()
        buf = merged.buf
        for trace in traces:
            src = trace.buf
            buf.cycles.extend(src.cycles)
            buf.addrs.extend(src.addrs)
            buf.nbytes.extend(src.nbytes)
            buf.writes.extend(src.writes)
            buf.kinds.extend(src.kinds)
            buf.layer_ids.extend(src.layer_ids)
            buf.durations.extend(src.durations)
            buf.read_bytes += src.read_bytes
            buf.write_bytes += src.write_bytes
            for code, total in enumerate(src.kind_bytes):
                buf.kind_bytes[code] += total
        buf.version += 1
        return merged

    @classmethod
    def _from_arrays(cls, cycles, addrs, nbytes, writes, kinds, layer_ids,
                     durations) -> "Trace":
        trace = cls()
        buf = trace.buf
        buf.cycles.extend(cycles.tolist())
        buf.addrs.extend(addrs.tolist())
        buf.nbytes.extend(nbytes.tolist())
        buf.writes.extend(writes.astype(np.int8).tolist())
        buf.kinds.extend(kinds.tolist())
        buf.layer_ids.extend(layer_ids.tolist())
        buf.durations.extend(durations.tolist())
        write_total = int(nbytes[writes].sum())
        buf.write_bytes = write_total
        buf.read_bytes = int(nbytes.sum()) - write_total
        for code in range(len(_KIND_LIST)):
            buf.kind_bytes[code] = int(nbytes[kinds == code].sum())
        buf.version += 1
        return trace

    # -- per-range view (compatibility) --

    @property
    def ranges(self) -> List[TraceRange]:
        """Materialized :class:`TraceRange` list (cached per revision).

        A fresh list is returned each time: mutating it cannot touch the
        columnar store — append through :meth:`add`/:meth:`emit`.
        """
        def build() -> List[TraceRange]:
            buf = self.buf
            return [
                TraceRange(cycle, addr, nbytes, bool(write),
                           _KIND_LIST[kind], layer_id, duration)
                for cycle, addr, nbytes, write, kind, layer_id, duration
                in zip(buf.cycles, buf.addrs, buf.nbytes, buf.writes,
                       buf.kinds, buf.layer_ids, buf.durations)
            ]
        return list(self.memo("ranges", build))

    # -- memoization --

    def memo(self, key: object, build: Callable[[], object]):
        """Cache ``build()`` under ``key`` until the trace next mutates.

        Consumers (block expansion, protection-scheme overfetch) use this
        to share derived streams across every scheme in a sweep cell.
        """
        entry = self._memo.get(key)
        if entry is not None and entry[0] == self.buf.version:
            return entry[1]
        value = build()
        self._memo[key] = (self.buf.version, value)
        return value

    # -- aggregation (O(1) from running totals) --

    @property
    def read_bytes(self) -> int:
        return self.buf.read_bytes

    @property
    def write_bytes(self) -> int:
        return self.buf.write_bytes

    @property
    def total_bytes(self) -> int:
        return self.buf.read_bytes + self.buf.write_bytes

    def bytes_by_kind(self) -> dict:
        return {kind: self.buf.kind_bytes[code]
                for code, kind in enumerate(_KIND_LIST)
                if self.buf.kind_bytes[code]}

    # -- vectorized selection --

    def filter(self, kind: AccessKind) -> "Trace":
        return self._select(self.buf.arrays()[4] == _KIND_CODE[kind])

    def for_layer(self, layer_id: int) -> "Trace":
        return self._select(self.buf.arrays()[5] == layer_id)

    def _select(self, mask: np.ndarray) -> "Trace":
        cols = self.buf.arrays()
        return Trace._from_arrays(*(c[mask] for c in cols))

    def end_cycle(self) -> int:
        if not len(self.buf):
            return 0
        cycles, _, _, _, _, _, durations = self.buf.arrays()
        return int((cycles + np.maximum(durations, 1)).max())

    # -- block expansion --

    def to_blocks(self) -> BlockStream:
        """Expand every range to block-granular accesses (memoized)."""
        def build() -> BlockStream:
            cycles, addrs, nbytes, writes, kinds, layer_ids, durations = \
                self.buf.arrays()
            return expand_ranges(cycles, addrs, nbytes, writes, layer_ids,
                                 durations, kinds)
        return self.memo("blocks", build)

    def sorted_blocks(self) -> BlockStream:
        """Cycle-sorted expansion (memoized) — the per-layer base stream
        every protection scheme consumes."""
        return self.memo("sorted_blocks",
                         lambda: self.to_blocks().sorted_by_cycle())
