"""DRAM access traces.

The accelerator emits accesses as compact :class:`TraceRange` records
(contiguous byte ranges with an issue window); the DRAM simulator consumes
them expanded to 64-byte block streams (:class:`BlockStream`, numpy
arrays). Keeping ranges compact matters: a ResNet-scale model touches
megabytes per layer, and per-block Python objects would dominate runtime.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, List, Optional

import numpy as np

from repro.utils.bitops import align_down, ceil_div

BLOCK_BYTES = 64


class AccessKind(enum.Enum):
    """What a range carries — used by protection schemes to bind metadata."""

    IFMAP = "ifmap"
    WEIGHT = "weight"
    OFMAP = "ofmap"
    METADATA = "metadata"


@dataclass(frozen=True)
class TraceRange:
    """A contiguous DRAM access: ``nbytes`` at ``addr``, issued over
    ``[cycle, cycle + duration)`` accelerator cycles."""

    cycle: int
    addr: int
    nbytes: int
    write: bool
    kind: AccessKind
    layer_id: int
    duration: int = 0

    def __post_init__(self) -> None:
        if self.addr < 0:
            raise ValueError("addr must be non-negative")
        if self.nbytes <= 0:
            raise ValueError("nbytes must be positive")
        if self.cycle < 0 or self.duration < 0:
            raise ValueError("cycle and duration must be non-negative")

    @property
    def num_blocks(self) -> int:
        first = align_down(self.addr, BLOCK_BYTES)
        last = align_down(self.addr + self.nbytes - 1, BLOCK_BYTES)
        return (last - first) // BLOCK_BYTES + 1


@dataclass
class BlockStream:
    """Expanded per-block access stream (parallel numpy arrays)."""

    cycles: np.ndarray      # int64 issue cycle per block
    addrs: np.ndarray       # uint64 block-aligned byte address
    writes: np.ndarray      # bool
    layer_ids: np.ndarray   # int32

    def __post_init__(self) -> None:
        lengths = {len(self.cycles), len(self.addrs), len(self.writes),
                   len(self.layer_ids)}
        if len(lengths) != 1:
            raise ValueError("BlockStream arrays must be parallel")

    def __len__(self) -> int:
        return len(self.addrs)

    @property
    def total_bytes(self) -> int:
        return len(self) * BLOCK_BYTES

    @property
    def read_blocks(self) -> int:
        return int((~self.writes).sum())

    @property
    def write_blocks(self) -> int:
        return int(self.writes.sum())

    def sorted_by_cycle(self) -> "BlockStream":
        order = np.argsort(self.cycles, kind="stable")
        return BlockStream(self.cycles[order], self.addrs[order],
                           self.writes[order], self.layer_ids[order])

    @staticmethod
    def concat(streams: Iterable["BlockStream"]) -> "BlockStream":
        streams = [s for s in streams if len(s)]
        if not streams:
            return BlockStream(
                np.empty(0, np.int64), np.empty(0, np.uint64),
                np.empty(0, bool), np.empty(0, np.int32),
            )
        return BlockStream(
            np.concatenate([s.cycles for s in streams]),
            np.concatenate([s.addrs for s in streams]),
            np.concatenate([s.writes for s in streams]),
            np.concatenate([s.layer_ids for s in streams]),
        )


class Trace:
    """An ordered collection of :class:`TraceRange` records."""

    def __init__(self, ranges: Optional[List[TraceRange]] = None):
        self.ranges: List[TraceRange] = list(ranges) if ranges else []

    def __len__(self) -> int:
        return len(self.ranges)

    def __iter__(self):
        return iter(self.ranges)

    def add(self, trace_range: TraceRange) -> None:
        self.ranges.append(trace_range)

    def extend(self, ranges: Iterable[TraceRange]) -> None:
        self.ranges.extend(ranges)

    @property
    def read_bytes(self) -> int:
        return sum(r.nbytes for r in self.ranges if not r.write)

    @property
    def write_bytes(self) -> int:
        return sum(r.nbytes for r in self.ranges if r.write)

    @property
    def total_bytes(self) -> int:
        return self.read_bytes + self.write_bytes

    def bytes_by_kind(self) -> dict:
        out: dict = {}
        for r in self.ranges:
            out[r.kind] = out.get(r.kind, 0) + r.nbytes
        return out

    def filter(self, kind: AccessKind) -> "Trace":
        return Trace([r for r in self.ranges if r.kind is kind])

    def for_layer(self, layer_id: int) -> "Trace":
        return Trace([r for r in self.ranges if r.layer_id == layer_id])

    def end_cycle(self) -> int:
        if not self.ranges:
            return 0
        return max(r.cycle + max(1, r.duration) for r in self.ranges)

    def to_blocks(self) -> BlockStream:
        """Expand every range to block-granular accesses.

        Blocks within a range are issued uniformly across its duration,
        modelling a streaming DMA engine.
        """
        cycle_parts: List[np.ndarray] = []
        addr_parts: List[np.ndarray] = []
        write_parts: List[np.ndarray] = []
        layer_parts: List[np.ndarray] = []
        for r in self.ranges:
            count = r.num_blocks
            first = align_down(r.addr, BLOCK_BYTES)
            addr_parts.append(
                first + BLOCK_BYTES * np.arange(count, dtype=np.uint64))
            if r.duration > 0 and count > 1:
                offsets = (np.arange(count, dtype=np.int64) * r.duration) // count
            else:
                offsets = np.zeros(count, dtype=np.int64)
            cycle_parts.append(r.cycle + offsets)
            write_parts.append(np.full(count, r.write, dtype=bool))
            layer_parts.append(np.full(count, r.layer_id, dtype=np.int32))
        if not addr_parts:
            return BlockStream(
                np.empty(0, np.int64), np.empty(0, np.uint64),
                np.empty(0, bool), np.empty(0, np.int32),
            )
        return BlockStream(
            np.concatenate(cycle_parts),
            np.concatenate(addr_parts).astype(np.uint64),
            np.concatenate(write_parts),
            np.concatenate(layer_parts),
        )
