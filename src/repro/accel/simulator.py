"""Whole-model accelerator simulation: topology -> cycles + DRAM trace.

For each layer the simulator plans tiling under the SRAM budget, walks the
planned loop nest, charges analytical systolic-array cycles per tile, and
emits the DRAM trace the walk produces (ifmap loads with halo re-fetch,
weight streams, ofmap stores). Double buffering is assumed: a tile's
operands stream in while the previous tile computes, so each range is
issued at its tile's start cycle and spread across the tile's compute
window.

Two walks exist, matching the two plan families in
:mod:`repro.tiling.tile`:

- banded: ``for m-band / for filter-group`` (order per ``plan.n_outer``),
  K whole;
- K-tiled: ``for m / for n / for k`` with the partial-sum tile resident,
  used by large GEMM layers.

Both walks emit a single image's schedule; batched layers replicate the
image-0 trace on its columns (per-kind address shifts plus a per-image
cycle shift, dropping resident weight fetches) so batch N costs one walk
plus vectorized copies, not N Python tile loops.

Attention layers with ``kv=True`` stream their K x N operand from the
per-layer KV region as :attr:`AccessKind.KVCACHE` traffic instead of
WEIGHT: KV state is per-sequence data, so it is never resident across a
batch (every image re-streams its own slab) and protection schemes see
it as a distinct traffic class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro import obs
from repro.accel.layout import AddressMap
from repro.accel.systolic import SystolicArray
from repro.accel.trace import AccessKind, Trace, kind_code
from repro.models.layer import Layer, ELEMENT_BYTES
from repro.models.topology import Topology
from repro.tiling.tile import SramBudget, TilingPlan, plan_tiling


@dataclass
class LayerResult:
    """Simulation outcome for one layer."""

    layer: Layer
    layer_id: int
    plan: TilingPlan
    compute_cycles: int
    start_cycle: int
    trace: Trace = field(repr=False, default_factory=Trace)

    @property
    def dram_bytes(self) -> int:
        return self.trace.total_bytes

    @property
    def demand_bytes_per_cycle(self) -> float:
        """Average DRAM demand while this layer computes."""
        if self.compute_cycles == 0:
            return 0.0
        return self.dram_bytes / self.compute_cycles


@dataclass
class ModelRun:
    """Simulation outcome for a whole topology."""

    topology: Topology
    array: SystolicArray
    budget: SramBudget
    address_map: AddressMap
    layers: List[LayerResult]
    #: Cross-scheme memo for derived per-run state (e.g. shared MAC-table
    #: traffic); keyed by the consumer, scoped to this run's lifetime.
    scheme_memo: dict = field(default_factory=dict, repr=False)

    @property
    def compute_cycles(self) -> int:
        return sum(r.compute_cycles for r in self.layers)

    @property
    def trace(self) -> Trace:
        return Trace.concat(result.trace for result in self.layers)

    @property
    def dram_bytes(self) -> int:
        return sum(r.dram_bytes for r in self.layers)

    @property
    def peak_demand_bytes_per_cycle(self) -> float:
        return max((r.demand_bytes_per_cycle for r in self.layers), default=0.0)


class AcceleratorSim:
    """SCALE-Sim-style simulator for one accelerator configuration."""

    def __init__(self, array: SystolicArray, budget: SramBudget,
                 image_align: Optional[int] = None):
        self.array = array
        self.budget = budget
        #: Per-image slab alignment forwarded to :class:`AddressMap`;
        #: ``None`` keeps the layout default (DRAM row-set aligned slabs).
        self.image_align = image_align

    def run(self, topology: Topology) -> ModelRun:
        """Simulate ``topology`` end to end."""
        if self.image_align is None:
            address_map = AddressMap(topology)
        else:
            address_map = AddressMap(topology, image_align=self.image_align)
        results: List[LayerResult] = []
        cursor = 0
        for layer_id, layer in enumerate(topology):
            # One span per layer is the sanctioned stage granularity.
            # repro: allow(obs-noop-discipline)
            with obs.span("accel.layer", layer=layer_id,
                          layer_name=layer.name):
                result = self.run_layer(layer, layer_id, address_map, cursor)
            results.append(result)
            cursor += result.compute_cycles
        return ModelRun(topology=topology, array=self.array,
                        budget=self.budget, address_map=address_map,
                        layers=results)

    def run_layer(self, layer: Layer, layer_id: int,
                  address_map: AddressMap, start_cycle: int) -> LayerResult:
        plan = plan_tiling(layer, self.budget)
        trace = Trace()
        if plan.is_k_tiled:
            image_cycles = self._walk_k_tiled(layer, layer_id, plan,
                                              address_map, start_cycle, trace)
        else:
            image_cycles = self._walk_banded(layer, layer_id, plan,
                                             address_map, start_cycle, trace)
        # The walks emit one image's schedule; the rest of the batch is
        # the same schedule shifted, replicated on the trace columns
        # instead of re-running the Python tile loops per image.
        total_cycles = image_cycles * layer.batch
        if layer.batch > 1:
            trace = self._replicate_batch(trace, layer, plan, image_cycles,
                                          address_map)
        return LayerResult(layer=layer, layer_id=layer_id, plan=plan,
                           compute_cycles=total_cycles,
                           start_cycle=start_cycle, trace=trace)

    @staticmethod
    def _replicate_batch(trace: Trace, layer: Layer, plan: TilingPlan,
                         image_cycles: int,
                         address_map: AddressMap) -> Trace:
        """Columnar batch expansion of an image-0 trace.

        Image ``i``'s schedule is image 0's with a per-kind address
        shift (each image reads/writes its own activation slab, weights
        stay put) and an ``i * image_cycles`` issue shift. The per-kind
        shift is the address map's aligned image stride, so every image
        lands on the same block/channel/protection-unit phase. Weights
        that are fully resident on chip (banded schedule, single filter
        group) are fetched by image 0 only; streamed weights re-load
        every image.
        """
        if not len(trace):
            return trace
        cycles, addrs, nbytes, writes, kinds, layer_ids, durations = \
            trace.buf.arrays()
        addr_shift = np.zeros(len(kinds), np.int64)
        addr_shift[kinds == kind_code(AccessKind.IFMAP)] = \
            address_map.image_stride(layer.ifmap_bytes_per_image)
        addr_shift[kinds == kind_code(AccessKind.OFMAP)] = \
            address_map.image_stride(layer.ofmap_bytes_per_image)
        # Each image reads its own KV slab — never resident across images.
        addr_shift[kinds == kind_code(AccessKind.KVCACHE)] = \
            address_map.kv_image_stride
        weight_resident = (not plan.is_k_tiled and plan.num_n_tiles == 1
                           and not layer.kv)
        keep = (kinds != kind_code(AccessKind.WEIGHT)
                if weight_resident else slice(None))
        # Mask once; images 1..N-1 differ only in the cycle/addr shifts.
        kept_cycles, kept_addrs, kept_shift = \
            cycles[keep], addrs[keep], addr_shift[keep]
        kept_fixed = (nbytes[keep], writes[keep], kinds[keep],
                      layer_ids[keep], durations[keep])

        parts = [(cycles, addrs, nbytes, writes, kinds, layer_ids, durations)]
        for image in range(1, layer.batch):
            parts.append((
                kept_cycles + image * image_cycles,
                kept_addrs + image * kept_shift,
                *kept_fixed,
            ))
        return Trace._from_arrays(
            *(np.concatenate(cols) for cols in zip(*parts)))

    # -- banded walk --

    def _walk_banded(self, layer: Layer, layer_id: int, plan: TilingPlan,
                     address_map: AddressMap, start_cycle: int,
                     trace: Trace) -> int:
        """Banded tile schedule, built as whole columns.

        The per-tile quantities (extents, cycles, residency masks,
        cursors) are arange/cumsum arithmetic over the flattened
        ``outer x inner`` grid; the ranges land in the trace through one
        batched append in exactly the order the nested loops emitted
        them (ifmap load, weight load, ofmap store per tile).
        """
        row_bytes = layer.ifmap_w * layer.channels * ELEMENT_BYTES
        weight_per_filter = max(1, layer.weight_bytes // max(1, layer.gemm_n))
        ifmap_base = address_map.ifmap_addr(layer_id)
        weight_base, weight_kind = self._weight_source(layer, layer_id,
                                                       address_map)
        ofmap_base = address_map.ofmap_addr(layer_id)
        out_w = layer.ofmap_w

        outer, inner = ((plan.num_n_tiles, plan.num_m_tiles) if plan.n_outer
                        else (plan.num_m_tiles, plan.num_n_tiles))
        if outer * inner < 16:
            # Tiny grids (whole layers resident): the per-tile loop beats
            # the fixed cost of the column machinery.
            return self._walk_banded_small(layer, layer_id, plan,
                                           address_map, start_cycle, trace)
        outer_idx = np.repeat(np.arange(outer, dtype=np.int64), inner)
        inner_idx = np.tile(np.arange(inner, dtype=np.int64), outer)
        mi, ni = ((inner_idx, outer_idx) if plan.n_outer
                  else (outer_idx, inner_idx))
        rows = np.minimum(plan.tile_out_rows,
                          layer.ofmap_h - mi * plan.tile_out_rows)
        filters = np.minimum(plan.tile_filters,
                             layer.gemm_n - ni * plan.tile_filters)
        tile_cycles = self.array.compute_cycles_vec(
            rows * out_w, layer.gemm_k, filters)
        total_cycles = int(tile_cycles.sum())
        cursor = start_cycle + np.cumsum(tile_cycles) - tile_cycles

        # Residency: an operand whose dimension is not re-streamed is
        # loaded only on its first pass.
        if plan.n_outer:
            load_ifmap = (np.full(len(mi), plan.num_m_tiles > 1, dtype=bool)
                          | (outer_idx == 0))
            load_weight = mi == 0
        else:
            load_ifmap = ni == 0
            load_weight = (np.full(len(mi), plan.num_n_tiles > 1, dtype=bool)
                           | (outer_idx == 0))

        # ifmap band extents (padding synthesized on chip; see
        # _ifmap_tile_extent for the scalar form)
        first = mi * plan.tile_out_rows * layer.stride_h - layer.pad_h
        last = first + rows * layer.stride_h + layer.filt_h - layer.stride_h
        lo = np.maximum(0, first)
        hi = np.minimum(layer.ifmap_h, last)
        if_nbytes = np.maximum(0, hi - lo) * row_bytes
        if_addr = ifmap_base + lo * row_bytes
        emit_if = load_ifmap & (if_nbytes > 0)

        w_offset = ni * plan.tile_filters * weight_per_filter
        w_nbytes = np.minimum(plan.weight_tile_bytes,
                              layer.weight_bytes - w_offset)
        emit_w = load_weight & (w_nbytes > 0)

        of_nbytes = rows * out_w * filters * ELEMENT_BYTES
        emit_of = of_nbytes > 0
        of_addr = (ofmap_base + np.cumsum(np.where(emit_of, of_nbytes, 0))
                   - np.where(emit_of, of_nbytes, 0))

        # Interleave per tile: [ifmap?, weight?, ofmap?]
        counts = emit_if.astype(np.int64) + emit_w + emit_of
        base = np.cumsum(counts) - counts
        total = int(counts.sum())
        ev_cycle = np.empty(total, np.int64)
        ev_addr = np.empty(total, np.int64)
        ev_nbytes = np.empty(total, np.int64)
        ev_write = np.zeros(total, np.int8)
        ev_kind = np.empty(total, np.int8)
        ev_dur = np.empty(total, np.int64)

        def place(slots, sel, addr, nbytes, write, kind):
            ev_cycle[slots] = cursor[sel]
            ev_addr[slots] = addr
            ev_nbytes[slots] = nbytes
            ev_write[slots] = write
            ev_kind[slots] = kind
            ev_dur[slots] = tile_cycles[sel]

        place(base[emit_if], emit_if, if_addr[emit_if],
              if_nbytes[emit_if], 0, kind_code(AccessKind.IFMAP))
        place((base + emit_if)[emit_w], emit_w,
              weight_base + w_offset[emit_w], w_nbytes[emit_w], 0,
              kind_code(weight_kind))
        place((base + emit_if + emit_w)[emit_of], emit_of,
              of_addr[emit_of], of_nbytes[emit_of], 1,
              kind_code(AccessKind.OFMAP))
        trace.emit_batch(ev_cycle, ev_addr, ev_nbytes, writes=ev_write,
                         kind_codes=ev_kind, layer_id=layer_id,
                         durations=ev_dur)
        return total_cycles

    def _walk_banded_small(self, layer: Layer, layer_id: int,
                           plan: TilingPlan, address_map: AddressMap,
                           start_cycle: int, trace: Trace) -> int:
        """Scalar reference walk (small grids); range-identical to the
        batched builder — ``tests/accel/test_simulator.py`` pins it."""
        row_bytes = layer.ifmap_w * layer.channels * ELEMENT_BYTES
        weight_per_filter = max(1, layer.weight_bytes // max(1, layer.gemm_n))
        ifmap_base = address_map.ifmap_addr(layer_id)
        weight_base, weight_kind = self._weight_source(layer, layer_id,
                                                       address_map)
        ofmap_base = address_map.ofmap_addr(layer_id)

        cursor = start_cycle
        total_cycles = 0
        ofmap_cursor = 0
        out_w = layer.ofmap_w

        outer, inner = ((plan.num_n_tiles, plan.num_m_tiles) if plan.n_outer
                        else (plan.num_m_tiles, plan.num_n_tiles))
        for outer_idx in range(outer):
            for inner_idx in range(inner):
                mi, ni = ((inner_idx, outer_idx) if plan.n_outer
                          else (outer_idx, inner_idx))
                rows = min(plan.tile_out_rows,
                           layer.ofmap_h - mi * plan.tile_out_rows)
                filters = min(plan.tile_filters,
                              layer.gemm_n - ni * plan.tile_filters)
                tile_cycles = self.array.compute_cycles(
                    rows * out_w, layer.gemm_k, filters)
                total_cycles += tile_cycles

                # Residency: an operand whose dimension is not re-streamed
                # is loaded only on its first pass.
                if plan.n_outer:
                    load_ifmap = plan.num_m_tiles > 1 or outer_idx == 0
                    load_weight = mi == 0
                else:
                    load_ifmap = ni == 0
                    load_weight = plan.num_n_tiles > 1 or outer_idx == 0

                if load_ifmap:
                    offset, nbytes = self._ifmap_tile_extent(
                        layer, plan, mi, row_bytes)
                    if nbytes:
                        trace.emit(cursor, ifmap_base + offset, nbytes,
                                   write=False, kind=AccessKind.IFMAP,
                                   layer_id=layer_id, duration=tile_cycles)
                if load_weight:
                    offset = ni * plan.tile_filters * weight_per_filter
                    nbytes = min(plan.weight_tile_bytes,
                                 layer.weight_bytes - offset)
                    if nbytes > 0:
                        trace.emit(cursor, weight_base + offset, nbytes,
                                   write=False, kind=weight_kind,
                                   layer_id=layer_id, duration=tile_cycles)

                nbytes = rows * out_w * filters * ELEMENT_BYTES
                if nbytes > 0:
                    trace.emit(cursor, ofmap_base + ofmap_cursor, nbytes,
                               write=True, kind=AccessKind.OFMAP,
                               layer_id=layer_id, duration=tile_cycles)
                    ofmap_cursor += nbytes
                cursor += tile_cycles
        return total_cycles

    # -- K-tiled walk (large GEMMs) --

    def _walk_k_tiled(self, layer: Layer, layer_id: int, plan: TilingPlan,
                      address_map: AddressMap, start_cycle: int,
                      trace: Trace) -> int:
        """K-tiled GEMM schedule, built as whole columns.

        Flattens the ``m x n x k`` nest; each (m, n) group contributes
        ``2 * num_k`` operand loads followed by its partial-sum store,
        in exactly the nested loops' emission order.
        """
        m, k, n = layer.gemm_m, layer.gemm_k, layer.gemm_n
        ifmap_base = address_map.ifmap_addr(layer_id)
        weight_base, weight_kind = self._weight_source(layer, layer_id,
                                                       address_map)
        ofmap_base = address_map.ofmap_addr(layer_id)

        M, N, K = plan.num_m_tiles, plan.num_n_tiles, plan.num_k_tiles
        mi = np.repeat(np.arange(M, dtype=np.int64), N * K)
        ni = np.tile(np.repeat(np.arange(N, dtype=np.int64), K), M)
        ki = np.tile(np.arange(K, dtype=np.int64), M * N)
        tile_m = np.minimum(plan.tile_out_rows, m - mi * plan.tile_out_rows)
        tile_n = np.minimum(plan.tile_filters, n - ni * plan.tile_filters)
        tile_k = np.minimum(plan.tile_k, k - ki * plan.tile_k)
        tile_cycles = self.array.compute_cycles_vec(tile_m, tile_k, tile_n)
        total_cycles = int(tile_cycles.sum())
        cursor = start_cycle + np.cumsum(tile_cycles) - tile_cycles

        # ifmap chunk: rows [mi], K slice [ki] — contiguous per row;
        # modelled as one range at the slice offset.
        if_addr = ifmap_base + (mi * plan.tile_out_rows * k
                                + ki * plan.tile_k * tile_m) * ELEMENT_BYTES
        w_addr = weight_base + (ni * plan.tile_filters * k
                                + ki * plan.tile_k * tile_n) * ELEMENT_BYTES

        # Per (m, n) group: 2 * K operand loads, then the ofmap store.
        groups = M * N
        group = np.arange(M * N * K, dtype=np.int64) // K
        slot = group * (2 * K + 1) + 2 * ki
        total = groups * (2 * K + 1)
        ev_cycle = np.empty(total, np.int64)
        ev_addr = np.empty(total, np.int64)
        ev_nbytes = np.empty(total, np.int64)
        ev_write = np.zeros(total, np.int8)
        ev_kind = np.empty(total, np.int8)
        ev_dur = np.empty(total, np.int64)

        ev_cycle[slot] = cursor
        ev_addr[slot] = if_addr
        ev_nbytes[slot] = tile_m * tile_k * ELEMENT_BYTES
        ev_kind[slot] = kind_code(AccessKind.IFMAP)
        ev_dur[slot] = tile_cycles
        ev_cycle[slot + 1] = cursor
        ev_addr[slot + 1] = w_addr
        ev_nbytes[slot + 1] = tile_k * tile_n * ELEMENT_BYTES
        ev_kind[slot + 1] = kind_code(weight_kind)
        ev_dur[slot + 1] = tile_cycles

        # Partial sums complete: store the (tile_m x tile_n) ofmap tile
        # at the cycle the group's last K tile finishes.
        last = np.arange(groups, dtype=np.int64) * K + (K - 1)
        of_slot = np.arange(groups, dtype=np.int64) * (2 * K + 1) + 2 * K
        of_nbytes = (tile_m[last] * tile_n[last] * ELEMENT_BYTES)
        ev_cycle[of_slot] = cursor[last] + tile_cycles[last]
        ev_addr[of_slot] = (ofmap_base + np.cumsum(of_nbytes) - of_nbytes)
        ev_nbytes[of_slot] = of_nbytes
        ev_write[of_slot] = 1
        ev_kind[of_slot] = kind_code(AccessKind.OFMAP)
        ev_dur[of_slot] = 1
        trace.emit_batch(ev_cycle, ev_addr, ev_nbytes, writes=ev_write,
                         kind_codes=ev_kind, layer_id=layer_id,
                         durations=ev_dur)
        return total_cycles

    @staticmethod
    def _weight_source(layer: Layer, layer_id: int,
                       address_map: AddressMap) -> Tuple[int, AccessKind]:
        """(base address, traffic kind) of the layer's K x N operand."""
        if layer.kv:
            return address_map.kv_addr(layer_id), AccessKind.KVCACHE
        return address_map.weight_addr(layer_id), AccessKind.WEIGHT

    @staticmethod
    def _ifmap_tile_extent(layer: Layer, plan: TilingPlan, mi: int,
                           row_bytes: int) -> Tuple[int, int]:
        """(offset, nbytes) of the stored input band tile ``mi`` reads.

        The band's receptive field starts ``pad_h`` rows above the
        stored tensor and may run past its bottom; only the stored rows
        in between are fetched from DRAM (padding is synthesized on
        chip).
        """
        rows = min(plan.tile_out_rows, layer.ofmap_h - mi * plan.tile_out_rows)
        first = mi * plan.tile_out_rows * layer.stride_h - layer.pad_h
        last = first + rows * layer.stride_h + layer.filt_h - layer.stride_h
        lo = max(0, first)
        hi = min(layer.ifmap_h, last)
        return lo * row_bytes, max(0, hi - lo) * row_bytes
