"""Analytical systolic-array timing model (SCALE-Sim fold equations).

A systolic array of ``rows x cols`` PEs executes the layer's (M, K, N)
GEMM in *folds*: mappings of an array-sized sub-problem. Per-fold cycle
counts follow SCALE-Sim's analytical model:

- **weight stationary (WS)**: weights (K x N) pinned; a fold loads
  ``rows`` weight rows (one per cycle), streams M input rows, and drains
  ``cols`` outputs: ``rows + M + cols - 1`` cycles per fold, with
  ``ceil(K/rows) * ceil(N/cols)`` folds.
- **output stationary (OS)**: outputs (M x N) pinned; a fold streams the
  K-deep dot products plus skewed fill/drain: ``2*rows + cols + K - 2``
  cycles, ``ceil(M/rows) * ceil(N/cols)`` folds.
- **input stationary (IS)**: ifmap pinned; symmetric to WS with M and N
  exchanged.

The model is exact for the dense, stall-free array SCALE-Sim assumes;
memory stalls are accounted separately by the pipeline (compute/DRAM
overlap with double buffering).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.utils.bitops import ceil_div


class Dataflow(enum.Enum):
    WS = "ws"
    OS = "os"
    IS = "is"


@dataclass(frozen=True)
class SystolicArray:
    """A ``rows x cols`` systolic array with a fixed dataflow."""

    rows: int
    cols: int
    dataflow: Dataflow = Dataflow.WS

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ValueError("array dimensions must be positive")

    @property
    def num_pes(self) -> int:
        return self.rows * self.cols

    def folds(self, m: int, k: int, n: int) -> int:
        """Number of array-sized folds for an (M, K, N) GEMM."""
        self._check(m, k, n)
        if self.dataflow is Dataflow.WS:
            return ceil_div(k, self.rows) * ceil_div(n, self.cols)
        if self.dataflow is Dataflow.OS:
            return ceil_div(m, self.rows) * ceil_div(n, self.cols)
        return ceil_div(k, self.rows) * ceil_div(m, self.cols)

    def cycles_per_fold(self, m: int, k: int, n: int) -> int:
        """Cycles one fold occupies the array (fill + stream + drain)."""
        self._check(m, k, n)
        if self.dataflow is Dataflow.WS:
            return self.rows + m + self.cols - 1
        if self.dataflow is Dataflow.OS:
            return 2 * self.rows + self.cols + k - 2
        return self.rows + n + self.cols - 1

    def compute_cycles(self, m: int, k: int, n: int) -> int:
        """Total compute cycles for an (M, K, N) GEMM."""
        return self.folds(m, k, n) * self.cycles_per_fold(m, k, n)

    def compute_cycles_vec(self, m, k, n):
        """Vectorized :meth:`compute_cycles` over parallel dim arrays.

        Same fold equations on int64 numpy arrays; the tile walks use
        this to price every tile of a layer in one call.
        """
        m = np.asarray(m, dtype=np.int64)
        k = np.asarray(k, dtype=np.int64)
        n = np.asarray(n, dtype=np.int64)
        if np.any(m <= 0) or np.any(k <= 0) or np.any(n <= 0):
            raise ValueError("GEMM dims must be positive")
        if self.dataflow is Dataflow.WS:
            folds = -(-k // self.rows) * -(-n // self.cols)
            per_fold = self.rows + m + self.cols - 1
        elif self.dataflow is Dataflow.OS:
            folds = -(-m // self.rows) * -(-n // self.cols)
            per_fold = 2 * self.rows + self.cols + k - 2
        else:
            folds = -(-k // self.rows) * -(-m // self.cols)
            per_fold = self.rows + n + self.cols - 1
        return folds * per_fold

    def utilization(self, m: int, k: int, n: int) -> float:
        """Fraction of PE-cycles doing useful MACs (mapping efficiency)."""
        cycles = self.compute_cycles(m, k, n)
        if cycles == 0:
            return 0.0
        return (m * k * n) / (cycles * self.num_pes)

    @staticmethod
    def _check(m: int, k: int, n: int) -> None:
        if m <= 0 or k <= 0 or n <= 0:
            raise ValueError(f"GEMM dims must be positive, got {(m, k, n)}")
