"""Systolic-array DNN accelerator simulator (SCALE-Sim substrate).

The paper drives its evaluation with SCALE-Sim2: per-layer compute cycles
for a systolic array plus the DRAM access trace each layer generates.
This package reproduces both:

- :mod:`repro.accel.systolic` — analytical cycle model for WS/OS/IS
  dataflows (SCALE-Sim's fold equations).
- :mod:`repro.accel.trace` — DRAM trace representation (compact ranges,
  expandable to 64-byte block streams as numpy arrays).
- :mod:`repro.accel.layout` — physical address map of the protected
  region (weights, ping-pong activations, security metadata).
- :mod:`repro.accel.simulator` — ties topology + tiling + systolic model
  into per-layer results and a whole-model trace.
"""

from repro.accel.systolic import Dataflow, SystolicArray
from repro.accel.trace import AccessKind, Trace, TraceRange, BlockStream
from repro.accel.layout import AddressMap, Region
from repro.accel.simulator import AcceleratorSim, LayerResult, ModelRun

__all__ = [
    "Dataflow",
    "SystolicArray",
    "AccessKind",
    "Trace",
    "TraceRange",
    "BlockStream",
    "AddressMap",
    "Region",
    "AcceleratorSim",
    "LayerResult",
    "ModelRun",
]
