"""Physical address map of the 16 GB protected region.

Layout (matching the evaluation setup's 16 GB protected memory):

- ``WEIGHTS``    at 0x0_0000_0000 — all model weights, packed per layer.
- ``ACT_A``      at 0x1_0000_0000 — activation ping buffer.
- ``ACT_B``      at 0x1_8000_0000 — activation pong buffer.
- ``KV``         at 0x1_C000_0000 — per-layer KV-cache slabs (attention
  K^T/V operands; each image of a batch owns its own slab).
- ``METADATA``   at 0x2_0000_0000 — MAC tables, VN tables, integrity-tree
  levels (protection schemes carve this region further).

Layer ``i`` reads its ifmap from one activation buffer and writes its
ofmap to the other, so the consumer of layer ``i+1`` sees exactly the
producer's addresses — the property the inter-layer tiling analysis and
MGX-style on-chip VN generation both rely on. KV state is persistent
across decode steps (not ping-pong), so it gets its own region between
the activation buffers and the metadata tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.models.topology import Topology
from repro.utils.bitops import align_up

PROTECTED_REGION_BYTES = 16 << 30

WEIGHT_BASE = 0x0_0000_0000
ACT_A_BASE = 0x1_0000_0000
ACT_B_BASE = 0x1_8000_0000
KV_BASE = 0x1_C000_0000
METADATA_BASE = 0x2_0000_0000

_TENSOR_ALIGN = 4096


@dataclass(frozen=True)
class Region:
    """A named contiguous address region."""

    name: str
    base: int
    size: int

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end


class AddressMap:
    """Concrete tensor addresses for one topology."""

    def __init__(self, topology: Topology):
        self.topology = topology
        self._weight_base: Dict[int, int] = {}
        self._kv_base: Dict[int, int] = {}
        cursor = WEIGHT_BASE
        kv_cursor = KV_BASE
        for idx, layer in enumerate(topology):
            if layer.kv:
                # KV-state operands live in the KV region; each image's
                # slab (kv_bytes_per_image) is packed consecutively.
                self._kv_base[idx] = kv_cursor
                kv_cursor += align_up(layer.kv_bytes, _TENSOR_ALIGN)
            else:
                self._weight_base[idx] = cursor
                cursor += align_up(layer.weight_bytes, _TENSOR_ALIGN)
        self.weights_end = cursor
        self.kv_end = kv_cursor
        if cursor > ACT_A_BASE:
            raise ValueError(
                f"{topology.name}: weights ({cursor} B) overflow the weight region"
            )
        if kv_cursor > METADATA_BASE:
            raise ValueError(
                f"{topology.name}: KV caches ({kv_cursor - KV_BASE} B) "
                f"overflow the KV region")
        # The KV region is carved out of the activation space only when
        # the topology actually has KV layers; CNN-only models keep the
        # full pong extent up to the metadata base.
        act_limit = KV_BASE if self._kv_base else METADATA_BASE
        max_act = align_up(max(1, topology.max_activation_bytes), _TENSOR_ALIGN)
        if ACT_B_BASE + max_act > act_limit:
            raise ValueError(f"{topology.name}: activations overflow their region")
        self._act_bytes = max_act

    def weight_addr(self, layer_id: int) -> int:
        return self._weight_base[layer_id]

    def kv_addr(self, layer_id: int) -> int:
        """Image-0 KV slab of a ``kv=True`` layer (images pack behind it)."""
        return self._kv_base[layer_id]

    def ifmap_addr(self, layer_id: int) -> int:
        """Layer i's ifmap buffer: ping for even i, pong for odd."""
        self._check_layer(layer_id)
        return ACT_A_BASE if layer_id % 2 == 0 else ACT_B_BASE

    def ofmap_addr(self, layer_id: int) -> int:
        """Layer i's ofmap buffer — the ifmap buffer of layer i+1."""
        self._check_layer(layer_id)
        return ACT_B_BASE if layer_id % 2 == 0 else ACT_A_BASE

    def data_regions(self) -> List[Region]:
        regions = [
            Region("weights", WEIGHT_BASE, self.weights_end - WEIGHT_BASE),
            Region("act_a", ACT_A_BASE, self._act_bytes),
            Region("act_b", ACT_B_BASE, self._act_bytes),
        ]
        if self.kv_end > KV_BASE:
            regions.append(Region("kv", KV_BASE, self.kv_end - KV_BASE))
        return regions

    @staticmethod
    def metadata_region() -> Region:
        return Region("metadata", METADATA_BASE,
                      PROTECTED_REGION_BYTES - METADATA_BASE)

    def _check_layer(self, layer_id: int) -> None:
        if not 0 <= layer_id < len(self.topology):
            raise IndexError(f"layer_id {layer_id} out of range")
