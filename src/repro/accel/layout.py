"""Physical address map of the 16 GB protected region.

Layout (matching the evaluation setup's 16 GB protected memory):

- ``WEIGHTS``    at 0x0_0000_0000 — all model weights, packed per layer.
- ``ACT_A``      at 0x1_0000_0000 — activation ping buffer.
- ``ACT_B``      at 0x1_8000_0000 — activation pong buffer.
- ``KV``         at 0x1_C000_0000 — KV-cache slabs (attention K^T/V
  operands), image-major: each image of a batch owns one slab holding
  every attention layer's KV state at a batch-invariant offset.
- ``METADATA``   at 0x2_0000_0000 — MAC tables, VN tables, integrity-tree
  levels (protection schemes carve this region further).

Layer ``i`` reads its ifmap from one activation buffer and writes its
ofmap to the other, so the consumer of layer ``i+1`` sees exactly the
producer's addresses — the property the inter-layer tiling analysis and
MGX-style on-chip VN generation both rely on. KV state is persistent
across decode steps (not ping-pong), so it gets its own region between
the activation buffers and the metadata tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.models.topology import Topology
from repro.utils.bitops import align_up

PROTECTED_REGION_BYTES = 16 << 30

WEIGHT_BASE = 0x0_0000_0000
ACT_A_BASE = 0x1_0000_0000
ACT_B_BASE = 0x1_8000_0000
KV_BASE = 0x1_C000_0000
METADATA_BASE = 0x2_0000_0000

_TENSOR_ALIGN = 4096

#: Default per-image slab stride quantum: one full DRAM row-set of the
#: default memory geometry (4 channels x 16 banks x 2 KiB rows). A
#: stride that is a multiple of this advances every bank's row index by
#: the same whole number while keeping the channel, bank and in-row
#: phase of image 0 — the invariant that makes per-channel DRAM request
#: *and row-conflict* counts exactly affine in the batch size, which
#: the analytic ``@bN`` derivation (:mod:`repro.analytic`) relies on.
IMAGE_SLAB_ALIGN = 128 << 10


@dataclass(frozen=True)
class Region:
    """A named contiguous address region."""

    name: str
    base: int
    size: int

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end


class AddressMap:
    """Concrete tensor addresses for one topology.

    ``image_align`` sets the per-image slab stride quantum: image ``i``
    of a batched tensor lives at ``base + i * align_up(bytes_per_image,
    image_align)``. The default aligns every image to a full DRAM
    row-set (:data:`IMAGE_SLAB_ALIGN`), which keeps each image on the
    same DRAM block/channel/bank/protection-unit phase as image 0 and
    advances its rows uniformly — the property that makes batched
    traffic an exact per-image replica all the way down to row-conflict
    counts, which the analytic ``@bN`` derivation (:mod:`repro.analytic`)
    relies on. ``image_align=1`` packs images back-to-back (the pre-v4
    layout).
    """

    def __init__(self, topology: Topology,
                 image_align: int = IMAGE_SLAB_ALIGN):
        if image_align <= 0:
            raise ValueError(f"image_align must be positive, got {image_align}")
        self.topology = topology
        self.image_align = image_align
        self._weight_base: Dict[int, int] = {}
        self._kv_offset: Dict[int, int] = {}
        cursor = WEIGHT_BASE
        kv_cursor = 0  # offset inside one per-image KV slab
        kv_batch = 1
        for idx, layer in enumerate(topology):
            if layer.kv:
                # KV-state operands live in the KV region, image-major:
                # one slab per image holds every attention layer's KV
                # state. Layer offsets inside the slab are functions of
                # the topology alone — never of the batch size — so a
                # layer's image-0 KV addresses are identical across
                # batch sizes (the analytic ``@bN`` derivation anchors
                # cache-simulated metadata traffic on that invariance),
                # and every KV access of image ``i`` is image 0's
                # shifted by ``i * kv_image_stride``.
                self._kv_offset[idx] = kv_cursor
                kv_cursor += align_up(layer.kv_bytes_per_image,
                                      _TENSOR_ALIGN)
                kv_batch = max(kv_batch, layer.batch)
            else:
                self._weight_base[idx] = cursor
                cursor += align_up(layer.weight_bytes, _TENSOR_ALIGN)
        self.weights_end = cursor
        #: Bytes of KV state one image owns (its slab's packed extent).
        self.kv_image_bytes = kv_cursor
        #: Address distance between consecutive images' KV slabs.
        self.kv_image_stride = self.image_stride(kv_cursor)
        self.kv_end = KV_BASE + (
            self.batch_extent(kv_cursor, kv_batch) if self._kv_offset else 0)
        if cursor > ACT_A_BASE:
            raise ValueError(
                f"{topology.name}: weights ({cursor} B) overflow the weight region"
            )
        if self.kv_end > METADATA_BASE:
            raise ValueError(
                f"{topology.name}: KV caches ({self.kv_end - KV_BASE} B) "
                f"overflow the KV region")
        # The KV region is carved out of the activation space only when
        # the topology actually has KV layers; CNN-only models keep the
        # full pong extent up to the metadata base.
        act_limit = KV_BASE if self._kv_offset else METADATA_BASE
        max_act = 1
        for layer in topology:
            max_act = max(
                max_act,
                self.batch_extent(layer.ifmap_bytes_per_image, layer.batch),
                self.batch_extent(layer.ofmap_bytes_per_image, layer.batch))
        max_act = align_up(max_act, _TENSOR_ALIGN)
        if ACT_B_BASE + max_act > act_limit:
            raise ValueError(f"{topology.name}: activations overflow their region")
        self._act_bytes = max_act

    def image_stride(self, bytes_per_image: int) -> int:
        """Address distance between consecutive images of one tensor."""
        if bytes_per_image <= 0:
            return 0
        return align_up(bytes_per_image, self.image_align)

    def batch_extent(self, bytes_per_image: int, batch: int) -> int:
        """Total region span of a batched tensor (strided slabs)."""
        if bytes_per_image <= 0 or batch <= 0:
            return 0
        return ((batch - 1) * self.image_stride(bytes_per_image)
                + bytes_per_image)

    def weight_addr(self, layer_id: int) -> int:
        return self._weight_base[layer_id]

    def kv_addr(self, layer_id: int) -> int:
        """Image-0 KV state of a ``kv=True`` layer.

        The offset inside the per-image slab depends only on the
        topology, never on the batch size; image ``i`` reads the same
        state at ``kv_addr + i * kv_image_stride``.
        """
        return KV_BASE + self._kv_offset[layer_id]

    def ifmap_addr(self, layer_id: int) -> int:
        """Layer i's ifmap buffer: ping for even i, pong for odd."""
        self._check_layer(layer_id)
        return ACT_A_BASE if layer_id % 2 == 0 else ACT_B_BASE

    def ofmap_addr(self, layer_id: int) -> int:
        """Layer i's ofmap buffer — the ifmap buffer of layer i+1."""
        self._check_layer(layer_id)
        return ACT_B_BASE if layer_id % 2 == 0 else ACT_A_BASE

    def data_regions(self) -> List[Region]:
        regions = [
            Region("weights", WEIGHT_BASE, self.weights_end - WEIGHT_BASE),
            Region("act_a", ACT_A_BASE, self._act_bytes),
            Region("act_b", ACT_B_BASE, self._act_bytes),
        ]
        if self.kv_end > KV_BASE:
            regions.append(Region("kv", KV_BASE, self.kv_end - KV_BASE))
        return regions

    @staticmethod
    def metadata_region() -> Region:
        return Region("metadata", METADATA_BASE,
                      PROTECTED_REGION_BYTES - METADATA_BASE)

    def _check_layer(self, layer_id: int) -> None:
        if not 0 <= layer_id < len(self.topology):
            raise IndexError(f"layer_id {layer_id} out of range")
