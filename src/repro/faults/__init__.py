"""Fault-injection plane: deterministic, seeded failures at named sites.

Production modules call the hooks here at their failure-prone seams
(``fire`` at the top of a risky operation, ``corrupt_text`` on bytes
read back from disk, ``should_fail`` at boolean capability probes).
With no plan active every hook is a near-free no-op — one module
attribute read — so the hooks are safe to leave in hot paths.

A plan activates in one of two ways:

- ``REPRO_FAULTS=<spec>`` in the environment (read lazily, once);
- :func:`install` from a test (returns the previous plan for restore).

This package is deliberately excluded from ``code_version()`` hashing
(see ``_NON_RESULT_DIRS`` in :mod:`repro.runner.store`) and must never
be imported by fingerprint-hashed modules — the ``fault-isolation``
lint rule enforces that — so fault-injection code can evolve without
invalidating every cached result.

Known sites (grep for the literal to find the hook):

=================  ====================================================
``cell``           worker entry in ``run_cell`` (raise/kill/delay)
``store.put``      ``ResultStore.put`` before publish (oserror)
``store.read``     record text read back in ``ResultStore.get``
                   (corrupt → exercises the quarantine path)
``native.build``   native-kernel compile in ``utils/native.py`` (fail)
``native.load``    native-kernel dlopen in ``utils/native.py`` (fail)
``journal.append`` after a sweep-journal line lands (kill ``@N`` →
                   simulates a mid-sweep SIGKILL with N durable lines)
=================  ====================================================
"""

from __future__ import annotations

import os
from typing import Optional

from repro.faults.plan import (
    FAULTS_ENV,
    FaultInjected,
    FaultPermanent,
    FaultPlan,
    FaultRule,
    MODES,
)

__all__ = [
    "FAULTS_ENV",
    "FaultInjected",
    "FaultPermanent",
    "FaultPlan",
    "FaultRule",
    "MODES",
    "active",
    "corrupt_text",
    "fire",
    "install",
    "should_fail",
]

_active: Optional[FaultPlan] = None
_env_loaded = False


def active() -> Optional[FaultPlan]:
    """The active plan, if any; loads ``REPRO_FAULTS`` on first use."""
    global _active, _env_loaded
    if not _env_loaded:
        _env_loaded = True
        spec = os.environ.get(FAULTS_ENV)
        if spec:
            _active = FaultPlan.parse(spec)
    return _active


def install(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Test seam: activate ``plan`` (or deactivate with ``None``).

    Returns the previously active plan so tests can restore it; also
    pins the environment as "loaded" so a lingering ``REPRO_FAULTS``
    cannot resurrect after ``install(None)``.
    """
    global _active, _env_loaded
    previous = _active
    _active = plan
    _env_loaded = True
    return previous


def fire(site: str, key: str = "", attempt: int = 0) -> None:
    """Apply any active push-mode faults at ``site`` (no-op otherwise)."""
    plan = active()
    if plan is not None:
        plan.fire(site, key=key, attempt=attempt)


def should_fail(site: str, key: str = "", attempt: int = 0) -> bool:
    """True when an active ``fail``-mode rule triggers at ``site``."""
    plan = active()
    return plan is not None and plan.should_fail(site, key=key,
                                                 attempt=attempt)


def corrupt_text(site: str, key: str, text: str, attempt: int = 0) -> str:
    """Pass ``text`` through any active ``corrupt`` rule at ``site``."""
    plan = active()
    if plan is None:
        return text
    return plan.corrupt_text(site, key, text, attempt=attempt)
