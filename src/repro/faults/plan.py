"""Deterministic, seeded fault-injection plans.

A :class:`FaultPlan` is a list of rules, each binding a *site* (a
dotted name a production module passes to :func:`repro.faults.fire`)
to a failure *mode* with a trigger.  Plans are parsed from the
``REPRO_FAULTS`` environment variable or installed programmatically via
the :func:`repro.faults.install` test seam.

Spec grammar (clauses separated by ``,``)::

    seed=7,cell:raise:0.2,store.read:corrupt:0.3,journal.append:kill:@3

- ``seed=N`` seeds the deterministic draws (default 0).
- Every other clause is ``site:mode[:trigger[:arg]]``.
- ``trigger`` is either a probability in ``[0, 1]`` (default ``1``) or
  ``@N``: fire on exactly the N-th matching call in this process.
- ``arg`` is a mode parameter (currently: sleep seconds for ``delay``).

Modes:

``raise``      raise :class:`FaultInjected` (classified transient)
``permanent``  raise :class:`FaultPermanent` (classified permanent)
``oserror``    raise ``OSError`` (what a flaky filesystem raises)
``kill``       ``SIGKILL`` the current process — no cleanup, no excuses
``delay``      sleep ``arg`` seconds (drives timeout paths)
``corrupt``    garble text passed through :func:`corrupt_text`
``fail``       make :func:`should_fail` answer True (boolean sites)

Probabilistic draws are *content-addressed*, not stateful: the decision
for ``(site, mode, key, attempt)`` is a pure function of the plan seed,
so it is identical across processes, schedulers, and reruns — which is
what lets the chaos suite assert bit-identical outcomes for a fixed
seed.  Retries naturally re-draw because the attempt number changes.
``@N`` triggers are per-process counters (used to kill a parent sweep
after exactly N journal appends, say).
"""

from __future__ import annotations

import hashlib
import os
import signal
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

FAULTS_ENV = "REPRO_FAULTS"

#: Modes applied by ``fire`` (the remaining two are pull-style:
#: ``corrupt`` via ``corrupt_text`` and ``fail`` via ``should_fail``).
_FIRE_MODES = ("delay", "oserror", "raise", "permanent", "kill")
MODES = _FIRE_MODES + ("corrupt", "fail")


class FaultInjected(Exception):
    """An injected fault; classified *transient* by the executor."""


class FaultPermanent(FaultInjected):
    """An injected fault; classified *permanent* (retries are futile)."""


@dataclass(frozen=True)
class FaultRule:
    """One site/mode binding with its trigger."""

    site: str
    mode: str
    #: Probability per call; ignored when ``nth`` is set.
    rate: float = 1.0
    #: Fire on exactly the nth matching call in this process.
    nth: Optional[int] = None
    #: Mode parameter (sleep seconds for ``delay``).
    arg: float = 0.0

    def spec(self) -> str:
        trigger = f"@{self.nth}" if self.nth is not None else f"{self.rate:g}"
        clause = f"{self.site}:{self.mode}:{trigger}"
        if self.arg:
            clause += f":{self.arg:g}"
        return clause


def _parse_rule(clause: str) -> FaultRule:
    parts = clause.split(":")
    if len(parts) < 2 or len(parts) > 4:
        raise ValueError(
            f"bad fault clause {clause!r}: want site:mode[:trigger[:arg]]")
    site, mode = parts[0].strip(), parts[1].strip()
    if not site:
        raise ValueError(f"bad fault clause {clause!r}: empty site")
    if mode not in MODES:
        raise ValueError(
            f"bad fault clause {clause!r}: unknown mode {mode!r} "
            f"(known: {', '.join(MODES)})")
    rate, nth = 1.0, None
    if len(parts) >= 3:
        trigger = parts[2].strip()
        if trigger.startswith("@"):
            nth = int(trigger[1:])
            if nth < 1:
                raise ValueError(
                    f"bad fault clause {clause!r}: @N wants N >= 1")
        else:
            rate = float(trigger)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(
                    f"bad fault clause {clause!r}: rate must be in [0, 1]")
    arg = float(parts[3]) if len(parts) == 4 else 0.0
    return FaultRule(site=site, mode=mode, rate=rate, nth=nth, arg=arg)


@dataclass
class FaultPlan:
    """A seeded set of :class:`FaultRule` bindings.

    The plan itself is cheap and immutable apart from the per-rule call
    counters backing ``@N`` triggers (deliberately per-process state).
    """

    rules: Tuple[FaultRule, ...] = ()
    seed: int = 0
    _calls: Dict[int, int] = field(default_factory=dict, repr=False)

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a ``REPRO_FAULTS`` spec string."""
        seed = 0
        rules: List[FaultRule] = []
        for raw in spec.split(","):
            clause = raw.strip()
            if not clause:
                continue
            if clause.startswith("seed="):
                seed = int(clause[len("seed="):])
                continue
            rules.append(_parse_rule(clause))
        return cls(rules=tuple(rules), seed=seed)

    def spec(self) -> str:
        """The canonical spec string (parse/spec round-trips)."""
        return ",".join([f"seed={self.seed}"]
                        + [rule.spec() for rule in self.rules])

    # -- trigger evaluation --

    def _draw(self, rule_index: int, rule: FaultRule, key: str,
              attempt: int) -> bool:
        if rule.nth is not None:
            count = self._calls.get(rule_index, 0) + 1
            self._calls[rule_index] = count
            return count == rule.nth
        if rule.rate >= 1.0:
            return True
        if rule.rate <= 0.0:
            return False
        material = f"{self.seed}|{rule.site}|{rule.mode}|{key}|{attempt}"
        digest = hashlib.sha256(material.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") / 2.0 ** 64 < rule.rate

    def triggered(self, site: str, key: str = "",
                  attempt: int = 0) -> List[FaultRule]:
        """Rules at ``site`` whose trigger fires for this call."""
        return [rule for index, rule in enumerate(self.rules)
                if rule.site == site
                and self._draw(index, rule, key, attempt)]

    # -- site hooks (normally reached via the module-level wrappers) --

    def fire(self, site: str, key: str = "", attempt: int = 0) -> None:
        """Apply every push-mode rule that triggers at ``site``.

        ``delay`` sleeps (and falls through: a delayed call can still be
        killed or raised on by a later rule); the first raising/killing
        rule ends the call.
        """
        for rule in self.triggered(site, key, attempt):
            if rule.mode == "delay":
                time.sleep(rule.arg or 0.01)
            elif rule.mode == "oserror":
                raise OSError(
                    f"injected fault at {site} (key={key!r}, "
                    f"attempt={attempt})")
            elif rule.mode == "raise":
                raise FaultInjected(
                    f"injected fault at {site} (key={key!r}, "
                    f"attempt={attempt})")
            elif rule.mode == "permanent":
                raise FaultPermanent(
                    f"injected permanent fault at {site} (key={key!r})")
            elif rule.mode == "kill":
                os.kill(os.getpid(), signal.SIGKILL)

    def should_fail(self, site: str, key: str = "", attempt: int = 0) -> bool:
        """True when a ``fail``-mode rule triggers at ``site``."""
        return any(rule.mode == "fail"
                   for rule in self.triggered(site, key, attempt))

    def corrupt_text(self, site: str, key: str, text: str,
                     attempt: int = 0) -> str:
        """Garble ``text`` when a ``corrupt``-mode rule triggers.

        Truncates to half length and clips the tail mid-token — the
        shape of a torn write — so JSON decoding reliably fails.
        """
        for rule in self.triggered(site, key, attempt):
            if rule.mode == "corrupt":
                return text[:max(1, len(text) // 2)].rstrip("}\n\" ")
        return text
