"""Area and power of T-AES vs B-AES at 28 nm (paper Fig. 4).

The paper builds its simulator on the AES engine implementations from
Banerjee's MIT thesis ("Energy-efficient protocols and hardware
architectures for transport layer security", 2017), at 28 nm. Fig. 4
shows, as the bandwidth requirement grows from 1x to 8x a single
engine's throughput:

- **T-AES** (traditional): N engines -> area and power scale linearly,
  reaching roughly 45k um^2 and 24k uW at 8x.
- **B-AES** (SeDA): one engine plus XOR fan-out lanes -> near-flat
  scaling, since a lane is 128 XOR gates plus pipeline registers.

Calibration: a single round-based AES-128 engine at 28 nm occupies about
5.6k um^2 and draws about 2.9k uW at speed; a B-AES lane (128 2-input
XORs + latching) is about 180 um^2 and 95 uW. These constants reproduce
Fig. 4's endpoints and, more importantly, its *shape*: linear vs
near-flat.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.utils.bitops import ceil_div


@dataclass(frozen=True)
class CostPoint:
    """Cost of one organization at one bandwidth requirement."""

    bandwidth_multiple: int   # in units of one engine's throughput
    engines: int
    xor_lanes: int
    area_um2: float
    power_uw: float


@dataclass(frozen=True)
class AesCostModel:
    """Linear cost model: engines plus per-lane XOR fan-out."""

    name: str
    engine_area_um2: float
    engine_power_uw: float
    lane_area_um2: float
    lane_power_uw: float
    scales_with_engines: bool   # True: T-AES; False: B-AES

    def cost(self, bandwidth_multiple: int) -> CostPoint:
        """Cost to sustain ``bandwidth_multiple`` x one engine's rate."""
        if bandwidth_multiple < 1:
            raise ValueError("bandwidth_multiple must be >= 1")
        if self.scales_with_engines:
            engines = bandwidth_multiple
            lanes = 1
        else:
            engines = 1
            lanes = bandwidth_multiple
        area = (engines * self.engine_area_um2
                + (lanes - 1) * self.lane_area_um2)
        power = (engines * self.engine_power_uw
                 + (lanes - 1) * self.lane_power_uw)
        return CostPoint(
            bandwidth_multiple=bandwidth_multiple,
            engines=engines,
            xor_lanes=lanes,
            area_um2=area,
            power_uw=power,
        )


_ENGINE_AREA_UM2 = 5600.0
_ENGINE_POWER_UW = 2900.0
_LANE_AREA_UM2 = 180.0
_LANE_POWER_UW = 95.0

TAES_28NM = AesCostModel(
    name="T-AES",
    engine_area_um2=_ENGINE_AREA_UM2,
    engine_power_uw=_ENGINE_POWER_UW,
    lane_area_um2=0.0,
    lane_power_uw=0.0,
    scales_with_engines=True,
)

BAES_28NM = AesCostModel(
    name="B-AES",
    engine_area_um2=_ENGINE_AREA_UM2,
    engine_power_uw=_ENGINE_POWER_UW,
    lane_area_um2=_LANE_AREA_UM2,
    lane_power_uw=_LANE_POWER_UW,
    scales_with_engines=False,
)


def sweep_bandwidth(model: AesCostModel, max_multiple: int = 8) -> List[CostPoint]:
    """Fig. 4's x-axis sweep: 1x .. ``max_multiple``x engine bandwidth."""
    if max_multiple < 1:
        raise ValueError("max_multiple must be >= 1")
    return [model.cost(m) for m in range(1, max_multiple + 1)]


def lanes_for_npu_bandwidth(bandwidth_gbps: float, freq_ghz: float) -> int:
    """B-AES lanes needed so OTP throughput covers an NPU's DRAM bandwidth.

    One pipelined engine sustains 16 B of OTP per cycle.
    """
    if bandwidth_gbps <= 0 or freq_ghz <= 0:
        raise ValueError("bandwidth and frequency must be positive")
    engine_gbps = 16.0 * freq_ghz
    return max(1, ceil_div(int(round(bandwidth_gbps * 1000)),
                           int(round(engine_gbps * 1000))))
