"""Energy model for protected DNN inference (extension beyond the paper).

The paper evaluates area, power, traffic and time; an energy comparison
is the natural companion metric for edge devices, so this module extends
the reproduction with one. Per-operation energies follow common
28 nm-class figures from the architecture literature:

- off-chip DRAM access: ~20 pJ/byte (DDR4 I/O + core);
- AES-128 operation (one 16 B block through all rounds): ~30 pJ
  (Banerjee's 28 nm engine class);
- keyed hash over a 64 B block: ~80 pJ;
- a 128-bit XOR lane pass: ~0.2 pJ (why B-AES fan-out is nearly free).

Absolute joules are indicative; the comparison *between* schemes is the
point — metadata traffic and per-segment AES dominate, so the scheme
ordering mirrors Fig. 5/6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.protection.base import LayerProtection


@dataclass(frozen=True)
class EnergyParams:
    """Per-operation energy constants (picojoules)."""

    dram_pj_per_byte: float = 20.0
    aes_pj_per_op: float = 30.0
    hash_pj_per_block: float = 80.0
    xor_lane_pj: float = 0.2

    def __post_init__(self) -> None:
        for name in ("dram_pj_per_byte", "aes_pj_per_op",
                     "hash_pj_per_block", "xor_lane_pj"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


@dataclass
class EnergyBreakdown:
    """Energy of one run, split by component (picojoules)."""

    dram_pj: float = 0.0
    aes_pj: float = 0.0
    hash_pj: float = 0.0
    xor_pj: float = 0.0

    @property
    def total_pj(self) -> float:
        return self.dram_pj + self.aes_pj + self.hash_pj + self.xor_pj

    @property
    def total_uj(self) -> float:
        return self.total_pj / 1e6

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        return EnergyBreakdown(
            dram_pj=self.dram_pj + other.dram_pj,
            aes_pj=self.aes_pj + other.aes_pj,
            hash_pj=self.hash_pj + other.hash_pj,
            xor_pj=self.xor_pj + other.xor_pj,
        )


class EnergyModel:
    """Turn a scheme's per-layer protections into an energy estimate."""

    def __init__(self, params: EnergyParams = EnergyParams()):
        self.params = params

    def layer_energy(self, protection: LayerProtection) -> EnergyBreakdown:
        params = self.params
        crypto_segments = protection.crypto_bytes // 16
        # XOR fan-out covers the segments AES didn't individually pad.
        xor_passes = max(0, crypto_segments - protection.aes_invocations)
        return EnergyBreakdown(
            dram_pj=protection.total_bytes * params.dram_pj_per_byte,
            aes_pj=protection.aes_invocations * params.aes_pj_per_op,
            hash_pj=protection.mac_computations * params.hash_pj_per_block,
            xor_pj=xor_passes * params.xor_lane_pj,
        )

    def model_energy(self,
                     protections: Iterable[LayerProtection]) -> EnergyBreakdown:
        total = EnergyBreakdown()
        for protection in protections:
            total = total + self.layer_energy(protection)
        return total

    def overhead_vs(self, scheme: EnergyBreakdown,
                    baseline: EnergyBreakdown) -> float:
        """Fractional energy overhead of a scheme over the baseline."""
        if baseline.total_pj <= 0:
            raise ValueError("baseline energy must be positive")
        return scheme.total_pj / baseline.total_pj - 1.0
