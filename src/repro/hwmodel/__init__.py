"""28 nm area/power cost model for crypto-engine organizations (Fig. 4)."""

from repro.hwmodel.aes_cost import (
    AesCostModel,
    CostPoint,
    TAES_28NM,
    BAES_28NM,
    sweep_bandwidth,
)

__all__ = [
    "AesCostModel",
    "CostPoint",
    "TAES_28NM",
    "BAES_28NM",
    "sweep_bandwidth",
]
