"""repro — reproduction of SeDA: Secure and Efficient DNN Accelerators
with Hardware/Software Synergy (DAC 2025).

A simulation library for studying memory-protection schemes on DNN
accelerators. The public API covers:

- workloads (:mod:`repro.models`): the thirteen evaluated networks;
- the accelerator substrate (:mod:`repro.accel`): SCALE-Sim-style
  systolic-array simulation with DRAM trace generation;
- the DRAM substrate (:mod:`repro.dram`): trace-driven DDR timing;
- the crypto substrate (:mod:`repro.crypto`): FIPS-197 AES, AES-CTR,
  SeDA's bandwidth-aware B-AES, and keyed MACs;
- integrity (:mod:`repro.integrity`): Merkle trees, metadata caches,
  SeDA's multi-level MAC hierarchy, and a functional secure memory;
- protection schemes (:mod:`repro.protection`): SGX / MGX / SeDA traffic
  and timing models;
- attacks (:mod:`repro.attacks`): SECA and RePA with their defenses;
- the evaluation pipeline (:mod:`repro.core`): Table II configurations
  and the accelerator -> protection -> DRAM flow behind every figure.

Quickstart::

    from repro import Pipeline, SERVER_NPU, get_workload, compare_schemes
    from repro.protection import SCHEME_NAMES

    pipeline = Pipeline(SERVER_NPU)
    result = compare_schemes(pipeline, get_workload("resnet18"), SCHEME_NAMES)
    print(result.traffic("seda"), result.performance("seda"))
"""

from repro.core import (
    EDGE_NPU,
    NpuConfig,
    Pipeline,
    SERVER_NPU,
    SchemeRun,
    compare_schemes,
    npu_config,
)
from repro.models import Topology, get_workload, list_workloads
from repro.protection import SCHEME_NAMES, make_scheme

__version__ = "1.0.0"

__all__ = [
    "EDGE_NPU",
    "NpuConfig",
    "Pipeline",
    "SERVER_NPU",
    "SchemeRun",
    "compare_schemes",
    "npu_config",
    "Topology",
    "get_workload",
    "list_workloads",
    "SCHEME_NAMES",
    "make_scheme",
    "__version__",
]
