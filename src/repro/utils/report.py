"""Plain-text rendering helpers for examples and reports.

No plotting dependencies are available offline, so figures are rendered
as aligned text tables and horizontal ASCII bar charts.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence],
                 float_fmt: str = "{:.3f}") -> str:
    """Render rows as an aligned text table."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(float_fmt.format(cell))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered_rows:
        lines.append("  ".join(cell.rjust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def bar_chart(values: Mapping[str, float], width: int = 50,
              baseline: Optional[float] = None,
              value_fmt: str = "{:.3f}") -> str:
    """Horizontal ASCII bar chart, one bar per labelled value.

    ``baseline`` draws a reference mark (e.g. the unprotected 1.0 line).
    """
    if not values:
        raise ValueError("no values to chart")
    if width < 10:
        raise ValueError("width must be at least 10")
    peak = max(max(values.values()), baseline or 0.0)
    if peak <= 0:
        raise ValueError("bar chart needs a positive maximum")
    label_width = max(len(k) for k in values)
    lines = []
    for label, value in values.items():
        filled = int(round(value / peak * width))
        bar = "#" * filled
        if baseline is not None:
            mark = int(round(baseline / peak * width))
            if mark < width:
                bar = bar[:mark].ljust(mark) + "|" + bar[mark + 1:]
        lines.append(f"{label.ljust(label_width)} {bar.ljust(width)} "
                     f"{value_fmt.format(value)}")
    return "\n".join(lines)


def percent(value: float) -> str:
    """Format a ratio as a signed percentage ('+12.26%')."""
    return f"{(value - 1.0) * 100:+.2f}%"
