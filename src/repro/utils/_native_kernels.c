/* Sequential LRU drive kernel for the metadata cache models.
 *
 * Replicates repro.utils.lru.LruCache (fully-associative, write-back,
 * write-allocate LRU) access-for-access, including the exact event
 * emission order of the scalar drives in
 * repro/protection/metadata_model.py:
 *
 *   - MAC discipline: miss fetch first, dirty-eviction writeback after;
 *   - VN discipline: dirty-eviction writeback first, then the fetch,
 *     then the integrity-tree ancestor walk up to the first cached
 *     node (or the on-chip root).
 *
 * The cache is a doubly linked LRU list over slot arrays plus an
 * open-addressing hash table (linear probing, backward-shift delete).
 * Compiled on demand by repro.protection.drive_kernel; the vectorized
 * reuse-distance engine and the OrderedDict oracle remain the pure
 * Python paths when no C compiler is available.
 */

#include <stdint.h>
#include <stdlib.h>

typedef int64_t i64;
typedef uint64_t u64;
typedef unsigned char u8;

typedef struct {
    i64 cap;            /* capacity in lines */
    i64 size;           /* resident lines */
    i64 *tag;           /* per slot */
    u8 *dirty;          /* per slot */
    i64 *prv, *nxt;     /* LRU list; head = LRU, tail = MRU */
    i64 head, tail;
    i64 *table;         /* hash slots -> entry slot index, -1 empty */
    u64 mask;
    i64 *freelist;
    i64 nfree;
    i64 hits, misses, evictions, dirty_evictions;
} Cache;

static u64 hash_tag(i64 t) {
    u64 x = (u64)t;
    x ^= x >> 30; x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27; x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
}

static int cache_init(Cache *c, i64 cap, i64 max_entries) {
    i64 n = cap < max_entries ? cap : max_entries;
    if (n < 1) n = 1;
    u64 tsize = 8;
    while (tsize < (u64)(4 * n)) tsize <<= 1;
    c->cap = cap;
    c->size = 0;
    c->head = c->tail = -1;
    c->mask = tsize - 1;
    c->hits = c->misses = c->evictions = c->dirty_evictions = 0;
    c->tag = (i64 *)malloc(sizeof(i64) * n);
    c->dirty = (u8 *)malloc(n);
    c->prv = (i64 *)malloc(sizeof(i64) * n);
    c->nxt = (i64 *)malloc(sizeof(i64) * n);
    c->table = (i64 *)malloc(sizeof(i64) * tsize);
    c->freelist = (i64 *)malloc(sizeof(i64) * n);
    if (!c->tag || !c->dirty || !c->prv || !c->nxt || !c->table
            || !c->freelist)
        return -1;
    for (u64 i = 0; i < tsize; i++) c->table[i] = -1;
    for (i64 i = 0; i < n; i++) c->freelist[i] = n - 1 - i;
    c->nfree = n;
    return 0;
}

static void cache_free(Cache *c) {
    free(c->tag); free(c->dirty); free(c->prv); free(c->nxt);
    free(c->table); free(c->freelist);
}

static i64 ht_find(const Cache *c, i64 t) {
    u64 i = hash_tag(t) & c->mask;
    for (;;) {
        i64 s = c->table[i];
        if (s < 0) return -1;
        if (c->tag[s] == t) return (i64)i;
        i = (i + 1) & c->mask;
    }
}

static void ht_insert(Cache *c, i64 t, i64 slot) {
    u64 i = hash_tag(t) & c->mask;
    while (c->table[i] >= 0) i = (i + 1) & c->mask;
    c->table[i] = slot;
}

static void ht_delete(Cache *c, u64 i) {
    /* linear-probing backward-shift deletion */
    u64 j = i;
    for (;;) {
        c->table[i] = -1;
        for (;;) {
            j = (j + 1) & c->mask;
            i64 s = c->table[j];
            if (s < 0) return;
            u64 k = hash_tag(c->tag[s]) & c->mask;
            int movable = (i <= j) ? (k <= i || k > j) : (k <= i && k > j);
            if (movable) { c->table[i] = s; i = j; break; }
        }
    }
}

static void lru_unlink(Cache *c, i64 s) {
    if (c->prv[s] >= 0) c->nxt[c->prv[s]] = c->nxt[s];
    else c->head = c->nxt[s];
    if (c->nxt[s] >= 0) c->prv[c->nxt[s]] = c->prv[s];
    else c->tail = c->prv[s];
}

static void lru_push_mru(Cache *c, i64 s) {
    c->prv[s] = c->tail;
    c->nxt[s] = -1;
    if (c->tail >= 0) c->nxt[c->tail] = s;
    else c->head = s;
    c->tail = s;
}

/* Access; returns 1 on hit.  On a dirty eviction *wb_addr is set to the
 * victim line address (tag * line_bytes); caller pre-sets it to -1. */
static int cache_access(Cache *c, i64 t, int write, i64 line_bytes,
                        i64 *wb_addr) {
    i64 h = ht_find(c, t);
    if (h >= 0) {
        i64 s = c->table[h];
        c->hits++;
        lru_unlink(c, s);
        lru_push_mru(c, s);
        if (write) c->dirty[s] = 1;
        return 1;
    }
    c->misses++;
    if (c->size >= c->cap) {
        i64 v = c->head;
        c->evictions++;
        if (c->dirty[v]) {
            c->dirty_evictions++;
            *wb_addr = c->tag[v] * line_bytes;
        }
        lru_unlink(c, v);
        ht_delete(c, (u64)ht_find(c, c->tag[v]));
        c->freelist[c->nfree++] = v;
        c->size--;
    }
    i64 s = c->freelist[--c->nfree];
    c->tag[s] = t;
    c->dirty[s] = write ? 1 : 0;
    lru_push_mru(c, s);
    ht_insert(c, t, s);
    c->size++;
    return 0;
}

static void cache_load(Cache *c, const i64 *tags, const u8 *dirty, i64 m,
                       i64 line_bytes) {
    i64 wb = -1;
    for (i64 i = 0; i < m; i++)
        cache_access(c, tags[i], dirty[i] != 0, line_bytes, &wb);
    /* state reconstruction is not traffic */
    c->hits = c->misses = c->evictions = c->dirty_evictions = 0;
}

static i64 cache_dump(const Cache *c, i64 *tags, u8 *dirty) {
    i64 n = 0;
    for (i64 s = c->head; s >= 0; s = c->nxt[s]) {
        tags[n] = c->tag[s];
        dirty[n] = c->dirty[s];
        n++;
    }
    return n;
}

typedef struct {
    i64 *cyc; i64 *addr; u8 *wr;
    i64 n, capn;
} Events;

static int emit(Events *e, i64 cyc, i64 addr, int wr) {
    if (e->n >= e->capn) return -1;
    e->cyc[e->n] = cyc;
    e->addr[e->n] = addr;
    e->wr[e->n] = (u8)wr;
    e->n++;
    return 0;
}

/* Fused MAC + VN drive over one run-compressed line-index sequence.
 *
 * idx[i] is the metadata line index of run i; MAC tag = mac_base + idx,
 * VN tag = vn_base + idx, VN leaf = leaf_base + idx.  A non-positive
 * mac_cap/vn_cap disables that side (callers bias tag bases so the
 * single-cache drives reuse this entry point).  The VN walk visits
 * levels 1..n_levels for leaf = leaf_base + line / leaf_div, with node
 * tag ``node_base[l-1] + (leaf / node_div[l-1]) * node_ratio``.
 *
 * Returns 0 on success, 1 when an event buffer overflowed (caller
 * retries with larger buffers), -1 on allocation failure.
 */
int drive_fused(
    const i64 *idx, const u8 *writes, const i64 *cycles, i64 n,
    i64 line_bytes,
    i64 mac_base, i64 mac_cap,
    const i64 *mac_init_tags, const u8 *mac_init_dirty, i64 mac_init_len,
    i64 vn_base, i64 vn_cap, i64 leaf_base, i64 leaf_div,
    const i64 *vn_init_tags, const u8 *vn_init_dirty, i64 vn_init_len,
    i64 n_levels, const i64 *node_base, const i64 *node_div, i64 node_ratio,
    i64 *mac_ev_cyc, i64 *mac_ev_addr, u8 *mac_ev_wr, i64 mac_ev_cap,
    i64 *mac_ev_n,
    i64 *vn_ev_cyc, i64 *vn_ev_addr, u8 *vn_ev_wr, i64 vn_ev_cap,
    i64 *vn_ev_n,
    i64 *stats,
    i64 *mac_state_tags, u8 *mac_state_dirty, i64 *mac_state_len,
    i64 *vn_state_tags, u8 *vn_state_dirty, i64 *vn_state_len)
{
    Cache mac, vn;
    int rc = 0;
    int use_mac = mac_cap > 0, use_vn = vn_cap > 0;
    Events mev = {mac_ev_cyc, mac_ev_addr, mac_ev_wr, 0, mac_ev_cap};
    Events vev = {vn_ev_cyc, vn_ev_addr, vn_ev_wr, 0, vn_ev_cap};

    if (use_mac) {
        if (cache_init(&mac, mac_cap, mac_init_len + n) < 0)
            return -1;
        cache_load(&mac, mac_init_tags, mac_init_dirty, mac_init_len,
                   line_bytes);
    }
    if (use_vn) {
        if (cache_init(&vn, vn_cap,
                       vn_init_len + n * (n_levels + 1)) < 0) {
            if (use_mac) cache_free(&mac);
            return -1;
        }
        cache_load(&vn, vn_init_tags, vn_init_dirty, vn_init_len,
                   line_bytes);
    }

    for (i64 i = 0; i < n && rc == 0; i++) {
        i64 line = idx[i];
        int wr = writes[i] != 0;
        i64 cyc = cycles[i];
        if (use_mac) {
            i64 wb = -1;
            if (!cache_access(&mac, mac_base + line, wr, line_bytes, &wb)) {
                if (emit(&mev, cyc, (mac_base + line) * line_bytes, 0) < 0
                        || (wb >= 0 && emit(&mev, cyc, wb, 1) < 0)) {
                    rc = 1;
                    break;
                }
            }
        }
        if (use_vn) {
            i64 wb = -1;
            if (cache_access(&vn, vn_base + line, wr, line_bytes, &wb))
                continue;
            if (wb >= 0 && emit(&vev, cyc, wb, 1) < 0) { rc = 1; break; }
            if (emit(&vev, cyc, (vn_base + line) * line_bytes, 0) < 0) {
                rc = 1;
                break;
            }
            i64 leaf = leaf_base + line / leaf_div;
            for (i64 l = 0; l < n_levels; l++) {
                i64 ntag = node_base[l] + (leaf / node_div[l]) * node_ratio;
                wb = -1;
                if (cache_access(&vn, ntag, wr, line_bytes, &wb))
                    break;
                if (wb >= 0 && emit(&vev, cyc, wb, 1) < 0) { rc = 1; break; }
                if (emit(&vev, cyc, ntag * line_bytes, 0) < 0) {
                    rc = 1;
                    break;
                }
            }
        }
    }

    *mac_ev_n = mev.n;
    *vn_ev_n = vev.n;
    if (use_mac) {
        stats[0] = mac.hits; stats[1] = mac.misses;
        stats[2] = mac.evictions; stats[3] = mac.dirty_evictions;
        *mac_state_len = cache_dump(&mac, mac_state_tags, mac_state_dirty);
        cache_free(&mac);
    } else {
        stats[0] = stats[1] = stats[2] = stats[3] = 0;
        *mac_state_len = 0;
    }
    if (use_vn) {
        stats[4] = vn.hits; stats[5] = vn.misses;
        stats[6] = vn.evictions; stats[7] = vn.dirty_evictions;
        *vn_state_len = cache_dump(&vn, vn_state_tags, vn_state_dirty);
        cache_free(&vn);
    } else {
        stats[4] = stats[5] = stats[6] = stats[7] = 0;
        *vn_state_len = 0;
    }
    return rc;
}

/* Completion-time carry of the reference DRAM model: the bus/bank
 * ready-time recurrence of DramSim.simulate, float64 semantics
 * identical to the Python loop (IEEE max/add in the same order). */
double dram_completion(const double *arrivals, const i64 *banks,
                       const double *service, i64 n, double burst,
                       i64 nbanks)
{
    double *bank_ready = (double *)calloc((size_t)nbanks, sizeof(double));
    double bus_free = 0.0, completion = 0.0;
    if (!bank_ready)
        return -1.0;
    for (i64 i = 0; i < n; i++) {
        i64 b = banks[i];
        double ready = arrivals[i];
        if (bank_ready[b] > ready) ready = bank_ready[b];
        if (bus_free > ready) ready = bus_free;
        double finish = ready + service[i];
        bus_free = ready + burst;
        bank_ready[b] = finish;
        if (finish > completion) completion = finish;
    }
    free(bank_ready);
    return completion;
}

/* ---- batched DRAM fast model ------------------------------------- */

/* Data element following one metadata insertion run re-evaluates its
 * conflict flag against the run's last row.  `lv` is the run's last
 * metadata index, `f` the insertion point (index of that data
 * element), `gbo` the run's segment-offset bank. */
#define SEG(arr, idx) ((arr) ? (arr)[(idx)] : 0)

static void follower_fix(i64 lv, i64 f, i64 gbo, const i64 *seg_a,
                         const i64 *gb_a, const i64 *rows_a,
                         const i64 *rows_b, i64 na, i64 nbanks, i64 bpc,
                         i64 *conflicts)
{
    if (f >= na || gb_a[f] + SEG(seg_a, f) * nbanks != gbo)
        return;
    int had_prev = (f > 0) && (gb_a[f - 1] + SEG(seg_a, f - 1) * nbanks == gbo);
    int old_flag = had_prev ? (rows_a[f] != rows_a[f - 1]) : 1;
    int new_flag = rows_a[f] != rows_b[lv];
    conflicts[gbo / bpc] += (i64)new_flag - (i64)old_flag;
}

/* Exact per-(segment, channel) request/conflict counts for metadata
 * insertions into bank-sorted data streams: the merge scan behind
 * DramSim._insertion_counts, one pass instead of searchsorted plus a
 * dozen fancy-indexing passes.  Both sides are (segment, key)-sorted;
 * ties resolve data-before-metadata (searchsorted side="right").
 * NULL segment arrays mean a single segment (the per-entry call shape,
 * which skips the concatenated copies entirely).  Adds into
 * caller-zeroed requests/conflicts[nseg * channels]. */
int insertion_scan(const i64 *key_a, const i64 *seg_a, const i64 *gb_a,
                   const i64 *rows_a, i64 na,
                   const i64 *key_b, const i64 *seg_b, const i64 *gb_b,
                   const i64 *rows_b, i64 nb,
                   i64 nbanks, i64 bpc, i64 *requests, i64 *conflicts)
{
    i64 i = 0;                 /* insertion point: # data elems <= key */
    i64 prev_ins = -1, prev_gbo = -1;
    for (i64 j = 0; j < nb; j++) {
        i64 sb = SEG(seg_b, j), kb = key_b[j];
        while (i < na && (SEG(seg_a, i) < sb
                          || (SEG(seg_a, i) == sb && key_a[i] <= kb)))
            i++;
        i64 gbo = gb_b[j] + sb * nbanks;
        requests[gbo / bpc]++;
        int flag;
        if (j == 0 || i != prev_ins || gbo != prev_gbo) {
            /* new insertion run: close the previous one */
            if (j > 0)
                follower_fix(j - 1, prev_ins, prev_gbo, seg_a, gb_a,
                             rows_a, rows_b, na, nbanks, bpc, conflicts);
            int same_prev = (i > 0)
                && (gb_a[i - 1] + SEG(seg_a, i - 1) * nbanks == gbo);
            flag = same_prev ? (rows_b[j] != rows_a[i - 1]) : 1;
        } else {
            flag = rows_b[j] != rows_b[j - 1];
        }
        conflicts[gbo / bpc] += flag;
        prev_ins = i;
        prev_gbo = gbo;
    }
    if (nb > 0)
        follower_fix(nb - 1, prev_ins, prev_gbo, seg_a, gb_a, rows_a,
                     rows_b, na, nbanks, bpc, conflicts);
    return 0;
}

/* Fused geometry pass for a cycle-sorted stream under power-of-two
 * mapping: address decomposition, stable counting sort by global bank
 * (input order within a bank is already issue order), composite sort
 * keys, and per-channel request/conflict counts — everything
 * DramSim._sorted_geom + _stream_counts produce, in two passes.
 * Outputs: channel[n] (input order), gb/rows/key[n] (bank-sorted),
 * requests/conflicts[channels] (caller-zeroed). */
int geom_counts(const i64 *addrs, const i64 *cycles, i64 n,
                i64 block_shift, i64 channel_shift, i64 col_shift,
                i64 bank_shift, i64 key_span,
                i64 *channel_out, i64 *gb_out, i64 *rows_out, i64 *key_out,
                i64 *requests, i64 *conflicts)
{
    i64 channels = (i64)1 << channel_shift;
    i64 banks = (i64)1 << bank_shift;
    i64 nbanks = channels * banks;
    i64 *gb_tmp = (i64 *)malloc((size_t)(2 * n) * sizeof(i64));
    i64 *offs = (i64 *)calloc((size_t)nbanks + 1, sizeof(i64));
    if (!gb_tmp || !offs) {
        free(gb_tmp);
        free(offs);
        return -1;
    }
    i64 *row_tmp = gb_tmp + n;
    for (i64 k = 0; k < n; k++) {
        i64 block = addrs[k] >> block_shift;
        i64 ch = block & (channels - 1);
        i64 local = block >> channel_shift;
        i64 bank = (local >> col_shift) & (banks - 1);
        i64 gb = ch * banks + bank;
        channel_out[k] = ch;
        gb_tmp[k] = gb;
        row_tmp[k] = local >> (col_shift + bank_shift);
        offs[gb + 1]++;
        requests[ch]++;
    }
    for (i64 g = 0; g < nbanks; g++)
        offs[g + 1] += offs[g];
    for (i64 k = 0; k < n; k++) {
        i64 g = gb_tmp[k];
        i64 pos = offs[g]++;
        gb_out[pos] = g;
        rows_out[pos] = row_tmp[k];
        key_out[pos] = g * key_span + cycles[k];
    }
    for (i64 k = 0; k < n; k++) {
        if (k == 0 || gb_out[k] != gb_out[k - 1]
                || rows_out[k] != rows_out[k - 1])
            conflicts[gb_out[k] >> bank_shift]++;
    }
    free(gb_tmp);
    free(offs);
    return 0;
}
