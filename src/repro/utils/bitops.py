"""Bit and byte manipulation helpers used across the crypto and memory models."""

from __future__ import annotations


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division.

    >>> ceil_div(7, 4)
    2
    >>> ceil_div(8, 4)
    2
    """
    if b <= 0:
        raise ValueError(f"divisor must be positive, got {b}")
    return -(-a // b)


def align_down(value: int, alignment: int) -> int:
    """Round ``value`` down to a multiple of ``alignment``."""
    if alignment <= 0:
        raise ValueError(f"alignment must be positive, got {alignment}")
    return (value // alignment) * alignment


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to a multiple of ``alignment``."""
    if alignment <= 0:
        raise ValueError(f"alignment must be positive, got {alignment}")
    return ceil_div(value, alignment) * alignment


def int_to_bytes(value: int, length: int) -> bytes:
    """Big-endian fixed-width encoding, truncating to ``length`` bytes."""
    if length < 0:
        raise ValueError("length must be non-negative")
    mask = (1 << (8 * length)) - 1
    return (value & mask).to_bytes(length, "big")


def bytes_to_int(data: bytes) -> int:
    """Big-endian decoding of a byte string into an unsigned integer."""
    return int.from_bytes(data, "big")


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """XOR two equal-length byte strings.

    Raises ``ValueError`` on length mismatch: silently truncating would hide
    OTP sizing bugs in the encryption paths.
    """
    if len(a) != len(b):
        raise ValueError(f"length mismatch: {len(a)} vs {len(b)}")
    return bytes(x ^ y for x, y in zip(a, b))
