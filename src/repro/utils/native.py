"""On-demand compiled native kernels (optional accelerators).

The vectorized reuse-distance engine (:mod:`repro.protection.reuse_engine`)
removes the per-access Python cost of the metadata cache drives, but two
carries stay irreducibly sequential: the VN integrity-tree walk (a
data-dependent state machine, reachable offline only through fixpoint
iteration) and the reference DRAM model's bus/bank ready-time
recurrence.  When a C compiler is available this module builds
``_native_kernels.c`` — direct transcriptions of the reference scalar
loops — and the hot paths run those carries in native code instead.

Everything degrades gracefully: no compiler (or
``REPRO_NO_NATIVE_KERNEL=1``) means :func:`available` is False and the
callers use the pure numpy engine / Python carries, with the VN
fixpoint falling back to the scalar oracle.  All tiers are pinned
bit-identical by the equivalence suites in
``tests/protection/test_reuse_engine.py`` and ``tests/dram``; the
``FALLBACKS`` manifest below records which slow tier owns each kernel,
and ``repro check``'s tier-parity rule fails the build if an entry
point ships without one.

Environment knobs (speed-only — every tier is pinned bit-identical, so
none of these can change a result): ``REPRO_NO_NATIVE_KERNEL`` disables
the kernels, ``REPRO_KERNEL_CACHE`` moves the build cache, ``CC`` picks
the compiler, and ``REPRO_NATIVE_CFLAGS`` appends extra compiler flags
(how CI builds the kernels under ``-fsanitize=address,undefined``; the
flags are folded into the cache key, so instrumented and plain builds
never collide).
"""
# repro: allow-file(fingerprint-purity) -- env reads here select a
# compute tier; the equivalence suites pin all tiers bit-identical.

from __future__ import annotations

import ctypes
import hashlib
import os
import platform
import shutil
import subprocess
import sys
import tempfile
import warnings
from typing import Optional, Sequence, Tuple

import numpy as np

from repro import faults, obs

_SOURCE = os.path.join(os.path.dirname(__file__), "_native_kernels.c")

#: Pure-Python/numpy tiers owning correctness for each kernel entry
#: point, as ``"pkg.module:Qual.name"`` paths.  The tier-parity rule in
#: ``repro check`` verifies every entry point is registered here, every
#: path resolves, and an equivalence test in tests/ names the kernel.
FALLBACKS = {
    "fused_drive": [
        "repro.protection.reuse_engine:drive",
        "repro.protection.metadata_model:VnTreeModel._process_engine",
    ],
    "insertion_scan": [
        "repro.dram.simulator:DramSim._insertion_counts",
        "repro.dram.simulator:DramSim._merge_entries",
    ],
    "geom_counts": [
        "repro.dram.simulator:DramSim._sorted_geom",
        "repro.dram.simulator:DramSim._stream_counts",
    ],
    "dram_completion": [
        "repro.dram.simulator:DramSim._channel_completion",
    ],
}

_lib = None
_load_attempted = False

_i64p = ctypes.POINTER(ctypes.c_int64)
_u8p = ctypes.POINTER(ctypes.c_uint8)
_i64 = ctypes.c_int64


def _cache_dir() -> Optional[str]:
    """Private, ownership-verified directory for compiled kernels.

    The ``.so`` here gets ``ctypes.CDLL``-loaded, so the directory must
    not be writable by other users: it is created mode 0700 and both
    ownership and permissions are re-verified (a pre-planted
    world-writable directory in a shared tmp must not be trusted).
    Returns ``None`` when no trustworthy location exists — the callers
    then fall back to the pure Python tiers.
    """
    root = os.environ.get("REPRO_KERNEL_CACHE")
    if not root:
        base = os.environ.get("XDG_CACHE_HOME",
                              os.path.join(os.path.expanduser("~"), ".cache"))
        root = os.path.join(base, "repro-kernel")
        if not os.path.isdir(os.path.dirname(root)):
            uid = os.getuid() if hasattr(os, "getuid") else "u"
            root = os.path.join(tempfile.gettempdir(), f"repro-kernel-{uid}")
    try:
        os.makedirs(root, mode=0o700, exist_ok=True)
        if hasattr(os, "getuid"):
            info = os.stat(root)
            if info.st_uid != os.getuid() or info.st_mode & 0o022:
                return None
    except OSError:
        return None
    return root


def _build() -> Optional[str]:
    compiler = None
    for cand in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if cand and shutil.which(cand):
            compiler = cand
            break
    if compiler is None:
        return None
    flags = ["-O3", "-march=native", "-shared", "-fPIC"]
    extra = os.environ.get("REPRO_NATIVE_CFLAGS")
    if extra:
        # e.g. "-fsanitize=address,undefined -fno-omit-frame-pointer".
        # The flags are hashed into the cache key below, so instrumented
        # builds never shadow (or get shadowed by) plain ones.
        flags.extend(extra.split())
    # -march=native binaries are host-specific: fold the CPU identity
    # into the cache key so a shared cache dir (or an image baked on a
    # different microarchitecture) never loads an ISA-incompatible .so.
    cpu = f"{platform.machine()}|{platform.processor()}"
    try:
        with open("/proc/cpuinfo") as handle:
            for line in handle:
                if line.startswith(("model name", "flags")):
                    cpu += line
    except OSError:
        pass
    with open(_SOURCE, "rb") as handle:
        digest = hashlib.sha256(handle.read() + " ".join(flags).encode()
                                + cpu.encode()).hexdigest()[:16]
    cache_dir = _cache_dir()
    if cache_dir is None:
        return None
    suffix = "dylib" if sys.platform == "darwin" else "so"
    target = os.path.join(cache_dir, f"_native_kernels-{digest}.{suffix}")
    if os.path.exists(target):
        return target
    fd, tmp = tempfile.mkstemp(suffix=f".{suffix}", dir=cache_dir)
    os.close(fd)
    cmd = [compiler, *flags, _SOURCE, "-o", tmp]
    try:
        subprocess.run(cmd, check=True, capture_output=True, timeout=120)
        os.replace(tmp, target)      # atomic: concurrent builders collapse
    except Exception:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        return None
    return target


def _degrade(reason: str) -> None:
    """Make an unintentional native-tier loss visible, exactly once.

    The numpy tier owns correctness (all tiers are pinned
    bit-identical), so losing the kernels is a speed problem, not a
    correctness one — but a silent 5-10x slowdown is how perf
    regressions hide.  One warning plus a counter; the process then
    stays on the numpy tier permanently (``_load_attempted`` latches).
    """
    obs.incr("native.degraded")
    warnings.warn(
        f"native kernels unavailable ({reason}); falling back to the "
        f"bit-identical numpy tier for this process (slower; see the "
        f"native.degraded counter)", RuntimeWarning, stacklevel=3)


def _load():
    global _lib, _load_attempted
    if _load_attempted:
        return _lib
    _load_attempted = True
    if os.environ.get("REPRO_NO_NATIVE_KERNEL"):
        # Deliberate opt-out: silent by design (CI and the equivalence
        # suites flip this constantly).
        return None
    try:
        if faults.should_fail("native.build"):
            raise RuntimeError("injected native-kernel build failure")
        path = _build()
        if path is None:
            _degrade("no usable C compiler or kernel cache directory")
            return None
        if faults.should_fail("native.load"):
            raise OSError("injected native-kernel load failure")
        lib = ctypes.CDLL(path)
        lib.dram_completion.restype = ctypes.c_double
        lib.dram_completion.argtypes = [
            ctypes.POINTER(ctypes.c_double), _i64p,
            ctypes.POINTER(ctypes.c_double), _i64, ctypes.c_double, _i64,
        ]
        lib.insertion_scan.restype = ctypes.c_int
        lib.insertion_scan.argtypes = [
            _i64p, _i64p, _i64p, _i64p, _i64,               # data side
            _i64p, _i64p, _i64p, _i64p, _i64,               # metadata side
            _i64, _i64, _i64p, _i64p,                       # geometry, outs
        ]
        lib.geom_counts.restype = ctypes.c_int
        lib.geom_counts.argtypes = [
            _i64p, _i64p, _i64,                             # addrs/cycles
            _i64, _i64, _i64, _i64, _i64,                   # shifts, span
            _i64p, _i64p, _i64p, _i64p,                     # geometry outs
            _i64p, _i64p,                                   # count outs
        ]
        lib.drive_fused.restype = ctypes.c_int
        lib.drive_fused.argtypes = [
            _i64p, _u8p, _i64p, _i64,                       # idx/writes/cycles
            _i64,                                           # line_bytes
            _i64, _i64, _i64p, _u8p, _i64,                  # mac side
            _i64, _i64, _i64, _i64, _i64p, _u8p, _i64,      # vn side
            _i64, _i64p, _i64p, _i64,                       # walk spec
            _i64p, _i64p, _u8p, _i64, _i64p,                # mac events
            _i64p, _i64p, _u8p, _i64, _i64p,                # vn events
            _i64p,                                          # stats
            _i64p, _u8p, _i64p,                             # mac state
            _i64p, _u8p, _i64p,                             # vn state
        ]
        _lib = lib
    except Exception as exc:
        _degrade(f"{type(exc).__name__}: {exc}")
        _lib = None
    return _lib


def available() -> bool:
    return _load() is not None


def _p64(arr: np.ndarray):
    return arr.ctypes.data_as(_i64p)


def _pu8(arr: np.ndarray):
    return arr.ctypes.data_as(_u8p)


_EMPTY64 = np.empty(0, np.int64)
_EMPTY8 = np.empty(0, np.uint8)


def _as_state(items) -> Tuple[np.ndarray, np.ndarray]:
    """(tags, dirty) arrays from a tag map, pair list, or array pair."""
    if isinstance(items, tuple) and len(items) == 2 \
            and isinstance(items[0], np.ndarray):
        return (np.ascontiguousarray(items[0], dtype=np.int64),
                np.ascontiguousarray(items[1], dtype=np.uint8))
    n = len(items)
    if not n:
        return _EMPTY64, _EMPTY8
    if hasattr(items, "keys"):
        return (np.fromiter(items.keys(), np.int64, n),
                np.fromiter(items.values(), np.uint8, n))
    tags, dirty = zip(*items)
    return (np.asarray(tags, dtype=np.int64),
            np.asarray(dirty, dtype=np.uint8))


#: Reused output buffers (the kernel runs are serial within a process;
#: results are copied out before the next call).
_scratch_bufs = {}


def _scratch(name: str, size: int, dtype) -> np.ndarray:
    buf = _scratch_bufs.get(name)
    if buf is None or len(buf) < size:
        buf = np.empty(max(size, 4096), dtype)
        _scratch_bufs[name] = buf
    return buf


class DriveOutput:
    """Events, stats and final state for one cache from a kernel run."""

    __slots__ = ("ev_cycles", "ev_addrs", "ev_writes", "hits", "misses",
                 "evictions", "dirty_evictions", "state_tags", "state_dirty")

    def __init__(self, cyc, addr, wr, stats, state_tags, state_dirty):
        self.ev_cycles = cyc
        self.ev_addrs = addr
        self.ev_writes = wr
        self.hits, self.misses, self.evictions, self.dirty_evictions = \
            (int(v) for v in stats)
        self.state_tags = state_tags
        self.state_dirty = state_dirty

    @property
    def state(self):
        """(tag, dirty) pairs in LRU order (compatibility view)."""
        return list(zip(self.state_tags.tolist(),
                        (self.state_dirty != 0).tolist()))


def fused_drive(idx: np.ndarray, writes: np.ndarray, cycles: np.ndarray,
                line_bytes: int,
                mac: Optional[Tuple[int, int, Sequence]] = None,
                vn: Optional[Tuple[int, int, int, int, Sequence,
                                   Sequence, Sequence, int]] = None,
                ) -> Optional[Tuple[Optional[DriveOutput],
                                    Optional[DriveOutput]]]:
    """Drive MAC and/or VN caches over one run sequence in native code.

    ``mac`` is ``(tag_base, capacity_lines, init_state)``; ``vn`` is
    ``(tag_base, capacity_lines, leaf_base, leaf_div, init_state,
    node_base_tags, node_divs, node_ratio)`` where ``init_state`` is an
    iterable of
    ``(tag, dirty)`` in LRU order.  Returns ``None`` when the kernel is
    unavailable, otherwise ``(mac_output, vn_output)``.
    """
    lib = _load()
    if lib is None:
        obs.incr("native.drive.python_fallback")
        return None
    n = len(idx)
    idx = np.ascontiguousarray(idx, dtype=np.int64)
    writes = np.ascontiguousarray(writes, dtype=np.uint8)
    cycles = np.ascontiguousarray(cycles, dtype=np.int64)

    if mac is not None:
        mac_base, mac_cap, mac_init = mac
        mac_it, mac_id = _as_state(mac_init)
    else:
        mac_base, mac_cap = 0, 0
        mac_it, mac_id = _EMPTY64, _EMPTY8
    if vn is not None:
        vn_base, vn_cap, leaf_base, leaf_div, vn_init, node_base, \
            node_div, ratio = vn
        vn_it, vn_id = _as_state(vn_init)
        node_base = np.ascontiguousarray(node_base, dtype=np.int64)
        node_div = np.ascontiguousarray(node_div, dtype=np.int64)
        levels = len(node_base)
    else:
        vn_base, vn_cap, leaf_base, leaf_div, ratio, levels = 0, 0, 0, 1, 1, 0
        vn_it, vn_id = _EMPTY64, _EMPTY8
        node_base = node_div = _EMPTY64

    mac_ev_cap = 2 * n + 16
    vn_ev_cap = 2 * n + 16
    vn_ev_hard = 2 * n * (levels + 1) + 16
    mac_state_cap = max(1, min(mac_cap, len(mac_it) + n)) if mac else 1
    vn_state_cap = max(1, min(vn_cap, len(vn_it) + n * (levels + 1))) \
        if vn else 1

    while True:
        m_cyc = _scratch("mc", mac_ev_cap, np.int64)
        m_addr = _scratch("ma", mac_ev_cap, np.int64)
        m_wr = _scratch("mw", mac_ev_cap, np.uint8)
        v_cyc = _scratch("vc", vn_ev_cap, np.int64)
        v_addr = _scratch("va", vn_ev_cap, np.int64)
        v_wr = _scratch("vw", vn_ev_cap, np.uint8)
        m_n = _i64(0)
        v_n = _i64(0)
        stats = np.zeros(8, np.int64)
        ms_t = np.empty(mac_state_cap, np.int64)
        ms_d = np.empty(mac_state_cap, np.uint8)
        vs_t = np.empty(vn_state_cap, np.int64)
        vs_d = np.empty(vn_state_cap, np.uint8)
        ms_n = _i64(0)
        vs_n = _i64(0)
        rc = lib.drive_fused(
            _p64(idx), _pu8(writes), _p64(cycles), n, line_bytes,
            mac_base, mac_cap if mac else 0, _p64(mac_it), _pu8(mac_id),
            len(mac_it),
            vn_base, vn_cap if vn else 0, leaf_base, leaf_div,
            _p64(vn_it), _pu8(vn_id), len(vn_it),
            levels, _p64(node_base), _p64(node_div), ratio,
            _p64(m_cyc), _p64(m_addr), _pu8(m_wr), mac_ev_cap,
            ctypes.byref(m_n),
            _p64(v_cyc), _p64(v_addr), _pu8(v_wr), vn_ev_cap,
            ctypes.byref(v_n),
            _p64(stats),
            _p64(ms_t), _pu8(ms_d), ctypes.byref(ms_n),
            _p64(vs_t), _pu8(vs_d), ctypes.byref(vs_n),
        )
        if rc == 1 and vn_ev_cap < vn_ev_hard:
            vn_ev_cap = vn_ev_hard
            continue
        if rc != 0:
            obs.incr("native.drive.python_fallback")
            return None
        break
    obs.incr("native.drive.kernel")

    mac_out = vn_out = None
    if mac is not None:
        k = m_n.value
        mac_out = DriveOutput(m_cyc[:k].copy(), m_addr[:k].copy(),
                              m_wr[:k].copy(), stats[:4],
                              ms_t[:ms_n.value].copy(),
                              ms_d[:ms_n.value].copy())
    if vn is not None:
        k = v_n.value
        vn_out = DriveOutput(v_cyc[:k].copy(), v_addr[:k].copy(),
                             v_wr[:k].copy(), stats[4:],
                             vs_t[:vs_n.value].copy(),
                             vs_d[:vs_n.value].copy())
    return mac_out, vn_out


def _c64(arr: np.ndarray) -> np.ndarray:
    """Contiguous int64 view (free for the internal int64 arrays; a
    uint64 address array reinterprets without copying)."""
    arr = np.ascontiguousarray(arr)
    if arr.dtype == np.int64:
        return arr
    if arr.dtype == np.uint64:
        return arr.view(np.int64)
    return arr.astype(np.int64)


def insertion_scan(key_a, seg_a, gb_a, rows_a, key_b, seg_b, gb_b, rows_b,
                   nbanks: int, bpc: int,
                   requests: np.ndarray, conflicts: np.ndarray) -> bool:
    """Native merge scan behind ``DramSim._insertion_counts``.

    Both sides must be (segment, key)-sorted; ``seg_a``/``seg_b`` may be
    None for the single-segment per-entry shape (which needs none of
    the concatenated copies the packed numpy scan builds).  Adds
    metadata request and conflict counts into ``requests``/``conflicts``
    in place; returns False when the kernel is unavailable (caller runs
    the numpy scan).
    """
    lib = _load()
    if lib is None:
        return False
    rc = lib.insertion_scan(
        _p64(_c64(key_a)), None if seg_a is None else _p64(_c64(seg_a)),
        _p64(_c64(gb_a)), _p64(_c64(rows_a)), len(key_a),
        _p64(_c64(key_b)), None if seg_b is None else _p64(_c64(seg_b)),
        _p64(_c64(gb_b)), _p64(_c64(rows_b)), len(key_b),
        int(nbanks), int(bpc), _p64(requests), _p64(conflicts))
    if rc == 0:
        obs.incr("native.dram_batch.kernel")
        return True
    return False


def geom_counts(addrs: np.ndarray, cycles: np.ndarray,
                shifts: Tuple[int, int, int, int], key_span: int,
                channels: int):
    """Fused decompose + bank counting-sort + per-channel counts for a
    cycle-sorted stream (``DramSim._sorted_geom`` + ``_stream_counts``
    in one native pass).  Returns ``(channel, gb_sorted, rows_sorted,
    key_sorted, requests, conflicts)`` or ``None`` when unavailable.
    """
    lib = _load()
    n = len(addrs)
    if lib is None or n == 0:
        return None
    block_shift, channel_shift, col_shift, bank_shift = shifts
    channel = np.empty(n, np.int64)
    gb_s = np.empty(n, np.int64)
    rows_s = np.empty(n, np.int64)
    key_s = np.empty(n, np.int64)
    requests = np.zeros(channels, np.int64)
    conflicts = np.zeros(channels, np.int64)
    rc = lib.geom_counts(
        _p64(_c64(addrs)), _p64(_c64(cycles)), n,
        int(block_shift), int(channel_shift), int(col_shift),
        int(bank_shift), int(key_span),
        _p64(channel), _p64(gb_s), _p64(rows_s), _p64(key_s),
        _p64(requests), _p64(conflicts))
    if rc != 0:
        return None
    obs.incr("native.dram_geom.kernel")
    return channel, gb_s, rows_s, key_s, requests, conflicts


def dram_completion(arrivals: np.ndarray, banks: np.ndarray,
                    service: np.ndarray, burst: float,
                    nbanks: int) -> Optional[float]:
    """Native completion-time carry of the reference DRAM model.

    Float64 semantics identical to the Python loop; returns ``None``
    when the kernel is unavailable (caller runs the Python carry).
    """
    lib = _load()
    if lib is None or len(arrivals) == 0:
        if len(arrivals):
            obs.incr("native.dram.python_fallback")
        return None
    obs.incr("native.dram.kernel")
    arrivals = np.ascontiguousarray(arrivals, dtype=np.float64)
    banks = np.ascontiguousarray(banks, dtype=np.int64)
    service = np.ascontiguousarray(service, dtype=np.float64)
    f64p = ctypes.POINTER(ctypes.c_double)
    out = lib.dram_completion(
        arrivals.ctypes.data_as(f64p), _p64(banks),
        service.ctypes.data_as(f64p), len(arrivals),
        float(burst), int(nbanks))
    return None if out < 0 else float(out)
