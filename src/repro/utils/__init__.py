"""Shared low-level helpers: bit/byte manipulation and an LRU cache model."""

from repro.utils.bitops import (
    ceil_div,
    align_down,
    align_up,
    int_to_bytes,
    bytes_to_int,
    xor_bytes,
)
from repro.utils.lru import LruCache, CacheStats

__all__ = [
    "ceil_div",
    "align_down",
    "align_up",
    "int_to_bytes",
    "bytes_to_int",
    "xor_bytes",
    "LruCache",
    "CacheStats",
]
