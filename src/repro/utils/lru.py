"""A set-associative-free (fully associative) LRU cache model.

Used to model the on-chip VN cache and MAC cache of SGX-style memory
protection (write-back, write-allocate), as configured in the paper's
evaluation setup: 16 KB VN cache and 8 KB MAC cache with LRU replacement.

The model tracks *behaviour* (hits, misses, dirty evictions), not contents:
a cache line is identified by its tag (for the protection models, the
metadata block address).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, List, Optional, Tuple


@dataclass
class CacheStats:
    """Aggregate access statistics for one :class:`LruCache`.

    ``evictions``/``dirty_evictions`` count *capacity* behaviour only —
    lines pushed out by allocation pressure. End-of-model teardown is
    reported separately (``flushed_lines``/``flush_writebacks``) so a
    cache's eviction rate stays interpretable: a model that never
    overflows the cache shows zero evictions even though its flush
    drains every line.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    dirty_evictions: int = 0
    flushed_lines: int = 0
    flush_writebacks: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    def note(self, hits: int, misses: int, evictions: int,
             dirty_evictions: int) -> None:
        """Record a batch of accesses performed by an external driver
        (see :meth:`LruCache.raw_lines`)."""
        self.hits += hits
        self.misses += misses
        self.evictions += evictions
        self.dirty_evictions += dirty_evictions

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.dirty_evictions = 0
        self.flushed_lines = 0
        self.flush_writebacks = 0


class LruCache:
    """Fully associative LRU cache with write-back / write-allocate policy.

    Parameters
    ----------
    capacity_lines:
        Number of cache lines. ``capacity_bytes // line_bytes`` for a real
        cache; must be positive.
    """

    def __init__(self, capacity_lines: int):
        if capacity_lines <= 0:
            raise ValueError(f"capacity_lines must be positive, got {capacity_lines}")
        self.capacity_lines = capacity_lines
        self._lines: "OrderedDict[Hashable, bool]" = OrderedDict()  # tag -> dirty
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._lines)

    def __contains__(self, tag: Hashable) -> bool:
        return tag in self._lines

    def access(self, tag: Hashable, write: bool = False) -> Tuple[bool, Optional[Hashable]]:
        """Access ``tag``; allocate on miss.

        Returns ``(hit, writeback_tag)`` where ``writeback_tag`` is the tag
        of a dirty line evicted by this access (``None`` if nothing dirty
        was evicted). A write marks the line dirty.
        """
        writeback: Optional[Hashable] = None
        if tag in self._lines:
            hit = True
            self.stats.hits += 1
            self._lines.move_to_end(tag)
            if write:
                self._lines[tag] = True
        else:
            hit = False
            self.stats.misses += 1
            if len(self._lines) >= self.capacity_lines:
                evicted_tag, dirty = self._lines.popitem(last=False)
                self.stats.evictions += 1
                if dirty:
                    self.stats.dirty_evictions += 1
                    writeback = evicted_tag
            self._lines[tag] = write
        return hit, writeback

    @property
    def raw_lines(self) -> "OrderedDict[Hashable, bool]":
        """The tag -> dirty map, in LRU order (least recent first).

        Exposed for batch drivers that inline the access loop (the
        protection metadata models); such drivers must keep the same
        move-to-end / popitem discipline as :meth:`access` and report
        their counters through :meth:`CacheStats.note`.
        """
        return self._lines

    def probe(self, tag: Hashable) -> bool:
        """Return whether ``tag`` is resident, without touching LRU state."""
        return tag in self._lines

    def flush(self) -> List[Hashable]:
        """Drain everything; return tags of dirty lines (writebacks).

        Teardown is counted in ``flushed_lines``/``flush_writebacks``,
        never in ``evictions``/``dirty_evictions`` — flushing a model's
        residual state is not capacity pressure.
        """
        dirty = [tag for tag, d in self._lines.items() if d]
        self.stats.flushed_lines += len(self._lines)
        self.stats.flush_writebacks += len(dirty)
        self._lines.clear()
        return dirty
