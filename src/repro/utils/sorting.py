"""Shared packed stable-sort primitive.

numpy's value sort is several times faster than a stable argsort, so
the hot paths obtain stable orders by packing the position into the low
bits of an int64 composite and value-sorting.  The overflow guard and
the argsort fallback live here once; every call site shares them.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def stable_order(keys: np.ndarray,
                 key_bits: Optional[int] = None) -> np.ndarray:
    """Stable ascending order of non-negative integer ``keys``.

    ``key_bits`` is the bit width of the largest key when the caller
    already knows it; otherwise it is measured.  Falls back to a stable
    ``argsort`` when the packed composite would not fit in an int64.
    """
    n = len(keys)
    if n == 0:
        return np.empty(0, np.int64)
    if key_bits is None:
        key_bits = max(1, int(keys.max()).bit_length())
    idx_bits = max(1, int(n - 1).bit_length())
    if key_bits + idx_bits > 62:
        return np.argsort(keys, kind="stable")
    packed = (keys.astype(np.int64) << idx_bits) | np.arange(n,
                                                             dtype=np.int64)
    packed.sort()
    return packed & ((1 << idx_bits) - 1)
