"""Content-addressed on-disk result store.

Each (NPU config, workload, scheme set, code version) evaluation is
addressed by a SHA-256 fingerprint of its canonical JSON description;
the record lives at ``<root>/<aa>/<fingerprint>.json`` (sharded by the
first byte so no directory grows unbounded).  Writes go through a
temporary file plus :func:`os.replace`, so a reader never observes a
half-written record and concurrent writers of the same key simply race
to an identical result.

The code version folds a hash of the simulator's own sources into every
fingerprint: editing any module that influences results invalidates the
whole store automatically, with no manual versioning to forget.
Per-session hit/miss counters are merged into a persistent
``stats.json`` on :meth:`ResultStore.flush_stats`, which is what
``repro cache stats`` reports.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from types import ModuleType
from typing import Any, Dict, Iterable, Iterator, List, Optional

try:
    import fcntl as _fcntl_mod
except ImportError:  # non-POSIX platform: stats merges go unlocked
    fcntl: Optional[ModuleType] = None
else:
    fcntl = _fcntl_mod

from repro import obs
from repro.core.config import NpuConfig
from repro.runner.records import SCHEMA_VERSION, npu_to_dict

#: Environment override for the default store location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Sources that cannot affect evaluation results: the caching machinery
#: itself, the observability layer (spans and counters never change
#: what the pipeline computes) and the presentation-only CLI.
#: Everything else is hashed — deliberately conservative, so an
#: ambiguous module over-invalidates the store rather than risking
#: stale results.
_NON_RESULT_DIRS = {"runner", "obs", "__pycache__"}
_NON_RESULT_FILES = {"cli.py"}

_code_version_cache: Optional[str] = None


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    # The cache *location* never reaches a fingerprint or a result.
    # repro: allow(fingerprint-purity)
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


def code_version() -> str:
    """Hash of the package sources that can affect evaluation results.

    ``runner/`` and ``cli.py`` are excluded: changes to the caching
    machinery or the command-line front-end do not change what the
    pipeline computes, so they must not invalidate stored results.
    """
    global _code_version_cache
    if _code_version_cache is None:
        package_root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            relative = path.relative_to(package_root)
            if relative.parts[0] in _NON_RESULT_DIRS or \
                    str(relative) in _NON_RESULT_FILES:
                continue
            digest.update(str(relative).encode())
            digest.update(path.read_bytes())
        _code_version_cache = digest.hexdigest()[:16]
    return _code_version_cache


def fingerprint(npu: NpuConfig, workload: str,
                scheme_names: Iterable[str],
                version: Optional[str] = None) -> str:
    """Content address of one evaluation request."""
    payload = {
        "schema": SCHEMA_VERSION,
        "code": version if version is not None else code_version(),
        "npu": npu_to_dict(npu),
        "workload": workload,
        "schemes": list(scheme_names),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


@dataclass
class CacheStats:
    """Counters for one store session."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    def as_dict(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "puts": self.puts, "evictions": self.evictions}


@dataclass
class StoreSummary:
    """What ``repro cache stats`` prints."""

    root: str
    entries: int
    total_bytes: int
    orphan_tmp: int = 0
    lifetime: Dict[str, int] = field(default_factory=dict)
    last_run: Dict[str, int] = field(default_factory=dict)


class ResultStore:
    """Content-addressed JSON record store with atomic writes."""

    def __init__(self, root: Optional[os.PathLike] = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.stats = CacheStats()

    # -- paths --

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def _stats_path(self) -> Path:
        return self.root / "stats.json"

    # -- record access --

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Record dict for ``key``, or ``None`` (counted as a miss).

        A corrupt record (truncated write from a crashed process, stray
        edit) is evicted and reported as a miss.
        """
        path = self._path(key)
        try:
            with open(path) as handle:
                record: Any = json.load(handle)
            if not isinstance(record, dict):
                raise json.JSONDecodeError("record is not an object",
                                           doc="", pos=0)
        except FileNotFoundError:
            self.stats.misses += 1
            obs.incr("store.misses")
            return None
        except (json.JSONDecodeError, OSError):
            self.stats.misses += 1
            self.stats.evictions += 1
            obs.incr("store.misses")
            obs.incr("store.evictions")
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.stats.hits += 1
        obs.incr("store.hits")
        return record

    def put(self, key: str, record: Dict[str, Any]) -> None:
        """Atomically persist ``record`` under ``key``."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(record, handle, separators=(",", ":"))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.puts += 1
        obs.incr("store.puts")

    def demote_hit(self, key: str) -> None:
        """Reclassify the last hit on ``key`` as a miss and evict it.

        For callers that fetched a record successfully but found it
        unusable (e.g. a stale schema version): the request must count
        as a miss or hit-rate reporting overstates cache effectiveness.
        With no hit on record (a caller demoting spuriously) there is
        nothing to reclassify — only the eviction is counted, so the
        lifetime counters merged into ``stats.json`` can never go
        negative.
        """
        if self.stats.hits > 0:
            self.stats.hits -= 1
            self.stats.misses += 1
        self.stats.evictions += 1
        obs.incr("store.demotions")
        try:
            self._path(key).unlink()
        except OSError:
            pass

    def contains(self, key: str) -> bool:
        """Presence check that does not touch the hit/miss counters."""
        return self._path(key).exists()

    # -- maintenance --

    def _record_paths(self) -> List[Path]:
        """Every stored record, in deterministic (sorted) order."""
        return sorted(self.root.glob("??/*.json"))

    def entries(self) -> int:
        return len(self._record_paths())

    def size_bytes(self) -> int:
        return sum(p.stat().st_size for p in self._record_paths())

    def _orphan_tmp_paths(self) -> List[Path]:
        """Leftover ``mkstemp`` files from crashed ``put()`` /
        ``flush_stats()`` calls — invisible to ``entries()`` /
        ``size_bytes()`` and swept by ``clear()``."""
        return sorted(self.root.glob("*.tmp")) \
            + sorted(self.root.glob("??/*.tmp"))

    def orphan_tmp_count(self) -> int:
        return len(self._orphan_tmp_paths())

    def clear(self) -> int:
        """Delete every record (plus orphaned temp files and the stats
        file); returns the count of records removed."""
        removed = 0
        for path in self._record_paths():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        for path in list(self._orphan_tmp_paths()):
            try:
                path.unlink()
            except OSError:
                pass
        for path in (self._stats_path(), self._lock_path()):
            try:
                path.unlink()
            except OSError:
                pass
        return removed

    # -- persistent statistics --

    def _lock_path(self) -> Path:
        return self.root / "stats.lock"

    @contextlib.contextmanager
    def _stats_lock(self) -> Iterator[None]:
        """Inter-process mutex around the ``stats.json`` read-modify-write.

        ``flush_stats`` merges session counters into the persistent
        file; two concurrent sweeps flushing unlocked race the
        read-modify-write and silently lose counters.  An ``flock`` on a
        sidecar lock file (never on ``stats.json`` itself, which is
        replaced atomically and would orphan the lock) serializes the
        merge.  On platforms without ``fcntl`` the merge proceeds
        unlocked, exactly as before.
        """
        if fcntl is None:
            yield
            return
        self.root.mkdir(parents=True, exist_ok=True)
        with open(self._lock_path(), "a") as handle:
            fcntl.flock(handle, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle, fcntl.LOCK_UN)

    def _load_persistent(self) -> Dict[str, Any]:
        try:
            with open(self._stats_path()) as handle:
                data = json.load(handle)
        except (FileNotFoundError, json.JSONDecodeError, OSError):
            data = {}
        data.setdefault("lifetime", {})
        return data

    def flush_stats(self) -> None:
        """Merge this session's counters into ``stats.json`` and reset.

        The read-modify-write runs under :meth:`_stats_lock`, so
        concurrent sweeps (or a future eval server's writers) merge
        rather than clobber each other's counters.
        """
        if not self.stats.requests and not self.stats.puts:
            return
        with self._stats_lock():
            data = self._load_persistent()
            lifetime = data["lifetime"]
            for name, value in self.stats.as_dict().items():
                lifetime[name] = lifetime.get(name, 0) + value
            data["last_run"] = self.stats.as_dict()
            self.root.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as handle:
                    json.dump(data, handle, indent=2, sort_keys=True)
                os.replace(tmp, self._stats_path())
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        self.stats = CacheStats()

    def summary(self) -> StoreSummary:
        data = self._load_persistent()
        orphans = self.orphan_tmp_count()
        obs.gauge("store.orphan_tmp", orphans)
        return StoreSummary(
            root=str(self.root),
            entries=self.entries(),
            total_bytes=self.size_bytes(),
            orphan_tmp=orphans,
            lifetime=data.get("lifetime", {}),
            last_run=data.get("last_run", {}),
        )
